//! # tfno-backend
//!
//! The execution-backend abstraction of the TurboFNO stack.
//!
//! Everything above the device — `turbofno::Session`, the planner, the
//! buffer pool, replay, verification, async dispatch — talks to an
//! execution backend through the [`Backend`] trait, which is exactly the
//! surface of the simulated [`GpuDevice`] that the core crate consumed
//! before the split: buffer allocation/upload/download, synchronous and
//! deferred launches, worker policy keys, fault-plan arming, and the
//! analytical measurement hooks.
//!
//! Two backends implement it:
//!
//! * [`SimBackend`] (= [`GpuDevice`]) — the cycle-accounting simulator.
//!   The bit-level oracle: every launch is costed (sectors, bank
//!   conflicts, occupancy), writes are journaled with CUDA visibility
//!   semantics, and fault injection / deferred launches are supported.
//! * [`NativeBackend`] — an eager host executor. The same kernel bodies
//!   run (so results match the simulator bit-for-bit for
//!   order-deterministic kernels), but with no sector math, no
//!   bank-conflict accounting, and no write-conflict validation — a
//!   genuinely faster data path, and proof the abstraction doesn't leak
//!   sim-isms.
//!
//! Backends differ in capability, not by panicking: [`Backend::caps`]
//! reports what each supports ([`BackendCaps`]), and unsupported
//! operations return [`LaunchError::Unsupported`] typed errors.
//!
//! [`AnyBackend`] dispatches between the two at runtime and is what
//! `Session::a100()` constructs, honoring the `TFNO_BACKEND` environment
//! variable (`sim` | `native`, default `sim`).

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

use tfno_gpu_sim::{
    run_analytical_stats, run_functional_eager, workers_for, BufferId, CostModel, DeviceConfig,
    ExecMode, FaultPlan, FaultStats, GlobalMemory, GpuDevice, Kernel, LaunchError, LaunchRecord,
    PendingLaunch,
};
use tfno_num::C32;

/// The simulated device is the reference backend; the alias names its role
/// in the backend-generic stack (`Session<B: Backend = SimBackend>`).
pub type SimBackend = GpuDevice;

/// What a [`Backend`] implementation supports. Callers consult this
/// instead of probing with operations that would fail: every `false` here
/// corresponds to a typed [`LaunchError::Unsupported`] (never a panic) on
/// the operation's `try_` path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendCaps {
    /// [`Backend::try_set_fault_plan`] accepts a plan and the launch/alloc
    /// paths consult it.
    pub fault_injection: bool,
    /// [`Backend::try_launch_deferred`] can issue functional launches
    /// whose writes stay invisible until [`Backend::complete`] (CUDA async
    /// visibility semantics). On the simulator this is dynamic: the legacy
    /// A/B executor applies writes inline and cannot defer.
    pub deferred_launch: bool,
    /// Recorded launch sequences may be replayed against this backend
    /// (`turbofno`'s replay cache). Both current backends support it —
    /// replay re-issues kernels through [`Backend::try_launch`].
    pub replay: bool,
}

/// Which backend implementation is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The cycle-accounting simulator ([`SimBackend`]).
    Sim,
    /// The eager host executor ([`NativeBackend`]).
    Native,
}

impl BackendKind {
    /// The name `TFNO_BACKEND` selects this kind by.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }
}

/// Parse a `TFNO_BACKEND`-style value (case-insensitive, trimmed).
pub fn parse_backend_kind(v: &str) -> Option<BackendKind> {
    match v.trim().to_ascii_lowercase().as_str() {
        "sim" | "simulator" => Some(BackendKind::Sim),
        "native" | "host" => Some(BackendKind::Native),
        _ => None,
    }
}

/// The backend kind selected for this process: `TFNO_BACKEND` when set,
/// otherwise [`BackendKind::Sim`]. Read once and cached — a CI matrix sets
/// the variable before the process starts.
///
/// # Panics
/// On an unrecognized `TFNO_BACKEND` value, so a typo in a CI matrix can
/// never silently fall back to the simulator.
pub fn env_backend_kind() -> BackendKind {
    static KIND: OnceLock<BackendKind> = OnceLock::new();
    *KIND.get_or_init(|| match std::env::var("TFNO_BACKEND") {
        Err(_) => BackendKind::Sim,
        Ok(v) => parse_backend_kind(&v).unwrap_or_else(|| {
            panic!("TFNO_BACKEND must be 'sim' or 'native', got '{v}'")
        }),
    })
}

/// An execution backend: the device surface the backend-generic stack
/// (`Session`, planner, pool, replay, verifier, dispatch) runs against.
///
/// The contract is [`GpuDevice`]'s: `try_launch` executes a kernel's
/// functional body (or its analytical cost model) with reads observing
/// pre-launch memory and writes visible at return; `try_launch_deferred` /
/// `complete` split that into CUDA-style async issue and completion where
/// [`BackendCaps::deferred_launch`] allows; failed operations are clean
/// (nothing written, nothing recorded). Unsupported operations return
/// [`LaunchError::Unsupported`] — consult [`Backend::caps`] first.
pub trait Backend: Send + 'static {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// What this backend supports (may depend on runtime flags).
    fn caps(&self) -> BackendCaps;

    /// Device geometry/bandwidth configuration (also the planner's key).
    fn config(&self) -> &DeviceConfig;

    /// The backend's global memory.
    fn memory(&self) -> &GlobalMemory;

    /// Mutable global memory (virtual allocation, host-side clears).
    fn memory_mut(&mut self) -> &mut GlobalMemory;

    /// Allocate a zeroed device buffer; a fault-injecting backend may fail
    /// it with [`LaunchError::Oom`].
    fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError>;

    /// Execute a kernel synchronously: writes are visible and the launch
    /// is in [`Backend::launches`] when this returns `Ok`.
    fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError>;

    /// Issue a launch without applying its writes (see
    /// [`BackendCaps::deferred_launch`]).
    fn try_launch_deferred(
        &self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError>;

    /// Apply a deferred launch's writes and record it.
    fn complete(&mut self, pending: PendingLaunch) -> LaunchRecord;

    /// Stable key of the execution policy in force (worker overrides,
    /// executor flavor); replay caches invalidate on a change.
    fn worker_key(&self) -> u64;

    /// Set or clear the explicit worker-count override.
    fn set_workers(&mut self, workers: Option<usize>);

    /// Whether analytical launches go through the process-wide memo.
    fn analytical_memo(&self) -> bool;

    /// Install or clear a fault-injection schedule. Backends without
    /// [`BackendCaps::fault_injection`] reject a `Some` plan with
    /// [`LaunchError::Unsupported`]; clearing (`None`) always succeeds.
    fn try_set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<(), LaunchError>;

    /// Injection counters (all-zero when no plan is installed or fault
    /// injection is unsupported).
    fn fault_stats(&self) -> FaultStats;

    /// Completed-launch history.
    fn launches(&self) -> &[LaunchRecord];

    /// Drop the launch history.
    fn clear_launches(&mut self);

    // --- provided sugar, shared by every backend ---

    /// Panicking twin of [`Backend::try_alloc`].
    fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        self.try_alloc(name, len).unwrap_or_else(|e| {
            panic!("injected device fault unhandled by this call path: {e}; use try_alloc")
        })
    }

    /// Panicking twin of [`Backend::try_launch`].
    fn launch(&mut self, kernel: &dyn Kernel, mode: ExecMode) -> LaunchRecord {
        self.try_launch(kernel, mode).unwrap_or_else(|e| {
            panic!("injected device fault unhandled by this call path: {e}; use try_launch")
        })
    }

    /// Host-side upload (outside the modeled/timed region).
    fn upload(&mut self, id: BufferId, data: &[C32]) {
        self.memory_mut().upload(id, data);
    }

    /// Host-side download.
    fn download(&self, id: BufferId) -> Vec<C32> {
        self.memory().download(id)
    }

    /// Host-side zero of a buffer.
    fn clear(&mut self, id: BufferId) {
        self.memory_mut().clear(id);
    }

    /// Total modeled time of all recorded launches.
    fn total_time_us(&self) -> f64 {
        self.launches().iter().map(|l| l.time_us).sum()
    }
}

impl Backend for GpuDevice {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            fault_injection: true,
            // The legacy A/B executor applies writes inline per element
            // and cannot defer functional launches.
            deferred_launch: !self.legacy_executor,
            replay: true,
        }
    }

    fn config(&self) -> &DeviceConfig {
        &self.config
    }

    fn memory(&self) -> &GlobalMemory {
        &self.memory
    }

    fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.memory
    }

    fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError> {
        GpuDevice::try_alloc(self, name, len)
    }

    fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        GpuDevice::try_launch(self, kernel, mode)
    }

    fn try_launch_deferred(
        &self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        if self.legacy_executor && mode == ExecMode::Functional {
            // Typed twin of the inherent method's assertion, so
            // capability-gated callers get an error, not an unwind.
            return Err(LaunchError::Unsupported {
                backend: "sim(legacy-executor)",
                op: "deferred functional launches",
            });
        }
        GpuDevice::try_launch_deferred(self, kernel, mode)
    }

    fn complete(&mut self, pending: PendingLaunch) -> LaunchRecord {
        GpuDevice::complete(self, pending)
    }

    fn worker_key(&self) -> u64 {
        GpuDevice::worker_key(self)
    }

    fn set_workers(&mut self, workers: Option<usize>) {
        GpuDevice::set_workers(self, workers);
    }

    fn analytical_memo(&self) -> bool {
        self.analytical_memo
    }

    fn try_set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<(), LaunchError> {
        GpuDevice::set_fault_plan(self, plan);
        Ok(())
    }

    fn fault_stats(&self) -> FaultStats {
        GpuDevice::fault_stats(self)
    }

    fn launches(&self) -> &[LaunchRecord] {
        GpuDevice::launches(self)
    }

    fn clear_launches(&mut self) {
        GpuDevice::clear_launches(self);
    }
}

/// The eager host backend: kernels' functional bodies run immediately on
/// host threads with traffic accounting switched off and no write-conflict
/// validation (see [`tfno_gpu_sim::run_functional_eager`]). Analytical
/// launches share the simulator's exact code path and memo, so
/// `Session::measure` is bit-identical across backends.
///
/// Unsupported (typed, per [`BackendCaps`]): fault injection and deferred
/// functional launches — callers fall back to synchronous issue.
pub struct NativeBackend {
    config: DeviceConfig,
    memory: GlobalMemory,
    cost: CostModel,
    launches: Vec<LaunchRecord>,
    /// Execute blocks on multiple host threads when the grid is large.
    pub parallel: bool,
    /// Use the memoized-analytical launch path.
    pub analytical_memo: bool,
    workers: Option<usize>,
}

impl NativeBackend {
    pub fn new(config: DeviceConfig) -> Self {
        let cost = CostModel::new(config.clone());
        NativeBackend {
            config,
            memory: GlobalMemory::new(),
            cost,
            launches: Vec::new(),
            parallel: true,
            analytical_memo: true,
            workers: None,
        }
    }

    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    /// Pin the executor to exactly `n` workers (capped at the grid size
    /// per launch).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    fn effective_workers(&self, n_blocks: usize) -> usize {
        if !self.parallel || n_blocks == 0 {
            return 1;
        }
        match self.workers {
            Some(n) => n.min(n_blocks).max(1),
            None => workers_for(n_blocks),
        }
    }
}

impl Backend for NativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Native
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            fault_injection: false,
            deferred_launch: false,
            replay: true,
        }
    }

    fn config(&self) -> &DeviceConfig {
        &self.config
    }

    fn memory(&self) -> &GlobalMemory {
        &self.memory
    }

    fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.memory
    }

    fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError> {
        Ok(self.memory.alloc(name, len))
    }

    fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        let dims = kernel.dims();
        let stats = match mode {
            ExecMode::Analytical => {
                run_analytical_stats(&self.memory, kernel, self.analytical_memo)
            }
            ExecMode::Functional => {
                let workers = self.effective_workers(dims.grid_blocks);
                run_functional_eager(&mut self.memory, kernel, workers)
            }
        };
        // Eager functional stats carry no traffic counters, so the modeled
        // time is launch overhead plus the structural terms — fine for a
        // backend whose job is wall-clock speed, not cost fidelity.
        let time_us = self.cost.kernel_time_us(&dims, &stats);
        let rec = LaunchRecord {
            name: kernel.name(),
            dims_grid: dims.grid_blocks,
            stats,
            time_us,
        };
        self.launches.push(rec.clone());
        Ok(rec)
    }

    fn try_launch_deferred(
        &self,
        _kernel: &dyn Kernel,
        _mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        Err(LaunchError::Unsupported {
            backend: "native",
            op: "deferred launches",
        })
    }

    fn complete(&mut self, _pending: PendingLaunch) -> LaunchRecord {
        // INVARIANT: unreachable through this backend — try_launch_deferred
        // never produces a PendingLaunch here, and pendings from another
        // backend reference that backend's buffers. Completing one against
        // native memory would be a caller bug, so failing loudly is right.
        unreachable!("NativeBackend cannot complete a deferred launch (caps().deferred_launch is false)")
    }

    fn worker_key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Tag the key with the backend so a replay artifact can never
        // stale-hit across backend flavors.
        "native-backend".hash(&mut h);
        self.workers.hash(&mut h);
        tfno_gpu_sim::configured_workers().hash(&mut h);
        self.parallel.hash(&mut h);
        h.finish()
    }

    fn set_workers(&mut self, workers: Option<usize>) {
        self.workers = workers.map(|n| n.max(1));
    }

    fn analytical_memo(&self) -> bool {
        self.analytical_memo
    }

    fn try_set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<(), LaunchError> {
        match plan {
            None => Ok(()),
            Some(_) => Err(LaunchError::Unsupported {
                backend: "native",
                op: "fault injection",
            }),
        }
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    fn clear_launches(&mut self) {
        self.launches.clear();
    }
}

/// Runtime-selected backend: what `Session::a100()` owns, so one binary
/// serves both flavors and the `TFNO_BACKEND` environment variable (or an
/// explicit constructor) picks at startup.
pub enum AnyBackend {
    Sim(SimBackend),
    Native(NativeBackend),
}

/// Delegate one method through the enum.
macro_rules! any_delegate {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            AnyBackend::Sim($d) => $body,
            AnyBackend::Native($d) => $body,
        }
    };
}

impl AnyBackend {
    /// The backend `TFNO_BACKEND` selects, on the given config.
    pub fn from_env(config: DeviceConfig) -> Self {
        match env_backend_kind() {
            BackendKind::Sim => AnyBackend::Sim(SimBackend::new(config)),
            BackendKind::Native => AnyBackend::Native(NativeBackend::new(config)),
        }
    }

    /// The backend `TFNO_BACKEND` selects, on the A100 config.
    pub fn a100() -> Self {
        Self::from_env(DeviceConfig::a100())
    }

    // Inherent mirrors of the trait surface, so callers holding a concrete
    // `AnyBackend` (e.g. through `Session::device()`) don't need the trait
    // in scope.

    pub fn kind(&self) -> BackendKind {
        any_delegate!(self, d => Backend::kind(d))
    }

    pub fn caps(&self) -> BackendCaps {
        any_delegate!(self, d => Backend::caps(d))
    }

    pub fn config(&self) -> &DeviceConfig {
        any_delegate!(self, d => Backend::config(d))
    }

    pub fn memory(&self) -> &GlobalMemory {
        any_delegate!(self, d => Backend::memory(d))
    }

    pub fn memory_mut(&mut self) -> &mut GlobalMemory {
        any_delegate!(self, d => Backend::memory_mut(d))
    }

    pub fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError> {
        any_delegate!(self, d => Backend::try_alloc(d, name, len))
    }

    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        any_delegate!(self, d => Backend::alloc(d, name, len))
    }

    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        any_delegate!(self, d => Backend::upload(d, id, data))
    }

    pub fn download(&self, id: BufferId) -> Vec<C32> {
        any_delegate!(self, d => Backend::download(d, id))
    }

    pub fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        any_delegate!(self, d => Backend::try_launch(d, kernel, mode))
    }

    pub fn launch(&mut self, kernel: &dyn Kernel, mode: ExecMode) -> LaunchRecord {
        any_delegate!(self, d => Backend::launch(d, kernel, mode))
    }

    pub fn worker_key(&self) -> u64 {
        any_delegate!(self, d => Backend::worker_key(d))
    }

    pub fn set_workers(&mut self, workers: Option<usize>) {
        any_delegate!(self, d => Backend::set_workers(d, workers))
    }

    pub fn fault_stats(&self) -> FaultStats {
        any_delegate!(self, d => Backend::fault_stats(d))
    }

    pub fn launches(&self) -> &[LaunchRecord] {
        any_delegate!(self, d => Backend::launches(d))
    }

    pub fn clear_launches(&mut self) {
        any_delegate!(self, d => Backend::clear_launches(d))
    }

    pub fn total_time_us(&self) -> f64 {
        any_delegate!(self, d => Backend::total_time_us(d))
    }
}

impl From<SimBackend> for AnyBackend {
    fn from(d: SimBackend) -> Self {
        AnyBackend::Sim(d)
    }
}

impl From<NativeBackend> for AnyBackend {
    fn from(d: NativeBackend) -> Self {
        AnyBackend::Native(d)
    }
}

impl Backend for AnyBackend {
    fn kind(&self) -> BackendKind {
        AnyBackend::kind(self)
    }
    fn caps(&self) -> BackendCaps {
        AnyBackend::caps(self)
    }
    fn config(&self) -> &DeviceConfig {
        AnyBackend::config(self)
    }
    fn memory(&self) -> &GlobalMemory {
        AnyBackend::memory(self)
    }
    fn memory_mut(&mut self) -> &mut GlobalMemory {
        AnyBackend::memory_mut(self)
    }
    fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError> {
        AnyBackend::try_alloc(self, name, len)
    }
    fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        AnyBackend::try_launch(self, kernel, mode)
    }
    fn try_launch_deferred(
        &self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        any_delegate!(self, d => Backend::try_launch_deferred(d, kernel, mode))
    }
    fn complete(&mut self, pending: PendingLaunch) -> LaunchRecord {
        any_delegate!(self, d => Backend::complete(d, pending))
    }
    fn worker_key(&self) -> u64 {
        AnyBackend::worker_key(self)
    }
    fn set_workers(&mut self, workers: Option<usize>) {
        AnyBackend::set_workers(self, workers)
    }
    fn analytical_memo(&self) -> bool {
        any_delegate!(self, d => Backend::analytical_memo(d))
    }
    fn try_set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<(), LaunchError> {
        any_delegate!(self, d => Backend::try_set_fault_plan(d, plan))
    }
    fn fault_stats(&self) -> FaultStats {
        AnyBackend::fault_stats(self)
    }
    fn launches(&self) -> &[LaunchRecord] {
        AnyBackend::launches(self)
    }
    fn clear_launches(&mut self) {
        AnyBackend::clear_launches(self)
    }
}

/// Backend-generic twin of [`tfno_gpu_sim::LaunchQueue`]: a bounded
/// in-order window of deferred launches, completing the oldest when the
/// window overflows. The safety contract is the queue's — nothing issued
/// or read between a pending's issue and its completion may depend on that
/// pending's writes.
#[derive(Default)]
pub struct DeferredWindow {
    depth: usize,
    pending: VecDeque<PendingLaunch>,
}

impl DeferredWindow {
    /// A window completing eagerly past `depth` in-flight launches
    /// (clamped to ≥ 1).
    pub fn new(depth: usize) -> Self {
        DeferredWindow {
            depth: depth.max(1),
            pending: VecDeque::new(),
        }
    }

    /// Enqueue an issued launch; completes the oldest launches first if
    /// the window is full. Returns the records of whatever completed.
    pub fn push(&mut self, dev: &mut dyn Backend, launch: PendingLaunch) -> Vec<LaunchRecord> {
        let mut done = Vec::new();
        while self.pending.len() >= self.depth.max(1) {
            let oldest = self.pending.pop_front().expect("non-empty window");
            done.push(dev.complete(oldest));
        }
        self.pending.push_back(launch);
        done
    }

    /// Complete every in-flight launch, oldest first.
    pub fn flush(&mut self, dev: &mut dyn Backend) -> Vec<LaunchRecord> {
        self.pending.drain(..).map(|p| dev.complete(p)).collect()
    }

    /// Launches currently issued but not completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfno_gpu_sim::{BlockCtx, LaunchDims, WarpIdx};

    /// Each block scales 32 contiguous elements by 2 (the gpu-sim test
    /// kernel, reproduced here for cross-backend checks).
    struct ScaleKernel {
        src: BufferId,
        dst: BufferId,
        blocks: usize,
    }

    impl Kernel for ScaleKernel {
        fn name(&self) -> String {
            "scale2".into()
        }
        fn dims(&self) -> LaunchDims {
            LaunchDims::new(self.blocks, 32).with_shared(1024)
        }
        fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
            let idx = WarpIdx::contiguous(block_id * 32);
            let vals = ctx.global_read(self.src, &idx);
            let mut out = [C32::ZERO; 32];
            for (o, v) in out.iter_mut().zip(vals.iter()) {
                *o = v.scale(2.0);
            }
            ctx.add_flops(64);
            ctx.global_write(self.dst, &idx, &out);
        }
    }

    fn seed_backend<B: Backend>(dev: &mut B, blocks: usize) -> (BufferId, BufferId) {
        let n = blocks * 32;
        let src = dev.alloc("src", n);
        let dst = dev.alloc("dst", n);
        let data: Vec<C32> = (0..n).map(|i| C32::real(i as f32)).collect();
        dev.upload(src, &data);
        (src, dst)
    }

    #[test]
    fn parse_backend_kind_accepts_both_flavors() {
        assert_eq!(parse_backend_kind("sim"), Some(BackendKind::Sim));
        assert_eq!(parse_backend_kind(" Native "), Some(BackendKind::Native));
        assert_eq!(parse_backend_kind("NATIVE"), Some(BackendKind::Native));
        assert_eq!(parse_backend_kind("host"), Some(BackendKind::Native));
        assert_eq!(parse_backend_kind("simulator"), Some(BackendKind::Sim));
        assert_eq!(parse_backend_kind("wgpu"), None);
        assert_eq!(parse_backend_kind(""), None);
    }

    #[test]
    fn caps_reflect_backend_abilities() {
        let sim = SimBackend::a100();
        assert_eq!(
            Backend::caps(&sim),
            BackendCaps { fault_injection: true, deferred_launch: true, replay: true }
        );
        let mut legacy = SimBackend::a100();
        legacy.legacy_executor = true;
        assert!(!Backend::caps(&legacy).deferred_launch, "legacy executor cannot defer");

        let native = NativeBackend::a100();
        let caps = native.caps();
        assert!(!caps.fault_injection && !caps.deferred_launch && caps.replay);
    }

    #[test]
    fn native_launch_is_bitwise_equal_to_sim() {
        let mut sim = SimBackend::a100();
        let (src, dst) = seed_backend(&mut sim, 16);
        let rec_sim = Backend::launch(&mut sim, &ScaleKernel { src, dst, blocks: 16 }, ExecMode::Functional);
        let want = Backend::download(&sim, dst);

        for workers in [1usize, 4] {
            let mut native = NativeBackend::a100().with_workers(workers);
            let (src2, dst2) = seed_backend(&mut native, 16);
            let rec = native
                .try_launch(&ScaleKernel { src: src2, dst: dst2, blocks: 16 }, ExecMode::Functional)
                .expect("native launch");
            assert_eq!(native.download(dst2), want, "workers={workers}");
            assert_eq!(rec.stats.blocks, rec_sim.stats.blocks);
            assert_eq!(rec.stats.flops, rec_sim.stats.flops);
            assert_eq!(rec.stats.global_load_sectors, 0, "native skips traffic accounting");
            assert!(rec.time_us > 0.0);
        }
        assert_eq!(sim.launches().len(), 1);
    }

    #[test]
    fn native_analytical_stats_match_sim_exactly() {
        let mut sim = SimBackend::a100();
        let (src, dst) = seed_backend(&mut sim, 9);
        let k = ScaleKernel { src, dst, blocks: 9 };
        let rec_sim = Backend::launch(&mut sim, &k, ExecMode::Analytical);

        let mut native = NativeBackend::a100();
        let (src2, dst2) = seed_backend(&mut native, 9);
        let k2 = ScaleKernel { src: src2, dst: dst2, blocks: 9 };
        let rec_native = native.try_launch(&k2, ExecMode::Analytical).expect("analytical");
        assert_eq!(rec_sim.stats, rec_native.stats, "shared analytical path");
        assert_eq!(rec_sim.time_us, rec_native.time_us);
        // Analytical mode discarded the writes on both.
        assert_eq!(native.download(dst2)[5], C32::ZERO);
    }

    #[test]
    fn native_unsupported_operations_are_typed() {
        let mut native = NativeBackend::a100();
        let (src, dst) = seed_backend(&mut native, 2);
        let k = ScaleKernel { src, dst, blocks: 2 };
        let Err(err) = native.try_launch_deferred(&k, ExecMode::Functional) else {
            panic!("native deferred launch must fail");
        };
        assert!(matches!(err, LaunchError::Unsupported { backend: "native", .. }), "{err}");
        assert!(err.to_string().contains("does not support"));

        let err = native.try_set_fault_plan(Some(FaultPlan::seeded(1))).unwrap_err();
        assert!(matches!(err, LaunchError::Unsupported { .. }));
        // Clearing is always fine (the no-plan state is every backend's
        // default), so generic teardown code never special-cases.
        native.try_set_fault_plan(None).expect("clearing a plan is supported");
        assert_eq!(native.fault_stats(), FaultStats::default());
    }

    #[test]
    fn legacy_sim_deferred_is_typed_through_the_trait() {
        let mut legacy = SimBackend::a100();
        legacy.legacy_executor = true;
        let (src, dst) = seed_backend(&mut legacy, 2);
        let k = ScaleKernel { src, dst, blocks: 2 };
        let Err(err) = Backend::try_launch_deferred(&legacy, &k, ExecMode::Functional) else {
            panic!("legacy-executor deferred functional launch must fail");
        };
        assert!(matches!(err, LaunchError::Unsupported { .. }));
        // Analytical deferral still works under the legacy executor.
        assert!(Backend::try_launch_deferred(&legacy, &k, ExecMode::Analytical).is_ok());
    }

    #[test]
    fn deferred_window_matches_launch_queue_semantics() {
        let mut dev = AnyBackend::Sim(SimBackend::a100());
        let (src, dst) = seed_backend(&mut dev, 4);
        let dst2 = Backend::alloc(&mut dev, "dst2", 4 * 32);
        let k1 = ScaleKernel { src, dst, blocks: 4 };
        let k2 = ScaleKernel { src, dst: dst2, blocks: 4 };
        let mut window = DeferredWindow::new(1);
        let p1 = Backend::try_launch_deferred(&dev, &k1, ExecMode::Functional).unwrap();
        assert!(window.push(&mut dev, p1).is_empty(), "window not full yet");
        let p2 = Backend::try_launch_deferred(&dev, &k2, ExecMode::Functional).unwrap();
        let done = window.push(&mut dev, p2);
        assert_eq!(done.len(), 1, "depth-1 window completes on the next push");
        assert_eq!(Backend::download(&dev, dst)[5], C32::real(10.0), "oldest applied");
        assert_eq!(Backend::download(&dev, dst2)[5], C32::ZERO, "newest still journaled");
        assert_eq!(window.in_flight(), 1);
        window.flush(&mut dev);
        assert_eq!(Backend::download(&dev, dst2)[5], C32::real(10.0));
        assert_eq!(window.in_flight(), 0);
    }

    #[test]
    fn any_backend_dispatches_and_tags_worker_keys() {
        let sim = AnyBackend::Sim(SimBackend::a100());
        let native = AnyBackend::Native(NativeBackend::a100());
        assert_eq!(sim.kind(), BackendKind::Sim);
        assert_eq!(native.kind(), BackendKind::Native);
        assert_ne!(
            sim.worker_key(),
            native.worker_key(),
            "replay keys must never collide across backends"
        );
        let pinned = AnyBackend::Native(NativeBackend::a100().with_workers(1));
        assert_ne!(native.worker_key(), pinned.worker_key());
    }
}
