//! Complete FNO architectures: lifting → Fourier layers (spectral conv +
//! pointwise bypass + GELU) → projection, in 1D and 2D.
//!
//! The device path runs the spectral convolutions on the simulated GPU
//! through any pipeline [`Variant`] and aggregates the
//! per-layer timing records; the pointwise/projection GEMMs execute on the
//! host (the paper's optimization target is the Fourier layer — everything
//! else is identical between baselines and TurboFNO).

use crate::spectral::{SpectralConv1d, SpectralConv2d};
use rand::Rng;
use tfno_culib::PipelineRun;
use tfno_gpu_sim::GpuDevice;
use tfno_num::{C32, CTensor};
use turbofno::{TurboOptions, Variant};

/// GELU (tanh approximation), applied to both complex lanes.
pub fn gelu(v: f32) -> f32 {
    0.5 * v
        * (1.0
            + ((2.0 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)).tanh())
}

fn gelu_c(v: C32) -> C32 {
    C32::new(gelu(v.re), gelu(v.im))
}

/// Pointwise (1x1) convolution over the channel axis: `w[k_in, k_out]`.
/// `x: [batch, k_in, ...spatial] -> [batch, k_out, ...spatial]`.
pub fn pointwise(x: &CTensor, w: &CTensor) -> CTensor {
    let shape = x.shape().to_vec();
    let batch = shape[0];
    let k_in = shape[1];
    let spatial: usize = shape[2..].iter().product();
    let (wk_in, k_out) = match *w.shape() {
        [i, o] => (i, o),
        _ => panic!("pointwise weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in);
    let mut out_shape = shape.clone();
    out_shape[1] = k_out;
    let mut y = CTensor::zeros(&out_shape);
    for b in 0..batch {
        for s in 0..spatial {
            for ko in 0..k_out {
                let mut acc = C32::ZERO;
                for ki in 0..k_in {
                    acc = acc.mac(x.data()[(b * k_in + ki) * spatial + s], w.get(&[ki, ko]));
                }
                y.data_mut()[(b * k_out + ko) * spatial + s] = acc;
            }
        }
    }
    y
}

fn add_gelu(a: &CTensor, b: &CTensor) -> CTensor {
    assert_eq!(a.shape(), b.shape());
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| gelu_c(*x + *y))
        .collect();
    CTensor::from_vec(data, a.shape())
}

/// One 1D Fourier layer: `gelu(spectral(x) + pointwise(x))`.
#[derive(Clone, Debug)]
pub struct FnoLayer1d {
    pub spectral: SpectralConv1d,
    pub bypass: CTensor, // [k, k]
}

impl FnoLayer1d {
    pub fn random<R: Rng>(rng: &mut R, width: usize, n: usize, nf: usize) -> Self {
        let scale = 1.0 / width as f32;
        let bypass = CTensor::from_vec(
            (0..width * width)
                .map(|_| C32::new(rng.gen_range(-scale..scale), 0.0))
                .collect(),
            &[width, width],
        );
        FnoLayer1d {
            spectral: SpectralConv1d::random(rng, width, width, n, nf),
            bypass,
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let s = self.spectral.forward_host(x);
        let p = pointwise(x, &self.bypass);
        add_gelu(&s, &p)
    }

    pub fn forward_device(
        &self,
        dev: &mut GpuDevice,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let (s, run) = self.spectral.forward_device(dev, variant, opts, x);
        let p = pointwise(x, &self.bypass);
        (add_gelu(&s, &p), run)
    }
}

/// A full 1D FNO.
#[derive(Clone, Debug)]
pub struct Fno1d {
    pub lift: CTensor,  // [in_ch, width]
    pub layers: Vec<FnoLayer1d>,
    pub proj: CTensor,  // [width, out_ch]
}

impl Fno1d {
    /// Random model: `in_ch -> width -> (layers x Fourier) -> out_ch`.
    pub fn random<R: Rng>(
        rng: &mut R,
        in_ch: usize,
        width: usize,
        out_ch: usize,
        layers: usize,
        n: usize,
        nf: usize,
    ) -> Self {
        let mk = |rng: &mut R, i: usize, o: usize| {
            let scale = 1.0 / i as f32;
            CTensor::from_vec(
                (0..i * o)
                    .map(|_| C32::new(rng.gen_range(-scale..scale), 0.0))
                    .collect(),
                &[i, o],
            )
        };
        Fno1d {
            lift: mk(rng, in_ch, width),
            layers: (0..layers).map(|_| FnoLayer1d::random(rng, width, n, nf)).collect(),
            proj: mk(rng, width, out_ch),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let mut h = pointwise(x, &self.lift);
        for layer in &self.layers {
            h = layer.forward_host(&h);
        }
        pointwise(&h, &self.proj)
    }

    /// Device forward; returns the output and the concatenated spectral
    /// timing records of all layers.
    pub fn forward_device(
        &self,
        dev: &mut GpuDevice,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let mut h = pointwise(x, &self.lift);
        let mut total = PipelineRun::default();
        for layer in &self.layers {
            let (next, run) = layer.forward_device(dev, variant, opts, &h);
            h = next;
            for l in run.launches {
                total.push(l);
            }
        }
        (pointwise(&h, &self.proj), total)
    }
}

/// One 2D Fourier layer.
#[derive(Clone, Debug)]
pub struct FnoLayer2d {
    pub spectral: SpectralConv2d,
    pub bypass: CTensor,
}

impl FnoLayer2d {
    pub fn random<R: Rng>(
        rng: &mut R,
        width: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let scale = 1.0 / width as f32;
        let bypass = CTensor::from_vec(
            (0..width * width)
                .map(|_| C32::new(rng.gen_range(-scale..scale), 0.0))
                .collect(),
            &[width, width],
        );
        FnoLayer2d {
            spectral: SpectralConv2d::random(rng, width, width, nx, ny, nfx, nfy),
            bypass,
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let s = self.spectral.forward_host(x);
        let p = pointwise(x, &self.bypass);
        add_gelu(&s, &p)
    }

    pub fn forward_device(
        &self,
        dev: &mut GpuDevice,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let (s, run) = self.spectral.forward_device(dev, variant, opts, x);
        let p = pointwise(x, &self.bypass);
        (add_gelu(&s, &p), run)
    }
}

/// A full 2D FNO.
#[derive(Clone, Debug)]
pub struct Fno2d {
    pub lift: CTensor,
    pub layers: Vec<FnoLayer2d>,
    pub proj: CTensor,
}

impl Fno2d {
    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        in_ch: usize,
        width: usize,
        out_ch: usize,
        layers: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let mk = |rng: &mut R, i: usize, o: usize| {
            let scale = 1.0 / i as f32;
            CTensor::from_vec(
                (0..i * o)
                    .map(|_| C32::new(rng.gen_range(-scale..scale), 0.0))
                    .collect(),
                &[i, o],
            )
        };
        Fno2d {
            lift: mk(rng, in_ch, width),
            layers: (0..layers)
                .map(|_| FnoLayer2d::random(rng, width, nx, ny, nfx, nfy))
                .collect(),
            proj: mk(rng, width, out_ch),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let mut h = pointwise(x, &self.lift);
        for layer in &self.layers {
            h = layer.forward_host(&h);
        }
        pointwise(&h, &self.proj)
    }

    pub fn forward_device(
        &self,
        dev: &mut GpuDevice,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let mut h = pointwise(x, &self.lift);
        let mut total = PipelineRun::default();
        for layer in &self.layers {
            let (next, run) = layer.forward_device(dev, variant, opts, &h);
            h = next;
            for l in run.launches {
                total.push(l);
            }
        }
        (pointwise(&h, &self.proj), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfno_num::error::rel_l2_error;

    #[test]
    fn gelu_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn pointwise_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = CTensor::random(&mut rng, &[2, 3, 8]);
        let mut w = CTensor::zeros(&[3, 3]);
        for i in 0..3 {
            w.set(&[i, i], C32::ONE);
        }
        let y = pointwise(&x, &w);
        assert!(x.max_abs_diff(&y) < 1e-6);
    }

    #[test]
    fn fno1d_device_matches_host() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = Fno1d::random(&mut rng, 2, 8, 1, 2, 64, 16);
        let x = CTensor::random(&mut rng, &[1, 2, 64]);
        let want = model.forward_host(&x);
        let mut dev = GpuDevice::a100();
        let (got, run) = model.forward_device(
            &mut dev,
            Variant::FftOpt,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-3, "err {err}");
        assert_eq!(run.kernel_count(), 2 * 3); // 2 layers x 3 kernels (variant A)
    }

    #[test]
    fn fno1d_variants_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Fno1d::random(&mut rng, 1, 8, 1, 1, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 1, 128]);
        let mut outputs = Vec::new();
        for v in [Variant::Pytorch, Variant::FullyFused] {
            let mut dev = GpuDevice::a100();
            let (got, _) = model.forward_device(&mut dev, v, &TurboOptions::default(), &x);
            outputs.push(got);
        }
        let err = rel_l2_error(outputs[0].data(), outputs[1].data());
        assert!(err < 1e-4, "variants diverge: {err}");
    }

    #[test]
    fn fno2d_device_matches_host() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = Fno2d::random(&mut rng, 1, 8, 1, 1, 32, 32, 8, 32);
        let x = CTensor::random(&mut rng, &[1, 1, 32, 32]);
        let want = model.forward_host(&x);
        let mut dev = GpuDevice::a100();
        let (got, _) = model.forward_device(
            &mut dev,
            Variant::FullyFused,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-3, "err {err}");
    }
}
