//! Complete FNO architectures: lifting → Fourier layers (spectral conv +
//! pointwise bypass + GELU) → projection, rank-generic with shape-named
//! 1D/2D wrappers.
//!
//! The device path runs the spectral convolutions through a
//! [`Session`] (shared planner + pooled buffers across layers and
//! forwards) with any pipeline [`Variant`] and aggregates the
//! per-layer timing records; the pointwise/projection GEMMs execute on the
//! host (the paper's optimization target is the Fourier layer — everything
//! else is identical between baselines and TurboFNO). [`FnoNd`] is the one
//! implementation; [`Fno1d`]/[`Fno2d`] delegate to it, and a 3D model is
//! just `FnoNd` with three spatial dims.
//!
//! ## Overlapped layer schedule
//!
//! Within one Fourier layer, the spectral conv (device) and the pointwise
//! bypass (host) both read the *same* input — they are independent until
//! `add_gelu` joins them. `forward_device` exploits that: it submits the
//! spectral launch sequence on the session's dispatch thread
//! ([`Session::submit`]), runs the blocked host `pointwise` while the
//! launches execute, then joins for `add_gelu`. The paper removes dead
//! time between pipeline stages *inside* the Fourier layer (fused
//! FFT-GEMM-iFFT); this applies the same idea one level up, to the glue
//! between device launches and host pointwise work. `forward_device_sync`
//! keeps the strictly sequential schedule; both are bitwise-identical
//! (pinned by tests and a workspace proptest) because the overlapped path
//! runs the exact same kernels and the exact same host arithmetic.
//!
//! `forward_device_batch` extends the overlap across a *queue* of
//! independent forwards: each layer's K same-shape spectral convs coalesce
//! into one stacked launch sequence ([`Session::submit_many`], riding the
//! mixed-weight stacking machinery) while the host runs all K pointwise
//! bypasses — the serving-path schedule the throughput bench pins as
//! `pipeline-overlap`.

use crate::spectral::{SpectralConv1d, SpectralConv2d, SpectralConvNd};
use rand::Rng;
use tfno_culib::PipelineRun;
use tfno_num::{C32, CTensor};
use turbofno::{Backend, LayerSpec, Request, Session, TfnoError, TurboOptions, Variant};

/// GELU (tanh approximation), applied to both complex lanes.
pub fn gelu(v: f32) -> f32 {
    0.5 * v
        * (1.0
            + ((2.0 / std::f32::consts::PI).sqrt() * (v + 0.044715 * v * v * v)).tanh())
}

fn gelu_c(v: C32) -> C32 {
    C32::new(gelu(v.re), gelu(v.im))
}

/// Output channels per micro-tile of the blocked pointwise kernel: each
/// spatial tile of `x` is loaded once and reused for this many output
/// channels. Shrunk automatically when the host has more workers than
/// full-width segments.
const PW_KO_BLOCK: usize = 8;
/// Spatial lanes per micro-tile (sized to keep the tile plus the
/// accumulator rows L1-resident).
const PW_S_BLOCK: usize = 512;
/// Complex MACs of work per spawned `pointwise` worker thread: sized so a
/// worker's share (~0.5 ms of arithmetic) dwarfs the OS thread-spawn cost
/// (there is no pool in the stack).
const PW_PAR_TASK_WORK: usize = 1 << 16;
/// Elements of elementwise work per spawned `add_gelu` task.
const EW_MIN_CHUNK: usize = 4096;

/// Scalar reference pointwise convolution — the pre-PR implementation,
/// kept as the ground truth the blocked kernel is checked against
/// (bitwise: both accumulate over `k_in` in ascending order) and as the
/// baseline of the throughput bench.
pub fn pointwise_naive(x: &CTensor, w: &CTensor) -> CTensor {
    let shape = x.shape().to_vec();
    let batch = shape[0];
    let k_in = shape[1];
    let spatial: usize = shape[2..].iter().product();
    let (wk_in, k_out) = match *w.shape() {
        [i, o] => (i, o),
        _ => panic!("pointwise weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in);
    let mut out_shape = shape.clone();
    out_shape[1] = k_out;
    let mut y = CTensor::zeros(&out_shape);
    for b in 0..batch {
        for s in 0..spatial {
            for ko in 0..k_out {
                let mut acc = C32::ZERO;
                for ki in 0..k_in {
                    acc = acc.mac(x.data()[(b * k_in + ki) * spatial + s], w.get(&[ki, ko]));
                }
                y.data_mut()[(b * k_out + ko) * spatial + s] = acc;
            }
        }
    }
    y
}

/// One segment of the blocked pointwise kernel: `nko` output-channel rows
/// of batch `b`, written into their contiguous slice of the output. Walks
/// the spatial axis in tiles and runs the channel reduction innermost, so
/// each `x` tile streams through cache once per `PW_KO_BLOCK` outputs and
/// the inner loop is a vectorizable axpy.
fn pointwise_seg(
    xd: &[C32],
    wd: &[C32],
    k_in: usize,
    k_out: usize,
    spatial: usize,
    seg: (usize, usize, usize),
    out: &mut [C32],
) {
    let (b, ko0, nko) = seg;
    for s0 in (0..spatial).step_by(PW_S_BLOCK) {
        let ts = PW_S_BLOCK.min(spatial - s0);
        for ki in 0..k_in {
            let xrow = &xd[(b * k_in + ki) * spatial + s0..][..ts];
            for j in 0..nko {
                let wv = wd[ki * k_out + ko0 + j];
                let orow = &mut out[j * spatial + s0..][..ts];
                for (o, xv) in orow.iter_mut().zip(xrow) {
                    *o = o.mac(*xv, wv);
                }
            }
        }
    }
}

/// Pointwise (1x1) convolution over the channel axis: `w[k_in, k_out]`.
/// `x: [batch, k_in, ...spatial] -> [batch, k_out, ...spatial]`.
///
/// Blocked over `batch x spatial` with a k-inner micro-kernel and fanned
/// out across host threads under the engine's worker policy
/// (`TFNO_THREADS`); numerically identical to [`pointwise_naive`] — every
/// output element accumulates over `k_in` in the same order.
pub fn pointwise(x: &CTensor, w: &CTensor) -> CTensor {
    let shape = x.shape().to_vec();
    let batch = shape[0];
    let k_in = shape[1];
    let spatial: usize = shape[2..].iter().product();
    let (wk_in, k_out) = match *w.shape() {
        [i, o] => (i, o),
        _ => panic!("pointwise weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in);
    let mut out_shape = shape.clone();
    out_shape[1] = k_out;

    // A segment: `(batch index, first output channel, channel count)`.
    type Seg = (usize, usize, usize);
    let mut y = vec![C32::ZERO; batch * k_out * spatial];
    // Segments of channel rows, never crossing a batch: each owns a
    // contiguous, disjoint slice of the output. Prefer PW_KO_BLOCK-wide
    // segments (x-tile reuse), but shrink them when the host has more
    // workers than segments so the fan-out actually engages.
    let par_workers = tfno_gpu_sim::configured_workers();
    let seg_ko = if batch * k_out.div_ceil(PW_KO_BLOCK) >= par_workers {
        PW_KO_BLOCK
    } else {
        (batch * k_out).div_ceil(par_workers).clamp(1, PW_KO_BLOCK)
    };
    let mut segs: Vec<Seg> = Vec::new();
    for b in 0..batch {
        let mut ko = 0;
        while ko < k_out {
            let nko = seg_ko.min(k_out - ko);
            segs.push((b, ko, nko));
            ko += nko;
        }
    }
    let mut tasks: Vec<(Seg, &mut [C32])> = Vec::with_capacity(segs.len());
    let mut rest = y.as_mut_slice();
    for &seg in &segs {
        let (head, tail) = rest.split_at_mut(seg.2 * spatial);
        tasks.push((seg, head));
        rest = tail;
    }

    let (xd, wd) = (x.data(), w.data());
    // Fan out only as many workers as the arithmetic keeps busy: each
    // spawned thread must amortize its creation against PW_PAR_TASK_WORK
    // MACs of useful work (total work below that floor runs serial).
    let total_macs = batch * k_out * spatial * k_in;
    let workers = par_workers
        .min(tasks.len())
        .min(total_macs / PW_PAR_TASK_WORK)
        .max(1);
    if workers <= 1 {
        for (seg, out) in tasks.iter_mut() {
            pointwise_seg(xd, wd, k_in, k_out, spatial, *seg, out);
        }
    } else {
        let per = tasks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk in tasks.chunks_mut(per) {
                scope.spawn(move || {
                    for (seg, out) in chunk.iter_mut() {
                        pointwise_seg(xd, wd, k_in, k_out, spatial, *seg, out);
                    }
                });
            }
        });
    }
    CTensor::from_vec(y, &out_shape)
}

/// `gelu(a + b)` elementwise, fanned out across host threads for large
/// tensors (deterministic: each element is computed exactly once, in
/// isolation).
pub fn add_gelu(a: &CTensor, b: &CTensor) -> CTensor {
    assert_eq!(a.shape(), b.shape());
    let len = a.data().len();
    let mut out = vec![C32::ZERO; len];
    let workers = tfno_gpu_sim::configured_workers().min(len / EW_MIN_CHUNK).max(1);
    if workers <= 1 {
        for (o, (x, y)) in out.iter_mut().zip(a.data().iter().zip(b.data())) {
            *o = gelu_c(*x + *y);
        }
    } else {
        let per = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for ((oc, ac), bc) in out
                .chunks_mut(per)
                .zip(a.data().chunks(per))
                .zip(b.data().chunks(per))
            {
                scope.spawn(move || {
                    for (o, (x, y)) in oc.iter_mut().zip(ac.iter().zip(bc)) {
                        *o = gelu_c(*x + *y);
                    }
                });
            }
        });
    }
    CTensor::from_vec(out, a.shape())
}

/// A square random bypass/lift/proj weight with real entries, scale `1/i`.
fn random_real_weight<R: Rng>(rng: &mut R, i: usize, o: usize) -> CTensor {
    let scale = 1.0 / i as f32;
    CTensor::from_vec(
        (0..i * o)
            .map(|_| C32::new(rng.gen_range(-scale..scale), 0.0))
            .collect(),
        &[i, o],
    )
}

/// One rank-generic Fourier layer: `gelu(spectral(x) + pointwise(x))`.
/// The single implementation behind [`FnoLayer1d`]/[`FnoLayer2d`].
#[derive(Clone, Debug)]
pub struct FnoLayerNd {
    pub spectral: SpectralConvNd,
    pub bypass: CTensor, // [k, k]
}

impl FnoLayerNd {
    pub fn random<R: Rng>(rng: &mut R, width: usize, dims: &[usize], modes: &[usize]) -> Self {
        let bypass = random_real_weight(rng, width, width);
        FnoLayerNd {
            spectral: SpectralConvNd::random(rng, width, width, dims, modes),
            bypass,
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let s = self.spectral.forward_host(x);
        let p = pointwise(x, &self.bypass);
        add_gelu(&s, &p)
    }

    /// Overlapped device forward (see the [module docs](self)): the
    /// spectral launches execute on the dispatch thread while this thread
    /// runs the pointwise bypass. Bitwise-equal to
    /// [`FnoLayerNd::forward_device_sync`].
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let pending = self.spectral.submit_device(sess, variant, opts, x);
        let p = pointwise(x, &self.bypass);
        let (s, run) = pending.finish(sess);
        (add_gelu(&s, &p), run)
    }

    /// Typed twin of [`FnoLayerNd::forward_device`] — the same overlapped
    /// schedule, with dispatched failures surfacing as [`TfnoError`]
    /// (operand leases released by
    /// [`PendingSpectral::try_finish`](crate::PendingSpectral::try_finish)).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        let pending = self.spectral.submit_device(sess, variant, opts, x);
        let p = pointwise(x, &self.bypass);
        let (s, run) = pending.try_finish(sess)?;
        Ok((add_gelu(&s, &p), run))
    }

    /// The strictly sequential schedule: spectral conv to completion, then
    /// the pointwise bypass. Retained as the equality reference and the
    /// baseline of the `pipeline-overlap` throughput scenario.
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let (s, run) = self.spectral.forward_device(sess, variant, opts, x);
        let p = pointwise(x, &self.bypass);
        (add_gelu(&s, &p), run)
    }
}

/// A full rank-generic FNO: `in_ch -> width -> (layers x Fourier) ->
/// out_ch` over any supported spatial rank. The single implementation
/// behind [`Fno1d`]/[`Fno2d`]; a 3D model is `FnoNd::random(.., &[nx, ny,
/// nz], &[nfx, nfy, nfz])`.
#[derive(Clone, Debug)]
pub struct FnoNd {
    pub lift: CTensor, // [in_ch, width]
    pub layers: Vec<FnoLayerNd>,
    pub proj: CTensor, // [width, out_ch]
}

impl FnoNd {
    /// Random model: `in_ch -> width -> (layers x Fourier) -> out_ch`.
    pub fn random<R: Rng>(
        rng: &mut R,
        in_ch: usize,
        width: usize,
        out_ch: usize,
        layers: usize,
        dims: &[usize],
        modes: &[usize],
    ) -> Self {
        FnoNd {
            lift: random_real_weight(rng, in_ch, width),
            layers: (0..layers)
                .map(|_| FnoLayerNd::random(rng, width, dims, modes))
                .collect(),
            proj: random_real_weight(rng, width, out_ch),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let mut h = pointwise(x, &self.lift);
        for layer in &self.layers {
            h = layer.forward_host(&h);
        }
        pointwise(&h, &self.proj)
    }

    /// Device forward; returns the output and the concatenated spectral
    /// timing records of all layers. Each layer runs the overlapped
    /// schedule ([`FnoLayerNd::forward_device`]); the output is
    /// bitwise-equal to [`FnoNd::forward_device_sync`].
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let mut h = pointwise(x, &self.lift);
        let mut total = PipelineRun::default();
        for layer in &self.layers {
            let (next, run) = layer.forward_device(sess, variant, opts, &h);
            h = next;
            for l in run.launches {
                total.push(l);
            }
        }
        (pointwise(&h, &self.proj), total)
    }

    /// Typed twin of [`FnoNd::forward_device`]: the layer sweep stops at
    /// the first unrecoverable failure and reports it; the session stays
    /// usable (no leases held, no in-flight work).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        let mut h = pointwise(x, &self.lift);
        let mut total = PipelineRun::default();
        for layer in &self.layers {
            let (next, run) = layer.try_forward_device(sess, variant, opts, &h)?;
            h = next;
            for l in run.launches {
                total.push(l);
            }
        }
        Ok((pointwise(&h, &self.proj), total))
    }

    /// Device forward on the strictly sequential per-layer schedule (the
    /// pre-async execution contract; equality reference for
    /// [`FnoNd::forward_device`]).
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let mut h = pointwise(x, &self.lift);
        let mut total = PipelineRun::default();
        for layer in &self.layers {
            let (next, run) = layer.forward_device_sync(sess, variant, opts, &h);
            h = next;
            for l in run.launches {
                total.push(l);
            }
        }
        (pointwise(&h, &self.proj), total)
    }

    /// Forward a queue of independent inputs in lockstep (see the
    /// [module docs](self)): per layer, all K spectral convs are submitted
    /// as one [`Session::submit_many`] stack (one gather, one batched
    /// pipeline, one scatter) while the host runs the K pointwise
    /// bypasses. Returns `(output, timing)` per input, in order; each
    /// output is bitwise-equal to a solo [`FnoNd::forward_device`] on the
    /// same input. A coalesced layer's launches are reported on the
    /// queue's first entry, matching the [`Session::run_many`] convention.
    pub fn forward_device_batch(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        xs: &[CTensor],
    ) -> Vec<(CTensor, PipelineRun)> {
        if xs.is_empty() {
            return Vec::new();
        }
        let mut hs: Vec<CTensor> = xs.iter().map(|x| pointwise(x, &self.lift)).collect();
        let mut totals: Vec<PipelineRun> = xs.iter().map(|_| PipelineRun::default()).collect();
        for layer in &self.layers {
            let sc = &layer.spectral;
            let wb = sess.acquire(sc.k_in * sc.k_out);
            sess.upload(wb, sc.weight.data());
            let mut reqs = Vec::with_capacity(hs.len());
            for h in &hs {
                let spec = LayerSpec::from_shape(sc.shape(h.shape()[0]))
                    .variant(variant)
                    .options(*opts);
                let xb = sess.acquire(spec.input_len());
                sess.upload(xb, h.data());
                let yb = sess.acquire(spec.output_len());
                reqs.push(Request { spec, x: xb, w: wb, y: yb });
            }
            let handle = sess.submit_many(&reqs);
            // Host half of the layer, overlapped with the stacked dispatch.
            let ps: Vec<CTensor> = hs.iter().map(|h| pointwise(h, &layer.bypass)).collect();
            let runs = sess.wait_many(handle);
            for (j, (req, run)) in reqs.iter().zip(runs).enumerate() {
                let mut out_shape = vec![hs[j].shape()[0], sc.k_out];
                out_shape.extend_from_slice(&sc.dims);
                let s = CTensor::from_vec(sess.download(req.y), &out_shape);
                hs[j] = add_gelu(&s, &ps[j]);
                totals[j].launches.extend(run.launches);
                sess.release(req.x);
                sess.release(req.y);
            }
            sess.release(wb);
        }
        hs.into_iter()
            .zip(totals)
            .map(|(h, total)| (pointwise(&h, &self.proj), total))
            .collect()
    }
}

/// One 1D Fourier layer: `gelu(spectral(x) + pointwise(x))`.
/// Thin shape-named wrapper over [`FnoLayerNd`].
#[derive(Clone, Debug)]
pub struct FnoLayer1d {
    pub spectral: SpectralConv1d,
    pub bypass: CTensor, // [k, k]
}

impl FnoLayer1d {
    pub fn random<R: Rng>(rng: &mut R, width: usize, n: usize, nf: usize) -> Self {
        let nd = FnoLayerNd::random(rng, width, &[n], &[nf]);
        FnoLayer1d {
            spectral: SpectralConv1d::new(width, width, n, nf, nd.spectral.weight),
            bypass: nd.bypass,
        }
    }

    /// The rank-generic layer this wrapper delegates to.
    pub fn nd(&self) -> FnoLayerNd {
        FnoLayerNd {
            spectral: self.spectral.nd(),
            bypass: self.bypass.clone(),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Overlapped device forward (see [`FnoLayerNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin (see [`FnoLayerNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// The strictly sequential schedule (see
    /// [`FnoLayerNd::forward_device_sync`]).
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device_sync(sess, variant, opts, x)
    }
}

/// A full 1D FNO. Thin shape-named wrapper over [`FnoNd`].
#[derive(Clone, Debug)]
pub struct Fno1d {
    pub lift: CTensor,  // [in_ch, width]
    pub layers: Vec<FnoLayer1d>,
    pub proj: CTensor,  // [width, out_ch]
}

impl Fno1d {
    /// Random model: `in_ch -> width -> (layers x Fourier) -> out_ch`.
    pub fn random<R: Rng>(
        rng: &mut R,
        in_ch: usize,
        width: usize,
        out_ch: usize,
        layers: usize,
        n: usize,
        nf: usize,
    ) -> Self {
        let nd = FnoNd::random(rng, in_ch, width, out_ch, layers, &[n], &[nf]);
        Fno1d {
            lift: nd.lift,
            layers: nd
                .layers
                .into_iter()
                .map(|l| FnoLayer1d {
                    spectral: SpectralConv1d::new(width, width, n, nf, l.spectral.weight),
                    bypass: l.bypass,
                })
                .collect(),
            proj: nd.proj,
        }
    }

    /// The rank-generic model this wrapper delegates to.
    pub fn nd(&self) -> FnoNd {
        FnoNd {
            lift: self.lift.clone(),
            layers: self.layers.iter().map(|l| l.nd()).collect(),
            proj: self.proj.clone(),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Overlapped device forward (see [`FnoNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin (see [`FnoNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// Sequential per-layer schedule (see [`FnoNd::forward_device_sync`]).
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device_sync(sess, variant, opts, x)
    }

    /// Lockstep queue forward (see [`FnoNd::forward_device_batch`]).
    pub fn forward_device_batch(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        xs: &[CTensor],
    ) -> Vec<(CTensor, PipelineRun)> {
        self.nd().forward_device_batch(sess, variant, opts, xs)
    }
}

/// One 2D Fourier layer. Thin shape-named wrapper over [`FnoLayerNd`].
#[derive(Clone, Debug)]
pub struct FnoLayer2d {
    pub spectral: SpectralConv2d,
    pub bypass: CTensor,
}

impl FnoLayer2d {
    pub fn random<R: Rng>(
        rng: &mut R,
        width: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let nd = FnoLayerNd::random(rng, width, &[nx, ny], &[nfx, nfy]);
        FnoLayer2d {
            spectral: SpectralConv2d::new(width, width, nx, ny, nfx, nfy, nd.spectral.weight),
            bypass: nd.bypass,
        }
    }

    /// The rank-generic layer this wrapper delegates to.
    pub fn nd(&self) -> FnoLayerNd {
        FnoLayerNd {
            spectral: self.spectral.nd(),
            bypass: self.bypass.clone(),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Overlapped device forward (see [`FnoLayerNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin (see [`FnoLayerNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// The strictly sequential schedule (see
    /// [`FnoLayerNd::forward_device_sync`]).
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device_sync(sess, variant, opts, x)
    }
}

/// A full 2D FNO. Thin shape-named wrapper over [`FnoNd`].
#[derive(Clone, Debug)]
pub struct Fno2d {
    pub lift: CTensor,
    pub layers: Vec<FnoLayer2d>,
    pub proj: CTensor,
}

impl Fno2d {
    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        in_ch: usize,
        width: usize,
        out_ch: usize,
        layers: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let nd = FnoNd::random(rng, in_ch, width, out_ch, layers, &[nx, ny], &[nfx, nfy]);
        Fno2d {
            lift: nd.lift,
            layers: nd
                .layers
                .into_iter()
                .map(|l| FnoLayer2d {
                    spectral: SpectralConv2d::new(
                        width,
                        width,
                        nx,
                        ny,
                        nfx,
                        nfy,
                        l.spectral.weight,
                    ),
                    bypass: l.bypass,
                })
                .collect(),
            proj: nd.proj,
        }
    }

    /// The rank-generic model this wrapper delegates to.
    pub fn nd(&self) -> FnoNd {
        FnoNd {
            lift: self.lift.clone(),
            layers: self.layers.iter().map(|l| l.nd()).collect(),
            proj: self.proj.clone(),
        }
    }

    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Overlapped device forward (see [`FnoNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin (see [`FnoNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// Sequential per-layer schedule (see [`FnoNd::forward_device_sync`]).
    pub fn forward_device_sync(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device_sync(sess, variant, opts, x)
    }

    /// Lockstep queue forward (see [`FnoNd::forward_device_batch`]).
    pub fn forward_device_batch(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        xs: &[CTensor],
    ) -> Vec<(CTensor, PipelineRun)> {
        self.nd().forward_device_batch(sess, variant, opts, xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfno_num::error::rel_l2_error;

    #[test]
    fn gelu_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    /// The blocked kernel must be bitwise-identical to the scalar
    /// reference: both accumulate over `k_in` in ascending order, so no
    /// tolerance is needed — any difference is a real indexing bug.
    #[test]
    fn pointwise_blocked_matches_naive_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        // shapes chosen to exercise k_out % PW_KO_BLOCK != 0, spatial that
        // is not a multiple of the tile, rank-3 and rank-4 inputs
        let cases: Vec<(Vec<usize>, usize)> = vec![
            (vec![2, 3, 77], 5),
            (vec![1, 8, 513], 9),
            (vec![3, 5, 7, 11], 13),
            (vec![1, 1, 1], 1),
            (vec![2, 16, 32, 32], 16),
        ];
        for (shape, k_out) in cases {
            let x = CTensor::random(&mut rng, &shape);
            let w = CTensor::random(&mut rng, &[shape[1], k_out]);
            let fast = pointwise(&x, &w);
            let naive = pointwise_naive(&x, &w);
            assert_eq!(fast.shape(), naive.shape());
            assert_eq!(fast.data(), naive.data(), "shape {shape:?} k_out {k_out}");
        }
    }

    #[test]
    fn add_gelu_matches_scalar_map() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = CTensor::random(&mut rng, &[3, 4, 100]);
        let b = CTensor::random(&mut rng, &[3, 4, 100]);
        let got = add_gelu(&a, &b);
        for ((g, x), y) in got.data().iter().zip(a.data()).zip(b.data()) {
            assert_eq!(*g, gelu_c(*x + *y));
        }
    }

    #[test]
    fn pointwise_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = CTensor::random(&mut rng, &[2, 3, 8]);
        let mut w = CTensor::zeros(&[3, 3]);
        for i in 0..3 {
            w.set(&[i, i], C32::ONE);
        }
        let y = pointwise(&x, &w);
        assert!(x.max_abs_diff(&y) < 1e-6);
    }

    #[test]
    fn fno1d_device_matches_host() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = Fno1d::random(&mut rng, 2, 8, 1, 2, 64, 16);
        let x = CTensor::random(&mut rng, &[1, 2, 64]);
        let want = model.forward_host(&x);
        let mut sess = Session::a100();
        let (got, run) = model.forward_device(
            &mut sess,
            Variant::FftOpt,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-3, "err {err}");
        assert_eq!(run.kernel_count(), 2 * 3); // 2 layers x 3 kernels (variant A)
    }

    #[test]
    fn fno1d_variants_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Fno1d::random(&mut rng, 1, 8, 1, 1, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 1, 128]);
        let mut outputs = Vec::new();
        for v in [Variant::Pytorch, Variant::FullyFused] {
            let mut sess = Session::a100();
            let (got, _) = model.forward_device(&mut sess, v, &TurboOptions::default(), &x);
            outputs.push(got);
        }
        let err = rel_l2_error(outputs[0].data(), outputs[1].data());
        assert!(err < 1e-4, "variants diverge: {err}");
    }

    /// The overlapped schedule must be *bitwise* equal to the sequential
    /// one — same kernels, same host arithmetic, different interleaving.
    #[test]
    fn overlapped_forward_is_bitwise_equal_to_sync() {
        let mut rng = StdRng::seed_from_u64(23);
        let model1 = Fno1d::random(&mut rng, 2, 8, 1, 2, 128, 32);
        let x1 = CTensor::random(&mut rng, &[2, 2, 128]);
        let model2 = Fno2d::random(&mut rng, 1, 8, 1, 2, 32, 64, 8, 32);
        let x2 = CTensor::random(&mut rng, &[1, 1, 32, 64]);
        let mut sess = Session::a100();
        let opts = TurboOptions::default();

        let (sync1, run_s1) = model1.forward_device_sync(&mut sess, Variant::TurboBest, &opts, &x1);
        let (over1, run_o1) = model1.forward_device(&mut sess, Variant::TurboBest, &opts, &x1);
        assert_eq!(over1.data(), sync1.data(), "1D overlapped forward diverged");
        assert_eq!(run_o1.kernel_count(), run_s1.kernel_count());

        let (sync2, _) = model2.forward_device_sync(&mut sess, Variant::FullyFused, &opts, &x2);
        let (over2, _) = model2.forward_device(&mut sess, Variant::FullyFused, &opts, &x2);
        assert_eq!(over2.data(), sync2.data(), "2D overlapped forward diverged");
    }

    /// The lockstep batch path must reproduce the solo forwards bitwise
    /// and leave no leases behind.
    #[test]
    fn batch_forward_is_bitwise_equal_to_solo_forwards() {
        let mut rng = StdRng::seed_from_u64(24);
        let model = Fno1d::random(&mut rng, 1, 8, 1, 2, 128, 32);
        let xs: Vec<CTensor> = (0..3).map(|_| CTensor::random(&mut rng, &[1, 1, 128])).collect();
        let mut sess = Session::a100();
        let opts = TurboOptions::default();
        let solo: Vec<CTensor> = xs
            .iter()
            .map(|x| model.forward_device_sync(&mut sess, Variant::TurboBest, &opts, x).0)
            .collect();
        let batch = model.forward_device_batch(&mut sess, Variant::TurboBest, &opts, &xs);
        assert_eq!(batch.len(), xs.len());
        for (j, ((got, run), want)) in batch.iter().zip(&solo).enumerate() {
            assert_eq!(got.data(), want.data(), "batched forward {j} diverged");
            // Coalesced layers report launches on the first entry.
            if j == 0 {
                assert!(run.kernel_count() > 0);
            }
        }
        assert_eq!(sess.pool_stats().leased, 0, "batch forward leaked leases");
    }

    #[test]
    fn fno2d_device_matches_host() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = Fno2d::random(&mut rng, 1, 8, 1, 1, 32, 32, 8, 32);
        let x = CTensor::random(&mut rng, &[1, 1, 32, 32]);
        let want = model.forward_host(&x);
        let mut sess = Session::a100();
        let (got, _) = model.forward_device(
            &mut sess,
            Variant::FullyFused,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-3, "err {err}");
    }

    /// A 3D model runs end-to-end through the generic layer and agrees
    /// with its own host path.
    #[test]
    fn fno3d_device_matches_host() {
        let mut rng = StdRng::seed_from_u64(14);
        let model = FnoNd::random(&mut rng, 1, 6, 1, 1, &[8, 8, 16], &[2, 4, 8]);
        let x = CTensor::random(&mut rng, &[1, 1, 8, 8, 16]);
        let want = model.forward_host(&x);
        let mut sess = Session::a100();
        let (got, run) = model.forward_device(
            &mut sess,
            Variant::FftOpt,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-3, "err {err}");
        assert_eq!(run.kernel_count(), 7); // rank-3 FftOpt: 7 kernels
    }
}
