//! # tfno-model
//!
//! Fourier Neural Operator models built on the TurboFNO kernels:
//!
//! * [`spectral`] — the spectral convolution layers (the paper's Fourier
//!   layer, shared complex weight across retained modes) with a fast host
//!   path and a simulated-device path running any pipeline
//!   [`Variant`](turbofno::Variant);
//! * [`permode`] — the classic per-mode-weight FNO spectral layer as an
//!   extension (executed as a mode-batched CGEMM);
//! * [`model`] — complete FNO architectures (lifting → Fourier layers with
//!   pointwise bypass + GELU → projection), rank-generic ([`FnoNd`]) with
//!   1D/2D shape-named wrappers;
//! * [`pde`] — synthetic PDE workload generators (heat-equation exact
//!   spectral operator, Burgers-style initial conditions, Gaussian random
//!   fields for Darcy/Navier–Stokes-like inputs).
//!


// Spectral loops index by frequency (`spectrum[f]`, `modes[f]`) — the
// index is the physical mode number, so range loops read better than
// enumerate/skip/take chains.
#![allow(clippy::needless_range_loop)]

pub mod model;
pub mod permode;
pub mod pde;
pub mod spectral;

pub use model::{
    add_gelu, gelu, pointwise, pointwise_naive, Fno1d, Fno2d, FnoLayer1d, FnoLayer2d, FnoLayerNd,
    FnoNd,
};
pub use permode::PerModeSpectralConv1d;
pub use spectral::{
    PendingSpectral, SpectralConv1d, SpectralConv2d, SpectralConv3d, SpectralConvNd,
};
