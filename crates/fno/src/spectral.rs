//! Spectral convolution layers (the paper's Fourier layer).
//!
//! The weight is a single complex `[k_in, k_out]` matrix shared across
//! retained modes — the formulation that turns the spectral multiply into
//! one CGEMM (see DESIGN.md §1, "Semantics note"). The rank-generic
//! [`SpectralConvNd`] is the one implementation; [`SpectralConv1d`] and
//! [`SpectralConv2d`] are thin shape-named wrappers over it. Two
//! execution paths:
//!
//! * `forward_host` — O(N log N) host Stockham FFTs applied separably per
//!   axis, used for training-free validation and as the reference for the
//!   device path;
//! * `forward_device` — any pipeline [`Variant`] through a
//!   [`Session`], returning both the output and the modeled timing record;
//! * `submit_device` — the asynchronous split of `forward_device`: launches
//!   issue on the session's dispatch thread and a [`PendingSpectral`]
//!   ticket is returned so the host can overlap independent work before
//!   [`PendingSpectral::finish`]ing (bitwise-equal to the synchronous path).

use rand::Rng;
use tfno_culib::{FnoProblem1d, FnoProblem2d, PipelineRun, SpectralShape};
use tfno_fft::host;
use tfno_gpu_sim::BufferId;
use tfno_num::{C32, CTensor};
use turbofno::{Backend, LaunchHandle, LayerSpec, Session, TfnoError, TurboOptions, Variant};

/// A spectral convolution in flight on the session's dispatch thread
/// (issued by [`SpectralConvNd::submit_device`] or a rank-named wrapper):
/// the device is executing the layer's launch sequence while the host is
/// free to run the layer's pointwise bypass. [`PendingSpectral::finish`]
/// joins the dispatch, downloads the result, and returns the leased
/// operand buffers to the session pool — the leases stay pinned for
/// exactly the flight's duration.
#[must_use = "an in-flight spectral conv leaks its pooled operand leases unless finished"]
pub struct PendingSpectral {
    handle: LaunchHandle,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    out_shape: Vec<usize>,
}

impl PendingSpectral {
    fn issue(
        sess: &mut Session<impl Backend>,
        spec: &LayerSpec,
        x_data: &[C32],
        w_data: &[C32],
        out_shape: Vec<usize>,
    ) -> Self {
        let x = sess.acquire(spec.input_len());
        let w = sess.acquire(spec.weight_len());
        let y = sess.acquire(spec.output_len());
        sess.upload(x, x_data);
        sess.upload(w, w_data);
        let handle = sess.submit(spec, x, w, y);
        PendingSpectral {
            handle,
            x,
            w,
            y,
            out_shape,
        }
    }

    /// Join the dispatch: output tensor + the layer's timing record,
    /// bitwise-identical to what the synchronous `forward_device` returns.
    pub fn finish(self, sess: &mut Session<impl Backend>) -> (CTensor, PipelineRun) {
        let run = sess.wait(self.handle);
        let y = CTensor::from_vec(sess.download(self.y), &self.out_shape);
        sess.release(self.x);
        sess.release(self.w);
        sess.release(self.y);
        (y, run)
    }

    /// Typed twin of [`PendingSpectral::finish`]: a dispatched failure
    /// comes back as a [`TfnoError`] with the operand leases released
    /// either way — a faulted flight leaks nothing.
    pub fn try_finish(self, sess: &mut Session<impl Backend>) -> Result<(CTensor, PipelineRun), TfnoError> {
        let out = sess.try_wait(self.handle).map(|run| {
            let y = CTensor::from_vec(sess.download(self.y), &self.out_shape);
            (y, run)
        });
        sess.release(self.x);
        sess.release(self.w);
        sess.release(self.y);
        out
    }
}

/// One forward stage of the separable host path: FFT every length-`d`
/// pencil along one axis and keep its first `m` modes. The tensor is
/// `[slabs, d, inner]` row-major; pencils stride by `inner`.
fn fwd_stage(data: &[C32], slabs: usize, d: usize, m: usize, inner: usize) -> Vec<C32> {
    let mut out = vec![C32::ZERO; slabs * m * inner];
    let mut pencil = vec![C32::ZERO; d];
    for s in 0..slabs {
        for i in 0..inner {
            for (j, p) in pencil.iter_mut().enumerate() {
                *p = data[(s * d + j) * inner + i];
            }
            let modes = host::fft_truncated(&pencil, m);
            for (j, v) in modes.iter().enumerate() {
                out[(s * m + j) * inner + i] = *v;
            }
        }
    }
    out
}

/// One inverse stage: zero-pad every length-`m` pencil back to `d` and
/// inverse-FFT it. Layout mirrors [`fwd_stage`].
fn inv_stage(data: &[C32], slabs: usize, m: usize, d: usize, inner: usize) -> Vec<C32> {
    let mut out = vec![C32::ZERO; slabs * d * inner];
    let mut pencil = vec![C32::ZERO; m];
    for s in 0..slabs {
        for i in 0..inner {
            for (j, p) in pencil.iter_mut().enumerate() {
                *p = data[(s * m + j) * inner + i];
            }
            let spatial = host::ifft_padded(&pencil, d);
            for (j, v) in spatial.iter().enumerate() {
                out[(s * d + j) * inner + i] = *v;
            }
        }
    }
    out
}

/// Rank-generic spectral convolution:
/// `[batch, k_in, ...dims] -> [batch, k_out, ...dims]` with an
/// `nf[a]`-mode corner retained per axis. The single implementation the
/// rank-named wrappers delegate to.
#[derive(Clone, Debug)]
pub struct SpectralConvNd {
    pub k_in: usize,
    pub k_out: usize,
    /// Spatial extent per transformed axis, outermost first.
    pub dims: Vec<usize>,
    /// Retained modes per axis (same order as `dims`).
    pub modes: Vec<usize>,
    /// `[k_in, k_out]` complex weight shared across modes.
    pub weight: CTensor,
}

impl SpectralConvNd {
    pub fn new(
        k_in: usize,
        k_out: usize,
        dims: Vec<usize>,
        modes: Vec<usize>,
        weight: CTensor,
    ) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out], "weight shape mismatch");
        assert_eq!(dims.len(), modes.len(), "one mode count per axis");
        assert!(!dims.is_empty(), "at least one transformed axis");
        for (d, m) in dims.iter().zip(&modes) {
            assert!(m <= d, "mode count out of range");
        }
        SpectralConvNd {
            k_in,
            k_out,
            dims,
            modes,
            weight,
        }
    }

    /// Xavier-ish random initialization (scale `1 / k_in`).
    pub fn random<R: Rng>(
        rng: &mut R,
        k_in: usize,
        k_out: usize,
        dims: &[usize],
        modes: &[usize],
    ) -> Self {
        let scale = 1.0 / k_in as f32;
        let data = (0..k_in * k_out)
            .map(|_| {
                C32::new(
                    rng.gen_range(-scale..scale),
                    rng.gen_range(-scale..scale),
                )
            })
            .collect();
        Self::new(
            k_in,
            k_out,
            dims.to_vec(),
            modes.to_vec(),
            CTensor::from_vec(data, &[k_in, k_out]),
        )
    }

    /// Number of transformed axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The execution-layer shape of a batch-`batch` forward.
    pub fn shape(&self, batch: usize) -> SpectralShape {
        let s = match *self.dims.as_slice() {
            [n] => SpectralShape::d1(batch, self.k_in, self.k_out, n),
            [nx, ny] => SpectralShape::d2(batch, self.k_in, self.k_out, nx, ny),
            [nx, ny, nz] => SpectralShape::d3(batch, self.k_in, self.k_out, nx, ny, nz),
            _ => panic!("spectral conv supports ranks 1..=3, got {}", self.rank()),
        };
        s.with_modes(&self.modes)
    }

    fn out_shape(&self, batch: usize) -> Vec<usize> {
        let mut s = vec![batch, self.k_out];
        s.extend_from_slice(&self.dims);
        s
    }

    fn batch_of(&self, x: &CTensor) -> usize {
        let r = self.rank();
        assert_eq!(
            x.shape().len(),
            r + 2,
            "expected rank-{} input [batch, modes, ...spatial]",
            r + 2
        );
        x.shape()[0]
    }

    /// Host-side forward: separable truncated Stockham FFTs (innermost
    /// axis first), the shared-weight CGEMM over the retained corner, then
    /// padded inverse FFTs (outermost axis first) — the same stage order
    /// as the device pipelines.
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let r = self.rank();
        let batch = self.batch_of(x);
        assert_eq!(x.shape()[1], self.k_in);
        assert_eq!(&x.shape()[2..], &self.dims[..]);

        // FFT + truncate per axis, innermost first.
        let mut cur = x.data().to_vec();
        for a in (0..r).rev() {
            let slabs = batch * self.k_in * self.dims[..a].iter().product::<usize>();
            let inner = self.modes[a + 1..].iter().product::<usize>();
            cur = fwd_stage(&cur, slabs, self.dims[a], self.modes[a], inner);
        }

        // Shared-weight CGEMM across the retained corner.
        let m: usize = self.modes.iter().product();
        let mut yf = vec![C32::ZERO; batch * self.k_out * m];
        for b in 0..batch {
            for f in 0..m {
                for ko in 0..self.k_out {
                    let mut acc = C32::ZERO;
                    for ki in 0..self.k_in {
                        acc = acc.mac(
                            cur[(b * self.k_in + ki) * m + f],
                            self.weight.get(&[ki, ko]),
                        );
                    }
                    yf[(b * self.k_out + ko) * m + f] = acc;
                }
            }
        }

        // Zero-pad + inverse FFT per axis, outermost first.
        let mut cur = yf;
        for a in 0..r {
            let slabs = batch * self.k_out * self.dims[..a].iter().product::<usize>();
            let inner = self.modes[a + 1..].iter().product::<usize>();
            cur = inv_stage(&cur, slabs, self.modes[a], self.dims[a], inner);
        }
        CTensor::from_vec(cur, &self.out_shape(batch))
    }

    fn spec(&self, batch: usize, variant: Variant, opts: &TurboOptions) -> LayerSpec {
        LayerSpec::from_shape(self.shape(batch))
            .variant(variant)
            .options(*opts)
    }

    /// Device forward through a pipeline variant; returns output + timings.
    /// Operand buffers are leased from the session pool, so repeated
    /// same-shape forwards allocate nothing.
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let batch = self.batch_of(x);
        let spec = self.spec(batch, variant, opts);
        let xb = sess.acquire(spec.input_len());
        let wb = sess.acquire(spec.weight_len());
        let yb = sess.acquire(spec.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let run = sess.run(&spec, xb, wb, yb);
        let y = CTensor::from_vec(sess.download(yb), &self.out_shape(batch));
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        (y, run)
    }

    /// Typed twin of [`SpectralConvNd::forward_device`]: engine failures
    /// (after the session's retry/degradation ladder) surface as
    /// [`TfnoError`] with all operand leases released.
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        let r = self.rank();
        if x.shape().len() != r + 2 {
            return Err(TfnoError::Validation(format!(
                "spectral conv expects rank-{} input [batch, modes, ...spatial]; got rank-{}",
                r + 2,
                x.shape().len()
            )));
        }
        let batch = x.shape()[0];
        let spec = self.spec(batch, variant, opts);
        let xb = sess.acquire(spec.input_len());
        let wb = sess.acquire(spec.weight_len());
        let yb = sess.acquire(spec.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let out = sess.try_run(&spec, xb, wb, yb).map(|run| {
            let y = CTensor::from_vec(sess.download(yb), &self.out_shape(batch));
            (y, run)
        });
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        out
    }

    /// Asynchronous [`SpectralConvNd::forward_device`]: uploads the
    /// operands and issues the launch sequence on the session's dispatch
    /// thread, returning immediately so the host can overlap independent
    /// work (an FNO layer runs its pointwise bypass here). Finish with
    /// [`PendingSpectral::finish`]; the result is bitwise-identical to the
    /// synchronous call.
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        let batch = self.batch_of(x);
        let spec = self.spec(batch, variant, opts);
        PendingSpectral::issue(
            sess,
            &spec,
            x.data(),
            self.weight.data(),
            self.out_shape(batch),
        )
    }
}

/// 1D spectral convolution: `[batch, k_in, n] -> [batch, k_out, n]`.
/// Thin shape-named wrapper over [`SpectralConvNd`].
#[derive(Clone, Debug)]
pub struct SpectralConv1d {
    pub k_in: usize,
    pub k_out: usize,
    pub n: usize,
    pub nf: usize,
    /// `[k_in, k_out]` complex weight shared across modes.
    pub weight: CTensor,
}

impl SpectralConv1d {
    pub fn new(k_in: usize, k_out: usize, n: usize, nf: usize, weight: CTensor) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out], "weight shape mismatch");
        assert!(nf <= n);
        SpectralConv1d {
            k_in,
            k_out,
            n,
            nf,
            weight,
        }
    }

    /// Xavier-ish random initialization (scale `1 / k_in`).
    pub fn random<R: Rng>(rng: &mut R, k_in: usize, k_out: usize, n: usize, nf: usize) -> Self {
        let nd = SpectralConvNd::random(rng, k_in, k_out, &[n], &[nf]);
        Self::new(k_in, k_out, n, nf, nd.weight)
    }

    /// The rank-generic layer this wrapper delegates to.
    pub fn nd(&self) -> SpectralConvNd {
        SpectralConvNd::new(
            self.k_in,
            self.k_out,
            vec![self.n],
            vec![self.nf],
            self.weight.clone(),
        )
    }

    pub fn problem(&self, batch: usize) -> FnoProblem1d {
        FnoProblem1d::new(batch, self.k_in, self.k_out, self.n, self.nf)
    }

    /// Host-side forward (fast Stockham FFTs).
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Device forward (see [`SpectralConvNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin of [`SpectralConv1d::forward_device`] (see
    /// [`SpectralConvNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// Asynchronous forward (see [`SpectralConvNd::submit_device`]).
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        self.nd().submit_device(sess, variant, opts, x)
    }
}

/// 2D spectral convolution: `[batch, k_in, nx, ny] -> [batch, k_out, nx, ny]`.
/// Thin shape-named wrapper over [`SpectralConvNd`].
#[derive(Clone, Debug)]
pub struct SpectralConv2d {
    pub k_in: usize,
    pub k_out: usize,
    pub nx: usize,
    pub ny: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub weight: CTensor,
}

impl SpectralConv2d {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
        weight: CTensor,
    ) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out]);
        SpectralConv2d {
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
            weight,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let nd = SpectralConvNd::random(rng, k_in, k_out, &[nx, ny], &[nfx, nfy]);
        Self::new(k_in, k_out, nx, ny, nfx, nfy, nd.weight)
    }

    /// The rank-generic layer this wrapper delegates to.
    pub fn nd(&self) -> SpectralConvNd {
        SpectralConvNd::new(
            self.k_in,
            self.k_out,
            vec![self.nx, self.ny],
            vec![self.nfx, self.nfy],
            self.weight.clone(),
        )
    }

    pub fn problem(&self, batch: usize) -> FnoProblem2d {
        FnoProblem2d::new(
            batch, self.k_in, self.k_out, self.nx, self.ny, self.nfx, self.nfy,
        )
    }

    /// Host-side forward via separable Stockham FFTs.
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Device forward (see [`SpectralConvNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin of [`SpectralConv2d::forward_device`] (see
    /// [`SpectralConvNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// Asynchronous forward (see [`SpectralConvNd::submit_device`]).
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        self.nd().submit_device(sess, variant, opts, x)
    }
}

/// 3D spectral convolution:
/// `[batch, k_in, nx, ny, nz] -> [batch, k_out, nx, ny, nz]`.
/// Thin shape-named wrapper over [`SpectralConvNd`].
#[derive(Clone, Debug)]
pub struct SpectralConv3d {
    pub k_in: usize,
    pub k_out: usize,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub nfz: usize,
    pub weight: CTensor,
}

impl SpectralConv3d {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nz: usize,
        nfx: usize,
        nfy: usize,
        nfz: usize,
        weight: CTensor,
    ) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out]);
        SpectralConv3d {
            k_in,
            k_out,
            nx,
            ny,
            nz,
            nfx,
            nfy,
            nfz,
            weight,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nz: usize,
        nfx: usize,
        nfy: usize,
        nfz: usize,
    ) -> Self {
        let nd = SpectralConvNd::random(rng, k_in, k_out, &[nx, ny, nz], &[nfx, nfy, nfz]);
        Self::new(k_in, k_out, nx, ny, nz, nfx, nfy, nfz, nd.weight)
    }

    /// The rank-generic layer this wrapper delegates to.
    pub fn nd(&self) -> SpectralConvNd {
        SpectralConvNd::new(
            self.k_in,
            self.k_out,
            vec![self.nx, self.ny, self.nz],
            vec![self.nfx, self.nfy, self.nfz],
            self.weight.clone(),
        )
    }

    /// Host-side forward via separable Stockham FFTs.
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        self.nd().forward_host(x)
    }

    /// Device forward (see [`SpectralConvNd::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        self.nd().forward_device(sess, variant, opts, x)
    }

    /// Typed twin of [`SpectralConv3d::forward_device`] (see
    /// [`SpectralConvNd::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        self.nd().try_forward_device(sess, variant, opts, x)
    }

    /// Asynchronous forward (see [`SpectralConvNd::submit_device`]).
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        self.nd().submit_device(sess, variant, opts, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfno_num::error::rel_l2_error;
    use tfno_num::reference;

    #[test]
    fn host_forward_matches_reference_1d() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = SpectralConv1d::random(&mut rng, 4, 6, 64, 16);
        let x = CTensor::random(&mut rng, &[2, 4, 64]);
        let got = layer.forward_host(&x);
        let want = reference::fno_layer_1d(&x, &layer.weight, 16);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn device_forward_matches_host_1d() {
        let mut rng = StdRng::seed_from_u64(6);
        let layer = SpectralConv1d::random(&mut rng, 8, 8, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 8, 128]);
        let want = layer.forward_host(&x);
        let mut sess = Session::a100();
        for variant in [Variant::Pytorch, Variant::FullyFused] {
            let (got, run) = layer.forward_device(&mut sess, variant, &TurboOptions::default(), &x);
            let err = rel_l2_error(got.data(), want.data());
            assert!(err < 1e-4, "{variant:?} err {err}");
            assert!(run.total_us() > 0.0);
        }
        // pooled operands: the second variant's forward recycles the first's
        assert!(sess.pool_stats().hits >= 3);
    }

    /// The async split must be bitwise-equal to the synchronous forward —
    /// the dispatch runs the identical engine code on another thread.
    #[test]
    fn submit_device_matches_forward_device_bitwise() {
        let mut rng = StdRng::seed_from_u64(61);
        let layer = SpectralConv1d::random(&mut rng, 8, 8, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 8, 128]);
        let mut sess = Session::a100();
        let (want, run_sync) =
            layer.forward_device(&mut sess, Variant::FftOpt, &TurboOptions::default(), &x);
        let pending = layer.submit_device(&mut sess, Variant::FftOpt, &TurboOptions::default(), &x);
        let (got, run_async) = pending.finish(&mut sess);
        assert_eq!(got.data(), want.data(), "async forward diverged bitwise");
        assert_eq!(run_async.kernel_count(), run_sync.kernel_count());
        assert_eq!(
            sess.pool_stats().leased,
            0,
            "finish must return every operand lease"
        );
    }

    #[test]
    fn host_forward_matches_reference_2d() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = SpectralConv2d::random(&mut rng, 3, 5, 16, 16, 4, 4);
        let x = CTensor::random(&mut rng, &[2, 3, 16, 16]);
        let got = layer.forward_host(&x);
        let want = reference::fno_layer_2d(&x, &layer.weight, 4, 4);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn device_forward_matches_host_2d() {
        let mut rng = StdRng::seed_from_u64(8);
        let layer = SpectralConv2d::random(&mut rng, 8, 8, 32, 64, 8, 32);
        let x = CTensor::random(&mut rng, &[1, 8, 32, 64]);
        let want = layer.forward_host(&x);
        let mut sess = Session::a100();
        let (got, _) = layer.forward_device(
            &mut sess,
            Variant::FullyFused,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn host_forward_matches_reference_3d() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer = SpectralConv3d::random(&mut rng, 3, 4, 8, 8, 16, 2, 4, 8);
        let x = CTensor::random(&mut rng, &[2, 3, 8, 8, 16]);
        let got = layer.forward_host(&x);
        let want = reference::fno_layer_3d(&x, &layer.weight, 2, 4, 8);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn device_forward_matches_host_3d() {
        let mut rng = StdRng::seed_from_u64(10);
        let layer = SpectralConv3d::random(&mut rng, 6, 4, 8, 16, 32, 4, 8, 16);
        let x = CTensor::random(&mut rng, &[1, 6, 8, 16, 32]);
        let want = layer.forward_host(&x);
        let mut sess = Session::a100();
        for variant in [Variant::Pytorch, Variant::FftOpt] {
            let (got, _) =
                layer.forward_device(&mut sess, variant, &TurboOptions::default(), &x);
            let err = rel_l2_error(got.data(), want.data());
            assert!(err < 1e-4, "{variant:?} err {err}");
        }
    }

    /// The separable Nd host path must agree with the rank-named wrappers'
    /// historical outputs exactly: the wrapper and the generic layer run
    /// the same code, so this pins the delegation plumbing.
    #[test]
    fn nd_wrapper_is_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = SpectralConv2d::random(&mut rng, 4, 4, 16, 32, 4, 8);
        let x = CTensor::random(&mut rng, &[2, 4, 16, 32]);
        let via_wrapper = layer.forward_host(&x);
        let via_nd = layer.nd().forward_host(&x);
        assert_eq!(via_wrapper.data(), via_nd.data());
    }
}
