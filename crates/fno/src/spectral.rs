//! Spectral convolution layers (the paper's Fourier layer).
//!
//! The weight is a single complex `[k_in, k_out]` matrix shared across
//! retained modes — the formulation that turns the spectral multiply into
//! one CGEMM (see DESIGN.md §1, "Semantics note"). Two execution paths:
//!
//! * `forward_host` — O(N log N) host Stockham FFTs, used for training-free
//!   validation and as the reference for the device path;
//! * `forward_device` — any pipeline [`Variant`] through a
//!   [`Session`], returning both the output and the modeled timing record;
//! * `submit_device` — the asynchronous split of `forward_device`: launches
//!   issue on the session's dispatch thread and a [`PendingSpectral`]
//!   ticket is returned so the host can overlap independent work before
//!   [`PendingSpectral::finish`]ing (bitwise-equal to the synchronous path).

use rand::Rng;
use tfno_culib::{FnoProblem1d, FnoProblem2d, PipelineRun};
use tfno_fft::host;
use tfno_gpu_sim::BufferId;
use tfno_num::{C32, CTensor};
use turbofno::{Backend, LaunchHandle, LayerSpec, Session, TfnoError, TurboOptions, Variant};

/// A spectral convolution in flight on the session's dispatch thread
/// (issued by [`SpectralConv1d::submit_device`] /
/// [`SpectralConv2d::submit_device`]): the device is executing the layer's
/// launch sequence while the host is free to run the layer's pointwise
/// bypass. [`PendingSpectral::finish`] joins the dispatch, downloads the
/// result, and returns the leased operand buffers to the session pool —
/// the leases stay pinned for exactly the flight's duration.
#[must_use = "an in-flight spectral conv leaks its pooled operand leases unless finished"]
pub struct PendingSpectral {
    handle: LaunchHandle,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    out_shape: Vec<usize>,
}

impl PendingSpectral {
    fn issue(
        sess: &mut Session<impl Backend>,
        spec: &LayerSpec,
        x_data: &[C32],
        w_data: &[C32],
        out_shape: Vec<usize>,
    ) -> Self {
        let x = sess.acquire(spec.input_len());
        let w = sess.acquire(spec.weight_len());
        let y = sess.acquire(spec.output_len());
        sess.upload(x, x_data);
        sess.upload(w, w_data);
        let handle = sess.submit(spec, x, w, y);
        PendingSpectral {
            handle,
            x,
            w,
            y,
            out_shape,
        }
    }

    /// Join the dispatch: output tensor + the layer's timing record,
    /// bitwise-identical to what the synchronous `forward_device` returns.
    pub fn finish(self, sess: &mut Session<impl Backend>) -> (CTensor, PipelineRun) {
        let run = sess.wait(self.handle);
        let y = CTensor::from_vec(sess.download(self.y), &self.out_shape);
        sess.release(self.x);
        sess.release(self.w);
        sess.release(self.y);
        (y, run)
    }

    /// Typed twin of [`PendingSpectral::finish`]: a dispatched failure
    /// comes back as a [`TfnoError`] with the operand leases released
    /// either way — a faulted flight leaks nothing.
    pub fn try_finish(self, sess: &mut Session<impl Backend>) -> Result<(CTensor, PipelineRun), TfnoError> {
        let out = sess.try_wait(self.handle).map(|run| {
            let y = CTensor::from_vec(sess.download(self.y), &self.out_shape);
            (y, run)
        });
        sess.release(self.x);
        sess.release(self.w);
        sess.release(self.y);
        out
    }
}

/// 1D spectral convolution: `[batch, k_in, n] -> [batch, k_out, n]`.
#[derive(Clone, Debug)]
pub struct SpectralConv1d {
    pub k_in: usize,
    pub k_out: usize,
    pub n: usize,
    pub nf: usize,
    /// `[k_in, k_out]` complex weight shared across modes.
    pub weight: CTensor,
}

impl SpectralConv1d {
    pub fn new(k_in: usize, k_out: usize, n: usize, nf: usize, weight: CTensor) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out], "weight shape mismatch");
        assert!(nf <= n);
        SpectralConv1d {
            k_in,
            k_out,
            n,
            nf,
            weight,
        }
    }

    /// Xavier-ish random initialization (scale `1 / k_in`).
    pub fn random<R: Rng>(rng: &mut R, k_in: usize, k_out: usize, n: usize, nf: usize) -> Self {
        let scale = 1.0 / k_in as f32;
        let data = (0..k_in * k_out)
            .map(|_| {
                C32::new(
                    rng.gen_range(-scale..scale),
                    rng.gen_range(-scale..scale),
                )
            })
            .collect();
        Self::new(k_in, k_out, n, nf, CTensor::from_vec(data, &[k_in, k_out]))
    }

    pub fn problem(&self, batch: usize) -> FnoProblem1d {
        FnoProblem1d::new(batch, self.k_in, self.k_out, self.n, self.nf)
    }

    /// Host-side forward (fast Stockham FFTs).
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let (batch, k_in, n) = match *x.shape() {
            [b, k, n] => (b, k, n),
            _ => panic!("expected rank-3 input"),
        };
        assert_eq!(k_in, self.k_in);
        assert_eq!(n, self.n);
        let nf = self.nf;

        // FFT + truncate every pencil.
        let mut xf = vec![C32::ZERO; batch * k_in * nf];
        for b in 0..batch {
            for k in 0..k_in {
                let base = (b * k_in + k) * n;
                let modes = host::fft_truncated(&x.data()[base..base + n], nf);
                xf[(b * k_in + k) * nf..(b * k_in + k + 1) * nf].copy_from_slice(&modes);
            }
        }

        // Shared-weight CGEMM across retained modes.
        let mut yf = vec![C32::ZERO; batch * self.k_out * nf];
        for b in 0..batch {
            for f in 0..nf {
                for ko in 0..self.k_out {
                    let mut acc = C32::ZERO;
                    for ki in 0..k_in {
                        acc = acc.mac(xf[(b * k_in + ki) * nf + f], self.weight.get(&[ki, ko]));
                    }
                    yf[(b * self.k_out + ko) * nf + f] = acc;
                }
            }
        }

        // Zero-pad + inverse FFT.
        let mut y = CTensor::zeros(&[batch, self.k_out, n]);
        for b in 0..batch {
            for ko in 0..self.k_out {
                let base = (b * self.k_out + ko) * nf;
                let row = host::ifft_padded(&yf[base..base + nf], n);
                let obase = y.offset(&[b, ko, 0]);
                y.data_mut()[obase..obase + n].copy_from_slice(&row);
            }
        }
        y
    }

    /// Device forward through a pipeline variant; returns output + timings.
    /// Operand buffers are leased from the session pool, so repeated
    /// same-shape forwards allocate nothing.
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let (batch, _, _) = match *x.shape() {
            [b, k, n] => (b, k, n),
            _ => panic!("expected rank-3 input"),
        };
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_1d(&p).variant(variant).options(*opts);
        let xb = sess.acquire(p.input_len());
        let wb = sess.acquire(p.weight_len());
        let yb = sess.acquire(p.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let run = sess.run(&spec, xb, wb, yb);
        let y = CTensor::from_vec(sess.download(yb), &[batch, self.k_out, self.n]);
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        (y, run)
    }

    /// Typed twin of [`SpectralConv1d::forward_device`]: engine failures
    /// (after the session's retry/degradation ladder) surface as
    /// [`TfnoError`] with all operand leases released.
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        let (batch, _, _) = match *x.shape() {
            [b, k, n] => (b, k, n),
            _ => {
                return Err(TfnoError::Validation(format!(
                    "spectral conv expects rank-3 input [batch, modes, n]; got rank-{}",
                    x.shape().len()
                )))
            }
        };
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_1d(&p).variant(variant).options(*opts);
        let xb = sess.acquire(p.input_len());
        let wb = sess.acquire(p.weight_len());
        let yb = sess.acquire(p.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let out = sess.try_run(&spec, xb, wb, yb).map(|run| {
            let y = CTensor::from_vec(sess.download(yb), &[batch, self.k_out, self.n]);
            (y, run)
        });
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        out
    }

    /// Asynchronous [`SpectralConv1d::forward_device`]: uploads the
    /// operands and issues the launch sequence on the session's dispatch
    /// thread, returning immediately so the host can overlap independent
    /// work (an FNO layer runs its pointwise bypass here). Finish with
    /// [`PendingSpectral::finish`]; the result is bitwise-identical to the
    /// synchronous call.
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        let (batch, _, _) = match *x.shape() {
            [b, k, n] => (b, k, n),
            _ => panic!("expected rank-3 input"),
        };
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_1d(&p).variant(variant).options(*opts);
        PendingSpectral::issue(
            sess,
            &spec,
            x.data(),
            self.weight.data(),
            vec![batch, self.k_out, self.n],
        )
    }
}

/// 2D spectral convolution: `[batch, k_in, nx, ny] -> [batch, k_out, nx, ny]`.
#[derive(Clone, Debug)]
pub struct SpectralConv2d {
    pub k_in: usize,
    pub k_out: usize,
    pub nx: usize,
    pub ny: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub weight: CTensor,
}

impl SpectralConv2d {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
        weight: CTensor,
    ) -> Self {
        assert_eq!(weight.shape(), &[k_in, k_out]);
        SpectralConv2d {
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
            weight,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        let scale = 1.0 / k_in as f32;
        let data = (0..k_in * k_out)
            .map(|_| {
                C32::new(
                    rng.gen_range(-scale..scale),
                    rng.gen_range(-scale..scale),
                )
            })
            .collect();
        Self::new(
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
            CTensor::from_vec(data, &[k_in, k_out]),
        )
    }

    pub fn problem(&self, batch: usize) -> FnoProblem2d {
        FnoProblem2d::new(
            batch, self.k_in, self.k_out, self.nx, self.ny, self.nfx, self.nfy,
        )
    }

    /// Host-side forward via separable Stockham FFTs.
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let (batch, k_in, nx, ny) = match *x.shape() {
            [b, k, nx, ny] => (b, k, nx, ny),
            _ => panic!("expected rank-4 input"),
        };
        assert_eq!((k_in, nx, ny), (self.k_in, self.nx, self.ny));
        let (nfx, nfy) = (self.nfx, self.nfy);

        // 2D FFT + corner truncation per (b, k).
        let mut xf = vec![C32::ZERO; batch * k_in * nfx * nfy];
        let mut col = vec![C32::ZERO; nx];
        for b in 0..batch {
            for k in 0..k_in {
                let base = (b * k_in + k) * nx * ny;
                // y-stage
                let mut stage1 = vec![C32::ZERO; nx * nfy];
                for xr in 0..nx {
                    let modes = host::fft_truncated(&x.data()[base + xr * ny..base + (xr + 1) * ny], nfy);
                    stage1[xr * nfy..(xr + 1) * nfy].copy_from_slice(&modes);
                }
                // x-stage
                for fy in 0..nfy {
                    for (xr, c) in col.iter_mut().enumerate() {
                        *c = stage1[xr * nfy + fy];
                    }
                    let modes = host::fft_truncated(&col, nfx);
                    for fx in 0..nfx {
                        xf[((b * k_in + k) * nfx + fx) * nfy + fy] = modes[fx];
                    }
                }
            }
        }

        // Shared-weight CGEMM.
        let m = nfx * nfy;
        let mut yf = vec![C32::ZERO; batch * self.k_out * m];
        for b in 0..batch {
            for f in 0..m {
                for ko in 0..self.k_out {
                    let mut acc = C32::ZERO;
                    for ki in 0..k_in {
                        acc = acc.mac(xf[(b * k_in + ki) * m + f], self.weight.get(&[ki, ko]));
                    }
                    yf[(b * self.k_out + ko) * m + f] = acc;
                }
            }
        }

        // Pad + inverse 2D FFT.
        let mut y = CTensor::zeros(&[batch, self.k_out, nx, ny]);
        let mut colf = vec![C32::ZERO; nfx];
        for b in 0..batch {
            for ko in 0..self.k_out {
                let base = (b * self.k_out + ko) * m;
                // x-stage inverse
                let mut stage1 = vec![C32::ZERO; nx * nfy];
                for fy in 0..nfy {
                    for (fx, c) in colf.iter_mut().enumerate() {
                        *c = yf[base + fx * nfy + fy];
                    }
                    let spatial = host::ifft_padded(&colf, nx);
                    for xr in 0..nx {
                        stage1[xr * nfy + fy] = spatial[xr];
                    }
                }
                // y-stage inverse
                let obase = y.offset(&[b, ko, 0, 0]);
                for xr in 0..nx {
                    let row = host::ifft_padded(&stage1[xr * nfy..(xr + 1) * nfy], ny);
                    y.data_mut()[obase + xr * ny..obase + (xr + 1) * ny].copy_from_slice(&row);
                }
            }
        }
        y
    }

    /// Device forward through a pipeline variant (pooled operand buffers;
    /// see [`SpectralConv1d::forward_device`]).
    pub fn forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> (CTensor, PipelineRun) {
        let batch = x.shape()[0];
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_2d(&p).variant(variant).options(*opts);
        let xb = sess.acquire(p.input_len());
        let wb = sess.acquire(p.weight_len());
        let yb = sess.acquire(p.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let run = sess.run(&spec, xb, wb, yb);
        let y = CTensor::from_vec(sess.download(yb), &[batch, self.k_out, self.nx, self.ny]);
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        (y, run)
    }

    /// Typed twin of [`SpectralConv2d::forward_device`] (see
    /// [`SpectralConv1d::try_forward_device`]).
    pub fn try_forward_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> Result<(CTensor, PipelineRun), TfnoError> {
        let batch = x.shape()[0];
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_2d(&p).variant(variant).options(*opts);
        let xb = sess.acquire(p.input_len());
        let wb = sess.acquire(p.weight_len());
        let yb = sess.acquire(p.output_len());
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let out = sess.try_run(&spec, xb, wb, yb).map(|run| {
            let y = CTensor::from_vec(sess.download(yb), &[batch, self.k_out, self.nx, self.ny]);
            (y, run)
        });
        sess.release(xb);
        sess.release(wb);
        sess.release(yb);
        out
    }

    /// Asynchronous [`SpectralConv2d::forward_device`] (see
    /// [`SpectralConv1d::submit_device`]).
    pub fn submit_device(
        &self,
        sess: &mut Session<impl Backend>,
        variant: Variant,
        opts: &TurboOptions,
        x: &CTensor,
    ) -> PendingSpectral {
        let batch = x.shape()[0];
        let p = self.problem(batch);
        let spec = LayerSpec::from_problem_2d(&p).variant(variant).options(*opts);
        PendingSpectral::issue(
            sess,
            &spec,
            x.data(),
            self.weight.data(),
            vec![batch, self.k_out, self.nx, self.ny],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfno_num::error::rel_l2_error;
    use tfno_num::reference;

    #[test]
    fn host_forward_matches_reference_1d() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = SpectralConv1d::random(&mut rng, 4, 6, 64, 16);
        let x = CTensor::random(&mut rng, &[2, 4, 64]);
        let got = layer.forward_host(&x);
        let want = reference::fno_layer_1d(&x, &layer.weight, 16);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn device_forward_matches_host_1d() {
        let mut rng = StdRng::seed_from_u64(6);
        let layer = SpectralConv1d::random(&mut rng, 8, 8, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 8, 128]);
        let want = layer.forward_host(&x);
        let mut sess = Session::a100();
        for variant in [Variant::Pytorch, Variant::FullyFused] {
            let (got, run) = layer.forward_device(&mut sess, variant, &TurboOptions::default(), &x);
            let err = rel_l2_error(got.data(), want.data());
            assert!(err < 1e-4, "{variant:?} err {err}");
            assert!(run.total_us() > 0.0);
        }
        // pooled operands: the second variant's forward recycles the first's
        assert!(sess.pool_stats().hits >= 3);
    }

    /// The async split must be bitwise-equal to the synchronous forward —
    /// the dispatch runs the identical engine code on another thread.
    #[test]
    fn submit_device_matches_forward_device_bitwise() {
        let mut rng = StdRng::seed_from_u64(61);
        let layer = SpectralConv1d::random(&mut rng, 8, 8, 128, 32);
        let x = CTensor::random(&mut rng, &[2, 8, 128]);
        let mut sess = Session::a100();
        let (want, run_sync) =
            layer.forward_device(&mut sess, Variant::FftOpt, &TurboOptions::default(), &x);
        let pending = layer.submit_device(&mut sess, Variant::FftOpt, &TurboOptions::default(), &x);
        let (got, run_async) = pending.finish(&mut sess);
        assert_eq!(got.data(), want.data(), "async forward diverged bitwise");
        assert_eq!(run_async.kernel_count(), run_sync.kernel_count());
        assert_eq!(
            sess.pool_stats().leased,
            0,
            "finish must return every operand lease"
        );
    }

    #[test]
    fn host_forward_matches_reference_2d() {
        let mut rng = StdRng::seed_from_u64(7);
        let layer = SpectralConv2d::random(&mut rng, 3, 5, 16, 16, 4, 4);
        let x = CTensor::random(&mut rng, &[2, 3, 16, 16]);
        let got = layer.forward_host(&x);
        let want = reference::fno_layer_2d(&x, &layer.weight, 4, 4);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }

    #[test]
    fn device_forward_matches_host_2d() {
        let mut rng = StdRng::seed_from_u64(8);
        let layer = SpectralConv2d::random(&mut rng, 8, 8, 32, 64, 8, 32);
        let x = CTensor::random(&mut rng, &[1, 8, 32, 64]);
        let want = layer.forward_host(&x);
        let mut sess = Session::a100();
        let (got, _) = layer.forward_device(
            &mut sess,
            Variant::FullyFused,
            &TurboOptions::default(),
            &x,
        );
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
    }
}
