//! Synthetic PDE workloads (the paper's motivating applications).
//!
//! Everything here is generated, not loaded: the reproduction has no access
//! to the FNO papers' datasets, so examples validate physics against
//! *exact spectral solutions* (heat equation) and exercise realistic
//! spectra via Gaussian random fields (Burgers/Darcy/Navier–Stokes-style
//! inputs). See DESIGN.md's substitution table.

use rand::Rng;
use tfno_num::{C32, CTensor};

/// Exact heat-equation spectral multipliers on a periodic domain of length
/// `l`: mode `f` decays by `exp(-nu * (2 pi f / l)^2 * t)`.
///
/// Plugged into `PerModeSpectralConv1d::diagonal`, an FNO layer *is* the
/// exact solution operator — the validation trick the examples use.
pub fn heat_multipliers(nf: usize, nu: f64, t: f64, l: f64) -> Vec<C32> {
    (0..nf)
        .map(|f| {
            let k = 2.0 * std::f64::consts::PI * f as f64 / l;
            C32::real((-nu * k * k * t).exp() as f32)
        })
        .collect()
}

/// Solve the periodic heat equation exactly: evolve `u0` by time `t`.
/// Uses the full spectrum (for comparison against truncated FNO outputs).
pub fn heat_exact(u0: &[C32], nu: f64, t: f64, l: f64) -> Vec<C32> {
    let n = u0.len();
    let modes = tfno_fft::host::stockham(u0, tfno_fft::FftDirection::Forward);
    let evolved: Vec<C32> = modes
        .iter()
        .enumerate()
        .map(|(f, m)| {
            // frequency index with negative-frequency wrap
            let fi = if f <= n / 2 { f as f64 } else { f as f64 - n as f64 };
            let k = 2.0 * std::f64::consts::PI * fi / l;
            m.scale((-nu * k * k * t).exp() as f32)
        })
        .collect();
    tfno_fft::host::stockham(&evolved, tfno_fft::FftDirection::Inverse)
}

/// A smooth random periodic field: a truncated Fourier series with
/// power-law-decaying random coefficients (`~ f^-decay`), real-valued.
/// This is the standard Burgers'-equation initial-condition generator.
pub fn random_smooth_field_1d<R: Rng>(rng: &mut R, n: usize, modes: usize, decay: f32) -> Vec<C32> {
    let mut u = vec![0.0f32; n];
    for f in 1..=modes {
        let amp = (f as f32).powf(-decay);
        let a = rng.gen_range(-1.0f32..1.0) * amp;
        let b = rng.gen_range(-1.0f32..1.0) * amp;
        for (i, v) in u.iter_mut().enumerate() {
            let theta = 2.0 * std::f32::consts::PI * (f * i) as f32 / n as f32;
            *v += a * theta.sin() + b * theta.cos();
        }
    }
    u.into_iter().map(C32::real).collect()
}

/// 2D Gaussian random field with spectrum `(|k|^2 + tau^2)^(-alpha)` —
/// the coefficient-field generator used for Darcy-flow benchmarks and a
/// reasonable stand-in for turbulence-like vorticity inputs.
pub fn gaussian_random_field_2d<R: Rng>(
    rng: &mut R,
    nx: usize,
    ny: usize,
    alpha: f32,
    tau: f32,
) -> Vec<C32> {
    // Build a random spectrum with Hermitian-ish decay and transform back.
    let mut modes = vec![C32::ZERO; nx * ny];
    for fx in 0..nx {
        for fy in 0..ny {
            let kx = if fx <= nx / 2 { fx as f32 } else { fx as f32 - nx as f32 };
            let ky = if fy <= ny / 2 { fy as f32 } else { fy as f32 - ny as f32 };
            let k2 = kx * kx + ky * ky;
            let power = (k2 + tau * tau).powf(-alpha / 2.0);
            modes[fx * ny + fy] = C32::new(
                rng.gen_range(-1.0f32..1.0) * power,
                rng.gen_range(-1.0f32..1.0) * power,
            );
        }
    }
    modes[0] = C32::ZERO; // zero mean
    // inverse transform rows then columns
    let mut field = vec![C32::ZERO; nx * ny];
    let mut col = vec![C32::ZERO; nx];
    let mut tmp = vec![C32::ZERO; nx * ny];
    for fy in 0..ny {
        for fx in 0..nx {
            col[fx] = modes[fx * ny + fy];
        }
        let sp = tfno_fft::host::stockham(&col, tfno_fft::FftDirection::Inverse);
        for x in 0..nx {
            tmp[x * ny + fy] = sp[x];
        }
    }
    for x in 0..nx {
        let row = tfno_fft::host::stockham(&tmp[x * ny..(x + 1) * ny], tfno_fft::FftDirection::Inverse);
        field[x * ny..(x + 1) * ny].copy_from_slice(&row);
    }
    // keep the real part as the physical field
    field.iter().map(|c| C32::real(c.re)).collect()
}

/// A band-limited *analytic* random field: only positive-frequency
/// content (`sum_{1<=f<=modes} c_f e^{+2 pi i f x / n}` plus a mean).
///
/// One-sided mode truncation (the paper's filter keeps the first `nf`
/// complex modes) is lossless exactly on this class of signals; real
/// fields would lose their conjugate (negative-frequency) half. Examples
/// validating against exact spectral solutions use this generator.
pub fn random_analytic_field_1d<R: Rng>(
    rng: &mut R,
    n: usize,
    modes: usize,
    decay: f32,
) -> Vec<C32> {
    let mut spectrum = vec![C32::ZERO; n];
    spectrum[0] = C32::real(rng.gen_range(-1.0f32..1.0)).scale(n as f32);
    for f in 1..=modes.min(n - 1) {
        let amp = (f as f32).powf(-decay) * n as f32;
        spectrum[f] = C32::new(
            rng.gen_range(-1.0f32..1.0) * amp,
            rng.gen_range(-1.0f32..1.0) * amp,
        );
    }
    tfno_fft::host::stockham(&spectrum, tfno_fft::FftDirection::Inverse)
}

/// Pack a batch of 1D fields into a `[batch, 1, n]` tensor.
pub fn batch_1d(fields: &[Vec<C32>]) -> CTensor {
    let n = fields[0].len();
    let mut data = Vec::with_capacity(fields.len() * n);
    for f in fields {
        assert_eq!(f.len(), n);
        data.extend_from_slice(f);
    }
    CTensor::from_vec(data, &[fields.len(), 1, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn heat_multipliers_decay() {
        let m = heat_multipliers(8, 0.1, 1.0, 2.0 * std::f64::consts::PI);
        assert!((m[0].re - 1.0).abs() < 1e-6, "DC mode must be preserved");
        for f in 1..8 {
            assert!(m[f].re < m[f - 1].re, "multipliers must decay");
            assert!(m[f].re > 0.0);
        }
    }

    #[test]
    fn heat_exact_preserves_mean_and_smooths() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 64;
        let u0 = random_smooth_field_1d(&mut rng, n, 12, 1.0);
        let mean0: f32 = u0.iter().map(|c| c.re).sum::<f32>() / n as f32;
        let u1 = heat_exact(&u0, 0.05, 1.0, 2.0 * std::f64::consts::PI);
        let mean1: f32 = u1.iter().map(|c| c.re).sum::<f32>() / n as f32;
        assert!((mean0 - mean1).abs() < 1e-3, "diffusion preserves the mean");
        let var = |u: &[C32], m: f32| u.iter().map(|c| (c.re - m).powi(2)).sum::<f32>();
        assert!(
            var(&u1, mean1) < var(&u0, mean0),
            "diffusion must reduce variance"
        );
    }

    #[test]
    fn smooth_field_is_real_and_periodic_spectrum_limited() {
        let mut rng = StdRng::seed_from_u64(12);
        let u = random_smooth_field_1d(&mut rng, 128, 8, 1.5);
        assert!(u.iter().all(|c| c.im == 0.0));
        // energy beyond mode 8 must be ~0
        let modes = tfno_fft::host::stockham(&u, tfno_fft::FftDirection::Forward);
        for f in 9..(128 - 8) {
            assert!(modes[f].abs() < 1e-3, "mode {f} leaked: {}", modes[f].abs());
        }
    }

    #[test]
    fn analytic_field_survives_onesided_truncation() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 64;
        let u = random_analytic_field_1d(&mut rng, n, 8, 1.0);
        // all energy sits in modes 0..=8
        let modes = tfno_fft::host::stockham(&u, tfno_fft::FftDirection::Forward);
        for f in 9..n {
            assert!(modes[f].abs() < 1e-2, "mode {f} leaked: {}", modes[f].abs());
        }
        // truncate to 16 modes and restore: must reproduce the field
        let kept = tfno_fft::host::fft_truncated(&u, 16);
        let back = tfno_fft::host::ifft_padded(&kept, n);
        for (a, b) in u.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn grf_2d_zero_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let f = gaussian_random_field_2d(&mut rng, 32, 32, 2.5, 3.0);
        let mean: f32 = f.iter().map(|c| c.re).sum::<f32>() / f.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!(f.iter().any(|c| c.re.abs() > 1e-6), "field must be nonzero");
    }
}
