//! Per-mode spectral weights — the classic FNO formulation
//! (`einsum("bix,iox->box")`) as an extension beyond the paper's
//! shared-weight CGEMM.
//!
//! Each retained mode `f` has its own `[k_in, k_out]` complex matrix. On
//! the device this is a *mode-batched* CGEMM: batch index = mode, `A_f` is
//! the `batch x k_in` slice at mode `f` (batch stride 1 in the mode axis),
//! `B_f` the mode's weight matrix. This is also what lets examples encode
//! exact spectral solution operators (heat kernel: a diagonal per-mode
//! multiplier), which a mode-shared weight cannot express.

use rand::Rng;
use tfno_cgemm::{BatchedOperand, GemmShape, MatView};
use tfno_culib::{CuBlas, PipelineRun};
use tfno_fft::host;
use tfno_gpu_sim::ExecMode;
use tfno_num::{C32, CTensor};
use turbofno::{Backend, Session};

/// 1D spectral convolution with per-mode weights
/// (`weight[f, ki, ko]`, `f < nf`).
#[derive(Clone, Debug)]
pub struct PerModeSpectralConv1d {
    pub k_in: usize,
    pub k_out: usize,
    pub n: usize,
    pub nf: usize,
    /// `[nf, k_in, k_out]`
    pub weight: CTensor,
}

impl PerModeSpectralConv1d {
    pub fn new(k_in: usize, k_out: usize, n: usize, nf: usize, weight: CTensor) -> Self {
        assert_eq!(weight.shape(), &[nf, k_in, k_out]);
        PerModeSpectralConv1d {
            k_in,
            k_out,
            n,
            nf,
            weight,
        }
    }

    pub fn random<R: Rng>(rng: &mut R, k_in: usize, k_out: usize, n: usize, nf: usize) -> Self {
        let scale = 1.0 / k_in as f32;
        let data = (0..nf * k_in * k_out)
            .map(|_| C32::new(rng.gen_range(-scale..scale), rng.gen_range(-scale..scale)))
            .collect();
        Self::new(k_in, k_out, n, nf, CTensor::from_vec(data, &[nf, k_in, k_out]))
    }

    /// Diagonal per-mode multiplier (requires `k_in == k_out`): mode `f` of
    /// every channel is scaled by `diag[f]`. This encodes exact spectral
    /// solution operators such as the heat kernel.
    pub fn diagonal(k: usize, n: usize, diag: &[C32]) -> Self {
        let nf = diag.len();
        let mut w = CTensor::zeros(&[nf, k, k]);
        for (f, &d) in diag.iter().enumerate() {
            for c in 0..k {
                w.set(&[f, c, c], d);
            }
        }
        Self::new(k, k, n, nf, w)
    }

    /// Host forward: FFT -> per-mode matmul -> iFFT.
    pub fn forward_host(&self, x: &CTensor) -> CTensor {
        let (batch, k_in, n) = match *x.shape() {
            [b, k, n] => (b, k, n),
            _ => panic!("expected rank-3 input"),
        };
        assert_eq!((k_in, n), (self.k_in, self.n));
        let nf = self.nf;

        let mut xf = vec![C32::ZERO; batch * k_in * nf];
        for b in 0..batch {
            for k in 0..k_in {
                let base = (b * k_in + k) * n;
                let modes = host::fft_truncated(&x.data()[base..base + n], nf);
                xf[(b * k_in + k) * nf..(b * k_in + k + 1) * nf].copy_from_slice(&modes);
            }
        }

        let mut yf = vec![C32::ZERO; batch * self.k_out * nf];
        for b in 0..batch {
            for f in 0..nf {
                for ko in 0..self.k_out {
                    let mut acc = C32::ZERO;
                    for ki in 0..k_in {
                        acc = acc.mac(
                            xf[(b * k_in + ki) * nf + f],
                            self.weight.get(&[f, ki, ko]),
                        );
                    }
                    yf[(b * self.k_out + ko) * nf + f] = acc;
                }
            }
        }

        let mut y = CTensor::zeros(&[batch, self.k_out, n]);
        for b in 0..batch {
            for ko in 0..self.k_out {
                let base = (b * self.k_out + ko) * nf;
                let row = host::ifft_padded(&yf[base..base + nf], n);
                let obase = y.offset(&[b, ko, 0]);
                y.data_mut()[obase..obase + n].copy_from_slice(&row);
            }
        }
        y
    }

    /// Device forward: Turbo truncated FFT, mode-batched CGEMM, padded
    /// inverse FFT (a 3-kernel pipeline; per-mode weights cannot enter the
    /// single-CGEMM fused path, which is exactly why the paper's
    /// formulation shares them).
    pub fn forward_device(&self, sess: &mut Session<impl Backend>, x: &CTensor) -> (CTensor, PipelineRun) {
        use tfno_fft::{BatchedFftKernel, FftBlockConfig, FftDirection, FftKernelConfig, FftPlan, RowPencils};
        let batch = x.shape()[0];
        let (k_in, k_out, n, nf) = (self.k_in, self.k_out, self.n, self.nf);
        let mut run = PipelineRun::default();

        let xb = sess.acquire(batch * k_in * n);
        let wb = sess.acquire(nf * k_in * k_out);
        let xf = sess.acquire(batch * k_in * nf);
        let yf = sess.acquire(batch * k_out * nf);
        let yb = sess.acquire(batch * k_out * n);
        sess.upload(xb, x.data());
        sess.upload(wb, self.weight.data());
        let dev = sess.device_mut();

        let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n))
            .with_l1_hit_rate(turbofno::TURBO_FFT_L1_HIT);
        let plan = FftPlan::new(n, FftDirection::Forward, n, nf);
        let fft = BatchedFftKernel::new(
            "pm.fft",
            cfg.clone(),
            plan,
            RowPencils {
                count: batch * k_in,
                in_row_len: n,
                out_row_len: nf,
            },
            xb,
            xf,
        );
        run.push(dev.launch(&fft, ExecMode::Functional));

        // Mode-batched CGEMM: batch index = mode f.
        run.push(CuBlas::cgemm_strided_batched(
            dev,
            "pm.cgemm",
            GemmShape {
                batch: nf,
                m: batch,
                n: k_out,
                k: k_in,
            },
            BatchedOperand::strided(
                xf,
                MatView {
                    base: 0,
                    row_stride: k_in * nf, // next batch row
                    col_stride: nf,        // next hidden channel
                },
                1, // next mode
            ),
            BatchedOperand::strided(wb, MatView::row_major(0, k_out), k_in * k_out),
            BatchedOperand::strided(
                yf,
                MatView {
                    base: 0,
                    row_stride: k_out * nf,
                    col_stride: nf,
                },
                1,
            ),
            C32::ONE,
            C32::ZERO,
            ExecMode::Functional,
        ));

        let plan_inv = FftPlan::new(n, FftDirection::Inverse, nf, n);
        let ifft = BatchedFftKernel::new(
            "pm.ifft",
            cfg,
            plan_inv,
            RowPencils {
                count: batch * k_out,
                in_row_len: nf,
                out_row_len: n,
            },
            yf,
            yb,
        );
        run.push(dev.launch(&ifft, ExecMode::Functional));

        let y = CTensor::from_vec(sess.download(yb), &[batch, k_out, n]);
        for id in [xb, wb, xf, yf, yb] {
            sess.release(id);
        }
        (y, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tfno_num::error::rel_l2_error;

    #[test]
    fn matches_shared_weight_when_weights_equal() {
        // per-mode weights all equal to one matrix == shared-weight layer
        let mut rng = StdRng::seed_from_u64(9);
        let shared = crate::spectral::SpectralConv1d::random(&mut rng, 4, 4, 64, 16);
        let mut w = CTensor::zeros(&[16, 4, 4]);
        for f in 0..16 {
            for i in 0..4 {
                for o in 0..4 {
                    w.set(&[f, i, o], shared.weight.get(&[i, o]));
                }
            }
        }
        let pm = PerModeSpectralConv1d::new(4, 4, 64, 16, w);
        let x = CTensor::random(&mut rng, &[2, 4, 64]);
        let a = shared.forward_host(&x);
        let b = pm.forward_host(&x);
        let err = rel_l2_error(a.data(), b.data());
        assert!(err < 1e-5, "err {err}");
    }

    #[test]
    fn device_matches_host() {
        let mut rng = StdRng::seed_from_u64(10);
        let pm = PerModeSpectralConv1d::random(&mut rng, 8, 8, 64, 16);
        let x = CTensor::random(&mut rng, &[4, 8, 64]);
        let want = pm.forward_host(&x);
        let mut sess = Session::a100();
        let (got, run) = pm.forward_device(&mut sess, &x);
        let err = rel_l2_error(got.data(), want.data());
        assert!(err < 1e-4, "err {err}");
        assert_eq!(run.kernel_count(), 3);
    }

    #[test]
    fn diagonal_scales_modes() {
        // diag = [1, 0, 0, ...]: output keeps only the DC mode.
        let n = 32;
        let mut diag = vec![C32::ZERO; 8];
        diag[0] = C32::ONE;
        let pm = PerModeSpectralConv1d::diagonal(1, n, &diag);
        let x_data: Vec<C32> = (0..n)
            .map(|i| C32::new(1.0 + (i as f32 * 0.7).sin(), 0.0))
            .collect();
        let mean: C32 = x_data.iter().copied().sum::<C32>().scale(1.0 / n as f32);
        let x = CTensor::from_vec(x_data, &[1, 1, n]);
        let y = pm.forward_host(&x);
        for v in y.data() {
            assert!((*v - mean).abs() < 1e-4, "expected DC {mean}, got {v}");
        }
    }
}
