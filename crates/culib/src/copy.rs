//! The memory-copy kernels the PyTorch baseline needs around cuFFT.
//!
//! cuFFT has no built-in truncation or zero-padding (paper §2.2), so the
//! PyTorch FNO implementation materializes the frequency filter with
//! dedicated copy kernels: a gather of the kept modes after the forward
//! FFT (`x_ft[..., :modes]`) and a scatter-with-zeros before the inverse
//! FFT (`out_ft` padding). Both are pure global-memory traffic — exactly
//! the overhead TurboFNO's built-in truncation removes.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};
use tfno_gpu_sim::{
    lock_unpoisoned, structural_fingerprint, AccessSpan, BlockCtx, BufferId, Kernel, KernelAccess,
    LaunchDims, WarpIdx, WARP_SIZE,
};
use tfno_num::C32;

/// Row-structured copy addressing: `rows` rows; row `r` reads
/// `in_len(r)` elements from `in_addr(r, i)` and writes `out_len(r)`
/// elements to `out_addr(r, i)`; positions `i >= in_len(r)` are written as
/// zero (the padding tail).
///
/// Contract: within one row the addressing is contiguous in `i`
/// (`in_addr(r, i) == in_addr(r, 0) + i`, likewise `out_addr`) — the
/// declared access sets rely on it.
pub trait CopyAddressing: Sync {
    fn rows(&self) -> usize;
    fn in_len(&self, row: usize) -> usize;
    fn out_len(&self, row: usize) -> usize;
    fn in_addr(&self, row: usize, i: usize) -> usize;
    fn out_addr(&self, row: usize, i: usize) -> usize;
    /// Structural hash of the addressing scheme for the analytical launch
    /// memo: must cover every field that shapes addresses or row lengths.
    fn fingerprint(&self) -> u64;
}

/// Truncation gather: keep the first `nf` of every length-`n` row
/// (`[rows, n] -> [rows, nf]`, both packed).
#[derive(Clone, Copy, Debug)]
pub struct RowTruncate {
    pub rows: usize,
    pub n: usize,
    pub nf: usize,
}

impl CopyAddressing for RowTruncate {
    fn rows(&self) -> usize {
        self.rows
    }
    fn in_len(&self, _r: usize) -> usize {
        self.nf
    }
    fn out_len(&self, _r: usize) -> usize {
        self.nf
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        r * self.n + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.nf + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.row_truncate", |h| {
            self.rows.hash(h);
            self.n.hash(h);
            self.nf.hash(h);
        })
    }
}

/// Zero-padding scatter: `[rows, nf] -> [rows, n]` with a zero tail.
#[derive(Clone, Copy, Debug)]
pub struct RowPad {
    pub rows: usize,
    pub nf: usize,
    pub n: usize,
}

impl CopyAddressing for RowPad {
    fn rows(&self) -> usize {
        self.rows
    }
    fn in_len(&self, _r: usize) -> usize {
        self.nf
    }
    fn out_len(&self, _r: usize) -> usize {
        self.n
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        r * self.nf + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.n + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.row_pad", |h| {
            self.rows.hash(h);
            self.nf.hash(h);
            self.n.hash(h);
        })
    }
}

/// 2D corner truncation: gather the `[nfx, nfy]` low-frequency corner out
/// of each `[nx, ny]` grid (`grids` of them), packed output.
#[derive(Clone, Copy, Debug)]
pub struct CornerTruncate2d {
    pub grids: usize,
    pub nx: usize,
    pub ny: usize,
    pub nfx: usize,
    pub nfy: usize,
}

impl CopyAddressing for CornerTruncate2d {
    fn rows(&self) -> usize {
        self.grids * self.nfx
    }
    fn in_len(&self, _r: usize) -> usize {
        self.nfy
    }
    fn out_len(&self, _r: usize) -> usize {
        self.nfy
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        let g = r / self.nfx;
        let x = r % self.nfx;
        g * self.nx * self.ny + x * self.ny + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.nfy + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.corner_truncate2d", |h| {
            self.grids.hash(h);
            self.nx.hash(h);
            self.ny.hash(h);
            self.nfx.hash(h);
            self.nfy.hash(h);
        })
    }
}

/// 2D corner padding: scatter packed `[nfx, nfy]` corners into zeroed
/// `[nx, ny]` grids. Rows with `x >= nfx` are pure zero-fill.
#[derive(Clone, Copy, Debug)]
pub struct CornerPad2d {
    pub grids: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub nx: usize,
    pub ny: usize,
}

impl CopyAddressing for CornerPad2d {
    fn rows(&self) -> usize {
        self.grids * self.nx
    }
    fn in_len(&self, r: usize) -> usize {
        let x = r % self.nx;
        if x < self.nfx {
            self.nfy
        } else {
            0
        }
    }
    fn out_len(&self, _r: usize) -> usize {
        self.ny
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        let g = r / self.nx;
        let x = r % self.nx;
        (g * self.nfx + x) * self.nfy + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.ny + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.corner_pad2d", |h| {
            self.grids.hash(h);
            self.nfx.hash(h);
            self.nfy.hash(h);
            self.nx.hash(h);
            self.ny.hash(h);
        })
    }
}

/// 3D corner truncation: gather the `[nfx, nfy, nfz]` low-frequency corner
/// out of each `[nx, ny, nz]` volume (`grids` of them), packed output. One
/// row per retained `(x, y)` pencil, contiguous along z.
#[derive(Clone, Copy, Debug)]
pub struct CornerTruncate3d {
    pub grids: usize,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub nfz: usize,
}

impl CopyAddressing for CornerTruncate3d {
    fn rows(&self) -> usize {
        self.grids * self.nfx * self.nfy
    }
    fn in_len(&self, _r: usize) -> usize {
        self.nfz
    }
    fn out_len(&self, _r: usize) -> usize {
        self.nfz
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        let g = r / (self.nfx * self.nfy);
        let x = (r / self.nfy) % self.nfx;
        let y = r % self.nfy;
        ((g * self.nx + x) * self.ny + y) * self.nz + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.nfz + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.corner_truncate3d", |h| {
            self.grids.hash(h);
            self.nx.hash(h);
            self.ny.hash(h);
            self.nz.hash(h);
            self.nfx.hash(h);
            self.nfy.hash(h);
            self.nfz.hash(h);
        })
    }
}

/// 3D corner padding: scatter packed `[nfx, nfy, nfz]` corners into zeroed
/// `[nx, ny, nz]` volumes. Rows with `x >= nfx` or `y >= nfy` are pure
/// zero-fill, like [`CornerPad2d`]'s tail rows.
#[derive(Clone, Copy, Debug)]
pub struct CornerPad3d {
    pub grids: usize,
    pub nfx: usize,
    pub nfy: usize,
    pub nfz: usize,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl CopyAddressing for CornerPad3d {
    fn rows(&self) -> usize {
        self.grids * self.nx * self.ny
    }
    fn in_len(&self, r: usize) -> usize {
        let x = (r / self.ny) % self.nx;
        let y = r % self.ny;
        if x < self.nfx && y < self.nfy {
            self.nfz
        } else {
            0
        }
    }
    fn out_len(&self, _r: usize) -> usize {
        self.nz
    }
    fn in_addr(&self, r: usize, i: usize) -> usize {
        let g = r / (self.nx * self.ny);
        let x = (r / self.ny) % self.nx;
        let y = r % self.ny;
        ((g * self.nfx + x) * self.nfy + y) * self.nfz + i
    }
    fn out_addr(&self, r: usize, i: usize) -> usize {
        r * self.nz + i
    }
    fn fingerprint(&self) -> u64 {
        structural_fingerprint("copy.corner_pad3d", |h| {
            self.grids.hash(h);
            self.nfx.hash(h);
            self.nfy.hash(h);
            self.nfz.hash(h);
            self.nx.hash(h);
            self.ny.hash(h);
            self.nz.hash(h);
        })
    }
}

/// Rows handled by each thread block of the copy kernel.
pub const COPY_ROWS_PER_BLOCK: usize = 8;

/// A generic strided copy kernel (the "PyTorch built-in memory kernel").
pub struct StridedCopyKernel<A: CopyAddressing> {
    pub name: String,
    pub addressing: A,
    pub input: BufferId,
    pub output: BufferId,
}

impl<A: CopyAddressing> StridedCopyKernel<A> {
    pub fn new(name: impl Into<String>, addressing: A, input: BufferId, output: BufferId) -> Self {
        StridedCopyKernel {
            name: name.into(),
            addressing,
            input,
            output,
        }
    }

    fn grid(&self) -> usize {
        self.addressing.rows().div_ceil(COPY_ROWS_PER_BLOCK)
    }
}

impl<A: CopyAddressing> Kernel for StridedCopyKernel<A> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(self.grid(), 256).with_regs(16)
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
        let r0 = block_id * COPY_ROWS_PER_BLOCK;
        let rows = COPY_ROWS_PER_BLOCK.min(self.addressing.rows() - r0);
        for r in r0..r0 + rows {
            let n_in = self.addressing.in_len(r);
            let n_out = self.addressing.out_len(r);
            let mut i = 0;
            while i < n_out {
                let read_idx = WarpIdx::from_fn(|l| {
                    (i + l < n_in).then(|| self.addressing.in_addr(r, i + l))
                });
                let vals = if read_idx.active_lanes() > 0 {
                    ctx.global_read(self.input, &read_idx)
                } else {
                    [C32::ZERO; WARP_SIZE]
                };
                let write_idx = WarpIdx::from_fn(|l| {
                    (i + l < n_out).then(|| self.addressing.out_addr(r, i + l))
                });
                ctx.global_write(self.output, &write_idx, &vals);
                i += WARP_SIZE;
            }
        }
    }

    fn access(&self) -> Option<KernelAccess> {
        let mut acc = KernelAccess::new();
        for block_id in 0..self.grid() {
            let r0 = block_id * COPY_ROWS_PER_BLOCK;
            let rows = COPY_ROWS_PER_BLOCK.min(self.addressing.rows() - r0);
            for r in r0..r0 + rows {
                acc.read(AccessSpan::contiguous(
                    self.input,
                    self.addressing.in_addr(r, 0),
                    self.addressing.in_len(r),
                ));
                acc.write(
                    block_id,
                    AccessSpan::contiguous(
                        self.output,
                        self.addressing.out_addr(r, 0),
                        self.addressing.out_len(r),
                    ),
                );
            }
        }
        Some(acc)
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(structural_fingerprint("copy.strided", |h| {
            self.addressing.fingerprint().hash(h);
        }))
    }

    fn block_classes(&self) -> Vec<(usize, u64)> {
        // Copy kernels can have heterogeneous rows (e.g. CornerPad2d's
        // zero-fill rows), and blocks are cheap: enumerate every block as
        // its own class only when patterns vary per block; here we group
        // conservatively by running each block (they are O(rows) cheap).
        (0..self.grid()).map(|b| (b, 1)).collect()
    }
}

/// Affine per-block address template for the segmented copy: the warp
/// schedule of a chunk depends only on its element count, so the relative
/// pattern — `(element offset, active lanes)` per warp transaction — is
/// built once per distinct chunk length and shared process-wide, then
/// offset by each block's segment bases at run time. This is the
/// transfer-phase analogue of the FFT butterfly trace cache: a warm
/// serving loop's gather/scatter launches replay templates instead of
/// re-deriving per-lane addresses. Addresses, lane masks, and therefore
/// all traffic accounting are identical to the untemplated path (the
/// legacy executor still runs that path for A/B fidelity).
#[derive(Debug)]
struct CopyTemplate {
    /// `(relative element offset, active lanes)` per warp transaction.
    iters: Vec<(usize, usize)>,
}

fn copy_template(chunk_len: usize) -> Arc<CopyTemplate> {
    static TEMPLATES: OnceLock<Mutex<HashMap<usize, Arc<CopyTemplate>>>> = OnceLock::new();
    let table = TEMPLATES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut table = lock_unpoisoned(table);
    Arc::clone(table.entry(chunk_len).or_insert_with(|| {
        let mut iters = Vec::with_capacity(chunk_len.div_ceil(WARP_SIZE));
        let mut i = 0;
        while i < chunk_len {
            iters.push((i, WARP_SIZE.min(chunk_len - i)));
            i += WARP_SIZE;
        }
        Arc::new(CopyTemplate { iters })
    }))
}

/// One contiguous span moved by a [`SegmentedCopyKernel`].
#[derive(Clone, Copy, Debug)]
pub struct CopySegment {
    pub src: BufferId,
    pub src_base: usize,
    pub dst: BufferId,
    pub dst_base: usize,
    pub len: usize,
}

/// Elements each thread block of the segmented copy handles.
pub const SEGMENT_COPY_BLOCK_ELEMS: usize = 2048;

/// Device-side gather/scatter across buffers in ONE launch.
///
/// Each segment copies `len` elements from `src[src_base..]` to
/// `dst[dst_base..]`; different segments may name different buffers, which
/// is what lets a serving stack assemble its batched input (and packed
/// strided weight buffer) and redistribute its output without host
/// round trips: one gather launch in, one scatter launch out, regardless
/// of how many requests are stacked.
///
/// Destination spans must not overlap (each element is written once).
pub struct SegmentedCopyKernel {
    pub name: String,
    segments: Vec<CopySegment>,
    /// Per-block `(segment index, element offset within the segment)`.
    blocks: Vec<(usize, usize)>,
}

impl SegmentedCopyKernel {
    pub fn new(name: impl Into<String>, segments: Vec<CopySegment>) -> Self {
        assert!(!segments.is_empty(), "segmented copy needs >= 1 segment");
        let mut blocks = Vec::new();
        for (s, seg) in segments.iter().enumerate() {
            let mut off = 0;
            while off < seg.len {
                blocks.push((s, off));
                off += SEGMENT_COPY_BLOCK_ELEMS;
            }
        }
        SegmentedCopyKernel {
            name: name.into(),
            segments,
            blocks,
        }
    }
}

impl Kernel for SegmentedCopyKernel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn dims(&self) -> LaunchDims {
        LaunchDims::new(self.blocks.len(), 256).with_regs(16)
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
        let (s, off) = self.blocks[block_id];
        let seg = &self.segments[s];
        let end = seg.len.min(off + SEGMENT_COPY_BLOCK_ELEMS);
        if ctx.legacy_mode() {
            // Pre-template path, kept for the legacy-executor A/B baseline.
            let mut i = off;
            while i < end {
                let read_idx = WarpIdx::from_fn(|l| (i + l < end).then(|| seg.src_base + i + l));
                let vals = ctx.global_read(seg.src, &read_idx);
                let write_idx = WarpIdx::from_fn(|l| (i + l < end).then(|| seg.dst_base + i + l));
                ctx.global_write(seg.dst, &write_idx, &vals);
                i += WARP_SIZE;
            }
            return;
        }
        let template = copy_template(end - off);
        for &(rel, active) in &template.iters {
            let read_idx = WarpIdx::contiguous_partial(seg.src_base + off + rel, active);
            let vals = ctx.global_read(seg.src, &read_idx);
            let write_idx = WarpIdx::contiguous_partial(seg.dst_base + off + rel, active);
            ctx.global_write(seg.dst, &write_idx, &vals);
        }
    }

    fn access(&self) -> Option<KernelAccess> {
        let mut acc = KernelAccess::new();
        for (block_id, &(s, off)) in self.blocks.iter().enumerate() {
            let seg = &self.segments[s];
            let end = seg.len.min(off + SEGMENT_COPY_BLOCK_ELEMS);
            acc.read(AccessSpan::contiguous(
                seg.src,
                seg.src_base + off,
                end - off,
            ));
            acc.write(
                block_id,
                AccessSpan::contiguous(seg.dst, seg.dst_base + off, end - off),
            );
        }
        Some(acc)
    }

    fn fingerprint(&self) -> Option<u64> {
        // Buffer ids are excluded by convention: the access pattern is
        // fully described by the span bases and lengths.
        Some(structural_fingerprint("copy.segmented", |h| {
            self.segments.len().hash(h);
            for seg in &self.segments {
                seg.src_base.hash(h);
                seg.dst_base.hash(h);
                seg.len.hash(h);
            }
        }))
    }

    fn block_classes(&self) -> Vec<(usize, u64)> {
        // Tail blocks of each segment differ; blocks are O(elements) cheap,
        // so enumerate each one like the strided copy kernel does.
        (0..self.blocks.len()).map(|b| (b, 1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfno_gpu_sim::{ExecMode, GpuDevice};

    fn seq(n: usize) -> Vec<C32> {
        (0..n).map(|i| C32::new(i as f32, -(i as f32))).collect()
    }

    #[test]
    fn truncate_gathers_prefix() {
        let (rows, n, nf) = (5usize, 64usize, 16usize);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", rows * n);
        let dst = dev.alloc("dst", rows * nf);
        dev.upload(src, &seq(rows * n));
        let k = StridedCopyKernel::new("trunc", RowTruncate { rows, n, nf }, src, dst);
        let rec = dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for r in 0..rows {
            for i in 0..nf {
                assert_eq!(out[r * nf + i], C32::new((r * n + i) as f32, -((r * n + i) as f32)));
            }
        }
        // traffic: reads nf, writes nf per row
        assert_eq!(rec.stats.global_load_bytes, (rows * nf * 8) as u64);
        assert_eq!(rec.stats.global_store_bytes, (rows * nf * 8) as u64);
    }

    #[test]
    fn pad_writes_zero_tail() {
        let (rows, nf, n) = (3usize, 8usize, 32usize);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", rows * nf);
        let dst = dev.alloc("dst", rows * n);
        dev.upload(src, &seq(rows * nf));
        // poison dst to prove zeros are written, not assumed
        dev.upload(dst, &vec![C32::new(9.0, 9.0); rows * n]);
        let k = StridedCopyKernel::new("pad", RowPad { rows, nf, n }, src, dst);
        let rec = dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for r in 0..rows {
            for i in 0..n {
                let want = if i < nf {
                    C32::new((r * nf + i) as f32, -((r * nf + i) as f32))
                } else {
                    C32::ZERO
                };
                assert_eq!(out[r * n + i], want, "r={r} i={i}");
            }
        }
        // writes the FULL padded row (the waste the paper points at)
        assert_eq!(rec.stats.global_store_bytes, (rows * n * 8) as u64);
    }

    #[test]
    fn corner_truncate_2d() {
        let (grids, nx, ny, nfx, nfy) = (2usize, 8usize, 8usize, 2usize, 4usize);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", grids * nx * ny);
        let dst = dev.alloc("dst", grids * nfx * nfy);
        dev.upload(src, &seq(grids * nx * ny));
        let k = StridedCopyKernel::new(
            "corner",
            CornerTruncate2d {
                grids,
                nx,
                ny,
                nfx,
                nfy,
            },
            src,
            dst,
        );
        dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for g in 0..grids {
            for x in 0..nfx {
                for y in 0..nfy {
                    let src_i = g * nx * ny + x * ny + y;
                    assert_eq!(
                        out[(g * nfx + x) * nfy + y],
                        C32::new(src_i as f32, -(src_i as f32))
                    );
                }
            }
        }
    }

    #[test]
    fn corner_pad_2d_zero_rows() {
        let (grids, nfx, nfy, nx, ny) = (1usize, 2usize, 2usize, 4usize, 4usize);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", grids * nfx * nfy);
        let dst = dev.alloc("dst", grids * nx * ny);
        dev.upload(src, &seq(grids * nfx * nfy));
        dev.upload(dst, &vec![C32::new(7.0, 7.0); grids * nx * ny]);
        let k = StridedCopyKernel::new(
            "cpad",
            CornerPad2d {
                grids,
                nfx,
                nfy,
                nx,
                ny,
            },
            src,
            dst,
        );
        dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for x in 0..nx {
            for y in 0..ny {
                let want = if x < nfx && y < nfy {
                    let i = x * nfy + y;
                    C32::new(i as f32, -(i as f32))
                } else {
                    C32::ZERO
                };
                assert_eq!(out[x * ny + y], want, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn corner_truncate_3d() {
        let (grids, nx, ny, nz, nfx, nfy, nfz) = (2usize, 4, 4, 8, 2, 3, 4);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", grids * nx * ny * nz);
        let dst = dev.alloc("dst", grids * nfx * nfy * nfz);
        dev.upload(src, &seq(grids * nx * ny * nz));
        let k = StridedCopyKernel::new(
            "corner3",
            CornerTruncate3d { grids, nx, ny, nz, nfx, nfy, nfz },
            src,
            dst,
        );
        dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for g in 0..grids {
            for x in 0..nfx {
                for y in 0..nfy {
                    for z in 0..nfz {
                        let src_i = ((g * nx + x) * ny + y) * nz + z;
                        assert_eq!(
                            out[((g * nfx + x) * nfy + y) * nfz + z],
                            C32::new(src_i as f32, -(src_i as f32)),
                            "g={g} x={x} y={y} z={z}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn corner_pad_3d_zero_fills_outside_corner() {
        let (grids, nfx, nfy, nfz, nx, ny, nz) = (1usize, 2, 2, 2, 4, 4, 4);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", grids * nfx * nfy * nfz);
        let dst = dev.alloc("dst", grids * nx * ny * nz);
        dev.upload(src, &seq(grids * nfx * nfy * nfz));
        dev.upload(dst, &vec![C32::new(7.0, 7.0); grids * nx * ny * nz]);
        let k = StridedCopyKernel::new(
            "cpad3",
            CornerPad3d { grids, nfx, nfy, nfz, nx, ny, nz },
            src,
            dst,
        );
        dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let want = if x < nfx && y < nfy && z < nfz {
                        let i = (x * nfy + y) * nfz + z;
                        C32::new(i as f32, -(i as f32))
                    } else {
                        C32::ZERO
                    };
                    assert_eq!(out[(x * ny + y) * nz + z], want, "x={x} y={y} z={z}");
                }
            }
        }
    }

    #[test]
    fn segmented_copy_gathers_across_buffers() {
        let mut dev = GpuDevice::a100();
        let srcs: Vec<_> = (0..3).map(|i| dev.alloc(&format!("s{i}"), 100)).collect();
        for (i, &s) in srcs.iter().enumerate() {
            dev.upload(s, &seq(100).iter().map(|v| *v + C32::new(i as f32 * 1000.0, 0.0)).collect::<Vec<_>>());
        }
        let dst = dev.alloc("dst", 300);
        let segs: Vec<CopySegment> = srcs
            .iter()
            .enumerate()
            .map(|(i, &s)| CopySegment {
                src: s,
                src_base: 0,
                dst,
                dst_base: i * 100,
                len: 100,
            })
            .collect();
        let k = SegmentedCopyKernel::new("gather", segs);
        let rec = dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for i in 0..3 {
            for j in 0..100 {
                assert_eq!(
                    out[i * 100 + j],
                    C32::new(j as f32 + i as f32 * 1000.0, -(j as f32)),
                    "segment {i} elem {j}"
                );
            }
        }
        assert_eq!(rec.stats.global_load_bytes, 300 * 8);
        assert_eq!(rec.stats.global_store_bytes, 300 * 8);
    }

    #[test]
    fn segmented_copy_scatters_and_respects_bases() {
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", 64);
        dev.upload(src, &seq(64));
        let d0 = dev.alloc("d0", 40);
        let d1 = dev.alloc("d1", 40);
        dev.upload(d0, &vec![C32::new(9.0, 9.0); 40]);
        dev.upload(d1, &vec![C32::new(9.0, 9.0); 40]);
        let k = SegmentedCopyKernel::new(
            "scatter",
            vec![
                CopySegment { src, src_base: 0, dst: d0, dst_base: 8, len: 32 },
                CopySegment { src, src_base: 32, dst: d1, dst_base: 0, len: 32 },
            ],
        );
        dev.launch(&k, ExecMode::Functional);
        let (o0, o1) = (dev.download(d0), dev.download(d1));
        for j in 0..32 {
            assert_eq!(o0[8 + j], C32::new(j as f32, -(j as f32)));
            assert_eq!(o1[j], C32::new((32 + j) as f32, -((32 + j) as f32)));
        }
        // untouched regions keep their poison
        assert_eq!(o0[0], C32::new(9.0, 9.0));
        assert_eq!(o1[39], C32::new(9.0, 9.0));
    }

    #[test]
    fn segmented_copy_splits_long_segments_into_blocks() {
        let len = SEGMENT_COPY_BLOCK_ELEMS * 2 + 17;
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", len);
        let dst = dev.alloc("dst", len);
        dev.upload(src, &seq(len));
        let k = SegmentedCopyKernel::new(
            "long",
            vec![CopySegment { src, src_base: 0, dst, dst_base: 0, len }],
        );
        let rec = dev.launch(&k, ExecMode::Functional);
        assert_eq!(rec.stats.blocks, 3);
        assert_eq!(dev.download(dst), seq(len));
    }

    /// The affine address templates must not change a single byte of data
    /// or traffic relative to the per-lane closure path the legacy
    /// executor still runs.
    #[test]
    fn templated_copy_matches_legacy_path_bitwise() {
        let len = SEGMENT_COPY_BLOCK_ELEMS + 77; // full chunk + odd tail
        let run = |legacy: bool| {
            let mut dev = GpuDevice::a100();
            dev.legacy_executor = legacy;
            let src = dev.alloc("src", len);
            let dst = dev.alloc("dst", len + 13);
            dev.upload(src, &seq(len));
            let k = SegmentedCopyKernel::new(
                "tmpl",
                vec![CopySegment { src, src_base: 0, dst, dst_base: 13, len }],
            );
            let rec = dev.launch(&k, ExecMode::Functional);
            (rec.stats, dev.download(dst))
        };
        let (stats_new, out_new) = run(false);
        let (stats_old, out_old) = run(true);
        assert_eq!(stats_new, stats_old, "templates changed traffic accounting");
        assert_eq!(out_new, out_old, "templates changed data movement");
    }

    #[test]
    fn segmented_analytical_matches_functional() {
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", 500);
        let dst = dev.alloc("dst", 500);
        dev.upload(src, &seq(500));
        let k = SegmentedCopyKernel::new(
            "seg",
            vec![
                CopySegment { src, src_base: 0, dst, dst_base: 250, len: 250 },
                CopySegment { src, src_base: 250, dst, dst_base: 0, len: 250 },
            ],
        );
        let f = dev.launch(&k, ExecMode::Functional);
        let a = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(f.stats, a.stats);
    }

    /// Declared access sets must match the real footprint: every output
    /// element written exactly once (block partitions disjoint), reads
    /// covering exactly the source elements — including CornerPad2d's
    /// zero-fill rows, which read nothing but still write full rows.
    #[test]
    fn declared_access_matches_footprint() {
        use std::collections::HashSet;
        let mut dev = GpuDevice::a100();
        let (grids, nfx, nfy, nx, ny) = (2usize, 2usize, 3usize, 5usize, 7usize);
        let src = dev.alloc("src", grids * nfx * nfy);
        let dst = dev.alloc("dst", grids * nx * ny);
        let k = StridedCopyKernel::new(
            "cpad",
            CornerPad2d { grids, nfx, nfy, nx, ny },
            src,
            dst,
        );
        let acc = k.access().expect("copy declares access");
        let mut written = HashSet::new();
        for (_, spans) in &acc.block_writes {
            for span in spans {
                assert_eq!(span.buf, dst);
                for (lo, hi) in span.runs() {
                    for e in lo..hi {
                        assert!(written.insert(e), "element {e} written twice");
                    }
                }
            }
        }
        assert_eq!(written.len(), grids * nx * ny);
        let read_elems: usize = acc.reads.iter().map(|s| s.run * s.count).sum();
        assert_eq!(read_elems, grids * nfx * nfy);
        assert!(acc.reads.iter().all(|s| s.buf == src));

        // Segmented copy: per-block 2048-element chunks over each segment.
        let len = SEGMENT_COPY_BLOCK_ELEMS + 77;
        let a = dev.alloc("a", len);
        let b = dev.alloc("b", len + 13);
        let k = SegmentedCopyKernel::new(
            "seg",
            vec![CopySegment { src: a, src_base: 0, dst: b, dst_base: 13, len }],
        );
        let acc = k.access().expect("segmented copy declares access");
        assert_eq!(acc.block_writes.len(), 2);
        let mut written = HashSet::new();
        for (_, spans) in &acc.block_writes {
            for span in spans {
                assert_eq!(span.buf, b);
                for (lo, hi) in span.runs() {
                    for e in lo..hi {
                        assert!(written.insert(e), "element {e} written twice");
                    }
                }
            }
        }
        assert_eq!(written.len(), len);
        assert!(written.contains(&13) && !written.contains(&12));
        let read_elems: usize = acc.reads.iter().map(|s| s.run * s.count).sum();
        assert_eq!(read_elems, len);
    }

    #[test]
    fn analytical_matches_functional() {
        let (rows, n, nf) = (19usize, 64usize, 16usize);
        let mut dev = GpuDevice::a100();
        let src = dev.alloc("src", rows * n);
        let dst = dev.alloc("dst", rows * nf);
        dev.upload(src, &seq(rows * n));
        let k = StridedCopyKernel::new("trunc", RowTruncate { rows, n, nf }, src, dst);
        let f = dev.launch(&k, ExecMode::Functional);
        let a = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(f.stats, a.stats);
    }
}
