//! FNO Fourier-layer problem descriptions shared by every executor
//! (PyTorch baseline here, TurboFNO variants in the `turbofno` crate).

/// One 1D Fourier layer: input `[batch, k_in, n]`, weight `[k_in, k_out]`,
/// output `[batch, k_out, n]`, keeping `nf` low-frequency modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnoProblem1d {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    pub n: usize,
    pub nf: usize,
}

impl FnoProblem1d {
    pub fn new(batch: usize, k_in: usize, k_out: usize, n: usize, nf: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        assert!(nf >= 1 && nf <= n, "mode count out of range");
        assert!(batch >= 1 && k_in >= 1 && k_out >= 1);
        FnoProblem1d {
            batch,
            k_in,
            k_out,
            n,
            nf,
        }
    }

    /// The paper's GEMM `M` dimension: `BatchSize x` retained positions.
    pub fn gemm_m_total(&self) -> usize {
        self.batch * self.nf
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.k_in * self.n
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.k_out * self.n
    }

    pub fn weight_len(&self) -> usize {
        self.k_in * self.k_out
    }
}

/// One 2D Fourier layer: input `[batch, k_in, nx, ny]`, keeping the
/// `nfx x nfy` low-frequency corner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnoProblem2d {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    pub nx: usize,
    pub ny: usize,
    pub nfx: usize,
    pub nfy: usize,
}

impl FnoProblem2d {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: usize,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        assert!(nx.is_power_of_two() && ny.is_power_of_two());
        assert!(nfx >= 1 && nfx <= nx && nfy >= 1 && nfy <= ny);
        assert!(batch >= 1 && k_in >= 1 && k_out >= 1);
        FnoProblem2d {
            batch,
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
        }
    }

    pub fn gemm_m_total(&self) -> usize {
        self.batch * self.nfx * self.nfy
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.k_in * self.nx * self.ny
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.k_out * self.nx * self.ny
    }

    pub fn weight_len(&self) -> usize {
        self.k_in * self.k_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_1d() {
        let p = FnoProblem1d::new(4, 8, 16, 128, 32);
        assert_eq!(p.gemm_m_total(), 128);
        assert_eq!(p.input_len(), 4 * 8 * 128);
        assert_eq!(p.output_len(), 4 * 16 * 128);
        assert_eq!(p.weight_len(), 128);
    }

    #[test]
    fn sizes_2d() {
        let p = FnoProblem2d::new(2, 4, 4, 64, 32, 16, 8);
        assert_eq!(p.gemm_m_total(), 2 * 16 * 8);
        assert_eq!(p.input_len(), 2 * 4 * 64 * 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        FnoProblem1d::new(1, 1, 1, 100, 10);
    }

    #[test]
    #[should_panic(expected = "mode count")]
    fn excess_modes_rejected() {
        FnoProblem1d::new(1, 1, 1, 64, 65);
    }
}
