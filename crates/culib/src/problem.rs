//! FNO Fourier-layer problem descriptions shared by every executor
//! (PyTorch baseline here, TurboFNO variants in the `turbofno` crate).

/// One 1D Fourier layer: input `[batch, k_in, n]`, weight `[k_in, k_out]`,
/// output `[batch, k_out, n]`, keeping `nf` low-frequency modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnoProblem1d {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    pub n: usize,
    pub nf: usize,
}

impl FnoProblem1d {
    pub fn new(batch: usize, k_in: usize, k_out: usize, n: usize, nf: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        assert!(nf >= 1 && nf <= n, "mode count out of range");
        assert!(batch >= 1 && k_in >= 1 && k_out >= 1);
        FnoProblem1d {
            batch,
            k_in,
            k_out,
            n,
            nf,
        }
    }

    /// The paper's GEMM `M` dimension: `BatchSize x` retained positions.
    pub fn gemm_m_total(&self) -> usize {
        self.batch * self.nf
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.k_in * self.n
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.k_out * self.n
    }

    pub fn weight_len(&self) -> usize {
        self.k_in * self.k_out
    }
}

/// One 2D Fourier layer: input `[batch, k_in, nx, ny]`, keeping the
/// `nfx x nfy` low-frequency corner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnoProblem2d {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    pub nx: usize,
    pub ny: usize,
    pub nfx: usize,
    pub nfy: usize,
}

impl FnoProblem2d {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: usize,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    ) -> Self {
        assert!(nx.is_power_of_two() && ny.is_power_of_two());
        assert!(nfx >= 1 && nfx <= nx && nfy >= 1 && nfy <= ny);
        assert!(batch >= 1 && k_in >= 1 && k_out >= 1);
        FnoProblem2d {
            batch,
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
        }
    }

    pub fn gemm_m_total(&self) -> usize {
        self.batch * self.nfx * self.nfy
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.k_in * self.nx * self.ny
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.k_out * self.nx * self.ny
    }

    pub fn weight_len(&self) -> usize {
        self.k_in * self.k_out
    }
}

/// Highest spatial rank the spectral engine supports.
pub const MAX_RANK: usize = 3;

/// Rank-generic spectral layer shape: `batch` grids of `k_in` hidden
/// channels over a dense row-major spatial grid `dims[..rank]`, keeping the
/// low-frequency corner `modes[..rank]`, mixed to `k_out` channels by one
/// shared `[k_in, k_out]` spectral weight.
///
/// Axes at positions `>= rank` are `1` so products over the fixed-size
/// arrays work for every rank; the innermost (contiguous) axis is
/// `dims[rank - 1]`. This one struct replaces the `FnoProblem1d` /
/// `FnoProblem2d` twins everywhere inside the engine; the rank-specific
/// descriptors remain as thin public conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpectralShape {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    pub rank: usize,
    /// Spatial extents, outermost first; entries `>= rank` are 1.
    pub dims: [usize; MAX_RANK],
    /// Retained modes per axis; entries `>= rank` are 1.
    pub modes: [usize; MAX_RANK],
}

impl SpectralShape {
    /// 1D shape with the full spectrum retained (clamp with
    /// [`SpectralShape::with_modes`]).
    pub fn d1(batch: usize, k_in: usize, k_out: usize, n: usize) -> Self {
        SpectralShape {
            batch,
            k_in,
            k_out,
            rank: 1,
            dims: [n, 1, 1],
            modes: [n, 1, 1],
        }
    }

    /// 2D shape with the full spectrum retained.
    pub fn d2(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize) -> Self {
        SpectralShape {
            batch,
            k_in,
            k_out,
            rank: 2,
            dims: [nx, ny, 1],
            modes: [nx, ny, 1],
        }
    }

    /// 3D shape with the full spectrum retained.
    #[allow(clippy::too_many_arguments)]
    pub fn d3(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize, nz: usize) -> Self {
        SpectralShape {
            batch,
            k_in,
            k_out,
            rank: 3,
            dims: [nx, ny, nz],
            modes: [nx, ny, nz],
        }
    }

    /// Set the retained mode counts, clamping each axis to its spatial
    /// extent — the ONE clamp rule every rank shares (a request for more
    /// modes than samples keeps the full spectrum of that axis).
    pub fn with_modes(mut self, modes: &[usize]) -> Self {
        assert_eq!(
            modes.len(),
            self.rank,
            "expected {} mode counts for a rank-{} shape, got {}",
            self.rank,
            self.rank,
            modes.len()
        );
        for (a, &m) in modes.iter().enumerate() {
            self.modes[a] = m.min(self.dims[a]);
        }
        self
    }

    /// Panic unless the shape is executable: power-of-two FFT lengths,
    /// in-range mode counts, non-empty batch/channel dims. Uses the same
    /// messages as [`FnoProblem1d::new`] so rank-1 callers see identical
    /// diagnostics.
    pub fn validate(&self) {
        assert!(
            self.rank >= 1 && self.rank <= MAX_RANK,
            "spectral rank must be 1..={MAX_RANK}"
        );
        for a in 0..self.rank {
            assert!(
                self.dims[a].is_power_of_two(),
                "FFT length must be a power of two"
            );
            assert!(
                self.modes[a] >= 1 && self.modes[a] <= self.dims[a],
                "mode count out of range"
            );
        }
        for a in self.rank..MAX_RANK {
            assert!(
                self.dims[a] == 1 && self.modes[a] == 1,
                "axes beyond the rank must be 1"
            );
        }
        assert!(self.batch >= 1 && self.k_in >= 1 && self.k_out >= 1);
    }

    /// Product of the spatial extents (one grid's element count).
    pub fn spatial_len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Product of the retained modes (one grid's spectral corner).
    pub fn modes_total(&self) -> usize {
        self.modes.iter().product()
    }

    /// Product of the retained modes of every axis left of the innermost
    /// one — the number of already-transformed "outer" spectral positions
    /// the inner FFT–CGEMM–iFFT stage is batched over (1 for rank 1).
    pub fn outer_modes(&self) -> usize {
        self.modes[..self.rank - 1].iter().product()
    }

    /// The paper's GEMM `M` dimension: `batch x` retained positions.
    pub fn gemm_m_total(&self) -> usize {
        self.batch * self.modes_total()
    }

    pub fn input_len(&self) -> usize {
        self.batch * self.k_in * self.spatial_len()
    }

    pub fn output_len(&self) -> usize {
        self.batch * self.k_out * self.spatial_len()
    }

    pub fn weight_len(&self) -> usize {
        self.k_in * self.k_out
    }

    /// The 1D problem descriptor, if this is a rank-1 shape.
    pub fn to_problem_1d(&self) -> Option<FnoProblem1d> {
        (self.rank == 1).then(|| FnoProblem1d::new(self.batch, self.k_in, self.k_out, self.dims[0], self.modes[0]))
    }

    /// The 2D problem descriptor, if this is a rank-2 shape.
    pub fn to_problem_2d(&self) -> Option<FnoProblem2d> {
        (self.rank == 2).then(|| {
            FnoProblem2d::new(
                self.batch, self.k_in, self.k_out, self.dims[0], self.dims[1], self.modes[0],
                self.modes[1],
            )
        })
    }
}

impl From<&FnoProblem1d> for SpectralShape {
    fn from(p: &FnoProblem1d) -> Self {
        SpectralShape::d1(p.batch, p.k_in, p.k_out, p.n).with_modes(&[p.nf])
    }
}

impl From<&FnoProblem2d> for SpectralShape {
    fn from(p: &FnoProblem2d) -> Self {
        SpectralShape::d2(p.batch, p.k_in, p.k_out, p.nx, p.ny).with_modes(&[p.nfx, p.nfy])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_1d() {
        let p = FnoProblem1d::new(4, 8, 16, 128, 32);
        assert_eq!(p.gemm_m_total(), 128);
        assert_eq!(p.input_len(), 4 * 8 * 128);
        assert_eq!(p.output_len(), 4 * 16 * 128);
        assert_eq!(p.weight_len(), 128);
    }

    #[test]
    fn sizes_2d() {
        let p = FnoProblem2d::new(2, 4, 4, 64, 32, 16, 8);
        assert_eq!(p.gemm_m_total(), 2 * 16 * 8);
        assert_eq!(p.input_len(), 2 * 4 * 64 * 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        FnoProblem1d::new(1, 1, 1, 100, 10);
    }

    #[test]
    #[should_panic(expected = "mode count")]
    fn excess_modes_rejected() {
        FnoProblem1d::new(1, 1, 1, 64, 65);
    }

    #[test]
    fn shape_roundtrips_problem_descriptors() {
        let p1 = FnoProblem1d::new(4, 8, 16, 128, 32);
        let s1 = SpectralShape::from(&p1);
        assert_eq!(s1.to_problem_1d(), Some(p1));
        assert_eq!(s1.to_problem_2d(), None);
        assert_eq!(s1.input_len(), p1.input_len());
        assert_eq!(s1.gemm_m_total(), p1.gemm_m_total());
        assert_eq!(s1.outer_modes(), 1);

        let p2 = FnoProblem2d::new(2, 4, 4, 64, 32, 16, 8);
        let s2 = SpectralShape::from(&p2);
        assert_eq!(s2.to_problem_2d(), Some(p2));
        assert_eq!(s2.to_problem_1d(), None);
        assert_eq!(s2.output_len(), p2.output_len());
        assert_eq!(s2.outer_modes(), 16);
    }

    #[test]
    fn shape_3d_sizes() {
        let s = SpectralShape::d3(2, 4, 8, 8, 16, 32).with_modes(&[4, 8, 16]);
        s.validate();
        assert_eq!(s.spatial_len(), 8 * 16 * 32);
        assert_eq!(s.modes_total(), 4 * 8 * 16);
        assert_eq!(s.outer_modes(), 4 * 8);
        assert_eq!(s.input_len(), 2 * 4 * 8 * 16 * 32);
        assert_eq!(s.output_len(), 2 * 8 * 8 * 16 * 32);
        assert_eq!(s.weight_len(), 32);
    }

    /// The one shared clamp rule: every axis independently clamps its mode
    /// request to the axis extent, at every rank.
    #[test]
    fn with_modes_clamps_per_axis() {
        for m in [1usize, 16, 32, 33, 64, 65, 1000] {
            let want = m.min(64);
            assert_eq!(SpectralShape::d1(1, 2, 2, 64).with_modes(&[m]).modes, [want, 1, 1]);
            assert_eq!(
                SpectralShape::d2(1, 2, 2, 64, 64).with_modes(&[m, m]).modes,
                [want, want, 1]
            );
            assert_eq!(
                SpectralShape::d3(1, 2, 2, 64, 64, 64).with_modes(&[m, m, m]).modes,
                [want, want, want]
            );
        }
        // clamps are per-axis, not uniform
        let s = SpectralShape::d3(1, 1, 1, 8, 16, 32).with_modes(&[100, 100, 100]);
        assert_eq!(s.modes, [8, 16, 32]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shape_validate_rejects_non_pow2_axis() {
        SpectralShape::d3(1, 1, 1, 8, 12, 16).validate();
    }

    #[test]
    #[should_panic(expected = "mode count out of range")]
    fn shape_validate_rejects_zero_modes() {
        let mut s = SpectralShape::d2(1, 1, 1, 8, 8);
        s.modes = [0, 8, 1];
        s.validate();
    }
}
