//! The PyTorch-style baseline executor (the paper's comparison base).
//!
//! Replicates, kernel for kernel, what `torch.fft` + `einsum`-as-batched-
//! CGEMM + tensor slicing/padding do for one FNO Fourier layer:
//!
//! * **1D** (5 kernels): full FFT → truncate-copy → CGEMM → pad-copy →
//!   full iFFT;
//! * **2D** (7 kernels): full FFT-y → full FFT-x → corner-truncate-copy →
//!   CGEMM → corner-pad-copy → full iFFT-x → full iFFT-y;
//! * **3D** (9 kernels): full FFT-z → FFT-y → FFT-x → corner-truncate →
//!   CGEMM → corner-pad → iFFT-x → iFFT-y → iFFT-z.
//!
//! Every stage round-trips global memory, and the copies exist only because
//! cuFFT cannot filter — the two inefficiencies TurboFNO removes.
//! [`try_run_pytorch_stacked`] is the rank-generic entry the engine
//! dispatches through.

use crate::copy::{
    CornerPad2d, CornerPad3d, CornerTruncate2d, CornerTruncate3d, RowPad, RowTruncate,
    StridedCopyKernel,
};
use crate::cublas::CuBlas;
use crate::cufft::CuFft;
use crate::problem::{FnoProblem1d, FnoProblem2d, SpectralShape};
use tfno_cgemm::{BatchedOperand, GemmShape, MatView, WeightStacking};
use tfno_fft::{FftDirection, StridedPencils};
use tfno_backend::Backend;
use tfno_gpu_sim::{BufferId, ExecMode, KernelStats, LaunchError, LaunchRecord};

/// The launches of one pipeline execution.
#[derive(Clone, Debug, Default)]
pub struct PipelineRun {
    pub launches: Vec<LaunchRecord>,
}

impl PipelineRun {
    pub fn total_us(&self) -> f64 {
        self.launches.iter().map(|l| l.time_us).sum()
    }

    pub fn kernel_count(&self) -> usize {
        self.launches.len()
    }

    pub fn total_stats(&self) -> KernelStats {
        self.launches.iter().map(|l| l.stats).sum()
    }

    pub fn push(&mut self, rec: LaunchRecord) {
        self.launches.push(rec);
    }
}

/// Allocate an intermediate matching the virtualness of the pipeline input
/// (analytical sweeps run entirely on virtual buffers).
pub fn alloc_like(dev: &mut dyn Backend, reference: BufferId, name: &str, len: usize) -> BufferId {
    if dev.memory().is_virtual(reference) {
        dev.memory_mut().alloc_virtual(name, len)
    } else {
        dev.alloc(name, len)
    }
}

/// [`alloc_like`] through the device's typed fault path (virtual buffers
/// model analytics-only storage and are never faulted).
pub fn try_alloc_like(
    dev: &mut dyn Backend,
    reference: BufferId,
    name: &str,
    len: usize,
) -> Result<BufferId, LaunchError> {
    if dev.memory().is_virtual(reference) {
        Ok(dev.memory_mut().alloc_virtual(name, len))
    } else {
        dev.try_alloc(name, len)
    }
}

/// Run the 1D baseline pipeline: `y = iFFT(pad(W * trunc(FFT(x))))`.
///
/// * `x`: `[batch, k_in, n]`, `w`: `[k_in, k_out]` row-major,
///   `y`: `[batch, k_out, n]`.
pub fn run_pytorch_1d(
    dev: &mut dyn Backend,
    p: &FnoProblem1d,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    mode: ExecMode,
) -> PipelineRun {
    run_pytorch_1d_stacked(dev, p, x, w, WeightStacking::SHARED, y, mode)
}

/// [`run_pytorch_1d`] with a stacked weight operand: `w` holds one
/// `[k_in, k_out]` slice per `ws.group` consecutive batch entries (the
/// mixed-weight serving stack collapsed into one baseline launch sequence).
pub fn run_pytorch_1d_stacked(
    dev: &mut dyn Backend,
    p: &FnoProblem1d,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> PipelineRun {
    try_run_pytorch_1d_stacked(dev, p, x, w, ws, y, mode)
        .unwrap_or_else(|e| panic!("pytorch 1d baseline failed: {e}"))
}

/// [`run_pytorch_1d_stacked`] through the device's typed fault path. A
/// faulted stage aborts the rest of the sequence; completed stages only
/// wrote scratch intermediates, so the caller's `y` is untouched unless
/// every stage succeeded, and retrying the whole sequence is sound.
pub fn try_run_pytorch_1d_stacked(
    dev: &mut dyn Backend,
    p: &FnoProblem1d,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> Result<PipelineRun, LaunchError> {
    let mut run = PipelineRun::default();
    let (b, ki, ko, n, nf) = (p.batch, p.k_in, p.k_out, p.n, p.nf);

    let xf = try_alloc_like(dev, x, "pt.xf", b * ki * n)?;
    let xf_t = try_alloc_like(dev, x, "pt.xf_t", b * ki * nf)?;
    let yf_t = try_alloc_like(dev, x, "pt.yf_t", b * ko * nf)?;
    let yf_pad = try_alloc_like(dev, x, "pt.yf_pad", b * ko * n)?;

    // 1. full forward FFT (cuFFT cannot truncate)
    run.push(CuFft::try_exec_rows(
        dev,
        "pt.fft",
        n,
        b * ki,
        FftDirection::Forward,
        x,
        xf,
        mode,
    )?);

    // 2. truncation memcpy
    let trunc = StridedCopyKernel::new(
        "pt.truncate",
        RowTruncate {
            rows: b * ki,
            n,
            nf,
        },
        xf,
        xf_t,
    );
    run.push(dev.try_launch(&trunc, mode)?);

    // 3. batched CGEMM along the hidden dim
    run.push(CuBlas::try_cgemm_strided_batched(
        dev,
        "pt.cgemm",
        GemmShape {
            batch: b,
            m: nf,
            n: ko,
            k: ki,
        },
        BatchedOperand::strided(xf_t, MatView { base: 0, row_stride: 1, col_stride: nf, }, ki * nf),
        BatchedOperand::stacked(w, MatView::row_major(0, ko), ws),
        BatchedOperand::strided(yf_t, MatView { base: 0, row_stride: 1, col_stride: nf, }, ko * nf),
        tfno_num::C32::ONE,
        tfno_num::C32::ZERO,
        mode,
    )?);

    // 4. zero-padding memcpy
    let pad = StridedCopyKernel::new(
        "pt.pad",
        RowPad {
            rows: b * ko,
            nf,
            n,
        },
        yf_t,
        yf_pad,
    );
    run.push(dev.try_launch(&pad, mode)?);

    // 5. full inverse FFT
    run.push(CuFft::try_exec_rows(
        dev,
        "pt.ifft",
        n,
        b * ko,
        FftDirection::Inverse,
        yf_pad,
        y,
        mode,
    )?);

    Ok(run)
}

/// Run the 2D baseline pipeline (7 kernels).
///
/// * `x`: `[batch, k_in, nx, ny]`, `w`: `[k_in, k_out]`,
///   `y`: `[batch, k_out, nx, ny]`.
pub fn run_pytorch_2d(
    dev: &mut dyn Backend,
    p: &FnoProblem2d,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    mode: ExecMode,
) -> PipelineRun {
    run_pytorch_2d_stacked(dev, p, x, w, WeightStacking::SHARED, y, mode)
}

/// [`run_pytorch_2d`] with a stacked weight operand (see
/// [`run_pytorch_1d_stacked`]).
pub fn run_pytorch_2d_stacked(
    dev: &mut dyn Backend,
    p: &FnoProblem2d,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> PipelineRun {
    try_run_pytorch_2d_stacked(dev, p, x, w, ws, y, mode)
        .unwrap_or_else(|e| panic!("pytorch 2d baseline failed: {e}"))
}

/// [`run_pytorch_2d_stacked`] through the device's typed fault path (see
/// [`try_run_pytorch_1d_stacked`] for the abort contract).
pub fn try_run_pytorch_2d_stacked(
    dev: &mut dyn Backend,
    p: &FnoProblem2d,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> Result<PipelineRun, LaunchError> {
    let mut run = PipelineRun::default();
    let (b, ki, ko) = (p.batch, p.k_in, p.k_out);
    let (nx, ny, nfx, nfy) = (p.nx, p.ny, p.nfx, p.nfy);

    let t1 = try_alloc_like(dev, x, "pt2.t1", b * ki * nx * ny)?;
    let t2 = try_alloc_like(dev, x, "pt2.t2", b * ki * nx * ny)?;
    let xf_t = try_alloc_like(dev, x, "pt2.xf_t", b * ki * nfx * nfy)?;
    let yf_t = try_alloc_like(dev, x, "pt2.yf_t", b * ko * nfx * nfy)?;
    let yf_pad = try_alloc_like(dev, x, "pt2.yf_pad", b * ko * nx * ny)?;
    let t3 = try_alloc_like(dev, x, "pt2.t3", b * ko * nx * ny)?;

    // 1. full FFT along y
    run.push(CuFft::try_exec_rows(
        dev,
        "pt2.fft_y",
        ny,
        b * ki * nx,
        FftDirection::Forward,
        x,
        t1,
        mode,
    )?);

    // 2. full FFT along x (strided pencils)
    run.push(CuFft::try_exec_strided(
        dev,
        "pt2.fft_x",
        nx,
        StridedPencils::along_axis(b * ki, nx, nx, ny),
        FftDirection::Forward,
        t1,
        t2,
        mode,
    )?);

    // 3. corner truncation memcpy
    let trunc = StridedCopyKernel::new(
        "pt2.truncate",
        CornerTruncate2d {
            grids: b * ki,
            nx,
            ny,
            nfx,
            nfy,
        },
        t2,
        xf_t,
    );
    run.push(dev.try_launch(&trunc, mode)?);

    // 4. batched CGEMM along the hidden dim
    let m = nfx * nfy;
    run.push(CuBlas::try_cgemm_strided_batched(
        dev,
        "pt2.cgemm",
        GemmShape {
            batch: b,
            m,
            n: ko,
            k: ki,
        },
        BatchedOperand::strided(xf_t, MatView { base: 0, row_stride: 1, col_stride: m, }, ki * m),
        BatchedOperand::stacked(w, MatView::row_major(0, ko), ws),
        BatchedOperand::strided(yf_t, MatView { base: 0, row_stride: 1, col_stride: m, }, ko * m),
        tfno_num::C32::ONE,
        tfno_num::C32::ZERO,
        mode,
    )?);

    // 5. corner padding memcpy
    let pad = StridedCopyKernel::new(
        "pt2.pad",
        CornerPad2d {
            grids: b * ko,
            nfx,
            nfy,
            nx,
            ny,
        },
        yf_t,
        yf_pad,
    );
    run.push(dev.try_launch(&pad, mode)?);

    // 6. full inverse FFT along x
    run.push(CuFft::try_exec_strided(
        dev,
        "pt2.ifft_x",
        nx,
        StridedPencils::along_axis(b * ko, nx, nx, ny),
        FftDirection::Inverse,
        yf_pad,
        t3,
        mode,
    )?);

    // 7. full inverse FFT along y
    run.push(CuFft::try_exec_rows(
        dev,
        "pt2.ifft_y",
        ny,
        b * ko * nx,
        FftDirection::Inverse,
        t3,
        y,
        mode,
    )?);

    Ok(run)
}

/// [`try_run_pytorch_3d_stacked`] without weight stacking, panicking on
/// faults (the unsandboxed convenience wrapper the 1D/2D baselines have).
pub fn run_pytorch_3d(
    dev: &mut dyn Backend,
    s: &SpectralShape,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    mode: ExecMode,
) -> PipelineRun {
    try_run_pytorch_3d_stacked(dev, s, x, w, WeightStacking::SHARED, y, mode)
        .unwrap_or_else(|e| panic!("pytorch 3d baseline failed: {e}"))
}

/// Run the 3D baseline pipeline (9 kernels) through the device's typed
/// fault path: one full FFT per axis (innermost z first), the corner
/// truncation/padding copies cuFFT forces, and the hidden-dim CGEMM.
///
/// * `x`: `[batch, k_in, nx, ny, nz]`, `w`: `[k_in, k_out]`,
///   `y`: `[batch, k_out, nx, ny, nz]`.
pub fn try_run_pytorch_3d_stacked(
    dev: &mut dyn Backend,
    s: &SpectralShape,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> Result<PipelineRun, LaunchError> {
    assert_eq!(s.rank, 3, "3d baseline needs a rank-3 shape");
    let mut run = PipelineRun::default();
    let (b, ki, ko) = (s.batch, s.k_in, s.k_out);
    let [nx, ny, nz] = s.dims;
    let [nfx, nfy, nfz] = s.modes;
    let grid = nx * ny * nz;
    let corner = nfx * nfy * nfz;

    let t1 = try_alloc_like(dev, x, "pt3.t1", b * ki * grid)?;
    let t2 = try_alloc_like(dev, x, "pt3.t2", b * ki * grid)?;
    let t3 = try_alloc_like(dev, x, "pt3.t3", b * ki * grid)?;
    let xf_t = try_alloc_like(dev, x, "pt3.xf_t", b * ki * corner)?;
    let yf_t = try_alloc_like(dev, x, "pt3.yf_t", b * ko * corner)?;
    let yf_pad = try_alloc_like(dev, x, "pt3.yf_pad", b * ko * grid)?;
    let t4 = try_alloc_like(dev, x, "pt3.t4", b * ko * grid)?;
    let t5 = try_alloc_like(dev, x, "pt3.t5", b * ko * grid)?;

    // 1. full FFT along z (contiguous rows)
    run.push(CuFft::try_exec_rows(
        dev,
        "pt3.fft_z",
        nz,
        b * ki * nx * ny,
        FftDirection::Forward,
        x,
        t1,
        mode,
    )?);

    // 2. full FFT along y (strided pencils)
    run.push(CuFft::try_exec_strided(
        dev,
        "pt3.fft_y",
        ny,
        StridedPencils::along_axis(b * ki * nx, ny, ny, nz),
        FftDirection::Forward,
        t1,
        t2,
        mode,
    )?);

    // 3. full FFT along x (strided pencils)
    run.push(CuFft::try_exec_strided(
        dev,
        "pt3.fft_x",
        nx,
        StridedPencils::along_axis(b * ki, nx, nx, ny * nz),
        FftDirection::Forward,
        t2,
        t3,
        mode,
    )?);

    // 4. corner truncation memcpy
    let trunc = StridedCopyKernel::new(
        "pt3.truncate",
        CornerTruncate3d {
            grids: b * ki,
            nx,
            ny,
            nz,
            nfx,
            nfy,
            nfz,
        },
        t3,
        xf_t,
    );
    run.push(dev.try_launch(&trunc, mode)?);

    // 5. batched CGEMM along the hidden dim
    let m = corner;
    run.push(CuBlas::try_cgemm_strided_batched(
        dev,
        "pt3.cgemm",
        GemmShape {
            batch: b,
            m,
            n: ko,
            k: ki,
        },
        BatchedOperand::strided(xf_t, MatView { base: 0, row_stride: 1, col_stride: m, }, ki * m),
        BatchedOperand::stacked(w, MatView::row_major(0, ko), ws),
        BatchedOperand::strided(yf_t, MatView { base: 0, row_stride: 1, col_stride: m, }, ko * m),
        tfno_num::C32::ONE,
        tfno_num::C32::ZERO,
        mode,
    )?);

    // 6. corner padding memcpy
    let pad = StridedCopyKernel::new(
        "pt3.pad",
        CornerPad3d {
            grids: b * ko,
            nfx,
            nfy,
            nfz,
            nx,
            ny,
            nz,
        },
        yf_t,
        yf_pad,
    );
    run.push(dev.try_launch(&pad, mode)?);

    // 7. full inverse FFT along x
    run.push(CuFft::try_exec_strided(
        dev,
        "pt3.ifft_x",
        nx,
        StridedPencils::along_axis(b * ko, nx, nx, ny * nz),
        FftDirection::Inverse,
        yf_pad,
        t4,
        mode,
    )?);

    // 8. full inverse FFT along y
    run.push(CuFft::try_exec_strided(
        dev,
        "pt3.ifft_y",
        ny,
        StridedPencils::along_axis(b * ko * nx, ny, ny, nz),
        FftDirection::Inverse,
        t4,
        t5,
        mode,
    )?);

    // 9. full inverse FFT along z
    run.push(CuFft::try_exec_rows(
        dev,
        "pt3.ifft_z",
        nz,
        b * ko * nx * ny,
        FftDirection::Inverse,
        t5,
        y,
        mode,
    )?);

    Ok(run)
}

/// Rank-generic baseline entry: dispatch a [`SpectralShape`] to the 1D, 2D
/// or 3D kernel sequence. The per-rank bodies stay separate because the
/// baseline's WHOLE point is replicating the rank-specific launch sequences
/// PyTorch emits; this is the one seam the engine calls through.
pub fn try_run_pytorch_stacked(
    dev: &mut dyn Backend,
    s: &SpectralShape,
    x: BufferId,
    w: BufferId,
    ws: WeightStacking,
    y: BufferId,
    mode: ExecMode,
) -> Result<PipelineRun, LaunchError> {
    match s.rank {
        1 => {
            let p = s.to_problem_1d().expect("rank checked");
            try_run_pytorch_1d_stacked(dev, &p, x, w, ws, y, mode)
        }
        2 => {
            let p = s.to_problem_2d().expect("rank checked");
            try_run_pytorch_2d_stacked(dev, &p, x, w, ws, y, mode)
        }
        3 => try_run_pytorch_3d_stacked(dev, s, x, w, ws, y, mode),
        // INVARIANT: SpectralShape::validate() rejects ranks outside 1..=3
        // before any launch path runs, so this arm is unreachable.
        r => panic!("unsupported spectral rank {r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfno_gpu_sim::GpuDevice;
    use tfno_num::error::rel_l2_error;
    use tfno_num::{reference, C32, CTensor};

    fn rand_like(len: usize, seed: f32) -> Vec<C32> {
        (0..len)
            .map(|i| {
                C32::new(
                    ((i as f32) * 0.17 + seed).sin(),
                    ((i as f32) * 0.23 - seed).cos(),
                )
            })
            .collect()
    }

    #[test]
    fn pipeline_1d_matches_reference_layer() {
        let p = FnoProblem1d::new(2, 4, 4, 64, 16);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", p.input_len());
        let w = dev.alloc("w", p.weight_len());
        let y = dev.alloc("y", p.output_len());
        let xd = rand_like(p.input_len(), 0.3);
        let wd = rand_like(p.weight_len(), 0.7);
        dev.upload(x, &xd);
        dev.upload(w, &wd);

        let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
        assert_eq!(run.kernel_count(), 5);

        let xt = CTensor::from_vec(xd, &[p.batch, p.k_in, p.n]);
        let wt = CTensor::from_vec(wd, &[p.k_in, p.k_out]);
        let want = reference::fno_layer_1d(&xt, &wt, p.nf);
        let got = dev.download(y);
        let err = rel_l2_error(&got, want.data());
        assert!(err < 1e-4, "rel l2 error {err}");
    }

    #[test]
    fn pipeline_2d_matches_reference_layer() {
        let p = FnoProblem2d::new(1, 2, 2, 16, 16, 4, 4);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", p.input_len());
        let w = dev.alloc("w", p.weight_len());
        let y = dev.alloc("y", p.output_len());
        let xd = rand_like(p.input_len(), 0.1);
        let wd = rand_like(p.weight_len(), 0.9);
        dev.upload(x, &xd);
        dev.upload(w, &wd);

        let run = run_pytorch_2d(&mut dev, &p, x, w, y, ExecMode::Functional);
        assert_eq!(run.kernel_count(), 7);

        let xt = CTensor::from_vec(xd, &[p.batch, p.k_in, p.nx, p.ny]);
        let wt = CTensor::from_vec(wd, &[p.k_in, p.k_out]);
        let want = reference::fno_layer_2d(&xt, &wt, p.nfx, p.nfy);
        let got = dev.download(y);
        let err = rel_l2_error(&got, want.data());
        assert!(err < 1e-4, "rel l2 error {err}");
    }

    #[test]
    fn pipeline_3d_matches_reference_layer() {
        let s = SpectralShape::d3(1, 2, 3, 4, 8, 16).with_modes(&[2, 3, 5]);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", s.input_len());
        let w = dev.alloc("w", s.weight_len());
        let y = dev.alloc("y", s.output_len());
        let xd = rand_like(s.input_len(), 0.6);
        let wd = rand_like(s.weight_len(), 0.2);
        dev.upload(x, &xd);
        dev.upload(w, &wd);

        let run = run_pytorch_3d(&mut dev, &s, x, w, y, ExecMode::Functional);
        assert_eq!(run.kernel_count(), 9);

        let xt = CTensor::from_vec(xd, &[s.batch, s.k_in, 4, 8, 16]);
        let wt = CTensor::from_vec(wd, &[s.k_in, s.k_out]);
        let want = reference::fno_layer_3d(&xt, &wt, 2, 3, 5);
        let got = dev.download(y);
        let err = rel_l2_error(&got, want.data());
        assert!(err < 1e-4, "rel l2 error {err}");
    }

    #[test]
    fn generic_dispatch_matches_per_rank_entries() {
        let p = FnoProblem1d::new(2, 4, 4, 64, 16);
        let s = SpectralShape::from(&p);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", p.input_len());
        let w = dev.alloc("w", p.weight_len());
        let (y1, y2) = (dev.alloc("y1", p.output_len()), dev.alloc("y2", p.output_len()));
        dev.upload(x, &rand_like(p.input_len(), 0.3));
        dev.upload(w, &rand_like(p.weight_len(), 0.7));
        let r1 = try_run_pytorch_1d_stacked(
            &mut dev, &p, x, w, WeightStacking::SHARED, y1, ExecMode::Functional,
        )
        .unwrap();
        let r2 = try_run_pytorch_stacked(
            &mut dev, &s, x, w, WeightStacking::SHARED, y2, ExecMode::Functional,
        )
        .unwrap();
        assert_eq!(r1.kernel_count(), r2.kernel_count());
        assert_eq!(dev.download(y1), dev.download(y2));
    }

    #[test]
    fn analytical_pipeline_on_virtual_buffers() {
        let p = FnoProblem1d::new(8, 32, 32, 128, 32);
        let mut dev = GpuDevice::a100();
        let x = dev.memory.alloc_virtual("x", p.input_len());
        let w = dev.memory.alloc_virtual("w", p.weight_len());
        let y = dev.memory.alloc_virtual("y", p.output_len());
        let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Analytical);
        assert_eq!(run.kernel_count(), 5);
        assert!(run.total_us() > 0.0);
        // 5 launches, each paying launch overhead
        let overhead = 5.0 * dev.config.kernel_launch_overhead_us;
        assert!(run.total_us() >= overhead);
    }

    #[test]
    fn functional_equals_analytical_stats() {
        let p = FnoProblem1d::new(2, 8, 8, 64, 16);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", p.input_len());
        let w = dev.alloc("w", p.weight_len());
        let y = dev.alloc("y", p.output_len());
        dev.upload(x, &rand_like(p.input_len(), 0.2));
        dev.upload(w, &rand_like(p.weight_len(), 0.4));
        let f = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
        let a = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Analytical);
        assert_eq!(f.total_stats(), a.total_stats());
    }
}
