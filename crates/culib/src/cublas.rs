//! cuBLAS-like CGEMM facade.
//!
//! `cgemm_strided_batched` mirrors `cublasCgemmStridedBatched`: strided
//! operands, any alpha/beta, internally tuned tile selection. Like the real
//! library it is a black box — callers cannot fuse anything into it, which
//! is precisely the restriction TurboFNO removes.

use tfno_cgemm::{BatchedCgemmKernel, BatchedOperand, GemmShape, TileConfig};
use tfno_backend::Backend;
use tfno_gpu_sim::{ExecMode, LaunchError, LaunchRecord};
use tfno_num::C32;

/// Stateless cuBLAS-like entry point.
pub struct CuBlas;

impl CuBlas {
    /// Pick a tile the way a tuned library would: large tiles when the
    /// problem fills them, Table-1 tiles otherwise.
    pub fn select_tile(shape: &GemmShape) -> TileConfig {
        let large = TileConfig::large64();
        if shape.m.is_multiple_of(large.m_tb) && shape.n.is_multiple_of(large.n_tb) && shape.m >= 128 {
            large
        } else {
            TileConfig::table1()
        }
    }

    /// Build the kernel `cgemm_strided_batched` would launch, without
    /// launching it. Callers that record replayable launch sequences
    /// (CUDA-graph-style capture) keep the returned kernel object alive —
    /// along with its internal main-loop trace — and re-launch it on warm
    /// replays.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel(
        name: &str,
        shape: GemmShape,
        a: BatchedOperand,
        b: BatchedOperand,
        c: BatchedOperand,
        alpha: C32,
        beta: C32,
    ) -> BatchedCgemmKernel {
        let tile = Self::select_tile(&shape);
        BatchedCgemmKernel::new(name, tile, shape, a, b, c, alpha, beta)
    }

    /// `C = alpha * A B + beta * C`, batched with strides.
    #[allow(clippy::too_many_arguments)]
    pub fn cgemm_strided_batched(
        dev: &mut dyn Backend,
        name: &str,
        shape: GemmShape,
        a: BatchedOperand,
        b: BatchedOperand,
        c: BatchedOperand,
        alpha: C32,
        beta: C32,
        mode: ExecMode,
    ) -> LaunchRecord {
        let k = Self::kernel(name, shape, a, b, c, alpha, beta);
        dev.launch(&k, mode)
    }

    /// [`CuBlas::cgemm_strided_batched`] through the device's typed fault
    /// path.
    #[allow(clippy::too_many_arguments)]
    pub fn try_cgemm_strided_batched(
        dev: &mut dyn Backend,
        name: &str,
        shape: GemmShape,
        a: BatchedOperand,
        b: BatchedOperand,
        c: BatchedOperand,
        alpha: C32,
        beta: C32,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        let k = Self::kernel(name, shape, a, b, c, alpha, beta);
        dev.try_launch(&k, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfno_gpu_sim::GpuDevice;
    use tfno_cgemm::MatView;
    use tfno_num::error::{assert_close, gemm_tolerance};
    use tfno_num::reference;

    #[test]
    fn tile_selection() {
        let small = GemmShape {
            batch: 1,
            m: 64,
            n: 32,
            k: 16,
        };
        assert_eq!(CuBlas::select_tile(&small), TileConfig::table1());
        let big = GemmShape {
            batch: 1,
            m: 4096,
            n: 64,
            k: 64,
        };
        assert_eq!(CuBlas::select_tile(&big), TileConfig::large64());
    }

    #[test]
    fn batched_gemm_matches_reference() {
        let (batch, m, n, k) = (2usize, 64usize, 32usize, 24usize);
        let mut dev = GpuDevice::a100();
        let a_buf = dev.alloc("A", batch * m * k);
        let b_buf = dev.alloc("B", k * n);
        let c_buf = dev.alloc("C", batch * m * n);
        let a: Vec<C32> = (0..batch * m * k)
            .map(|i| C32::new((i as f32 * 0.3).sin(), (i as f32 * 0.9).cos()))
            .collect();
        let b: Vec<C32> = (0..k * n)
            .map(|i| C32::new((i as f32 * 0.7).cos(), (i as f32 * 0.2).sin()))
            .collect();
        dev.upload(a_buf, &a);
        dev.upload(b_buf, &b);
        CuBlas::cgemm_strided_batched(
            &mut dev,
            "gemm",
            GemmShape { batch, m, n, k },
            BatchedOperand::strided(a_buf, MatView::row_major(0, k), m * k),
            BatchedOperand::shared(b_buf, MatView::row_major(0, n)),
            BatchedOperand::strided(c_buf, MatView::row_major(0, n), m * n),
            C32::ONE,
            C32::ZERO,
            ExecMode::Functional,
        );
        let out = dev.download(c_buf);
        for bi in 0..batch {
            let mut want = vec![C32::ZERO; m * n];
            reference::cgemm(
                m,
                n,
                k,
                C32::ONE,
                &a[bi * m * k..(bi + 1) * m * k],
                &b,
                C32::ZERO,
                &mut want,
            );
            assert_close(
                &out[bi * m * n..(bi + 1) * m * n],
                &want,
                gemm_tolerance(k, 2.0),
                &format!("batch {bi}"),
            );
        }
    }
}
