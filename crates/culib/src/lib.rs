//! # tfno-culib
//!
//! Emulation of the closed-source library stack the paper compares against:
//!
//! * [`cufft`] — a cuFFT-like planner: fast batched Stockham transforms,
//!   but **no truncation/padding/filtering support** (paper §2.2);
//! * [`cublas`] — a cuBLAS-like strided-batched CGEMM facade;
//! * [`copy`] — the PyTorch-style truncation/zero-padding memory-copy
//!   kernels forced by the libraries' black-box design;
//! * [`pytorch`] — the full baseline executor chaining them (5 kernels in
//!   1D, 7 in 2D, 9 in 3D), numerically validated against
//!   `tfno_num::reference`;
//! * [`problem`] — Fourier-layer problem descriptors shared with the
//!   TurboFNO executors, including the rank-generic [`SpectralShape`].

// The cuFFT-facade planner takes the same long parameter list the real
// `cufftPlanMany` does — flattening it is part of the emulation.
#![allow(clippy::too_many_arguments)]

pub mod copy;
pub mod cublas;
pub mod cufft;
pub mod problem;
pub mod pytorch;

pub use copy::{
    CopySegment, CornerPad2d, CornerPad3d, CornerTruncate2d, CornerTruncate3d, RowPad,
    RowTruncate, SegmentedCopyKernel, StridedCopyKernel,
};
pub use cublas::CuBlas;
pub use cufft::{CuFft, CUFFT_L1_HIT};
pub use problem::{FnoProblem1d, FnoProblem2d, SpectralShape, MAX_RANK};
pub use pytorch::{
    alloc_like, run_pytorch_1d, run_pytorch_1d_stacked, run_pytorch_2d, run_pytorch_2d_stacked,
    run_pytorch_3d, try_alloc_like, try_run_pytorch_1d_stacked, try_run_pytorch_2d_stacked,
    try_run_pytorch_3d_stacked, try_run_pytorch_stacked, PipelineRun,
};
