//! cuFFT-like planner facade.
//!
//! Models the closed-source library's two decisive properties (paper §2.2):
//! it is *fast* (same Stockham kernel as ours, good spatial cache
//! behaviour) but it **cannot truncate, pad or filter** — every transform
//! reads and writes full-length signals, forcing the separate copy kernels
//! of [`crate::copy`] around it.

use tfno_fft::{
    BatchedFftKernel, FftBlockConfig, FftDirection, FftKernelConfig, FftPlan, RowPencils,
    StridedPencils,
};
use tfno_backend::Backend;
use tfno_gpu_sim::{BufferId, ExecMode, LaunchError, LaunchRecord};

/// L1/L2 hit rate of the library's spatial-order batched FFTs: consecutive
/// thread blocks walk adjacent rows, so tile boundaries and twiddle tables
/// cache well. (The paper's hidden-dim-ordered variant gives this up —
/// `turbofno::pipeline` uses a lower rate there.)
pub const CUFFT_L1_HIT: f64 = 0.45;

/// Stateless cuFFT-like entry points (plan creation folded into the call;
/// plan reuse is free in the simulator).
pub struct CuFft;

impl CuFft {
    /// Batched C2C over `rows` contiguous rows of length `n` — always the
    /// full transform (no truncation support in the library).
    pub fn exec_rows(
        dev: &mut dyn Backend,
        name: &str,
        n: usize,
        rows: usize,
        dir: FftDirection,
        input: BufferId,
        output: BufferId,
        mode: ExecMode,
    ) -> LaunchRecord {
        let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n)).with_l1_hit_rate(CUFFT_L1_HIT);
        let plan = FftPlan::full(n, dir);
        let addr = RowPencils {
            count: rows,
            in_row_len: n,
            out_row_len: n,
        };
        let k = BatchedFftKernel::new(name, cfg, plan, addr, input, output);
        dev.launch(&k, mode)
    }

    /// [`CuFft::exec_rows`] through the device's typed fault path.
    #[allow(clippy::too_many_arguments)]
    pub fn try_exec_rows(
        dev: &mut dyn Backend,
        name: &str,
        n: usize,
        rows: usize,
        dir: FftDirection,
        input: BufferId,
        output: BufferId,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n)).with_l1_hit_rate(CUFFT_L1_HIT);
        let plan = FftPlan::full(n, dir);
        let addr = RowPencils {
            count: rows,
            in_row_len: n,
            out_row_len: n,
        };
        let k = BatchedFftKernel::new(name, cfg, plan, addr, input, output);
        dev.try_launch(&k, mode)
    }

    /// Strided batched C2C (`cufftPlanMany`-style), full transform.
    #[allow(clippy::too_many_arguments)]
    pub fn exec_strided(
        dev: &mut dyn Backend,
        name: &str,
        n: usize,
        addressing: StridedPencils,
        dir: FftDirection,
        input: BufferId,
        output: BufferId,
        mode: ExecMode,
    ) -> LaunchRecord {
        let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n)).with_l1_hit_rate(CUFFT_L1_HIT);
        let plan = FftPlan::full(n, dir);
        let k = BatchedFftKernel::new(name, cfg, plan, addressing, input, output);
        dev.launch(&k, mode)
    }

    /// [`CuFft::exec_strided`] through the device's typed fault path.
    #[allow(clippy::too_many_arguments)]
    pub fn try_exec_strided(
        dev: &mut dyn Backend,
        name: &str,
        n: usize,
        addressing: StridedPencils,
        dir: FftDirection,
        input: BufferId,
        output: BufferId,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n)).with_l1_hit_rate(CUFFT_L1_HIT);
        let plan = FftPlan::full(n, dir);
        let k = BatchedFftKernel::new(name, cfg, plan, addressing, input, output);
        dev.try_launch(&k, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfno_gpu_sim::GpuDevice;
    use tfno_num::error::{assert_close, fft_tolerance};
    use tfno_num::{reference, C32};

    #[test]
    fn cufft_rows_roundtrip() {
        let (n, rows) = (64usize, 8usize);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", rows * n);
        let f = dev.alloc("f", rows * n);
        let y = dev.alloc("y", rows * n);
        let data: Vec<C32> = (0..rows * n)
            .map(|i| C32::new((i as f32 * 0.11).sin(), (i as f32 * 0.07).cos()))
            .collect();
        dev.upload(x, &data);
        CuFft::exec_rows(&mut dev, "fwd", n, rows, FftDirection::Forward, x, f, ExecMode::Functional);
        CuFft::exec_rows(&mut dev, "inv", n, rows, FftDirection::Inverse, f, y, ExecMode::Functional);
        let out = dev.download(y);
        assert_close(&out, &data, fft_tolerance(n, 2.0), "roundtrip");
    }

    #[test]
    fn cufft_always_writes_full_rows() {
        let (n, rows) = (128usize, 8usize);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", rows * n);
        let f = dev.alloc("f", rows * n);
        let rec = CuFft::exec_rows(
            &mut dev,
            "fwd",
            n,
            rows,
            FftDirection::Forward,
            x,
            f,
            ExecMode::Functional,
        );
        assert_eq!(rec.stats.global_store_bytes, (rows * n * 8) as u64);
    }

    #[test]
    fn strided_matches_reference_columns() {
        // one 8x4 grid; transform along x (stride ny)
        let (nx, ny) = (8usize, 4usize);
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", nx * ny);
        let f = dev.alloc("f", nx * ny);
        let data: Vec<C32> = (0..nx * ny)
            .map(|i| C32::new(i as f32, -(i as f32) * 0.5))
            .collect();
        dev.upload(x, &data);
        let addr = StridedPencils {
            count: ny,
            group: ny,
            in_group_stride: 0,
            in_pencil_stride: 1,
            in_idx_stride: ny,
            out_group_stride: 0,
            out_pencil_stride: 1,
            out_idx_stride: ny,
        };
        CuFft::exec_strided(
            &mut dev,
            "fftx",
            nx,
            addr,
            FftDirection::Forward,
            x,
            f,
            ExecMode::Functional,
        );
        let out = dev.download(f);
        for y in 0..ny {
            let col: Vec<C32> = (0..nx).map(|i| data[i * ny + y]).collect();
            let want = reference::dft_full(&col);
            let got: Vec<C32> = (0..nx).map(|i| out[i * ny + y]).collect();
            assert_close(&got, &want, fft_tolerance(nx, 2.0), &format!("col {y}"));
        }
    }
}
