//! Integration tests of the baseline executor's structural properties —
//! the cost structure the paper attributes to PyTorch must actually hold
//! in the emulation.

use tfno_culib::{run_pytorch_1d, run_pytorch_2d, FnoProblem1d, FnoProblem2d};
use tfno_gpu_sim::{ExecMode, GpuDevice};
use tfno_num::C32;

fn data(n: usize) -> Vec<C32> {
    (0..n)
        .map(|i| C32::new((i as f32 * 0.19).sin(), (i as f32 * 0.41).cos()))
        .collect()
}

#[test]
fn baseline_1d_has_five_stages_in_order() {
    let p = FnoProblem1d::new(2, 8, 8, 64, 16);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", p.input_len());
    let w = dev.alloc("w", p.weight_len());
    let y = dev.alloc("y", p.output_len());
    dev.upload(x, &data(p.input_len()));
    dev.upload(w, &data(p.weight_len()));
    let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
    let names: Vec<&str> = run.launches.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["pt.fft", "pt.truncate", "pt.cgemm", "pt.pad", "pt.ifft"]
    );
}

#[test]
fn baseline_ffts_never_truncate() {
    // cuFFT cannot filter: both transforms move full-length rows.
    let p = FnoProblem1d::new(2, 8, 8, 128, 16);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", p.input_len());
    let w = dev.alloc("w", p.weight_len());
    let y = dev.alloc("y", p.output_len());
    dev.upload(x, &data(p.input_len()));
    dev.upload(w, &data(p.weight_len()));
    let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
    let full_rows = (p.batch * p.k_in * p.n * 8) as u64;
    let fft = &run.launches[0];
    assert_eq!(fft.stats.global_load_bytes, full_rows);
    assert_eq!(fft.stats.global_store_bytes, full_rows);
    let ifft = &run.launches[4];
    assert_eq!(ifft.stats.global_load_bytes, full_rows);
    assert_eq!(ifft.stats.global_store_bytes, full_rows);
}

#[test]
fn baseline_copies_move_exactly_the_filter_tensors() {
    let p = FnoProblem1d::new(3, 4, 4, 64, 16);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", p.input_len());
    let w = dev.alloc("w", p.weight_len());
    let y = dev.alloc("y", p.output_len());
    dev.upload(x, &data(p.input_len()));
    dev.upload(w, &data(p.weight_len()));
    let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
    let trunc = &run.launches[1];
    let nf_bytes = (p.batch * p.k_in * p.nf * 8) as u64;
    assert_eq!(trunc.stats.global_load_bytes, nf_bytes);
    assert_eq!(trunc.stats.global_store_bytes, nf_bytes);
    let pad = &run.launches[3];
    // pad writes the FULL padded tensor (zeros included)
    assert_eq!(
        pad.stats.global_store_bytes,
        (p.batch * p.k_out * p.n * 8) as u64
    );
}

#[test]
fn baseline_2d_has_seven_stages() {
    let p = FnoProblem2d::new(1, 4, 4, 16, 16, 4, 4);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", p.input_len());
    let w = dev.alloc("w", p.weight_len());
    let y = dev.alloc("y", p.output_len());
    dev.upload(x, &data(p.input_len()));
    dev.upload(w, &data(p.weight_len()));
    let run = run_pytorch_2d(&mut dev, &p, x, w, y, ExecMode::Functional);
    assert_eq!(run.kernel_count(), 7);
    // every stage pays a launch
    let overhead = dev.config.kernel_launch_overhead_us;
    assert!(run.total_us() >= 7.0 * overhead);
}

#[test]
fn pipeline_run_accumulates() {
    let p = FnoProblem1d::new(1, 4, 4, 64, 16);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", p.input_len());
    let w = dev.alloc("w", p.weight_len());
    let y = dev.alloc("y", p.output_len());
    dev.upload(x, &data(p.input_len()));
    dev.upload(w, &data(p.weight_len()));
    let run = run_pytorch_1d(&mut dev, &p, x, w, y, ExecMode::Functional);
    let sum: f64 = run.launches.iter().map(|l| l.time_us).sum();
    assert!((run.total_us() - sum).abs() < 1e-9);
    let stats = run.total_stats();
    assert_eq!(
        stats.flops,
        run.launches.iter().map(|l| l.stats.flops).sum::<u64>()
    );
}
