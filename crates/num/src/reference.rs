//! Reference (naive, obviously-correct) implementations.
//!
//! These O(N^2) DFTs and triple-loop GEMMs are the ground truth every
//! simulated GPU kernel is validated against. Conventions:
//!
//! * Forward DFT is **unnormalized**: `X[f] = sum_n x[n] W_N^{fn}` with
//!   `W_N = e^{-2 pi i / N}`.
//! * Inverse DFT carries the `1/N` factor (the PyTorch `ifft` convention,
//!   which is what the paper's baseline uses).
//! * Frequency truncation keeps the **first `nf` modes** (the paper's
//!   Fig. 1 keeps the low-frequency corner; see DESIGN.md §1).
//! * The spectral weight is a single complex `K_in x K_out` matrix shared
//!   across retained modes (the paper's single-CGEMM formulation).

use crate::{C32, CTensor};

/// Naive forward DFT of one signal. `out.len() <= input.len()` is allowed
/// and computes only the first `out.len()` frequency components
/// (built-in truncation, the reference for the paper's Fig. 4).
pub fn dft(input: &[C32], out: &mut [C32]) {
    let n = input.len();
    assert!(out.len() <= n, "cannot produce more modes than samples");
    for (f, o) in out.iter_mut().enumerate() {
        let mut acc = C32::ZERO;
        for (t, &x) in input.iter().enumerate() {
            acc += x * C32::twiddle(f * t % n, n);
        }
        *o = acc;
    }
}

/// Naive inverse DFT with `1/N` normalization. `modes.len() <= out.len()`
/// is allowed and treats the missing high-frequency modes as zero
/// (built-in zero-padding).
pub fn idft(modes: &[C32], out: &mut [C32]) {
    let n = out.len();
    assert!(modes.len() <= n, "more modes than output samples");
    let scale = 1.0 / n as f32;
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc = C32::ZERO;
        for (f, &m) in modes.iter().enumerate() {
            acc += m * C32::twiddle_inv(f * t % n, n);
        }
        *o = acc.scale(scale);
    }
}

/// Forward DFT returning all `n` modes.
pub fn dft_full(input: &[C32]) -> Vec<C32> {
    let mut out = vec![C32::ZERO; input.len()];
    dft(input, &mut out);
    out
}

/// Row-major complex GEMM: `C = alpha * A(MxK) * B(KxN) + beta * C(MxN)`.
pub fn cgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: C32,
    a: &[C32],
    b: &[C32],
    beta: C32,
    c: &mut [C32],
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = C32::ZERO;
            for p in 0..k {
                acc = acc.mac(a[i * k + p], b[p * n + j]);
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// 2D forward DFT of a `nx x ny` row-major grid, truncated to the
/// low-frequency `nfx x nfy` corner (separable: DFT rows, then columns).
pub fn dft2_truncated(input: &[C32], nx: usize, ny: usize, nfx: usize, nfy: usize) -> Vec<C32> {
    assert_eq!(input.len(), nx * ny);
    assert!(nfx <= nx && nfy <= ny);
    // Stage 1: DFT along y for every row, keep first nfy modes.
    let mut stage1 = vec![C32::ZERO; nx * nfy];
    for x in 0..nx {
        let row = &input[x * ny..(x + 1) * ny];
        dft(row, &mut stage1[x * nfy..(x + 1) * nfy]);
    }
    // Stage 2: DFT along x for every retained column, keep first nfx modes.
    let mut out = vec![C32::ZERO; nfx * nfy];
    let mut col = vec![C32::ZERO; nx];
    let mut colf = vec![C32::ZERO; nfx];
    for fy in 0..nfy {
        for x in 0..nx {
            col[x] = stage1[x * nfy + fy];
        }
        dft(&col, &mut colf);
        for fx in 0..nfx {
            out[fx * nfy + fy] = colf[fx];
        }
    }
    out
}

/// 2D inverse DFT of an `nfx x nfy` low-frequency corner zero-padded to
/// `nx x ny`, with the full `1/(nx*ny)` normalization.
pub fn idft2_padded(modes: &[C32], nfx: usize, nfy: usize, nx: usize, ny: usize) -> Vec<C32> {
    assert_eq!(modes.len(), nfx * nfy);
    assert!(nfx <= nx && nfy <= ny);
    // Stage 1: inverse DFT along x for each retained fy column.
    let mut stage1 = vec![C32::ZERO; nx * nfy];
    let mut colf = vec![C32::ZERO; nfx];
    let mut col = vec![C32::ZERO; nx];
    for fy in 0..nfy {
        for fx in 0..nfx {
            colf[fx] = modes[fx * nfy + fy];
        }
        idft(&colf, &mut col);
        for x in 0..nx {
            stage1[x * nfy + fy] = col[x];
        }
    }
    // Stage 2: inverse DFT along y for every row.
    let mut out = vec![C32::ZERO; nx * ny];
    for x in 0..nx {
        idft(&stage1[x * nfy..(x + 1) * nfy], &mut out[x * ny..(x + 1) * ny]);
    }
    out
}

/// 3D forward DFT of a `nx x ny x nz` row-major grid, truncated to the
/// low-frequency `nfx x nfy x nfz` corner (separable: DFT the contiguous
/// z rows first, then y, then x — innermost axis outward, the same
/// convention `dft2_truncated` uses).
#[allow(clippy::too_many_arguments)]
pub fn dft3_truncated(
    input: &[C32],
    nx: usize,
    ny: usize,
    nz: usize,
    nfx: usize,
    nfy: usize,
    nfz: usize,
) -> Vec<C32> {
    assert_eq!(input.len(), nx * ny * nz);
    assert!(nfx <= nx && nfy <= ny && nfz <= nz);
    // Stage 1: DFT along z for every (x, y) row, keep first nfz modes.
    let mut stage1 = vec![C32::ZERO; nx * ny * nfz];
    for r in 0..nx * ny {
        dft(
            &input[r * nz..(r + 1) * nz],
            &mut stage1[r * nfz..(r + 1) * nfz],
        );
    }
    // Stage 2: DFT along y for every retained (x, fz) pencil.
    let mut stage2 = vec![C32::ZERO; nx * nfy * nfz];
    let mut col = vec![C32::ZERO; ny];
    let mut colf = vec![C32::ZERO; nfy];
    for x in 0..nx {
        for fz in 0..nfz {
            for y in 0..ny {
                col[y] = stage1[(x * ny + y) * nfz + fz];
            }
            dft(&col, &mut colf);
            for fy in 0..nfy {
                stage2[(x * nfy + fy) * nfz + fz] = colf[fy];
            }
        }
    }
    // Stage 3: DFT along x for every retained (fy, fz) pencil.
    let mut out = vec![C32::ZERO; nfx * nfy * nfz];
    let mut col = vec![C32::ZERO; nx];
    let mut colf = vec![C32::ZERO; nfx];
    for fy in 0..nfy {
        for fz in 0..nfz {
            for x in 0..nx {
                col[x] = stage2[(x * nfy + fy) * nfz + fz];
            }
            dft(&col, &mut colf);
            for fx in 0..nfx {
                out[(fx * nfy + fy) * nfz + fz] = colf[fx];
            }
        }
    }
    out
}

/// 3D inverse DFT of an `nfx x nfy x nfz` low-frequency corner zero-padded
/// to `nx x ny x nz`, with the full `1/(nx*ny*nz)` normalization
/// (separable, outermost axis inward — the reverse of `dft3_truncated`).
#[allow(clippy::too_many_arguments)]
pub fn idft3_padded(
    modes: &[C32],
    nfx: usize,
    nfy: usize,
    nfz: usize,
    nx: usize,
    ny: usize,
    nz: usize,
) -> Vec<C32> {
    assert_eq!(modes.len(), nfx * nfy * nfz);
    assert!(nfx <= nx && nfy <= ny && nfz <= nz);
    // Stage 1: inverse DFT along x for each retained (fy, fz) pencil.
    let mut stage1 = vec![C32::ZERO; nx * nfy * nfz];
    let mut colf = vec![C32::ZERO; nfx];
    let mut col = vec![C32::ZERO; nx];
    for fy in 0..nfy {
        for fz in 0..nfz {
            for fx in 0..nfx {
                colf[fx] = modes[(fx * nfy + fy) * nfz + fz];
            }
            idft(&colf, &mut col);
            for x in 0..nx {
                stage1[(x * nfy + fy) * nfz + fz] = col[x];
            }
        }
    }
    // Stage 2: inverse DFT along y for each (x, fz) pencil.
    let mut stage2 = vec![C32::ZERO; nx * ny * nfz];
    let mut colf = vec![C32::ZERO; nfy];
    let mut col = vec![C32::ZERO; ny];
    for x in 0..nx {
        for fz in 0..nfz {
            for fy in 0..nfy {
                colf[fy] = stage1[(x * nfy + fy) * nfz + fz];
            }
            idft(&colf, &mut col);
            for y in 0..ny {
                stage2[(x * ny + y) * nfz + fz] = col[y];
            }
        }
    }
    // Stage 3: inverse DFT along z for every (x, y) row.
    let mut out = vec![C32::ZERO; nx * ny * nz];
    for r in 0..nx * ny {
        idft(
            &stage2[r * nfz..(r + 1) * nfz],
            &mut out[r * nz..(r + 1) * nz],
        );
    }
    out
}

/// Reference 1D FNO Fourier layer (the paper's Fig. 1 pipeline).
///
/// * `x`: `[batch, k_in, n]`
/// * `w`: `[k_in, k_out]` complex spectral weight shared across modes
/// * `nf`: number of retained low-frequency modes (`nf <= n`)
///
/// Returns `[batch, k_out, n]`.
pub fn fno_layer_1d(x: &CTensor, w: &CTensor, nf: usize) -> CTensor {
    let (batch, k_in, n) = match *x.shape() {
        [b, k, n] => (b, k, n),
        _ => panic!("fno_layer_1d expects rank-3 input, got {:?}", x.shape()),
    };
    let (wk_in, k_out) = match *w.shape() {
        [ki, ko] => (ki, ko),
        _ => panic!("weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in, "hidden dim mismatch");
    assert!(nf <= n);

    // Step 1+2: truncated FFT along n for every (b, k) pencil.
    // xf[b, k, f], f < nf
    let mut xf = CTensor::zeros(&[batch, k_in, nf]);
    for b in 0..batch {
        for k in 0..k_in {
            let base = x.offset(&[b, k, 0]);
            let pencil = &x.data()[base..base + n];
            let obase = xf.offset(&[b, k, 0]);
            dft(pencil, &mut xf.data_mut()[obase..obase + nf]);
        }
    }

    // Step 3: CGEMM along the hidden dim at every retained (b, f) position:
    // yf[b, ko, f] = sum_ki xf[b, ki, f] * w[ki, ko]
    let mut yf = CTensor::zeros(&[batch, k_out, nf]);
    for b in 0..batch {
        for f in 0..nf {
            for ko in 0..k_out {
                let mut acc = C32::ZERO;
                for ki in 0..k_in {
                    acc = acc.mac(xf.get(&[b, ki, f]), w.get(&[ki, ko]));
                }
                yf.set(&[b, ko, f], acc);
            }
        }
    }

    // Step 4+5: zero-pad to n and inverse FFT.
    let mut y = CTensor::zeros(&[batch, k_out, n]);
    for b in 0..batch {
        for ko in 0..k_out {
            let base = yf.offset(&[b, ko, 0]);
            let modes = &yf.data()[base..base + nf].to_vec();
            let obase = y.offset(&[b, ko, 0]);
            idft(modes, &mut y.data_mut()[obase..obase + n]);
        }
    }
    y
}

/// Reference 2D FNO Fourier layer.
///
/// * `x`: `[batch, k_in, nx, ny]`
/// * `w`: `[k_in, k_out]`
/// * `nfx`, `nfy`: retained low-frequency corner
///
/// Returns `[batch, k_out, nx, ny]`.
pub fn fno_layer_2d(x: &CTensor, w: &CTensor, nfx: usize, nfy: usize) -> CTensor {
    let (batch, k_in, nx, ny) = match *x.shape() {
        [b, k, nx, ny] => (b, k, nx, ny),
        _ => panic!("fno_layer_2d expects rank-4 input, got {:?}", x.shape()),
    };
    let (wk_in, k_out) = match *w.shape() {
        [ki, ko] => (ki, ko),
        _ => panic!("weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in, "hidden dim mismatch");

    // Truncated 2D FFT per (b, k).
    let mut xf = CTensor::zeros(&[batch, k_in, nfx, nfy]);
    for b in 0..batch {
        for k in 0..k_in {
            let base = x.offset(&[b, k, 0, 0]);
            let grid = &x.data()[base..base + nx * ny];
            let f = dft2_truncated(grid, nx, ny, nfx, nfy);
            let obase = xf.offset(&[b, k, 0, 0]);
            xf.data_mut()[obase..obase + nfx * nfy].copy_from_slice(&f);
        }
    }

    // Hidden-dim CGEMM at every retained (b, fx, fy).
    let mut yf = CTensor::zeros(&[batch, k_out, nfx, nfy]);
    for b in 0..batch {
        for fx in 0..nfx {
            for fy in 0..nfy {
                for ko in 0..k_out {
                    let mut acc = C32::ZERO;
                    for ki in 0..k_in {
                        acc = acc.mac(xf.get(&[b, ki, fx, fy]), w.get(&[ki, ko]));
                    }
                    yf.set(&[b, ko, fx, fy], acc);
                }
            }
        }
    }

    // Zero-pad + inverse 2D FFT.
    let mut y = CTensor::zeros(&[batch, k_out, nx, ny]);
    for b in 0..batch {
        for ko in 0..k_out {
            let base = yf.offset(&[b, ko, 0, 0]);
            let modes = yf.data()[base..base + nfx * nfy].to_vec();
            let g = idft2_padded(&modes, nfx, nfy, nx, ny);
            let obase = y.offset(&[b, ko, 0, 0]);
            y.data_mut()[obase..obase + nx * ny].copy_from_slice(&g);
        }
    }
    y
}

/// Reference 3D FNO Fourier layer.
///
/// * `x`: `[batch, k_in, nx, ny, nz]`
/// * `w`: `[k_in, k_out]`
/// * `nfx`, `nfy`, `nfz`: retained low-frequency corner
///
/// Returns `[batch, k_out, nx, ny, nz]`.
pub fn fno_layer_3d(x: &CTensor, w: &CTensor, nfx: usize, nfy: usize, nfz: usize) -> CTensor {
    let (batch, k_in, nx, ny, nz) = match *x.shape() {
        [b, k, nx, ny, nz] => (b, k, nx, ny, nz),
        _ => panic!("fno_layer_3d expects rank-5 input, got {:?}", x.shape()),
    };
    let (wk_in, k_out) = match *w.shape() {
        [ki, ko] => (ki, ko),
        _ => panic!("weight must be rank-2"),
    };
    assert_eq!(k_in, wk_in, "hidden dim mismatch");
    let (grid, corner) = (nx * ny * nz, nfx * nfy * nfz);

    // Truncated 3D FFT per (b, k).
    let mut xf = CTensor::zeros(&[batch, k_in, nfx, nfy, nfz]);
    for b in 0..batch {
        for k in 0..k_in {
            let base = x.offset(&[b, k, 0, 0, 0]);
            let f = dft3_truncated(&x.data()[base..base + grid], nx, ny, nz, nfx, nfy, nfz);
            let obase = xf.offset(&[b, k, 0, 0, 0]);
            xf.data_mut()[obase..obase + corner].copy_from_slice(&f);
        }
    }

    // Hidden-dim CGEMM at every retained (b, fx, fy, fz).
    let mut yf = CTensor::zeros(&[batch, k_out, nfx, nfy, nfz]);
    for b in 0..batch {
        for fx in 0..nfx {
            for fy in 0..nfy {
                for fz in 0..nfz {
                    for ko in 0..k_out {
                        let mut acc = C32::ZERO;
                        for ki in 0..k_in {
                            acc = acc.mac(xf.get(&[b, ki, fx, fy, fz]), w.get(&[ki, ko]));
                        }
                        yf.set(&[b, ko, fx, fy, fz], acc);
                    }
                }
            }
        }
    }

    // Zero-pad + inverse 3D FFT.
    let mut y = CTensor::zeros(&[batch, k_out, nx, ny, nz]);
    for b in 0..batch {
        for ko in 0..k_out {
            let base = yf.offset(&[b, ko, 0, 0, 0]);
            let modes = yf.data()[base..base + corner].to_vec();
            let g = idft3_padded(&modes, nfx, nfy, nfz, nx, ny, nz);
            let obase = y.offset(&[b, ko, 0, 0, 0]);
            y.data_mut()[obase..obase + grid].copy_from_slice(&g);
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_signal(rng: &mut StdRng, n: usize) -> Vec<C32> {
        (0..n)
            .map(|_| C32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![C32::ZERO; 8];
        x[0] = C32::ONE;
        let f = dft_full(&x);
        for v in f {
            assert!((v - C32::ONE).abs() < 1e-6);
        }
    }

    #[test]
    fn dft_of_constant_concentrates_in_dc() {
        let x = vec![C32::ONE; 16];
        let f = dft_full(&x);
        assert!((f[0] - C32::real(16.0)).abs() < 1e-4);
        for v in &f[1..] {
            assert!(v.abs() < 1e-4, "leakage {v}");
        }
    }

    #[test]
    fn dft_idft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 4, 8, 16, 64] {
            let x = rand_signal(&mut rng, n);
            let f = dft_full(&x);
            let mut y = vec![C32::ZERO; n];
            idft(&f, &mut y);
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-4, "n={n}");
            }
        }
    }

    #[test]
    fn truncated_dft_matches_full_prefix() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = rand_signal(&mut rng, 32);
        let full = dft_full(&x);
        let mut trunc = vec![C32::ZERO; 8];
        dft(&x, &mut trunc);
        for f in 0..8 {
            assert!((full[f] - trunc[f]).abs() < 1e-5);
        }
    }

    #[test]
    fn single_mode_roundtrips_through_truncation() {
        // A signal containing only mode 1 survives truncation to nf >= 2.
        let n = 16;
        let x: Vec<C32> = (0..n).map(|t| C32::twiddle_inv(t, n)).collect();
        let mut modes = vec![C32::ZERO; 4];
        dft(&x, &mut modes);
        let mut y = vec![C32::ZERO; n];
        idft(&modes, &mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn cgemm_identity() {
        let m = 3;
        let k = 3;
        let mut a = vec![C32::ZERO; m * k];
        for i in 0..3 {
            a[i * 3 + i] = C32::ONE;
        }
        let b: Vec<C32> = (0..9).map(|i| C32::new(i as f32, -(i as f32))).collect();
        let mut c = vec![C32::ZERO; 9];
        cgemm(m, 3, k, C32::ONE, &a, &b, C32::ZERO, &mut c);
        for (x, y) in b.iter().zip(&c) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn cgemm_alpha_beta() {
        let a = vec![C32::ONE; 1];
        let b = vec![C32::real(2.0); 1];
        let mut c = vec![C32::real(10.0); 1];
        cgemm(
            1,
            1,
            1,
            C32::real(3.0),
            &a,
            &b,
            C32::real(0.5),
            &mut c,
        );
        // 3 * (1*2) + 0.5 * 10 = 11
        assert!((c[0] - C32::real(11.0)).abs() < 1e-6);
    }

    #[test]
    fn dft2_roundtrip_with_truncation_of_lowpass_signal() {
        // Build a 2D signal with energy only in the 2x2 low corner; a 2x2
        // truncation must then be lossless.
        let (nx, ny) = (8usize, 8usize);
        let mut modes = vec![C32::ZERO; 4];
        modes[0] = C32::new(1.0, 0.5);
        modes[1] = C32::new(-0.5, 0.25);
        modes[2] = C32::new(0.0, 1.0);
        modes[3] = C32::new(0.75, 0.0);
        let x = idft2_padded(&modes, 2, 2, nx, ny);
        let back = dft2_truncated(&x, nx, ny, 2, 2);
        let scale = 1.0; // forward * inverse round trip restores the modes
        for (m, b) in modes.iter().zip(&back) {
            assert!((*m - b.scale(scale)).abs() < 1e-4, "{m} vs {b}");
        }
    }

    #[test]
    fn dft3_roundtrip_with_truncation_of_lowpass_signal() {
        // Energy only in the 2x2x2 low corner; truncation to it is lossless.
        let (nx, ny, nz) = (4usize, 8usize, 4usize);
        let mut rng = StdRng::seed_from_u64(23);
        let modes = rand_signal(&mut rng, 8);
        let x = idft3_padded(&modes, 2, 2, 2, nx, ny, nz);
        let back = dft3_truncated(&x, nx, ny, nz, 2, 2, 2);
        for (m, b) in modes.iter().zip(&back) {
            assert!((*m - *b).abs() < 1e-4, "{m} vs {b}");
        }
    }

    #[test]
    fn dft3_truncation_matches_per_axis_composition() {
        // Separable check: a 3D DFT truncated per axis must equal the 2D
        // truncated DFT of each z-stage slice, composed by hand.
        let (nx, ny, nz, nfx, nfy, nfz) = (4usize, 4usize, 8usize, 2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(29);
        let x = rand_signal(&mut rng, nx * ny * nz);
        let got = dft3_truncated(&x, nx, ny, nz, nfx, nfy, nfz);
        // Hand composition: z rows first...
        let mut stage = vec![C32::ZERO; nx * ny * nfz];
        for r in 0..nx * ny {
            dft(&x[r * nz..(r + 1) * nz], &mut stage[r * nfz..(r + 1) * nfz]);
        }
        // ...then a 2D transform of every fz slice.
        for fz in 0..nfz {
            let slice: Vec<C32> = (0..nx * ny).map(|r| stage[r * nfz + fz]).collect();
            let want = dft2_truncated(&slice, nx, ny, nfx, nfy);
            for r in 0..nfx * nfy {
                let g = got[r * nfz + fz];
                assert!((want[r] - g).abs() < 1e-3, "fz={fz} r={r}: {} vs {g}", want[r]);
            }
        }
    }

    #[test]
    fn fno_layer_3d_identity_full_modes() {
        let mut rng = StdRng::seed_from_u64(31);
        let (b, k, nx, ny, nz) = (1usize, 2usize, 4usize, 4usize, 8usize);
        let x = CTensor::random(&mut rng, &[b, k, nx, ny, nz]);
        let mut w = CTensor::zeros(&[k, k]);
        for i in 0..k {
            w.set(&[i, i], C32::ONE);
        }
        let y = fno_layer_3d(&x, &w, nx, ny, nz);
        assert!(x.max_abs_diff(&y) < 1e-3, "diff={}", x.max_abs_diff(&y));
    }

    #[test]
    fn fno_layer_1d_with_identity_weight_and_full_modes_is_identity() {
        let mut rng = StdRng::seed_from_u64(11);
        let (b, k, n) = (2usize, 3usize, 16usize);
        let x = CTensor::random(&mut rng, &[b, k, n]);
        let mut w = CTensor::zeros(&[k, k]);
        for i in 0..k {
            w.set(&[i, i], C32::ONE);
        }
        let y = fno_layer_1d(&x, &w, n);
        assert!(x.max_abs_diff(&y) < 1e-3, "diff={}", x.max_abs_diff(&y));
    }

    #[test]
    fn fno_layer_1d_truncation_lowpasses() {
        // With identity weights and nf modes kept, the layer acts as an
        // ideal low-pass filter: a pure high-frequency input maps to ~0.
        let (n, nf) = (16usize, 4usize);
        let k = 2;
        let x_data: Vec<C32> = (0..k * n)
            .map(|i| C32::twiddle_inv(8 * (i % n), n)) // mode 8 > nf
            .collect();
        let x = CTensor::from_vec(x_data, &[1, k, n]);
        let mut w = CTensor::zeros(&[k, k]);
        for i in 0..k {
            w.set(&[i, i], C32::ONE);
        }
        let y = fno_layer_1d(&x, &w, nf);
        for v in y.data() {
            assert!(v.abs() < 1e-4, "high mode leaked: {v}");
        }
    }

    #[test]
    fn fno_layer_2d_identity_full_modes() {
        let mut rng = StdRng::seed_from_u64(13);
        let (b, k, nx, ny) = (1usize, 2usize, 8usize, 8usize);
        let x = CTensor::random(&mut rng, &[b, k, nx, ny]);
        let mut w = CTensor::zeros(&[k, k]);
        for i in 0..k {
            w.set(&[i, i], C32::ONE);
        }
        let y = fno_layer_2d(&x, &w, nx, ny);
        assert!(x.max_abs_diff(&y) < 1e-3, "diff={}", x.max_abs_diff(&y));
    }

    #[test]
    fn fno_layer_weights_mix_channels() {
        // With w = [[0,1],[1,0]] the layer swaps the two hidden channels.
        let mut rng = StdRng::seed_from_u64(17);
        let (n,) = (16usize,);
        let x = CTensor::random(&mut rng, &[1, 2, n]);
        let mut w = CTensor::zeros(&[2, 2]);
        w.set(&[0, 1], C32::ONE);
        w.set(&[1, 0], C32::ONE);
        let y = fno_layer_1d(&x, &w, n);
        for t in 0..n {
            assert!((y.get(&[0, 0, t]) - x.get(&[0, 1, t])).abs() < 1e-3);
            assert!((y.get(&[0, 1, t]) - x.get(&[0, 0, t])).abs() < 1e-3);
        }
    }
}
