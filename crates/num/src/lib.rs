//! # tfno-num
//!
//! Numerics substrate for the TurboFNO reproduction: a single-precision
//! complex number type ([`C32`]), dense complex tensors ([`CTensor`]),
//! reference implementations of the DFT / complex GEMM / the full FNO
//! Fourier-layer pipeline ([`mod@reference`]), and error metrics ([`error`]).
//!
//! Everything in the higher crates (simulated GPU kernels, fused pipelines,
//! the FNO model) is validated against the *naive but obviously correct*
//! routines in this crate. Nothing here is performance-sensitive by design:
//! the reference kernels are O(N^2) DFTs and triple-loop GEMMs.

// Reference kernels take explicit shape/stride parameter lists on purpose:
// they mirror the BLAS-style signatures the simulated kernels implement.
#![allow(clippy::too_many_arguments)]

pub mod complex;
pub mod error;
pub mod reference;
pub mod tensor;

pub use complex::C32;
pub use tensor::CTensor;

/// Real floating-point operations performed by one complex multiply
/// (4 real multiplies + 2 adds) followed by an accumulate (2 adds).
///
/// This is the convention used throughout the event accounting: one complex
/// multiply-accumulate (MAC) costs [`FLOPS_PER_CMAC`] real flops.
pub const FLOPS_PER_CMAC: u64 = 8;

/// Real flops for a complex add/subtract.
pub const FLOPS_PER_CADD: u64 = 2;

/// Real flops for a standalone complex multiply (no accumulate).
pub const FLOPS_PER_CMUL: u64 = 6;

/// Size in bytes of one [`C32`] element as stored in simulated memory.
pub const C32_BYTES: usize = 8;
