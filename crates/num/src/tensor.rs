//! Dense complex tensors with row-major layout.
//!
//! [`CTensor`] is intentionally minimal: a `Vec<C32>` plus a shape. The FNO
//! pipeline only needs rank-3 (`[batch, hidden, n]`) and rank-4
//! (`[batch, hidden, x, y]`) tensors, contiguous in row-major order, which is
//! also the layout the simulated global-memory buffers use — so a tensor can
//! be uploaded to the simulator with a plain memcpy.

use crate::C32;
use rand::Rng;

/// A dense, row-major complex tensor.
///
/// ```
/// use tfno_num::{C32, CTensor};
/// let mut t = CTensor::zeros(&[2, 3, 4]);
/// t.set(&[1, 2, 3], C32::ONE);
/// assert_eq!(t.get(&[1, 2, 3]), C32::ONE);
/// assert_eq!(t.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CTensor {
    data: Vec<C32>,
    shape: Vec<usize>,
}

impl CTensor {
    /// Zero-filled tensor with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        CTensor {
            data: vec![C32::ZERO; len],
            shape: shape.to_vec(),
        }
    }

    /// Build from existing data; `data.len()` must equal the shape product.
    pub fn from_vec(data: Vec<C32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        CTensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Tensor with i.i.d. uniform entries in `[-1, 1] x [-1, 1]i`.
    pub fn random<R: Rng>(rng: &mut R, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len)
            .map(|_| C32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        CTensor {
            data,
            shape: shape.to_vec(),
        }
    }

    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn data(&self) -> &[C32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [C32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<C32> {
        self.data
    }

    /// Row-major strides of the current shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.shape[i + 1];
        }
        strides
    }

    /// Flat offset for a multi-index (debug-checked against the shape).
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let strides = self.strides();
        idx.iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &dim), &s)| {
                debug_assert!(i < dim, "index {i} out of bounds for dim {dim}");
                i * s
            })
            .sum()
    }

    #[inline]
    pub fn get(&self, idx: &[usize]) -> C32 {
        self.data[self.offset(idx)]
    }

    #[inline]
    pub fn set(&mut self, idx: &[usize], v: C32) {
        let o = self.offset(idx);
        self.data[o] = v;
    }

    /// Reinterpret with a new shape of equal volume (no data movement).
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape volume mismatch"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &CTensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let t = CTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(t.data().iter().all(|c| *c == C32::ZERO));
    }

    #[test]
    fn strides_row_major() {
        let t = CTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_and_indexing_roundtrip() {
        let mut t = CTensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], C32::new(7.0, -7.0));
        assert_eq!(t.get(&[1, 2, 3]), C32::new(7.0, -7.0));
        assert_eq!(t.offset(&[1, 2, 3]), 23);
        assert_eq!(t.data()[23], C32::new(7.0, -7.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = CTensor::random(&mut rng, &[4, 6]);
        let flat = t.data().to_vec();
        let r = t.reshape(&[2, 12]);
        assert_eq!(r.data(), &flat[..]);
        assert_eq!(r.shape(), &[2, 12]);
    }

    #[test]
    #[should_panic(expected = "reshape volume mismatch")]
    fn reshape_rejects_bad_volume() {
        CTensor::zeros(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ta = CTensor::random(&mut a, &[5, 5]);
        let tb = CTensor::random(&mut b, &[5, 5]);
        assert_eq!(ta, tb);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = CTensor::zeros(&[3]);
        let mut b = CTensor::zeros(&[3]);
        b.set(&[1], C32::new(0.0, 0.5));
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
