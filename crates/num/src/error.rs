//! Error metrics and tolerance helpers.
//!
//! FFT error grows roughly with `sqrt(log2 N)` in well-behaved
//! implementations and the GEMM error with `sqrt(K)`; the helpers here bake
//! those scalings in so tests can use one call site per comparison instead
//! of hand-tuned magic tolerances.

use crate::C32;

/// Maximum absolute element-wise error between two complex slices.
pub fn max_abs_error(a: &[C32], b: &[C32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0f32, f32::max)
}

/// Relative L2 error `||a - b|| / ||b||` (0 when both are zero).
pub fn rel_l2_error(a: &[C32], b: &[C32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        num += (*x - *y).norm_sqr() as f64;
        den += y.norm_sqr() as f64;
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f32::INFINITY };
    }
    (num / den).sqrt() as f32
}

/// A tolerance suitable for comparing an N-point single-precision FFT
/// against the naive DFT reference: scales with the signal magnitude and
/// `sqrt(log2 N)`. The naive reference itself accumulates error linearly,
/// so the bound is intentionally loose by a small constant factor.
pub fn fft_tolerance(n: usize, magnitude: f32) -> f32 {
    let stages = (n.max(2) as f32).log2();
    4.0 * f32::EPSILON * magnitude * (n as f32) * stages.sqrt().max(1.0)
}

/// Tolerance for a K-deep complex dot product / GEMM accumulation.
pub fn gemm_tolerance(k: usize, magnitude: f32) -> f32 {
    8.0 * f32::EPSILON * magnitude * magnitude * (k as f32)
}

/// Panic with a readable report unless `max_abs_error(a, b) <= tol`.
#[track_caller]
pub fn assert_close(a: &[C32], b: &[C32], tol: f32, what: &str) {
    let err = max_abs_error(a, b);
    assert!(
        err <= tol,
        "{what}: max abs error {err:.3e} exceeds tolerance {tol:.3e} (len {})",
        a.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_error_basics() {
        let a = [C32::new(1.0, 0.0), C32::new(0.0, 2.0)];
        let b = [C32::new(1.0, 0.0), C32::new(0.0, 0.0)];
        assert_eq!(max_abs_error(&a, &b), 2.0);
        assert_eq!(max_abs_error(&a, &a), 0.0);
    }

    #[test]
    fn rel_l2_error_basics() {
        let a = [C32::real(2.0)];
        let b = [C32::real(1.0)];
        assert!((rel_l2_error(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(rel_l2_error(&b, &b), 0.0);
        let z = [C32::ZERO];
        assert_eq!(rel_l2_error(&z, &z), 0.0);
        assert!(rel_l2_error(&a, &z).is_infinite());
    }

    #[test]
    fn tolerances_grow_with_size() {
        assert!(fft_tolerance(1024, 1.0) > fft_tolerance(16, 1.0));
        assert!(gemm_tolerance(256, 1.0) > gemm_tolerance(8, 1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn assert_close_panics_on_divergence() {
        let a = [C32::real(1.0)];
        let b = [C32::real(2.0)];
        assert_close(&a, &b, 1e-6, "unit");
    }
}
