//! Single-precision complex arithmetic.
//!
//! The simulated kernels operate on [`C32`] values exactly the way a CUDA
//! kernel operates on `cuComplex`: 8 bytes, two `f32` lanes, no implicit
//! widening. We deliberately do not pull in an external complex crate so the
//! arithmetic (and its flop counts) stays fully visible to the simulator.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number, layout-compatible with `cuComplex`.
///
/// ```
/// use tfno_num::C32;
/// let a = C32::new(1.0, 2.0);
/// let b = C32::new(3.0, -1.0);
/// assert_eq!(a * b, C32::new(5.0, 5.0));
/// assert_eq!(C32::ZERO.mac(a, b), a * b); // fused multiply-accumulate
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct C32 {
    pub re: f32,
    pub im: f32,
}

impl C32 {
    pub const ZERO: C32 = C32 { re: 0.0, im: 0.0 };
    pub const ONE: C32 = C32 { re: 1.0, im: 0.0 };
    pub const I: C32 = C32 { re: 0.0, im: 1.0 };

    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        C32 { re, im }
    }

    /// Purely real value.
    #[inline]
    pub const fn real(re: f32) -> Self {
        C32 { re, im: 0.0 }
    }

    /// `e^{i theta}` — used for twiddle factors.
    #[inline]
    pub fn expi(theta: f64) -> Self {
        C32 {
            re: theta.cos() as f32,
            im: theta.sin() as f32,
        }
    }

    /// The forward-DFT twiddle `W_n^k = e^{-2 pi i k / n}`.
    #[inline]
    pub fn twiddle(k: usize, n: usize) -> Self {
        Self::expi(-2.0 * std::f64::consts::PI * (k as f64) / (n as f64))
    }

    /// The inverse-DFT twiddle `e^{+2 pi i k / n}`.
    #[inline]
    pub fn twiddle_inv(k: usize, n: usize) -> Self {
        Self::expi(2.0 * std::f64::consts::PI * (k as f64) / (n as f64))
    }

    #[inline]
    pub fn conj(self) -> Self {
        C32 {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn scale(self, s: f32) -> Self {
        C32 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Fused multiply-accumulate: `self + a * b`.
    ///
    /// This is the innermost operation of the CGEMM kernels; counting one
    /// call as [`crate::FLOPS_PER_CMAC`] real flops keeps accounting honest.
    #[inline]
    pub fn mac(self, a: C32, b: C32) -> Self {
        C32 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Multiply by `i` (no real multiplies — a swap and a negate).
    #[inline]
    pub fn mul_i(self) -> Self {
        C32 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiply by `-i`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        C32 {
            re: self.im,
            im: -self.re,
        }
    }

    /// True when both lanes are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for C32 {
    type Output = C32;
    #[inline]
    fn add(self, rhs: C32) -> C32 {
        C32 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C32 {
    type Output = C32;
    #[inline]
    fn sub(self, rhs: C32) -> C32 {
        C32 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C32 {
    type Output = C32;
    #[inline]
    fn mul(self, rhs: C32) -> C32 {
        C32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f32> for C32 {
    type Output = C32;
    #[inline]
    fn mul(self, rhs: f32) -> C32 {
        self.scale(rhs)
    }
}

impl Div<f32> for C32 {
    type Output = C32;
    #[inline]
    fn div(self, rhs: f32) -> C32 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for C32 {
    type Output = C32;
    #[inline]
    fn neg(self) -> C32 {
        C32 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for C32 {
    #[inline]
    fn add_assign(&mut self, rhs: C32) {
        *self = *self + rhs;
    }
}

impl SubAssign for C32 {
    #[inline]
    fn sub_assign(&mut self, rhs: C32) {
        *self = *self - rhs;
    }
}

impl MulAssign for C32 {
    #[inline]
    fn mul_assign(&mut self, rhs: C32) {
        *self = *self * rhs;
    }
}

impl Sum for C32 {
    fn sum<I: Iterator<Item = C32>>(iter: I) -> C32 {
        iter.fold(C32::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for C32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C32, b: C32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -1.0);
        assert_eq!(a + b, C32::new(4.0, 1.0));
        assert_eq!(a - b, C32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, C32::new(5.0, 5.0));
        assert_eq!(-a, C32::new(-1.0, -2.0));
    }

    #[test]
    fn mac_matches_mul_add() {
        let acc = C32::new(0.5, -0.25);
        let a = C32::new(1.5, 2.0);
        let b = C32::new(-0.75, 0.5);
        assert_eq!(acc.mac(a, b), acc + a * b);
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = C32::new(3.0, -4.0);
        assert_eq!(a.mul_i(), a * C32::I);
        assert_eq!(a.mul_neg_i(), a * C32::new(0.0, -1.0));
    }

    #[test]
    fn twiddle_identities() {
        // W_n^0 = 1
        assert!(close(C32::twiddle(0, 8), C32::ONE, 1e-7));
        // W_4^1 = -i
        assert!(close(C32::twiddle(1, 4), C32::new(0.0, -1.0), 1e-7));
        // W_n^k * W_n^{n-k} = 1 (unit modulus, conjugate pairs)
        for n in [4usize, 8, 16, 128] {
            for k in 1..n {
                let prod = C32::twiddle(k, n) * C32::twiddle(n - k, n);
                assert!(close(prod, C32::ONE, 1e-5), "n={n} k={k} prod={prod}");
            }
        }
        // inverse twiddle is the conjugate of the forward twiddle
        for k in 0..16 {
            assert!(close(C32::twiddle_inv(k, 16), C32::twiddle(k, 16).conj(), 1e-7));
        }
    }

    #[test]
    fn conj_and_norm() {
        let a = C32::new(3.0, 4.0);
        assert_eq!(a.conj(), C32::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C32::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![C32::new(1.0, 1.0); 4];
        let s: C32 = v.into_iter().sum();
        assert_eq!(s, C32::new(4.0, 4.0));
    }
}
