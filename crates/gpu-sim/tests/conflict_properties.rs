//! Property tests of the bank-conflict and coalescing models — the
//! accounting layer every swizzle claim rests on.

use proptest::prelude::*;
use tfno_gpu_sim::shared::{warp_bank_cycles, warp_bank_cycles_wide, LANES_PER_PHASE};
use tfno_gpu_sim::{GpuDevice, WarpIdx};

proptest! {
    /// Utilization is always in (0, 1]; actual >= ideal.
    #[test]
    fn prop_utilization_bounds(addrs in proptest::collection::vec(0usize..4096, 32)) {
        let idx = WarpIdx::from_fn(|l| Some(addrs[l]));
        let s = warp_bank_cycles(&idx);
        prop_assert!(s.actual_cycles >= s.ideal_cycles);
        prop_assert!(s.ideal_cycles >= 1);
        let u = s.utilization();
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    /// Permuting lanes *within a phase* cannot change the replay count
    /// (banks do not care which lane asks).
    #[test]
    fn prop_phase_permutation_invariance(
        addrs in proptest::collection::vec(0usize..1024, 32),
        swap_a in 0usize..16,
        swap_b in 0usize..16,
    ) {
        let base = WarpIdx::from_fn(|l| Some(addrs[l]));
        let mut permuted = addrs.clone();
        permuted.swap(swap_a, swap_b); // both lanes in phase 0
        let perm = WarpIdx::from_fn(|l| Some(permuted[l]));
        prop_assert_eq!(warp_bank_cycles(&base).actual_cycles,
                        warp_bank_cycles(&perm).actual_cycles);
    }

    /// A uniform shift of all addresses by a multiple of the bank period
    /// (16 elements = 32 words) preserves conflict structure exactly.
    #[test]
    fn prop_bank_period_shift_invariance(
        addrs in proptest::collection::vec(0usize..512, 32),
        shift in 0usize..8,
    ) {
        let base = WarpIdx::from_fn(|l| Some(addrs[l]));
        let shifted = WarpIdx::from_fn(|l| Some(addrs[l] + shift * 16));
        prop_assert_eq!(warp_bank_cycles(&base).actual_cycles,
                        warp_bank_cycles(&shifted).actual_cycles);
    }

    /// Contiguous accesses are always conflict-free at any base.
    #[test]
    fn prop_contiguous_always_clean(base in 0usize..100_000) {
        let idx = WarpIdx::contiguous(base);
        let s = warp_bank_cycles(&idx);
        prop_assert_eq!(s.actual_cycles, s.ideal_cycles);
    }

    /// Wide (vectorized) accesses never produce more phases than scalar
    /// accesses of the same footprint would, and stay within bounds.
    #[test]
    fn prop_wide_access_sane(base in 0usize..4096, width_sel in 0usize..3) {
        let width = [1usize, 2, 4][width_sel];
        let lanes = LANES_PER_PHASE / width;
        let idx = WarpIdx::from_fn(|l| (l < lanes).then(|| base + l * width));
        let s = warp_bank_cycles_wide(&idx, width);
        // a dense block of 16 contiguous elements is one clean phase
        prop_assert_eq!(s.ideal_cycles, 1);
        prop_assert_eq!(s.actual_cycles, 1);
    }

    /// Global coalescing: a contiguous warp read costs exactly 8 sectors;
    /// any other pattern costs at least as many.
    #[test]
    fn prop_contiguous_coalescing_is_optimal(
        offsets in proptest::collection::vec(0usize..64, 32),
    ) {
        let mut dev = GpuDevice::a100();
        let buf = dev.alloc("p", 8192);
        let dense = dev.memory.access_cost(buf, &WarpIdx::contiguous(0));
        prop_assert_eq!(dense.sectors, 8);
        let scattered = WarpIdx::from_fn(|l| Some(l * 64 + offsets[l] % 32));
        let cost = dev.memory.access_cost(buf, &scattered);
        prop_assert!(cost.sectors >= 8);
        prop_assert!(cost.sectors <= 64, "an 8B element spans at most 2 sectors");
    }
}

/// Broadcast degenerates to a single conflict-free cycle per phase.
#[test]
fn broadcast_has_unit_cost() {
    for elem in [0usize, 7, 31, 1000] {
        let idx = WarpIdx::from_fn(|_| Some(elem));
        let s = warp_bank_cycles(&idx);
        assert_eq!(s.actual_cycles, s.ideal_cycles);
    }
}

// ---- fast-vs-legacy accounting equivalence --------------------------------
//
// The throughput engine replaced the heap-allocating per-access accounting
// with allocation-free implementations (stack buffers + a monotonic fast
// path). The pre-PR versions survive for the legacy-executor baseline;
// these properties pin the two bitwise equal over arbitrary patterns.

use tfno_gpu_sim::shared::warp_bank_cycles_wide_alloc;

proptest! {
    /// Stack-buffer bank accounting == the pre-PR allocating version, for
    /// every vector width and random (partially predicated) patterns.
    #[test]
    fn prop_fast_bank_accounting_matches_alloc(
        addrs in proptest::collection::vec(0usize..4096, 32),
        mask in proptest::collection::vec(0usize..2, 32),
        width_sel in 0usize..3,
    ) {
        let width = [1usize, 2, 4][width_sel];
        let idx = WarpIdx::from_fn(|l| (mask[l] == 1).then_some(addrs[l]));
        prop_assert_eq!(
            warp_bank_cycles_wide(&idx, width),
            warp_bank_cycles_wide_alloc(&idx, width)
        );
    }

    /// Sector accounting with the monotonic fast path == the pre-PR
    /// allocating dedupe, over random (non-monotonic included) patterns.
    #[test]
    fn prop_fast_sector_accounting_matches_alloc(
        addrs in proptest::collection::vec(0usize..2048, 32),
        mask in proptest::collection::vec(0usize..2, 32),
    ) {
        let mut dev = GpuDevice::a100();
        let buf = dev.alloc("b", 2048);
        let idx = WarpIdx::from_fn(|l| (mask[l] == 1).then_some(addrs[l]));
        let fast = dev.memory.access_cost(buf, &idx);
        let slow = dev.memory.access_cost_alloc(buf, &idx);
        prop_assert_eq!(fast.bytes, slow.bytes);
        prop_assert_eq!(fast.sectors, slow.sectors);
    }

    /// Strictly increasing strided patterns (the executor's common case)
    /// also agree — exercises the monotonic fast path specifically.
    #[test]
    fn prop_monotonic_sector_fast_path(
        base in 0usize..64,
        stride in 1usize..60,
    ) {
        let mut dev = GpuDevice::a100();
        let buf = dev.alloc("b", 64 + 32 * 60);
        let idx = WarpIdx::strided(base, stride);
        let fast = dev.memory.access_cost(buf, &idx);
        let slow = dev.memory.access_cost_alloc(buf, &idx);
        prop_assert_eq!(fast.sectors, slow.sectors);
    }
}
