//! Shared-memory model: 32 banks x 4 bytes, with conflict replay.
//!
//! One `C32` element occupies two consecutive 4-byte words, i.e. two
//! neighboring banks — exactly the layout drawn in the paper's Figs. 7/8
//! ("each small square represents a single-precision complex number
//! (8 bytes, occupying two banks)").
//!
//! Hardware services an 8-byte-per-lane warp access as two 16-lane phases
//! of 128 bytes each. Within a phase the number of replays equals the
//! maximum, over banks, of the number of *distinct* words addressed in that
//! bank (identical words broadcast for free). Bank utilization therefore is
//! `ideal_cycles / actual_cycles`, which reproduces the paper's 6.25% / 25%
//! / 100% figures at address level (see the unit tests below).

use crate::warp::{WarpIdx, WARP_SIZE};
use tfno_num::C32;

/// Number of banks and bank width (A100 and every recent NVIDIA part).
pub const NUM_BANKS: usize = 32;
/// Words (4 B) per `C32` element.
pub const WORDS_PER_ELEM: usize = 2;
/// Lanes serviced per shared-memory phase for 8-byte accesses.
pub const LANES_PER_PHASE: usize = 16;

/// Accumulated conflict accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Phases that would be needed with zero conflicts.
    pub ideal_cycles: u64,
    /// Phases actually needed after replaying conflicted banks.
    pub actual_cycles: u64,
}

impl BankStats {
    pub fn utilization(&self) -> f64 {
        if self.actual_cycles == 0 {
            1.0
        } else {
            self.ideal_cycles as f64 / self.actual_cycles as f64
        }
    }
}

/// Compute `(ideal, actual)` phase counts for one warp access of 8-byte
/// elements at the given element indices.
pub fn warp_bank_cycles(idx: &WarpIdx) -> BankStats {
    warp_bank_cycles_wide(idx, 1)
}

/// Bank accounting for *vectorized* accesses: each active lane touches
/// `width` consecutive `C32` elements starting at its index (width 1, 2 or
/// 4 model 8/16/32-byte per-lane loads — `LDS.64/LDS.128`-class traffic).
/// Lanes are grouped into phases of 128 bytes each, exactly like hardware.
///
/// Allocation-free: a phase moves at most 128 bytes = 32 words, so the
/// distinct-word set fits a stack buffer. Runs on every shared-memory warp
/// access, i.e. the hottest loop of the functional executor. The pre-PR
/// heap-allocating version survives as [`warp_bank_cycles_wide_alloc`]
/// for the legacy-executor baseline; a property test pins them equal.
pub fn warp_bank_cycles_wide(idx: &WarpIdx, width: usize) -> BankStats {
    assert!(
        matches!(width, 1 | 2 | 4),
        "unsupported vector width {width}"
    );
    /// Upper bound on distinct words in one 128-byte phase.
    const PHASE_WORDS: usize = LANES_PER_PHASE * WORDS_PER_ELEM;
    let lanes_per_phase = LANES_PER_PHASE / width;
    let mut ideal = 0u64;
    let mut actual = 0u64;
    for phase_base in (0..WARP_SIZE).step_by(lanes_per_phase) {
        // Distinct words addressed within this phase.
        let mut words = [0usize; PHASE_WORDS];
        let mut n_words = 0usize;
        let mut any = false;
        for lane in phase_base..(phase_base + lanes_per_phase).min(WARP_SIZE) {
            if let Some(elem) = idx.lanes[lane] {
                any = true;
                let w0 = elem * WORDS_PER_ELEM;
                for w in w0..w0 + width * WORDS_PER_ELEM {
                    if !words[..n_words].contains(&w) {
                        words[n_words] = w;
                        n_words += 1;
                    }
                }
            }
        }
        if any {
            ideal += 1;
            // Replays = max over banks of distinct words in that bank.
            let mut per_bank = [0u8; NUM_BANKS];
            let mut replays = 1u8;
            for &w in &words[..n_words] {
                let bank = w % NUM_BANKS;
                per_bank[bank] += 1;
                replays = replays.max(per_bank[bank]);
            }
            actual += replays as u64;
        }
    }
    BankStats {
        ideal_cycles: ideal,
        actual_cycles: actual,
    }
}

/// The pre-PR implementation of [`warp_bank_cycles_wide`] (a heap
/// allocation per bank per phase). Kept verbatim so the legacy executor
/// baseline preserves pre-PR performance characteristics in A/B benches.
pub fn warp_bank_cycles_wide_alloc(idx: &WarpIdx, width: usize) -> BankStats {
    assert!(
        matches!(width, 1 | 2 | 4),
        "unsupported vector width {width}"
    );
    let lanes_per_phase = LANES_PER_PHASE / width;
    let mut ideal = 0u64;
    let mut actual = 0u64;
    for phase_base in (0..WARP_SIZE).step_by(lanes_per_phase) {
        // Distinct words per bank within this phase.
        let mut words_per_bank: [Vec<usize>; NUM_BANKS] = std::array::from_fn(|_| Vec::new());
        let mut any = false;
        for lane in phase_base..(phase_base + lanes_per_phase).min(WARP_SIZE) {
            if let Some(elem) = idx.lanes[lane] {
                any = true;
                let w0 = elem * WORDS_PER_ELEM;
                for w in w0..w0 + width * WORDS_PER_ELEM {
                    let bank = w % NUM_BANKS;
                    if !words_per_bank[bank].contains(&w) {
                        words_per_bank[bank].push(w);
                    }
                }
            }
        }
        if any {
            ideal += 1;
            let replays = words_per_bank
                .iter()
                .map(|v| v.len())
                .max()
                .unwrap_or(0)
                .max(1);
            actual += replays as u64;
        }
    }
    BankStats {
        ideal_cycles: ideal,
        actual_cycles: actual,
    }
}

/// Per-block shared memory with conflict accounting.
#[derive(Debug)]
pub struct SharedMem {
    data: Vec<C32>,
    pub load_stats: BankStats,
    pub store_stats: BankStats,
    /// When false, accesses move data but are not charged (used to model
    /// register-resident value flow inside a radix pass, where the real
    /// kernel never touches shared memory).
    pub metered: bool,
    /// Route accounting through the pre-PR allocating implementation
    /// (the legacy-executor baseline).
    pub legacy_accounting: bool,
}

impl SharedMem {
    /// Allocate `bytes` of shared memory (rounded down to whole elements).
    pub fn new(bytes: usize) -> Self {
        SharedMem {
            data: vec![C32::ZERO; bytes / (WORDS_PER_ELEM * 4)],
            load_stats: BankStats::default(),
            store_stats: BankStats::default(),
            metered: true,
            legacy_accounting: false,
        }
    }

    #[inline]
    fn cycles(&self, idx: &WarpIdx, width: usize) -> BankStats {
        if self.legacy_accounting {
            warp_bank_cycles_wide_alloc(idx, width)
        } else {
            warp_bank_cycles_wide(idx, width)
        }
    }

    /// Re-arm for the next block of the same launch: zero the data (each
    /// block sees fresh scratch, as `new` gives) and restore metering, but
    /// keep the bank statistics accumulating across blocks. Lets the
    /// executor reuse one allocation per worker instead of reallocating
    /// per block.
    pub fn reset_for_block(&mut self) {
        self.data.fill(C32::ZERO);
        self.metered = true;
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Warp store: each active lane writes its value at its element index.
    pub fn store_warp(&mut self, idx: &WarpIdx, vals: &[C32; WARP_SIZE]) {
        if self.metered {
            let s = self.cycles(idx, 1);
            self.store_stats.ideal_cycles += s.ideal_cycles;
            self.store_stats.actual_cycles += s.actual_cycles;
        }
        for (lane, elem) in idx.iter_active() {
            match self.data.get_mut(elem) {
                Some(slot) => *slot = vals[lane],
                None => panic!(
                    "shared store out of bounds: elem {elem} >= {}",
                    self.data.len()
                ),
            }
        }
    }

    /// Warp load: returns each active lane's element (inactive lanes get 0).
    pub fn load_warp(&mut self, idx: &WarpIdx) -> [C32; WARP_SIZE] {
        if self.metered {
            let s = self.cycles(idx, 1);
            self.load_stats.ideal_cycles += s.ideal_cycles;
            self.load_stats.actual_cycles += s.actual_cycles;
        }
        let mut out = [C32::ZERO; WARP_SIZE];
        for (lane, elem) in idx.iter_active() {
            match self.data.get(elem) {
                Some(v) => out[lane] = *v,
                None => panic!(
                    "shared load out of bounds: elem {elem} >= {}",
                    self.data.len()
                ),
            }
        }
        out
    }

    /// Vectorized warp load: each active lane reads `width` consecutive
    /// elements starting at its index. Returns `vals[v][lane]` = the lane's
    /// `v`-th element.
    pub fn load_warp_wide(&mut self, idx: &WarpIdx, width: usize) -> Vec<[C32; WARP_SIZE]> {
        if self.metered {
            let s = self.cycles(idx, width);
            self.load_stats.ideal_cycles += s.ideal_cycles;
            self.load_stats.actual_cycles += s.actual_cycles;
        }
        let mut out = vec![[C32::ZERO; WARP_SIZE]; width];
        for (lane, elem) in idx.iter_active() {
            assert!(
                elem + width <= self.data.len(),
                "wide shared load out of bounds: elem {elem}+{width} > {}",
                self.data.len()
            );
            for (v, slot) in out.iter_mut().enumerate() {
                slot[lane] = self.data[elem + v];
            }
        }
        out
    }

    /// Vectorized warp store: each active lane writes `width` consecutive
    /// elements starting at its index; `vals[v][lane]`.
    pub fn store_warp_wide(&mut self, idx: &WarpIdx, vals: &[[C32; WARP_SIZE]], width: usize) {
        assert_eq!(vals.len(), width);
        if self.metered {
            let s = self.cycles(idx, width);
            self.store_stats.ideal_cycles += s.ideal_cycles;
            self.store_stats.actual_cycles += s.actual_cycles;
        }
        for (lane, elem) in idx.iter_active() {
            assert!(
                elem + width <= self.data.len(),
                "wide shared store out of bounds: elem {elem}+{width} > {}",
                self.data.len()
            );
            for (v, slot) in vals.iter().enumerate() {
                self.data[elem + v] = slot[lane];
            }
        }
    }

    /// Direct (unmetered) view, for debug assertions inside kernels only.
    pub fn raw(&self) -> &[C32] {
        &self.data
    }

    /// Direct (unmetered) mutable view; use only for test scaffolding.
    pub fn raw_mut(&mut self) -> &mut [C32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Contiguous lanes -> element addresses lane apart -> conflict-free.
    #[test]
    fn contiguous_access_is_conflict_free() {
        let w = WarpIdx::contiguous(0);
        let s = warp_bank_cycles(&w);
        assert_eq!(s.ideal_cycles, 2);
        assert_eq!(s.actual_cycles, 2);
        assert_eq!(s.utilization(), 1.0);
    }

    /// The paper's Fig. 7(b) left: 16 threads writing element `tid * 16`
    /// (register j of a 16-point-per-thread FFT) all land in one bank pair:
    /// 2/32 banks active = 6.25% utilization = 16 replays.
    #[test]
    fn fig7b_unswizzled_16pt_fft_writeback() {
        let w = WarpIdx::from_fn(|l| (l < 16).then_some(l * 16));
        let s = warp_bank_cycles(&w);
        assert_eq!(s.ideal_cycles, 1);
        assert_eq!(s.actual_cycles, 16);
        assert!((s.utilization() - 0.0625).abs() < 1e-12);
    }

    /// Fig. 7(b) right: adding `tid` to the address removes all conflicts.
    #[test]
    fn fig7b_swizzled_16pt_fft_writeback() {
        let w = WarpIdx::from_fn(|l| (l < 16).then_some(l * 16 + l));
        let s = warp_bank_cycles(&w);
        assert_eq!(s.actual_cycles, 1);
        assert_eq!(s.utilization(), 1.0);
    }

    /// Fig. 7(c): 8-point-per-thread FFT. Unswizzled: threads t and t+2
    /// collide (8-element stride wraps the 32 banks every 2 lanes) -> 8-way
    /// conflict. Offset `tid / 2` is already enough for 100%.
    #[test]
    fn fig7c_8pt_fft_swizzle() {
        let raw = WarpIdx::from_fn(|l| (l < 16).then_some(l * 8));
        let s = warp_bank_cycles(&raw);
        assert_eq!(s.actual_cycles, 8);
        let swz = WarpIdx::from_fn(|l| (l < 16).then_some(l * 8 + l / 2));
        let t = warp_bank_cycles(&swz);
        assert_eq!(t.actual_cycles, 1, "tid/2 offset must clear conflicts");
    }

    /// Broadcast: all lanes reading the same element costs one cycle.
    #[test]
    fn broadcast_is_free() {
        let w = WarpIdx::from_fn(|_| Some(42));
        let s = warp_bank_cycles(&w);
        assert_eq!(s.actual_cycles, 2); // two 16-lane phases, 1 cycle each
        assert_eq!(s.ideal_cycles, 2);
    }

    /// A 2-way conflict: lanes l and l+16 within a phase... lanes 0..16 with
    /// stride 16 elements = 32 words: every lane hits bank pair (0,1).
    #[test]
    fn stride_16_elements_serializes() {
        let w = WarpIdx::from_fn(|l| (l < 16).then_some(l * 16));
        assert_eq!(warp_bank_cycles(&w).actual_cycles, 16);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut sm = SharedMem::new(1024);
        let idx = WarpIdx::contiguous(7);
        let mut vals = [C32::ZERO; WARP_SIZE];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = C32::new(i as f32, -(i as f32));
        }
        sm.store_warp(&idx, &vals);
        let back = sm.load_warp(&idx);
        assert_eq!(back, vals);
        assert_eq!(sm.store_stats.actual_cycles, 2);
        assert_eq!(sm.load_stats.actual_cycles, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_store_panics() {
        let mut sm = SharedMem::new(64);
        let idx = WarpIdx::contiguous(0);
        sm.store_warp(&idx, &[C32::ZERO; WARP_SIZE]);
    }

    /// Utilization accumulates across multiple accesses.
    #[test]
    fn stats_accumulate() {
        let mut sm = SharedMem::new(16 * 1024);
        let good = WarpIdx::contiguous(0);
        let bad = WarpIdx::from_fn(|l| (l < 16).then_some(l * 16));
        sm.store_warp(&good, &[C32::ZERO; WARP_SIZE]);
        sm.store_warp(&bad, &[C32::ZERO; WARP_SIZE]);
        assert_eq!(sm.store_stats.ideal_cycles, 3);
        assert_eq!(sm.store_stats.actual_cycles, 18);
    }
}
