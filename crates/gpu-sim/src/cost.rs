//! Analytical cost model: `KernelStats` -> microseconds.
//!
//! The model is a roofline over four resources, modulated by occupancy:
//!
//! ```text
//! t = launch_overhead
//!   + max(dram_time, compute_time, shared_time)
//!   + sync_time
//! ```
//!
//! * `dram_time` uses *sector* bytes (post-coalescing traffic), with loads
//!   discounted by the kernel's declared L1/L2 hit rate, divided by peak
//!   bandwidth scaled by a saturation curve in resident blocks. Small grids
//!   cannot saturate HBM — this is the mechanism behind the paper's Fig. 14
//!   slowdown regions ("TurboFNO assigns one thread block to process along
//!   the (Y, K) dimensions ... resulting in suboptimal SM utilization").
//! * `compute_time` divides flops by peak FP32 throughput scaled by the
//!   fraction of SMs that have work and a latency-hiding curve in resident
//!   warps per SM.
//! * `shared_time` charges one clock per 128-byte shared-memory phase
//!   (conflict replays included, so a 4-way-conflicted kernel pays 4x — the
//!   cost the paper's swizzles remove), spread over the SMs in use.
//! * `sync_time` charges the barrier latency once per `__syncthreads`
//!   executed per SM-resident block stream.

use crate::device::DeviceConfig;
use crate::kernel::LaunchDims;
use crate::stats::KernelStats;

/// Converts event counts into modeled time for a fixed device.
#[derive(Clone, Debug)]
pub struct CostModel {
    cfg: DeviceConfig,
}

/// Per-resource time breakdown (microseconds), useful in reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    pub launch_us: f64,
    pub dram_us: f64,
    pub compute_us: f64,
    pub shared_us: f64,
    pub sync_us: f64,
    pub total_us: f64,
}

impl CostModel {
    pub fn new(cfg: DeviceConfig) -> Self {
        CostModel { cfg }
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Resident blocks device-wide for this launch shape.
    fn resident_blocks(&self, dims: &LaunchDims) -> f64 {
        let occ = self
            .cfg
            .occupancy(dims.threads_per_block, dims.shared_bytes, dims.regs_per_thread);
        let cap = (self.cfg.num_sms * occ.blocks_per_sm.max(1)) as f64;
        (dims.grid_blocks as f64).min(cap)
    }

    /// SMs with at least one block.
    fn sms_used(&self, dims: &LaunchDims) -> f64 {
        (dims.grid_blocks as f64).min(self.cfg.num_sms as f64)
    }

    /// Full breakdown of a launch's modeled time.
    pub fn breakdown(&self, dims: &LaunchDims, stats: &KernelStats) -> TimeBreakdown {
        let cfg = &self.cfg;
        let resident = self.resident_blocks(dims);
        let sms_used = self.sms_used(dims);

        // --- DRAM ---
        let load_sector_bytes = stats.global_load_sectors as f64 * 32.0;
        let store_sector_bytes = stats.global_store_sectors as f64 * 32.0;
        let dram_bytes = load_sector_bytes * (1.0 - dims.l1_hit_rate) + store_sector_bytes;
        let bw_util = resident / (resident + cfg.bw_sat_blocks);
        let dram_us = dram_bytes / (cfg.dram_bytes_per_us() * bw_util.max(1e-9));

        // --- Compute ---
        let warps_per_sm = resident * dims.warps_per_block() as f64 / sms_used.max(1.0);
        let lat_hide = warps_per_sm / (warps_per_sm + cfg.compute_sat_warps);
        let sm_frac = sms_used / cfg.num_sms as f64;
        let compute_us =
            stats.flops as f64 / (cfg.fp32_flops_per_us() * sm_frac * lat_hide.max(1e-9));

        // --- Shared memory ---
        // Each phase moves <=128 B in one clock on one SM.
        let shared_cycles_per_sm = stats.shared_actual_cycles as f64 / sms_used.max(1.0);
        let shared_us = shared_cycles_per_sm / (cfg.clock_hz() * 1e-6);

        // --- Barriers ---
        // Blocks co-resident on one SM overlap their barriers; charge the
        // barrier latency once per block *stream* per SM.
        let syncs_per_sm = stats.syncthreads as f64 / sms_used.max(1.0);
        let sync_us = syncs_per_sm * cfg.syncthreads_cycles / (cfg.clock_hz() * 1e-6);

        let launch_us = cfg.kernel_launch_overhead_us;
        // Roofline with partial overlap: the dominant resource hides the
        // others only to the extent the kernel's phases are independent.
        let dominant = dram_us.max(compute_us).max(shared_us);
        let residue = (dram_us + compute_us + shared_us - dominant) * dims.serialization;
        let total_us = launch_us + dominant + residue + sync_us;
        TimeBreakdown {
            launch_us,
            dram_us,
            compute_us,
            shared_us,
            sync_us,
            total_us,
        }
    }

    /// Modeled time of a launch in microseconds.
    pub fn kernel_time_us(&self, dims: &LaunchDims, stats: &KernelStats) -> f64 {
        self.breakdown(dims, stats).total_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(blocks: usize) -> LaunchDims {
        LaunchDims::new(blocks, 128).with_shared(8 * 1024)
    }

    fn mem_heavy(blocks: u64) -> KernelStats {
        KernelStats {
            blocks,
            warps: blocks * 4,
            global_load_bytes: blocks * 1_000_000,
            global_load_sectors: blocks * 31_250,
            global_store_bytes: blocks * 1_000_000,
            global_store_sectors: blocks * 31_250,
            ..KernelStats::ZERO
        }
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let m = CostModel::new(DeviceConfig::a100());
        let t = m.kernel_time_us(&dims(1), &KernelStats::ZERO);
        assert!((t - 4.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn bandwidth_bound_kernel_scales_with_bytes() {
        let m = CostModel::new(DeviceConfig::a100());
        let d = dims(1024);
        let t1 = m.kernel_time_us(&d, &mem_heavy(1024));
        let t2 = m.kernel_time_us(&d, &mem_heavy(2048));
        // doubling traffic at fixed dims roughly doubles the memory term
        assert!(t2 / t1 > 1.8, "t1={t1} t2={t2}");
    }

    #[test]
    fn small_grids_get_poor_bandwidth() {
        let m = CostModel::new(DeviceConfig::a100());
        // Same total traffic, spread over 4 vs 1024 blocks.
        let t_small = m.breakdown(&dims(4), &mem_heavy(1024)).dram_us;
        let t_big = m.breakdown(&dims(1024), &mem_heavy(1024)).dram_us;
        assert!(
            t_small > 5.0 * t_big,
            "low occupancy must throttle bandwidth: {t_small} vs {t_big}"
        );
    }

    #[test]
    fn l1_hits_reduce_dram_time() {
        let m = CostModel::new(DeviceConfig::a100());
        let d0 = dims(512);
        let d1 = dims(512).with_l1_hit_rate(0.5);
        let s = mem_heavy(512);
        let t0 = m.breakdown(&d0, &s).dram_us;
        let t1 = m.breakdown(&d1, &s).dram_us;
        // half the load bytes disappear; stores unchanged -> 25% less traffic
        assert!(t1 < t0 && t1 > 0.7 * t0, "t0={t0} t1={t1}");
    }

    #[test]
    fn compute_bound_kernel_scales_with_flops() {
        let m = CostModel::new(DeviceConfig::a100());
        let d = dims(2048);
        let s1 = KernelStats {
            blocks: 2048,
            warps: 2048 * 4,
            flops: 10_000_000_000,
            ..KernelStats::ZERO
        };
        let mut s2 = s1;
        s2.flops *= 2;
        let t1 = m.kernel_time_us(&d, &s1);
        let t2 = m.kernel_time_us(&d, &s2);
        assert!(t2 / t1 > 1.9, "t1={t1} t2={t2}");
    }

    #[test]
    fn bank_conflicts_increase_shared_time() {
        let m = CostModel::new(DeviceConfig::a100());
        let d = dims(108);
        let clean = KernelStats {
            blocks: 108,
            shared_ideal_cycles: 1_000_000,
            shared_actual_cycles: 1_000_000,
            ..KernelStats::ZERO
        };
        let conflicted = KernelStats {
            shared_actual_cycles: 4_000_000,
            ..clean
        };
        let t_clean = m.breakdown(&d, &clean).shared_us;
        let t_conf = m.breakdown(&d, &conflicted).shared_us;
        assert!((t_conf / t_clean - 4.0).abs() < 0.01);
    }

    #[test]
    fn syncs_are_additive() {
        let m = CostModel::new(DeviceConfig::a100());
        let d = dims(108);
        let s = KernelStats {
            blocks: 108,
            syncthreads: 108 * 1000,
            ..KernelStats::ZERO
        };
        let b = m.breakdown(&d, &s);
        assert!(b.sync_us > 0.0);
        assert!((b.total_us - (b.launch_us + b.sync_us)).abs() < 1e-9);
    }

    #[test]
    fn roofline_takes_max_not_sum() {
        let m = CostModel::new(DeviceConfig::a100());
        let d = dims(1024);
        let s = mem_heavy(1024);
        let b = m.breakdown(&d, &s);
        assert!(b.total_us < b.launch_us + b.dram_us + b.compute_us + b.shared_us + 1e-9 + b.sync_us + b.dram_us);
        assert!((b.total_us - (b.launch_us + b.dram_us.max(b.compute_us).max(b.shared_us) + b.sync_us)).abs() < 1e-9);
    }
}
