//! Global-memory model: named device buffers with sector-level coalescing
//! accounting.
//!
//! DRAM traffic is counted in 32-byte sectors (the granularity of the L2
//! <-> HBM interface on NVIDIA parts): a warp access touches
//! `|distinct(addr / 32)|` sectors. A fully-coalesced warp load of 32
//! consecutive `C32` elements (256 bytes) therefore costs 8 sectors, while a
//! stride-N pattern can cost up to 32 (one 32 B sector per 8 useful bytes).

use crate::warp::{WarpIdx, WARP_SIZE};
use tfno_num::{C32, C32_BYTES};

/// Sector size in bytes.
pub const SECTOR_BYTES: usize = 32;

/// Handle to a device buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub(crate) usize);

#[derive(Debug)]
pub(crate) enum BufferData {
    /// Backed by host memory: reads/writes move real values.
    Real(Vec<C32>),
    /// Storage-free: reads return zero, writes are discarded. Used for
    /// analytical sweeps at paper scale (e.g. M = 2^20 pencils) where only
    /// addresses matter, never values.
    Virtual { len: usize },
}

#[derive(Debug)]
pub(crate) struct Buffer {
    pub name: String,
    pub data: BufferData,
    /// Byte address of the first element; buffers are 128 B aligned and
    /// disjoint so sector counts never alias across buffers.
    pub base_addr: usize,
}

impl Buffer {
    fn len(&self) -> usize {
        match &self.data {
            BufferData::Real(v) => v.len(),
            BufferData::Virtual { len } => *len,
        }
    }
}

/// All global memory of the simulated device.
#[derive(Debug, Default)]
pub struct GlobalMemory {
    buffers: Vec<Buffer>,
    next_addr: usize,
}

/// Outcome of a warp-level access: how much traffic it generated.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccessCost {
    pub bytes: u64,
    pub sectors: u64,
}

impl GlobalMemory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a zero-initialized buffer of `len` complex elements.
    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        self.alloc_inner(name, BufferData::Real(vec![C32::ZERO; len]), len)
    }

    /// Allocate a storage-free buffer: address/bounds semantics of a real
    /// buffer, but reads return zero and writes vanish. For analytical
    /// sweeps at sizes where materializing data would need gigabytes.
    pub fn alloc_virtual(&mut self, name: &str, len: usize) -> BufferId {
        self.alloc_inner(name, BufferData::Virtual { len }, len)
    }

    fn alloc_inner(&mut self, name: &str, data: BufferData, len: usize) -> BufferId {
        let id = BufferId(self.buffers.len());
        let base = self.next_addr;
        let bytes = len * C32_BYTES;
        // keep buffers 128-byte aligned and separated
        self.next_addr = (base + bytes + 127) & !127;
        self.buffers.push(Buffer {
            name: name.to_string(),
            data,
            base_addr: base,
        });
        id
    }

    pub fn len(&self, id: BufferId) -> usize {
        self.buffers[id.0].len()
    }

    pub fn is_empty(&self, id: BufferId) -> bool {
        self.buffers[id.0].len() == 0
    }

    /// True when the buffer has no backing storage.
    pub fn is_virtual(&self, id: BufferId) -> bool {
        matches!(self.buffers[id.0].data, BufferData::Virtual { .. })
    }

    pub fn name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    /// Host-side upload (no traffic accounting — models cudaMemcpy done
    /// outside the timed region, as the paper's harness does).
    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        let buf = &mut self.buffers[id.0];
        match &mut buf.data {
            BufferData::Real(v) => {
                assert_eq!(data.len(), v.len(), "upload size mismatch for {}", buf.name);
                v.copy_from_slice(data);
            }
            BufferData::Virtual { .. } => panic!("cannot upload to virtual buffer {}", buf.name),
        }
    }

    /// Host-side download.
    pub fn download(&self, id: BufferId) -> Vec<C32> {
        match &self.buffers[id.0].data {
            BufferData::Real(v) => v.clone(),
            BufferData::Virtual { .. } => {
                panic!("cannot download virtual buffer {}", self.buffers[id.0].name)
            }
        }
    }

    /// Zero a buffer (host-side).
    pub fn clear(&mut self, id: BufferId) {
        if let BufferData::Real(v) = &mut self.buffers[id.0].data {
            v.fill(C32::ZERO);
        }
    }

    /// Compute the traffic cost of a warp access at the given element
    /// indices, without moving data.
    ///
    /// Allocation-free (a warp touches at most `2 * WARP_SIZE` sectors, so
    /// the sector list fits a stack buffer), with an O(lanes) fast path
    /// for monotonic address patterns — contiguous and forward-strided
    /// warps, i.e. nearly every access our kernels issue. This runs on
    /// every global warp access of the functional executor. The pre-PR
    /// heap-allocating version survives as [`Self::access_cost_alloc`] for
    /// the legacy-executor baseline; a property test pins them equal.
    pub fn access_cost(&self, id: BufferId, idx: &WarpIdx) -> AccessCost {
        let buf = &self.buffers[id.0];
        let buf_len = buf.len();
        let mut sectors = [0usize; 2 * WARP_SIZE];
        let mut n = 0usize;
        let mut bytes = 0u64;
        for (_, elem) in idx.iter_active() {
            assert!(
                elem < buf_len,
                "global access out of bounds: elem {elem} >= {buf_len} in buffer {}",
                buf.name
            );
            bytes += C32_BYTES as u64;
            let addr = buf.base_addr + elem * C32_BYTES;
            sectors[n] = addr / SECTOR_BYTES;
            sectors[n + 1] = (addr + C32_BYTES - 1) / SECTOR_BYTES;
            n += 2;
        }
        // Monotonic sequences need only adjacent comparisons to count
        // distinct sectors; arbitrary patterns fall back to a dedupe scan.
        let list = &sectors[..n];
        let monotonic = list.windows(2).all(|w| w[0] <= w[1]);
        let distinct = if monotonic {
            let mut count = 0u64;
            let mut prev = usize::MAX;
            for &s in list {
                if s != prev {
                    count += 1;
                    prev = s;
                }
            }
            count
        } else {
            let mut seen = [0usize; 2 * WARP_SIZE];
            let mut count = 0usize;
            for &s in list {
                if !seen[..count].contains(&s) {
                    seen[count] = s;
                    count += 1;
                }
            }
            count as u64
        };
        AccessCost {
            bytes,
            sectors: distinct,
        }
    }

    /// The pre-PR implementation of [`Self::access_cost`] (one heap
    /// allocation per warp access). Kept verbatim for the legacy executor.
    pub fn access_cost_alloc(&self, id: BufferId, idx: &WarpIdx) -> AccessCost {
        let buf = &self.buffers[id.0];
        let buf_len = buf.len();
        let mut sectors: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        let mut bytes = 0u64;
        for (_, elem) in idx.iter_active() {
            assert!(
                elem < buf_len,
                "global access out of bounds: elem {elem} >= {buf_len} in buffer {}",
                buf.name
            );
            bytes += C32_BYTES as u64;
            let addr = buf.base_addr + elem * C32_BYTES;
            for s in [addr / SECTOR_BYTES, (addr + C32_BYTES - 1) / SECTOR_BYTES] {
                if !sectors.contains(&s) {
                    sectors.push(s);
                }
            }
        }
        AccessCost {
            bytes,
            sectors: sectors.len() as u64,
        }
    }

    /// Warp read: returns per-lane values (inactive lanes read zero;
    /// virtual buffers read zero everywhere).
    pub fn read_warp(&self, id: BufferId, idx: &WarpIdx) -> [C32; WARP_SIZE] {
        let mut out = [C32::ZERO; WARP_SIZE];
        if let BufferData::Real(v) = &self.buffers[id.0].data {
            for (lane, elem) in idx.iter_active() {
                out[lane] = v[elem];
            }
        }
        out
    }

    /// Apply a buffered write (used by the launch machinery after blocks
    /// complete; not part of the public kernel API).
    pub(crate) fn apply_write(&mut self, id: BufferId, elem: usize, v: C32) {
        if let BufferData::Real(vec) = &mut self.buffers[id.0].data {
            vec[elem] = v;
        }
    }

    /// Number of allocated buffers (journal sharding).
    pub(crate) fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Mutable access to the buffer table for the write-application
    /// machinery in [`crate::journal`].
    pub(crate) fn buffers_mut(&mut self) -> &mut [Buffer] {
        &mut self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 64);
        assert_eq!(gm.len(b), 64);
        let data: Vec<C32> = (0..64).map(|i| C32::real(i as f32)).collect();
        gm.upload(b, &data);
        assert_eq!(gm.download(b), data);
    }

    #[test]
    fn buffers_are_disjoint_and_aligned() {
        let mut gm = GlobalMemory::new();
        let a = gm.alloc("a", 3); // 24 bytes -> next at 128
        let b = gm.alloc("b", 1);
        assert_eq!(gm.buffers[a.0].base_addr % 128, 0);
        assert_eq!(gm.buffers[b.0].base_addr, 128);
    }

    #[test]
    fn coalesced_read_costs_8_sectors() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 1024);
        let cost = gm.access_cost(b, &WarpIdx::contiguous(0));
        assert_eq!(cost.bytes, 256);
        assert_eq!(cost.sectors, 8);
    }

    #[test]
    fn strided_read_wastes_sectors() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 32 * 64);
        // stride 64 elements = 512 bytes: each lane in its own sector
        let cost = gm.access_cost(b, &WarpIdx::strided(0, 64));
        assert_eq!(cost.bytes, 256);
        assert_eq!(cost.sectors, 32);
    }

    #[test]
    fn stride_two_doubles_sectors() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 256);
        // stride 2 elements = 16 bytes -> half the bytes in each sector used
        let cost = gm.access_cost(b, &WarpIdx::strided(0, 2));
        assert_eq!(cost.sectors, 16);
    }

    #[test]
    fn partial_warp_counts_only_active_lanes() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 64);
        let cost = gm.access_cost(b, &WarpIdx::contiguous_partial(0, 4));
        assert_eq!(cost.bytes, 32);
        assert_eq!(cost.sectors, 1);
    }

    #[test]
    fn read_warp_returns_values() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 64);
        let data: Vec<C32> = (0..64).map(|i| C32::real(i as f32)).collect();
        gm.upload(b, &data);
        let vals = gm.read_warp(b, &WarpIdx::contiguous(8));
        assert_eq!(vals[0], C32::real(8.0));
        assert_eq!(vals[31], C32::real(39.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_cost_panics() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 8);
        gm.access_cost(b, &WarpIdx::contiguous(0));
    }

    /// An unaligned element can straddle two sectors; the model counts both.
    #[test]
    fn straddling_elements_count_both_sectors() {
        let mut gm = GlobalMemory::new();
        let b = gm.alloc("x", 64);
        // Elements at odd multiples of 4 (32-byte boundaries are every 4
        // elements): element 3 occupies bytes 24..32 — still one sector;
        // base_addr is 128-aligned so elements never straddle here. Check
        // the dense case stays at the ideal 8 sectors instead.
        let cost = gm.access_cost(b, &WarpIdx::contiguous(4));
        assert_eq!(cost.sectors, 8);
    }
}
