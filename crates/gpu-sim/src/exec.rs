//! Host-side parallelism policy for the functional executor, plus the
//! completion handle of deferred (asynchronous) launches.
//!
//! The pre-PR executor hard-coded `available_parallelism` behind a
//! `>= 16 blocks` gate. The policy is now tunable at two levels:
//!
//! * **`TFNO_THREADS`** (environment): process-wide worker count. Setting
//!   it also bypasses the block-count gate — `TFNO_THREADS=1` forces the
//!   serial path everywhere, `TFNO_THREADS=8` parallelizes even small
//!   grids. Non-numeric or zero values fall back to the default.
//! * **`GpuDevice::with_workers` / `set_workers`** (per device): an
//!   explicit worker count that overrides both the env var and the gate.
//!
//! The same policy feeds every host-parallel loop in the stack (block
//! execution, write application, planner evaluation, the model's pointwise
//! path), so one knob tunes the whole engine.
//!
//! ## Deferred launches
//!
//! [`GpuDevice::launch`](crate::GpuDevice::launch) executes blocks *and*
//! applies the buffered write journals before returning — the synchronous
//! contract every pipeline stage relies on. [`PendingLaunch`] splits that
//! in two, mirroring CUDA's asynchronous launch semantics: issue executes
//! the blocks (reads observe pre-launch memory, writes accumulate in
//! journals) and returns this handle; nothing becomes visible until the
//! handle is passed back to [`complete`](crate::GpuDevice::complete),
//! which validates and applies the journals and records the launch. In
//! between, the issuing side only holds `&GpuDevice`, so the host is free
//! to do unrelated work — the primitive `turbofno::Session::submit`'s
//! async layer dispatch is built on.

use crate::journal::WriteJournal;
use crate::kernel::{GpuDevice, LaunchDims, LaunchRecord};
use crate::stats::KernelStats;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A launch whose blocks have executed but whose global writes have not
/// been applied yet. Created by
/// [`GpuDevice::launch_deferred`](crate::GpuDevice::launch_deferred);
/// consumed by [`GpuDevice::complete`](crate::GpuDevice::complete).
///
/// Until completion the device's global memory still holds its pre-launch
/// contents — exactly what a CUDA host thread observes between an async
/// kernel launch and the stream synchronize.
#[must_use = "a deferred launch moves no data until GpuDevice::complete applies its journals"]
pub struct PendingLaunch {
    pub(crate) name: String,
    pub(crate) dims: LaunchDims,
    pub(crate) stats: KernelStats,
    pub(crate) journals: Vec<WriteJournal>,
    pub(crate) workers: usize,
}

impl PendingLaunch {
    /// Kernel name of the issued launch.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Event counts recorded at issue time (identical to what the
    /// completed [`LaunchRecord`] will carry).
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }
}

/// A bounded in-order queue of deferred launches — the simulator's stand-in
/// for a CUDA stream with a completion window.
///
/// [`push`](LaunchQueue::push) issues nothing itself: the caller hands over
/// an already-issued [`PendingLaunch`] (its blocks have executed; its reads
/// observed the memory state at issue time). The queue holds up to `depth`
/// pendings and completes the oldest ones — applying their journals and
/// recording them — whenever the window overflows; [`flush`](LaunchQueue::flush)
/// drains everything.
///
/// **Safety contract** (the caller's obligation, exactly as with CUDA
/// streams): nothing issued or read between a pending's issue and its
/// completion may depend on that pending's *writes*. Its reads are safe —
/// they already happened at issue. `Session::run_many` uses this to defer
/// cross-group scatter launches: aliasing validation guarantees no later
/// gather or pipeline reads any scatter destination.
#[derive(Default)]
pub struct LaunchQueue {
    depth: usize,
    pending: VecDeque<PendingLaunch>,
}

impl LaunchQueue {
    /// A queue completing eagerly past `depth` in-flight launches
    /// (clamped to ≥ 1; depth 1 behaves like immediate completion on the
    /// next push).
    pub fn new(depth: usize) -> Self {
        LaunchQueue {
            depth: depth.max(1),
            pending: VecDeque::new(),
        }
    }

    /// Enqueue an issued launch; completes the oldest launches first if
    /// the window is full. Returns the records of whatever completed.
    pub fn push(&mut self, dev: &mut GpuDevice, launch: PendingLaunch) -> Vec<LaunchRecord> {
        let mut done = Vec::new();
        while self.pending.len() >= self.depth.max(1) {
            let oldest = self.pending.pop_front().expect("non-empty window");
            done.push(dev.complete(oldest));
        }
        self.pending.push_back(launch);
        done
    }

    /// Complete every in-flight launch, oldest first.
    pub fn flush(&mut self, dev: &mut GpuDevice) -> Vec<LaunchRecord> {
        self.pending.drain(..).map(|p| dev.complete(p)).collect()
    }

    /// Launches currently issued but not completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

/// Lock a mutex, recovering the guard when a previous holder panicked.
///
/// Process-wide state (the analytical launch memo, the planner caches)
/// must survive *caught* panics: the documented aliasing/conflict panics
/// unwind through these locks, and `.lock().unwrap()` would turn one
/// caught panic into a cascade of unrelated `PoisonError` failures. The
/// guarded data is always left consistent by its critical sections (plain
/// inserts/lookups/counter bumps), so recovering the guard is sound.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_unpoisoned`].
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Grids below this size stay serial under the *default* policy (thread
/// spawn overhead beats stealing a handful of blocks). Explicit overrides
/// ignore it.
pub const PAR_BLOCK_THRESHOLD: usize = 16;

/// Worker count configured for this process: `TFNO_THREADS` when set to a
/// positive integer, otherwise `available_parallelism`.
pub fn configured_workers() -> usize {
    match env_workers() {
        Some(n) => n,
        None => default_workers(),
    }
}

/// `TFNO_THREADS` as a positive integer, if set and valid.
pub(crate) fn env_workers() -> Option<usize> {
    parse_workers(std::env::var("TFNO_THREADS").ok().as_deref())
}

/// Parse a `TFNO_THREADS`-style value: positive integers only.
pub(crate) fn parse_workers(v: Option<&str>) -> Option<usize> {
    v.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Workers for a host-parallel loop over `items` independent tasks under
/// the default policy (no per-device override in play).
pub fn workers_for(items: usize) -> usize {
    if items == 0 {
        return 1;
    }
    match env_workers() {
        Some(n) => n.min(items),
        None if items >= PAR_BLOCK_THRESHOLD => default_workers().min(items),
        None => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_workers_is_positive() {
        assert!(configured_workers() >= 1);
    }

    #[test]
    fn workers_never_exceed_items() {
        assert_eq!(workers_for(0), 1);
        assert!(workers_for(1) <= 1);
        assert!(workers_for(1000) <= 1000);
    }

    /// A panic while the lock is held must not wedge later lockers: the
    /// recovery helpers hand back the guard instead of propagating
    /// `PoisonError`.
    #[test]
    fn poisoned_locks_recover() {
        let m = Mutex::new(7usize);
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = m.lock().unwrap();
                panic!("poison the mutex");
            })
            .join()
        });
        assert!(m.lock().is_err(), "the mutex must actually be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7, "data written before the panic survives");
        *lock_unpoisoned(&m) = 9;
        assert_eq!(*lock_unpoisoned(&m), 9);
    }

    /// The env-var parsing is tested through the pure function — tests
    /// must not mutate `TFNO_THREADS` itself (concurrent `setenv` while
    /// other tests' executors call `getenv` is UB on glibc).
    #[test]
    fn env_value_parsing() {
        assert_eq!(parse_workers(None), None);
        assert_eq!(parse_workers(Some("3")), Some(3));
        assert_eq!(parse_workers(Some(" 8 ")), Some(8));
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("not-a-number")), None);
        assert_eq!(parse_workers(Some("")), None);
    }
}
