//! Host-side parallelism policy for the functional executor.
//!
//! The pre-PR executor hard-coded `available_parallelism` behind a
//! `>= 16 blocks` gate. The policy is now tunable at two levels:
//!
//! * **`TFNO_THREADS`** (environment): process-wide worker count. Setting
//!   it also bypasses the block-count gate — `TFNO_THREADS=1` forces the
//!   serial path everywhere, `TFNO_THREADS=8` parallelizes even small
//!   grids. Non-numeric or zero values fall back to the default.
//! * **`GpuDevice::with_workers` / `set_workers`** (per device): an
//!   explicit worker count that overrides both the env var and the gate.
//!
//! The same policy feeds every host-parallel loop in the stack (block
//! execution, write application, planner evaluation, the model's pointwise
//! path), so one knob tunes the whole engine.

/// Grids below this size stay serial under the *default* policy (thread
/// spawn overhead beats stealing a handful of blocks). Explicit overrides
/// ignore it.
pub const PAR_BLOCK_THRESHOLD: usize = 16;

/// Worker count configured for this process: `TFNO_THREADS` when set to a
/// positive integer, otherwise `available_parallelism`.
pub fn configured_workers() -> usize {
    match env_workers() {
        Some(n) => n,
        None => default_workers(),
    }
}

/// `TFNO_THREADS` as a positive integer, if set and valid.
pub(crate) fn env_workers() -> Option<usize> {
    parse_workers(std::env::var("TFNO_THREADS").ok().as_deref())
}

/// Parse a `TFNO_THREADS`-style value: positive integers only.
pub(crate) fn parse_workers(v: Option<&str>) -> Option<usize> {
    v.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Workers for a host-parallel loop over `items` independent tasks under
/// the default policy (no per-device override in play).
pub fn workers_for(items: usize) -> usize {
    if items == 0 {
        return 1;
    }
    match env_workers() {
        Some(n) => n.min(items),
        None if items >= PAR_BLOCK_THRESHOLD => default_workers().min(items),
        None => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configured_workers_is_positive() {
        assert!(configured_workers() >= 1);
    }

    #[test]
    fn workers_never_exceed_items() {
        assert_eq!(workers_for(0), 1);
        assert!(workers_for(1) <= 1);
        assert!(workers_for(1000) <= 1000);
    }

    /// The env-var parsing is tested through the pure function — tests
    /// must not mutate `TFNO_THREADS` itself (concurrent `setenv` while
    /// other tests' executors call `getenv` is UB on glibc).
    #[test]
    fn env_value_parsing() {
        assert_eq!(parse_workers(None), None);
        assert_eq!(parse_workers(Some("3")), Some(3));
        assert_eq!(parse_workers(Some(" 8 ")), Some(8));
        assert_eq!(parse_workers(Some("0")), None);
        assert_eq!(parse_workers(Some("not-a-number")), None);
        assert_eq!(parse_workers(Some("")), None);
    }
}
