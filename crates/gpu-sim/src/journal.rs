//! Per-worker write journals with run-length compression, plus the
//! launch-completion machinery that validates and applies them.
//!
//! The functional executor buffers every global store until the launch
//! completes (CUDA visibility semantics). Buffering each lane as an
//! individual `(buffer, element, value)` tuple — the pre-PR representation —
//! costs 24 bytes and one `Vec` push per element, and applying them costs a
//! bounds-checked scalar store each. Almost all kernel stores are warp
//! transactions over *contiguous* elements, so the journal compresses them
//! into runs: one header per maximal contiguous span plus a flat value pool.
//! Application then becomes `copy_from_slice` per run, conflict validation
//! becomes interval-overlap scanning per buffer (instead of a per-element
//! hash set), and both parallelize across buffers — the "shards" — because
//! buffers are disjoint address ranges.

use crate::memory::{BufferData, BufferId, GlobalMemory};
use tfno_num::C32;

/// One maximal contiguous span of buffered writes. Values live in the
/// journal's shared pool at `val_off .. val_off + len`.
#[derive(Clone, Copy, Debug)]
struct WriteRun {
    buf: BufferId,
    start: usize,
    len: usize,
    val_off: usize,
}

/// Buffered global writes of one executor worker (possibly spanning many
/// blocks — blocks of one launch may not write the same element, so no
/// per-block boundary needs to be kept).
#[derive(Debug, Default)]
pub struct WriteJournal {
    runs: Vec<WriteRun>,
    vals: Vec<C32>,
}

impl WriteJournal {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of compressed runs (diagnostics/tests).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of buffered element writes.
    pub fn element_count(&self) -> usize {
        self.vals.len()
    }

    /// Append one element write, extending the last run when contiguous.
    #[inline]
    pub fn push(&mut self, buf: BufferId, elem: usize, v: C32) {
        if let Some(last) = self.runs.last_mut() {
            if last.buf == buf && last.start + last.len == elem {
                last.len += 1;
                self.vals.push(v);
                return;
            }
        }
        self.runs.push(WriteRun {
            buf,
            start: elem,
            len: 1,
            val_off: self.vals.len(),
        });
        self.vals.push(v);
    }

    /// Iterate `(buffer, element, value)` in insertion order (legacy
    /// executor and tests).
    pub fn iter_elements(&self) -> impl Iterator<Item = (BufferId, usize, C32)> + '_ {
        self.runs.iter().flat_map(move |r| {
            (0..r.len).map(move |i| (r.buf, r.start + i, self.vals[r.val_off + i]))
        })
    }
}

/// Reference to one run of one journal, used by the per-buffer index.
type RunRef = (u32, u32);

struct BufferTask<'a> {
    name: &'a str,
    /// `None` for virtual buffers: writes vanish but still validate.
    data: Option<&'a mut [C32]>,
    refs: Vec<RunRef>,
}

/// Validate (optionally) and apply all journals of a completed launch.
///
/// Validation rejects any element written twice in the launch — the same
/// contract the pre-PR per-element hash set enforced, now as an
/// interval-overlap scan over the sorted runs of each buffer. Both
/// validation and application shard naturally per buffer and run on up to
/// `workers` host threads.
pub(crate) fn apply_journals(
    gmem: &mut GlobalMemory,
    journals: &[WriteJournal],
    validate: bool,
    workers: usize,
    kernel_name: &str,
) {
    // Index runs by destination buffer (the shards).
    let mut per_buf: Vec<Vec<RunRef>> = vec![Vec::new(); gmem.buffer_count()];
    for (ji, j) in journals.iter().enumerate() {
        for (ri, r) in j.runs.iter().enumerate() {
            per_buf[r.buf.0].push((ji as u32, ri as u32));
        }
    }

    let mut tasks: Vec<BufferTask<'_>> = gmem
        .buffers_mut()
        .iter_mut()
        .enumerate()
        .filter_map(|(id, buf)| {
            let refs = std::mem::take(&mut per_buf[id]);
            if refs.is_empty() {
                return None;
            }
            let data = match &mut buf.data {
                BufferData::Real(v) => Some(&mut v[..]),
                BufferData::Virtual { .. } => None,
            };
            Some(BufferTask {
                name: &buf.name,
                data,
                refs,
            })
        })
        .collect();

    let run_task = |task: &mut BufferTask<'_>| {
        if validate {
            validate_no_overlap(journals, &task.refs, task.name, kernel_name);
        }
        if let Some(data) = &mut task.data {
            for &(ji, ri) in &task.refs {
                let j = &journals[ji as usize];
                let r = j.runs[ri as usize];
                data[r.start..r.start + r.len]
                    .copy_from_slice(&j.vals[r.val_off..r.val_off + r.len]);
            }
        }
    };

    if workers <= 1 || tasks.len() <= 1 {
        tasks.iter_mut().for_each(run_task);
    } else {
        let per_worker = tasks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for chunk in tasks.chunks_mut(per_worker) {
                scope.spawn(|| chunk.iter_mut().for_each(&run_task));
            }
        });
    }
}

/// Panic if any element of this buffer is covered by two runs.
fn validate_no_overlap(
    journals: &[WriteJournal],
    refs: &[RunRef],
    buf_name: &str,
    kernel_name: &str,
) {
    let mut intervals: Vec<(usize, usize)> = refs
        .iter()
        .map(|&(ji, ri)| {
            let r = journals[ji as usize].runs[ri as usize];
            (r.start, r.start + r.len)
        })
        .collect();
    intervals.sort_unstable();
    for pair in intervals.windows(2) {
        let (prev, next) = (pair[0], pair[1]);
        assert!(
            prev.1 <= next.0,
            "write conflict: two blocks of kernel '{kernel_name}' wrote element {} of buffer '{buf_name}'",
            next.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(i: usize) -> BufferId {
        BufferId(i)
    }

    #[test]
    fn contiguous_writes_compress_into_one_run() {
        let mut j = WriteJournal::new();
        for i in 0..64 {
            j.push(buf(0), i, C32::real(i as f32));
        }
        assert_eq!(j.run_count(), 1);
        assert_eq!(j.element_count(), 64);
    }

    #[test]
    fn strided_writes_stay_separate_runs() {
        let mut j = WriteJournal::new();
        for i in 0..8 {
            j.push(buf(0), i * 5, C32::ONE);
        }
        assert_eq!(j.run_count(), 8);
    }

    #[test]
    fn buffer_switch_breaks_runs() {
        let mut j = WriteJournal::new();
        j.push(buf(0), 0, C32::ONE);
        j.push(buf(1), 1, C32::ONE);
        j.push(buf(0), 1, C32::ONE);
        assert_eq!(j.run_count(), 3);
    }

    #[test]
    fn iter_elements_round_trips() {
        let mut j = WriteJournal::new();
        let writes = [(0usize, 3usize), (0, 4), (1, 7), (0, 9)];
        for (b, e) in writes {
            j.push(buf(b), e, C32::real(e as f32));
        }
        let got: Vec<_> = j.iter_elements().collect();
        assert_eq!(got.len(), 4);
        for ((b, e), (gb, ge, gv)) in writes.iter().zip(&got) {
            assert_eq!((buf(*b), *e), (*gb, *ge));
            assert_eq!(*gv, C32::real(*e as f32));
        }
    }

    #[test]
    fn apply_moves_values_and_skips_virtual() {
        let mut gm = GlobalMemory::new();
        let a = gm.alloc("a", 32);
        let v = gm.alloc_virtual("v", 32);
        let mut j = WriteJournal::new();
        for i in 0..8 {
            j.push(a, i, C32::real(1.0 + i as f32));
            j.push(v, i, C32::ONE);
        }
        apply_journals(&mut gm, &[j], true, 1, "t");
        let out = gm.download(a);
        assert_eq!(out[3], C32::real(4.0));
        assert_eq!(out[8], C32::ZERO);
    }

    #[test]
    #[should_panic(expected = "write conflict")]
    fn overlapping_runs_rejected() {
        let mut gm = GlobalMemory::new();
        let a = gm.alloc("a", 32);
        let mut j0 = WriteJournal::new();
        let mut j1 = WriteJournal::new();
        for i in 0..4 {
            j0.push(a, i, C32::ONE);
            j1.push(a, 3 + i, C32::ONE);
        }
        apply_journals(&mut gm, &[j0, j1], true, 1, "t");
    }

    #[test]
    fn parallel_apply_matches_serial() {
        let mut gm_s = GlobalMemory::new();
        let mut gm_p = GlobalMemory::new();
        let ids_s: Vec<_> = (0..4).map(|i| gm_s.alloc(&format!("b{i}"), 128)).collect();
        let ids_p: Vec<_> = (0..4).map(|i| gm_p.alloc(&format!("b{i}"), 128)).collect();
        let mut journals = Vec::new();
        for w in 0..3 {
            let mut j = WriteJournal::new();
            for (bi, _) in ids_s.iter().enumerate() {
                for i in 0..32 {
                    j.push(buf(bi), w * 32 + i, C32::real((w * 100 + bi * 10 + i) as f32));
                }
            }
            journals.push(j);
        }
        apply_journals(&mut gm_s, &journals, true, 1, "t");
        apply_journals(&mut gm_p, &journals, true, 4, "t");
        for (s, p) in ids_s.iter().zip(&ids_p) {
            assert_eq!(gm_s.download(*s), gm_p.download(*p));
        }
    }
}
