//! Kernel trait, block execution context, and the launch machinery.
//!
//! Kernels are written warp-synchronously against [`BlockCtx`]; the device
//! executes blocks (in parallel across host threads via a work-stealing
//! cursor — blocks are independent by construction, exactly as on
//! hardware) and merges their event counts into a [`LaunchRecord`].
//!
//! Global-memory semantics are CUDA's: reads observe pre-launch state,
//! writes become visible after the launch. Cross-block write conflicts are
//! detected when `validate_writes` is enabled (default in debug builds).
//!
//! ## The functional executor
//!
//! Each worker owns one reusable [`BlockCtx`] (shared-memory scratch and
//! stats allocated once per launch, not per block) and one
//! [`WriteJournal`] that run-length-compresses contiguous stores. Workers
//! claim blocks from an atomic cursor — work stealing, so a slow remainder
//! block never idles the other workers the way the pre-PR static chunking
//! did. When the launch completes, the journals are validated (interval
//! overlap per buffer) and applied (`memcpy` per run), both sharded per
//! buffer across workers. The pre-PR executor is kept behind
//! [`GpuDevice::legacy_executor`] for A/B benchmarking.
//!
//! ## Analytical launches
//!
//! Analytical mode executes one representative block per equivalence class
//! and scales the counts. Kernels that implement
//! [`Kernel::fingerprint`] additionally get memoized through the
//! process-wide [launch memo](crate::memo): a repeated launch of an
//! identical shape returns the cached [`KernelStats`] without touching a
//! single block.

use crate::access::KernelAccess;
use crate::cost::CostModel;
use crate::device::DeviceConfig;
use crate::exec::{self, PendingLaunch};
use crate::fault::{FaultKind, FaultPlan, FaultState, FaultStats, LaunchError};
use crate::journal::{self, WriteJournal};
use crate::memo;
use crate::memory::{BufferId, GlobalMemory};
use crate::shared::SharedMem;
use crate::stats::KernelStats;
use crate::warp::{WarpIdx, WARP_SIZE};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use tfno_num::C32;

/// Launch geometry + static kernel metadata used by the cost model.
#[derive(Clone, Copy, Debug)]
pub struct LaunchDims {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block (multiple of 32 in every kernel we build).
    pub threads_per_block: u32,
    /// Dynamic shared memory per block in bytes.
    pub shared_bytes: usize,
    /// Registers per thread (an estimate the kernel declares; feeds the
    /// occupancy calculation like `-maxrregcount` would).
    pub regs_per_thread: u32,
    /// Fraction of global *load* bytes served by L1/L2 instead of DRAM.
    /// Encodes the dataflow-locality differences the paper discusses
    /// (spatial-order FFT reads cache well; k-loop-ordered reads do not).
    pub l1_hit_rate: f64,
    /// Fraction of the non-dominant resource times that cannot be hidden
    /// under the dominant one. Homogeneous streaming kernels overlap well
    /// (small values); fused kernels whose phases are separated by
    /// `__syncthreads` serialize much of their compute against their
    /// memory traffic — the intra-kernel dependency cost the paper pays
    /// for fusion (§5.1 A.2).
    pub serialization: f64,
}

impl LaunchDims {
    pub fn new(grid_blocks: usize, threads_per_block: u32) -> Self {
        LaunchDims {
            grid_blocks,
            threads_per_block,
            shared_bytes: 0,
            regs_per_thread: 32,
            l1_hit_rate: 0.0,
            serialization: 0.08,
        }
    }

    pub fn with_shared(mut self, bytes: usize) -> Self {
        self.shared_bytes = bytes;
        self
    }

    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    pub fn with_l1_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.l1_hit_rate = rate;
        self
    }

    pub fn with_serialization(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s));
        self.serialization = s;
        self
    }

    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(WARP_SIZE as u32)
    }
}

/// A simulated GPU kernel.
pub trait Kernel: Sync {
    /// Kernel name for launch records and reports.
    fn name(&self) -> String;

    /// Launch geometry and static metadata.
    fn dims(&self) -> LaunchDims;

    /// Execute one thread block functionally, issuing all memory traffic
    /// through `ctx` so it is counted.
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>);

    /// Equivalence classes of blocks for analytical launches: pairs of
    /// `(representative_block_id, class_size)`. Analytical mode executes one
    /// representative per class (writes discarded) and scales its event
    /// counts by the class size — exact whenever all blocks of a class issue
    /// the same access *pattern* (ours all do; property tests in the kernel
    /// crates verify functional == analytical).
    ///
    /// The default declares the whole grid one class. Kernels with remainder
    /// blocks (partial tiles) must override this.
    fn block_classes(&self) -> Vec<(usize, u64)> {
        vec![(0, self.dims().grid_blocks as u64)]
    }

    /// Name-independent structural fingerprint of this kernel's access
    /// pattern, or `None` (the default) to opt out of the analytical
    /// launch memo.
    ///
    /// Contract: two kernels with equal fingerprints, equal [`dims`]
    /// (bitwise) and equal [`block_classes`] must record identical
    /// [`KernelStats`] from an analytical launch — so the fingerprint must
    /// cover every parameter that shapes address patterns or operation
    /// counts (plans, tile configs, strides, view bases, epilogue flags),
    /// while kernel names and buffer identities stay out. Build it with
    /// [`memo::structural_fingerprint`], whose type tag keeps different
    /// kernel families from ever colliding.
    ///
    /// [`dims`]: Kernel::dims
    /// [`block_classes`]: Kernel::block_classes
    fn fingerprint(&self) -> Option<u64> {
        None
    }

    /// Declared static access sets (see [`crate::access`]), or `None` (the
    /// default) to opt out of plan verification — the verifier skips
    /// opaque kernels rather than guess.
    ///
    /// Contract: the returned sets are *exact* — every element any block
    /// reads appears in `reads`, every element a block writes appears in
    /// that block's `block_writes` partition, and nothing else does. Like
    /// [`Kernel::fingerprint`], the sets are a pure function of the
    /// kernel's structure; only the [`BufferId`]s carry identity.
    fn access(&self) -> Option<KernelAccess> {
        None
    }
}

/// One recorded kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchRecord {
    pub name: String,
    pub dims_grid: usize,
    pub stats: KernelStats,
    /// Modeled execution time in microseconds (includes launch overhead).
    pub time_us: f64,
}

/// Execution mode for a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Run every block, move real data, count real events.
    Functional,
    /// Skip execution; use the kernel's closed-form `predict_stats`.
    Analytical,
}

/// Per-block execution context handed to `Kernel::run_block`.
///
/// One context is reused for every block a worker executes: shared-memory
/// scratch is zeroed between blocks (allocation and bank statistics
/// persist) and global writes accumulate in the worker's journal.
pub struct BlockCtx<'a> {
    pub block_id: usize,
    pub dims: LaunchDims,
    shared: SharedMem,
    stats: KernelStats,
    gmem: &'a GlobalMemory,
    journal: WriteJournal,
    /// Route per-access accounting through the pre-PR allocating
    /// implementations (legacy-executor baseline).
    legacy_accounting: bool,
    /// When false, global and shared accesses move data but skip all
    /// traffic accounting (sector math, bank-conflict cycles). The eager
    /// host backend runs kernels this way — functionally exact, none of
    /// the simulator's per-access cost model.
    metered: bool,
}

impl<'a> BlockCtx<'a> {
    fn new(dims: LaunchDims, gmem: &'a GlobalMemory) -> Self {
        BlockCtx {
            block_id: 0,
            dims,
            shared: SharedMem::new(dims.shared_bytes),
            stats: KernelStats::ZERO,
            gmem,
            journal: WriteJournal::new(),
            legacy_accounting: false,
            metered: true,
        }
    }

    fn new_legacy(dims: LaunchDims, gmem: &'a GlobalMemory) -> Self {
        let mut ctx = Self::new(dims, gmem);
        ctx.legacy_accounting = true;
        ctx.shared.legacy_accounting = true;
        ctx
    }

    fn new_unmetered(dims: LaunchDims, gmem: &'a GlobalMemory) -> Self {
        let mut ctx = Self::new(dims, gmem);
        ctx.metered = false;
        ctx.shared.metered = false;
        ctx
    }

    #[inline]
    fn access_cost(&self, buf: BufferId, idx: &WarpIdx) -> crate::memory::AccessCost {
        if self.legacy_accounting {
            self.gmem.access_cost_alloc(buf, idx)
        } else {
            self.gmem.access_cost(buf, idx)
        }
    }

    /// Arm the context for the next block: fresh zeroed shared scratch,
    /// block/warp counters bumped, journal kept accumulating.
    fn begin_block(&mut self, block_id: usize) {
        self.block_id = block_id;
        self.stats.blocks += 1;
        self.stats.warps += self.dims.warps_per_block() as u64;
        self.shared.reset_for_block();
        // reset_for_block unconditionally re-arms shared metering; an
        // unmetered context must stay unmetered for every block it runs.
        self.shared.metered = self.metered;
    }

    /// Warp-level global load. Observes pre-launch buffer contents.
    pub fn global_read(&mut self, buf: BufferId, idx: &WarpIdx) -> [C32; WARP_SIZE] {
        if self.metered {
            let cost = self.access_cost(buf, idx);
            self.stats.global_load_bytes += cost.bytes;
            self.stats.global_load_sectors += cost.sectors;
        }
        self.gmem.read_warp(buf, idx)
    }

    /// Warp-level global store. Becomes visible after the launch.
    pub fn global_write(&mut self, buf: BufferId, idx: &WarpIdx, vals: &[C32; WARP_SIZE]) {
        if self.metered {
            let cost = self.access_cost(buf, idx);
            self.stats.global_store_bytes += cost.bytes;
            self.stats.global_store_sectors += cost.sectors;
        }
        for (lane, elem) in idx.iter_active() {
            self.journal.push(buf, elem, vals[lane]);
        }
    }

    /// Warp-level shared-memory store (bank conflicts counted).
    pub fn shared_store(&mut self, idx: &WarpIdx, vals: &[C32; WARP_SIZE]) {
        self.shared.store_warp(idx, vals);
    }

    /// Warp-level shared-memory load (bank conflicts counted).
    pub fn shared_load(&mut self, idx: &WarpIdx) -> [C32; WARP_SIZE] {
        self.shared.load_warp(idx)
    }

    /// Vectorized shared load: each lane reads `width` consecutive elements
    /// (models LDS.64/LDS.128 fragment loads in the GEMM main loop).
    pub fn shared_load_wide(&mut self, idx: &WarpIdx, width: usize) -> Vec<[C32; WARP_SIZE]> {
        self.shared.load_warp_wide(idx, width)
    }

    /// Vectorized shared store (`vals[v][lane]`).
    pub fn shared_store_wide(&mut self, idx: &WarpIdx, vals: &[[C32; WARP_SIZE]], width: usize) {
        self.shared.store_warp_wide(idx, vals, width)
    }

    /// Toggle shared-memory traffic accounting. While off, accesses still
    /// move data (so functional results stay exact) but are charged as
    /// register traffic — used by the FFT engine to model butterfly stages
    /// that a real kernel keeps entirely in registers within a radix pass.
    /// A context that is itself unmetered never re-enables accounting.
    pub fn set_shared_metering(&mut self, on: bool) {
        self.shared.metered = on && self.metered;
    }

    /// True when this context belongs to the legacy (pre-PR) executor
    /// baseline. Kernels consult this to bypass new-engine caches (e.g.
    /// butterfly trace reuse) so A/B benchmarks measure the pre-PR cost
    /// profile faithfully.
    pub fn legacy_mode(&self) -> bool {
        self.legacy_accounting
    }

    /// Block-wide barrier. In the functional model execution is already
    /// sequential per block, so this only records the event for costing.
    pub fn syncthreads(&mut self) {
        self.stats.syncthreads += 1;
    }

    /// Record `n` real floating-point operations.
    pub fn add_flops(&mut self, n: u64) {
        self.stats.flops += n;
    }

    /// Size of this block's shared memory in `C32` elements.
    pub fn shared_len(&self) -> usize {
        self.shared.len()
    }

    /// Unmetered shared-memory view for debug assertions in kernels/tests.
    pub fn shared_raw(&self) -> &[C32] {
        self.shared.raw()
    }

    fn finish(mut self) -> WorkerResult {
        self.stats.shared_ideal_cycles =
            self.shared.load_stats.ideal_cycles + self.shared.store_stats.ideal_cycles;
        self.stats.shared_actual_cycles =
            self.shared.load_stats.actual_cycles + self.shared.store_stats.actual_cycles;
        (self.stats, self.journal)
    }
}

/// What one worker's blocks produce: their summed event stats and the
/// journal of global writes to apply when the launch completes.
type WorkerResult = (KernelStats, WriteJournal);

/// The simulated device: global memory + config + launch history.
pub struct GpuDevice {
    pub config: DeviceConfig,
    pub memory: GlobalMemory,
    cost: CostModel,
    launches: Vec<LaunchRecord>,
    /// Detect two blocks writing the same element in one launch.
    pub validate_writes: bool,
    /// Execute blocks on multiple host threads when the grid is large.
    pub parallel: bool,
    /// Use the memoized-analytical launch path (see [`crate::memo`]).
    pub analytical_memo: bool,
    /// Run the pre-PR static-chunk executor (per-block context allocation,
    /// per-element write tuples, serial hash-set validation and apply).
    /// Kept solely so benchmarks and tests can A/B the engines.
    pub legacy_executor: bool,
    /// Explicit worker-count override; `None` follows the
    /// `TFNO_THREADS`-aware default policy in [`crate::exec`].
    workers: Option<usize>,
    /// Installed fault-injection schedule (see [`crate::fault`]); `None`
    /// keeps every launch/alloc on the infallible fast path.
    faults: Option<FaultState>,
}

impl GpuDevice {
    pub fn new(config: DeviceConfig) -> Self {
        let cost = CostModel::new(config.clone());
        GpuDevice {
            config,
            memory: GlobalMemory::new(),
            cost,
            launches: Vec::new(),
            validate_writes: cfg!(debug_assertions),
            parallel: true,
            analytical_memo: true,
            legacy_executor: false,
            workers: None,
            faults: None,
        }
    }

    pub fn a100() -> Self {
        Self::new(DeviceConfig::a100())
    }

    /// Pin the functional executor to exactly `n` workers (capped at the
    /// grid size per launch), overriding `TFNO_THREADS` and the
    /// block-count heuristic.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.set_workers(Some(n));
        self
    }

    /// Set or clear the explicit worker-count override.
    pub fn set_workers(&mut self, workers: Option<usize>) {
        self.workers = workers.map(|n| n.max(1));
    }

    /// Stable key of the execution policy in force on this device: the
    /// explicit worker override, the process-wide configured worker count,
    /// and the executor/parallelism flags. Sequence-replay caches store it
    /// so a policy change between warm calls invalidates (never stale-hits)
    /// the recorded artifact.
    pub fn worker_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.workers.hash(&mut h);
        exec::configured_workers().hash(&mut h);
        self.parallel.hash(&mut h);
        self.legacy_executor.hash(&mut h);
        h.finish()
    }

    /// Worker count the functional executor will use for a grid of
    /// `n_blocks` under the current policy.
    pub fn effective_workers(&self, n_blocks: usize) -> usize {
        if !self.parallel || n_blocks == 0 {
            return 1;
        }
        match self.workers {
            Some(n) => n.min(n_blocks).max(1),
            None => exec::workers_for(n_blocks),
        }
    }

    /// Install a fault-injection schedule (see [`crate::fault`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Install or clear the fault-injection schedule. Installing a plan
    /// resets its event cursors and [`FaultStats`].
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.map(FaultState::new);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Injection counters of the installed plan (all-zero when none is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        self.try_alloc(name, len).unwrap_or_else(|e| {
            panic!("injected device fault unhandled by this call path: {e}; use GpuDevice::try_alloc")
        })
    }

    /// [`GpuDevice::alloc`] with a typed error path: when the installed
    /// [`FaultPlan`] fails this allocation event, returns
    /// [`LaunchError::Oom`] instead of allocating.
    pub fn try_alloc(&mut self, name: &str, len: usize) -> Result<BufferId, LaunchError> {
        if let Some(f) = &self.faults {
            if let Some(idx) = f.next_alloc() {
                return Err(LaunchError::Oom {
                    name: name.to_string(),
                    requested: len,
                    alloc_index: idx,
                });
            }
        }
        Ok(self.memory.alloc(name, len))
    }

    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        self.memory.upload(id, data);
    }

    pub fn download(&self, id: BufferId) -> Vec<C32> {
        self.memory.download(id)
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    pub fn clear_launches(&mut self) {
        self.launches.clear();
    }

    /// Total modeled time of all recorded launches (a "pipeline time").
    pub fn total_time_us(&self) -> f64 {
        self.launches.iter().map(|l| l.time_us).sum()
    }

    /// Launch a kernel. Returns the record (also appended to history).
    ///
    /// Equivalent to [`GpuDevice::launch_deferred`] immediately followed
    /// by [`GpuDevice::complete`] — the synchronous contract every
    /// pipeline stage relies on (stage N+1 reads stage N's output). The
    /// legacy executor applies its writes inline, so its launches flow
    /// through `complete` with an empty journal set.
    pub fn launch(&mut self, kernel: &dyn Kernel, mode: ExecMode) -> LaunchRecord {
        self.try_launch(kernel, mode).unwrap_or_else(|e| {
            panic!("injected device fault unhandled by this call path: {e}; use GpuDevice::try_launch")
        })
    }

    /// [`GpuDevice::launch`] with a typed error path: a fault injected by
    /// the installed [`FaultPlan`] returns a [`LaunchError`] instead of
    /// unwinding. A failed launch is clean — no writes applied, nothing in
    /// the history — so retrying it is always sound.
    pub fn try_launch(
        &mut self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        let pending = if self.legacy_executor && mode == ExecMode::Functional {
            let dims = kernel.dims();
            assert!(dims.grid_blocks > 0, "empty grid for kernel {}", kernel.name());
            self.check_launch_fault(kernel, mode)?;
            let stats = self.run_functional_legacy(kernel, dims);
            PendingLaunch {
                name: kernel.name(),
                dims,
                stats,
                journals: Vec::new(),
                workers: 1,
            }
        } else {
            self.try_launch_deferred(kernel, mode)?
        };
        Ok(self.complete(pending))
    }

    /// Issue a launch without applying its writes — the asynchronous half
    /// of [`GpuDevice::launch`]. Blocks execute now (reads observe the
    /// current memory state; global stores accumulate in write journals),
    /// but memory is untouched and nothing lands in the launch history
    /// until the returned [`PendingLaunch`] goes through
    /// [`GpuDevice::complete`]. Note the `&self` receiver: between issue
    /// and completion the caller keeps shared access to the device, which
    /// models a CUDA host thread continuing past an async kernel launch.
    ///
    /// The legacy executor applies writes inline per element and therefore
    /// cannot defer functional launches; deferred functional issue always
    /// runs the journaled work-stealing engine. Analytical issue produces
    /// no journals and works on any device configuration.
    pub fn launch_deferred(&self, kernel: &dyn Kernel, mode: ExecMode) -> PendingLaunch {
        self.try_launch_deferred(kernel, mode).unwrap_or_else(|e| {
            panic!(
                "injected device fault unhandled by this call path: {e}; \
                 use GpuDevice::try_launch_deferred"
            )
        })
    }

    /// [`GpuDevice::launch_deferred`] with a typed error path (see
    /// [`GpuDevice::try_launch`]).
    pub fn try_launch_deferred(
        &self,
        kernel: &dyn Kernel,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        assert!(
            !(self.legacy_executor && mode == ExecMode::Functional),
            "deferred functional launches require the journaled executor \
             (legacy_executor = false)"
        );
        let dims = kernel.dims();
        assert!(dims.grid_blocks > 0, "empty grid for kernel {}", kernel.name());
        self.check_launch_fault(kernel, mode)?;
        let (stats, journals, workers) = match mode {
            ExecMode::Analytical => (self.run_analytical(kernel, dims), Vec::new(), 1),
            ExecMode::Functional => self.run_blocks(kernel, dims),
        };
        Ok(PendingLaunch {
            name: kernel.name(),
            dims,
            stats,
            journals,
            workers,
        })
    }

    /// Roll the installed fault plan for one functional launch. A drawn
    /// stall blocks the caller and then lets the launch proceed; the
    /// failure kinds abort it before any block runs (a worker panic is
    /// modeled at its observable boundary — the launch discarded whole, as
    /// if every journal died with the worker — so no thread actually
    /// unwinds and chaos soaks stay quiet). Analytical launches model
    /// host-side cost math, not device work, and are never faulted.
    fn check_launch_fault(&self, kernel: &dyn Kernel, mode: ExecMode) -> Result<(), LaunchError> {
        if mode != ExecMode::Functional {
            return Ok(());
        }
        let Some(f) = &self.faults else {
            return Ok(());
        };
        match f.next_launch() {
            None => Ok(()),
            Some((_, FaultKind::Stall)) => {
                std::thread::sleep(std::time::Duration::from_micros(f.stall_us()));
                Ok(())
            }
            Some((launch_index, FaultKind::TransientLaunch)) => Err(LaunchError::Transient {
                kernel: kernel.name(),
                launch_index,
            }),
            Some((launch_index, FaultKind::WorkerPanic)) => Err(LaunchError::WorkerPanic {
                kernel: kernel.name(),
                launch_index,
            }),
            Some((_, FaultKind::Alloc)) => unreachable!("at_launch rejects FaultKind::Alloc"),
        }
    }

    /// Complete a deferred launch: validate and apply its write journals
    /// (making the kernel's stores visible, as a stream synchronize
    /// would), cost it, and append it to the launch history.
    pub fn complete(&mut self, pending: PendingLaunch) -> LaunchRecord {
        let PendingLaunch {
            name,
            dims,
            stats,
            journals,
            workers,
        } = pending;
        if !journals.is_empty() {
            journal::apply_journals(
                &mut self.memory,
                &journals,
                self.validate_writes,
                workers,
                &name,
            );
        }
        let time_us = self.cost.kernel_time_us(&dims, &stats);
        let rec = LaunchRecord {
            name,
            dims_grid: dims.grid_blocks,
            stats,
            time_us,
        };
        self.launches.push(rec.clone());
        rec
    }

    /// Analytical launch: run one representative block per class (writes
    /// discarded) and scale the counts — unless a memoized launch of the
    /// same signature already did.
    fn run_analytical(&self, kernel: &dyn Kernel, dims: LaunchDims) -> KernelStats {
        debug_assert_eq!(dims.grid_blocks, kernel.dims().grid_blocks);
        run_analytical_stats(&self.memory, kernel, self.analytical_memo)
    }

    /// Work-stealing block execution (see the module docs): run every
    /// block and return the summed stats plus the unapplied per-worker
    /// write journals. Shared by the synchronous launch path (which
    /// applies the journals immediately) and the deferred path (which
    /// hands them to the caller inside a [`PendingLaunch`]).
    fn run_blocks(
        &self,
        kernel: &dyn Kernel,
        dims: LaunchDims,
    ) -> (KernelStats, Vec<WriteJournal>, usize) {
        let n_blocks = dims.grid_blocks;
        let workers = self.effective_workers(n_blocks);

        let (total, journals) = if workers <= 1 {
            let mut ctx = BlockCtx::new(dims, &self.memory);
            for b in 0..n_blocks {
                ctx.begin_block(b);
                kernel.run_block(b, &mut ctx);
            }
            let (stats, journal) = ctx.finish();
            (stats, vec![journal])
        } else {
            let gmem = &self.memory;
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut ctx = BlockCtx::new(dims, gmem);
                            loop {
                                let b = cursor.fetch_add(1, Ordering::Relaxed);
                                if b >= n_blocks {
                                    break;
                                }
                                ctx.begin_block(b);
                                kernel.run_block(b, &mut ctx);
                            }
                            ctx.finish()
                        })
                    })
                    .collect();
                let mut total = KernelStats::ZERO;
                let mut journals = Vec::with_capacity(workers);
                for h in handles {
                    // Invariant: workers run user kernels, whose documented
                    // failure modes (validation asserts) fire on the host
                    // side of the launch, not inside `run_block`; a worker
                    // panic here is a kernel bug, so re-raising is correct.
                    // Injected worker-panic faults never reach this point —
                    // they abort the launch at issue (see `crate::fault`).
                    let (stats, journal) = h.join().expect("block worker panicked");
                    total += stats;
                    journals.push(journal);
                }
                (total, journals)
            })
        };
        (total, journals, workers)
    }

    /// The pre-PR executor: static contiguous chunking, one context
    /// allocation per block, per-element hash-set validation, serial write
    /// application. Behavior-identical baseline for A/B benchmarks.
    fn run_functional_legacy(&mut self, kernel: &dyn Kernel, dims: LaunchDims) -> KernelStats {
        let n_blocks = dims.grid_blocks;
        let workers = self.effective_workers(n_blocks);

        let run_one = |b: usize, gmem: &GlobalMemory| -> WorkerResult {
            let mut ctx = BlockCtx::new_legacy(dims, gmem);
            ctx.begin_block(b);
            kernel.run_block(b, &mut ctx);
            ctx.finish()
        };

        let results: Vec<WorkerResult> = if workers <= 1 {
            (0..n_blocks).map(|b| run_one(b, &self.memory)).collect()
        } else {
            let gmem = &self.memory;
            std::thread::scope(|scope| {
                let chunk = n_blocks.div_ceil(workers);
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let lo = w * chunk;
                            let hi = ((w + 1) * chunk).min(n_blocks);
                            (lo..hi).map(|b| run_one(b, gmem)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("block worker panicked"))
                    .collect()
            })
        };

        let mut total = KernelStats::ZERO;
        let mut seen: Option<HashSet<(BufferId, usize)>> =
            self.validate_writes.then(HashSet::new);
        for (stats, journal) in results {
            total += stats;
            for (buf, elem, v) in journal.iter_elements() {
                if let Some(seen) = seen.as_mut() {
                    assert!(
                        seen.insert((buf, elem)),
                        "write conflict: two blocks of kernel '{}' wrote element {elem} of buffer '{}'",
                        kernel.name(),
                        self.memory.name(buf)
                    );
                }
                self.memory.apply_write(buf, elem, v);
            }
        }
        total
    }
}

/// Analytical stats of one launch against `memory` — one representative
/// block per equivalence class, counts scaled by class size, memoized
/// through the process-wide [launch memo](crate::memo) when `use_memo` is
/// set (and the memo is globally enabled).
///
/// This is the device-independent core of the analytical launch path,
/// shared by [`GpuDevice`] and the `tfno-backend` host backend so both
/// produce bit-identical stats (and share the same memo entries) for the
/// same kernel and device geometry.
pub fn run_analytical_stats(
    memory: &GlobalMemory,
    kernel: &dyn Kernel,
    use_memo: bool,
) -> KernelStats {
    let dims = kernel.dims();
    let classes = kernel.block_classes();
    let declared: u64 = classes.iter().map(|(_, c)| c).sum();
    assert_eq!(
        declared,
        dims.grid_blocks as u64,
        "block_classes of '{}' cover {declared} blocks but the grid has {}",
        kernel.name(),
        dims.grid_blocks
    );
    let key = if use_memo && memo::launch_memo_enabled() {
        memo::signature(kernel.fingerprint(), &dims, &classes)
    } else {
        None
    };
    if let Some(key) = key {
        if let Some(stats) = memo::lookup(key) {
            return stats;
        }
    }
    let mut total = KernelStats::ZERO;
    for (rep, count) in classes {
        assert!(rep < dims.grid_blocks, "representative block out of grid");
        let mut ctx = BlockCtx::new(dims, memory);
        ctx.begin_block(rep);
        kernel.run_block(rep, &mut ctx);
        let (stats, _writes) = ctx.finish();
        total += stats.scaled(count);
    }
    if let Some(key) = key {
        memo::insert(key, total);
    }
    total
}

/// Execute a kernel's functional body eagerly against `memory`: every
/// block runs with traffic accounting switched off (no sector math, no
/// bank-conflict cycles), writes are applied immediately at return with no
/// conflict validation, and nothing is journaled past the call.
///
/// This is the `tfno-backend` host backend's data path. It is functionally
/// exact — the same `run_block` bodies execute, reads observe pre-launch
/// memory (writes buffer per worker until the blocks finish, preserving
/// CUDA read visibility), and block writes are disjoint by the kernel
/// contract — but it pays none of the simulator's modeling costs. The
/// returned stats carry only the structural counters (blocks, warps,
/// flops, syncthreads); all traffic fields are zero.
///
/// Blocks are statically chunked across `workers` host threads (capped at
/// the grid size), so the execution — and therefore the journal
/// application order — is deterministic for a fixed worker count.
pub fn run_functional_eager(
    memory: &mut GlobalMemory,
    kernel: &dyn Kernel,
    workers: usize,
) -> KernelStats {
    let dims = kernel.dims();
    let n_blocks = dims.grid_blocks;
    assert!(n_blocks > 0, "empty grid for kernel {}", kernel.name());
    let workers = workers.clamp(1, n_blocks);

    let results: Vec<WorkerResult> = if workers <= 1 {
        let mut ctx = BlockCtx::new_unmetered(dims, memory);
        for b in 0..n_blocks {
            ctx.begin_block(b);
            kernel.run_block(b, &mut ctx);
        }
        vec![ctx.finish()]
    } else {
        let gmem = &*memory;
        let chunk = n_blocks.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut ctx = BlockCtx::new_unmetered(dims, gmem);
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(n_blocks);
                        for b in lo..hi {
                            ctx.begin_block(b);
                            kernel.run_block(b, &mut ctx);
                        }
                        ctx.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("eager block worker panicked"))
                .collect()
        })
    };

    let mut total = KernelStats::ZERO;
    let journals: Vec<WriteJournal> = results
        .into_iter()
        .map(|(stats, journal)| {
            total += stats;
            journal
        })
        .collect();
    journal::apply_journals(memory, &journals, false, workers, &kernel.name());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    /// A toy kernel: each block scales 32 contiguous elements by 2.
    struct ScaleKernel {
        src: BufferId,
        dst: BufferId,
        blocks: usize,
    }

    impl Kernel for ScaleKernel {
        fn name(&self) -> String {
            "scale2".into()
        }
        fn dims(&self) -> LaunchDims {
            LaunchDims::new(self.blocks, 32).with_shared(1024)
        }
        fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
            let idx = WarpIdx::contiguous(block_id * 32);
            let vals = ctx.global_read(self.src, &idx);
            let mut out = [C32::ZERO; 32];
            for (o, v) in out.iter_mut().zip(vals.iter()) {
                *o = v.scale(2.0);
            }
            ctx.add_flops(64);
            ctx.syncthreads();
            ctx.global_write(self.dst, &idx, &out);
        }
        fn fingerprint(&self) -> Option<u64> {
            Some(memo::structural_fingerprint("test.scale2", |h| {
                use std::hash::Hash;
                self.blocks.hash(h);
            }))
        }
    }

    fn expected_stats(blocks: u64) -> KernelStats {
        KernelStats {
            blocks,
            warps: blocks,
            flops: 64 * blocks,
            global_load_bytes: 256 * blocks,
            global_store_bytes: 256 * blocks,
            global_load_sectors: 8 * blocks,
            global_store_sectors: 8 * blocks,
            syncthreads: blocks,
            ..KernelStats::ZERO
        }
    }

    fn setup(blocks: usize) -> (GpuDevice, BufferId, BufferId) {
        let mut dev = GpuDevice::new(DeviceConfig::a100());
        let n = blocks * 32;
        let src = dev.alloc("src", n);
        let dst = dev.alloc("dst", n);
        let data: Vec<C32> = (0..n).map(|i| C32::real(i as f32)).collect();
        dev.upload(src, &data);
        (dev, src, dst)
    }

    #[test]
    fn functional_execution_moves_data() {
        let (mut dev, src, dst) = setup(4);
        let k = ScaleKernel { src, dst, blocks: 4 };
        dev.launch(&k, ExecMode::Functional);
        let out = dev.download(dst);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, C32::real(2.0 * i as f32));
        }
    }

    #[test]
    fn functional_stats_match_prediction() {
        let (mut dev, src, dst) = setup(7);
        let k = ScaleKernel { src, dst, blocks: 7 };
        let rec = dev.launch(&k, ExecMode::Functional);
        assert_eq!(rec.stats, expected_stats(7));
        let rec_a = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(rec_a.stats, rec.stats, "analytical must equal functional");
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let (mut dev_seq, src, dst) = setup(64);
        dev_seq.parallel = false;
        let k = ScaleKernel { src, dst, blocks: 64 };
        let rec_seq = dev_seq.launch(&k, ExecMode::Functional);
        let out_seq = dev_seq.download(dst);

        let (dev_par, src2, dst2) = setup(64);
        let mut dev_par = dev_par.with_workers(4);
        let k2 = ScaleKernel {
            src: src2,
            dst: dst2,
            blocks: 64,
        };
        let rec_par = dev_par.launch(&k2, ExecMode::Functional);
        assert_eq!(rec_seq.stats, rec_par.stats);
        assert_eq!(out_seq, dev_par.download(dst2));
    }

    #[test]
    fn legacy_executor_matches_work_stealing() {
        let (mut dev_new, src, dst) = setup(32);
        let k = ScaleKernel { src, dst, blocks: 32 };
        let rec_new = dev_new.launch(&k, ExecMode::Functional);
        let out_new = dev_new.download(dst);

        let (mut dev_old, src2, dst2) = setup(32);
        dev_old.legacy_executor = true;
        let k2 = ScaleKernel {
            src: src2,
            dst: dst2,
            blocks: 32,
        };
        let rec_old = dev_old.launch(&k2, ExecMode::Functional);
        assert_eq!(rec_new.stats, rec_old.stats);
        assert_eq!(out_new, dev_old.download(dst2));
    }

    /// Worker policy: explicit overrides beat the env var and the
    /// block-count gate. (Env-var *parsing* is tested in `exec::tests`
    /// through the pure parser — mutating `TFNO_THREADS` from a test
    /// would race other tests' executors reading it.)
    #[test]
    fn worker_policy_respects_overrides() {
        let dev2 = GpuDevice::new(DeviceConfig::a100()).with_workers(8);
        assert_eq!(dev2.effective_workers(4), 4, "capped at grid");
        assert_eq!(dev2.effective_workers(100), 8);
        let mut dev3 = GpuDevice::new(DeviceConfig::a100()).with_workers(8);
        dev3.parallel = false;
        assert_eq!(dev3.effective_workers(100), 1, "parallel=false wins");
        if std::env::var_os("TFNO_THREADS").is_none() {
            let dev = GpuDevice::new(DeviceConfig::a100());
            assert_eq!(dev.effective_workers(4), 1, "default: small grids stay serial");
        }
    }

    #[test]
    fn analytical_mode_discards_writes() {
        let (mut dev, src, dst) = setup(4);
        let k = ScaleKernel { src, dst, blocks: 4 };
        let rec = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(rec.stats, expected_stats(4));
        // data untouched
        assert_eq!(dev.download(dst)[5], C32::ZERO);
    }

    #[test]
    fn analytical_mode_works_on_virtual_buffers() {
        let mut dev = GpuDevice::new(DeviceConfig::a100());
        let blocks = 1 << 20; // far beyond what we'd want to materialize
        let src = dev.memory.alloc_virtual("src", blocks * 32);
        let dst = dev.memory.alloc_virtual("dst", blocks * 32);
        let k = ScaleKernel { src, dst, blocks };
        let rec = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(rec.stats, expected_stats(blocks as u64));
    }

    #[test]
    fn memoized_analytical_launch_returns_identical_stats() {
        let (mut dev, src, dst) = setup(9);
        let k = ScaleKernel { src, dst, blocks: 9 };
        let cold = dev.launch(&k, ExecMode::Analytical).stats;
        let before = memo::launch_memo_stats();
        let warm = dev.launch(&k, ExecMode::Analytical).stats;
        let after = memo::launch_memo_stats();
        assert_eq!(cold, warm);
        assert!(after.hits > before.hits, "second launch must hit the memo");

        // Disabling the memo on the device gives the same stats, freshly.
        dev.analytical_memo = false;
        let fresh = dev.launch(&k, ExecMode::Analytical).stats;
        assert_eq!(cold, fresh);
    }

    /// A kernel whose block_classes under-covers the grid must be rejected.
    struct BadClassesKernel;
    impl Kernel for BadClassesKernel {
        fn name(&self) -> String {
            "bad".into()
        }
        fn dims(&self) -> LaunchDims {
            LaunchDims::new(4, 32)
        }
        fn run_block(&self, _b: usize, _ctx: &mut BlockCtx<'_>) {}
        fn block_classes(&self) -> Vec<(usize, u64)> {
            vec![(0, 3)]
        }
    }

    #[test]
    #[should_panic(expected = "cover 3 blocks")]
    fn bad_block_classes_rejected() {
        let mut dev = GpuDevice::new(DeviceConfig::a100());
        dev.launch(&BadClassesKernel, ExecMode::Analytical);
    }

    #[test]
    fn launch_history_accumulates() {
        let (mut dev, src, dst) = setup(2);
        let k = ScaleKernel { src, dst, blocks: 2 };
        dev.launch(&k, ExecMode::Analytical);
        dev.launch(&k, ExecMode::Analytical);
        assert_eq!(dev.launches().len(), 2);
        assert!(dev.total_time_us() > 0.0);
        dev.clear_launches();
        assert!(dev.launches().is_empty());
    }

    /// Two blocks writing the same element must be rejected.
    struct ConflictKernel {
        dst: BufferId,
    }
    impl Kernel for ConflictKernel {
        fn name(&self) -> String {
            "conflict".into()
        }
        fn dims(&self) -> LaunchDims {
            LaunchDims::new(2, 32)
        }
        fn run_block(&self, _block: usize, ctx: &mut BlockCtx<'_>) {
            let idx = WarpIdx::contiguous(0); // same elements from both blocks
            ctx.global_write(self.dst, &idx, &[C32::ONE; 32]);
        }
    }

    #[test]
    #[should_panic(expected = "write conflict")]
    fn write_conflicts_detected() {
        let mut dev = GpuDevice::new(DeviceConfig::a100());
        let dst = dev.alloc("dst", 64);
        dev.validate_writes = true;
        dev.parallel = false;
        let k = ConflictKernel { dst };
        dev.launch(&k, ExecMode::Functional);
    }

    #[test]
    #[should_panic(expected = "write conflict")]
    fn legacy_executor_detects_conflicts_too() {
        let mut dev = GpuDevice::new(DeviceConfig::a100());
        let dst = dev.alloc("dst", 64);
        dev.validate_writes = true;
        dev.parallel = false;
        dev.legacy_executor = true;
        let k = ConflictKernel { dst };
        dev.launch(&k, ExecMode::Functional);
    }

    /// Deferred issue + complete must be indistinguishable from a
    /// synchronous launch: same stats, same data, same history entry.
    #[test]
    fn deferred_launch_equals_synchronous_launch() {
        let (mut dev_sync, src, dst) = setup(16);
        let k = ScaleKernel { src, dst, blocks: 16 };
        let rec_sync = dev_sync.launch(&k, ExecMode::Functional);
        let out_sync = dev_sync.download(dst);

        let (mut dev_def, src2, dst2) = setup(16);
        let k2 = ScaleKernel {
            src: src2,
            dst: dst2,
            blocks: 16,
        };
        let pending = dev_def.launch_deferred(&k2, ExecMode::Functional);
        assert_eq!(pending.name(), "scale2");
        assert_eq!(*pending.stats(), rec_sync.stats);
        let rec_def = dev_def.complete(pending);
        assert_eq!(rec_def.stats, rec_sync.stats);
        assert_eq!(rec_def.time_us, rec_sync.time_us);
        assert_eq!(dev_def.download(dst2), out_sync);
        assert_eq!(dev_def.launches().len(), 1);
    }

    /// CUDA visibility semantics: between issue and completion the host
    /// observes pre-launch memory, and nothing is in the launch history.
    #[test]
    fn deferred_writes_invisible_until_complete() {
        let (mut dev, src, dst) = setup(4);
        let k = ScaleKernel { src, dst, blocks: 4 };
        let pending = dev.launch_deferred(&k, ExecMode::Functional);
        assert_eq!(
            dev.download(dst)[5],
            C32::ZERO,
            "writes must stay journaled until completion"
        );
        assert!(dev.launches().is_empty(), "history records completions, not issues");
        dev.complete(pending);
        assert_eq!(dev.download(dst)[5], C32::real(10.0));
        assert_eq!(dev.launches().len(), 1);
    }

    #[test]
    #[should_panic(expected = "journaled executor")]
    fn deferred_launch_rejects_legacy_executor() {
        let (mut dev, src, dst) = setup(2);
        dev.legacy_executor = true;
        let k = ScaleKernel { src, dst, blocks: 2 };
        let _ = dev.launch_deferred(&k, ExecMode::Functional);
    }

    /// Regression: `legacy_executor` only ever governed *functional*
    /// execution — analytical launches (e.g. `Session::measure` on a
    /// legacy A/B device) must keep working, as they did pre-deferral.
    #[test]
    fn legacy_executor_still_runs_analytical_launches() {
        let (mut dev, src, dst) = setup(4);
        dev.legacy_executor = true;
        let k = ScaleKernel { src, dst, blocks: 4 };
        let rec = dev.launch(&k, ExecMode::Analytical);
        assert_eq!(rec.stats, expected_stats(4));
        assert_eq!(dev.launches().len(), 1);
    }

    /// A depth-D launch queue must end in exactly the state a sequence of
    /// synchronous launches produces, as long as the queued launches are
    /// write-independent (disjoint destinations here).
    #[test]
    fn launch_queue_matches_synchronous_completion() {
        let (mut dev_sync, src, dst) = setup(8);
        let dst2 = dev_sync.alloc("dst2", 8 * 32);
        let k1 = ScaleKernel { src, dst, blocks: 8 };
        let k2 = ScaleKernel { src, dst: dst2, blocks: 8 };
        let r1 = dev_sync.launch(&k1, ExecMode::Functional);
        let r2 = dev_sync.launch(&k2, ExecMode::Functional);
        let want_a = dev_sync.download(dst);
        let want_b = dev_sync.download(dst2);

        let (mut dev_q, src_q, dst_q) = setup(8);
        let dst2_q = dev_q.alloc("dst2", 8 * 32);
        let q1 = ScaleKernel { src: src_q, dst: dst_q, blocks: 8 };
        let q2 = ScaleKernel { src: src_q, dst: dst2_q, blocks: 8 };
        let mut queue = crate::exec::LaunchQueue::new(2);
        let p1 = dev_q.launch_deferred(&q1, ExecMode::Functional);
        assert!(queue.push(&mut dev_q, p1).is_empty(), "window not full yet");
        let p2 = dev_q.launch_deferred(&q2, ExecMode::Functional);
        assert!(queue.push(&mut dev_q, p2).is_empty());
        assert_eq!(queue.in_flight(), 2);
        // Nothing visible until the window drains.
        assert_eq!(dev_q.download(dst_q)[5], C32::ZERO);
        let done = queue.flush(&mut dev_q);
        assert_eq!(done.len(), 2);
        assert_eq!(queue.in_flight(), 0);
        assert_eq!(done[0].stats, r1.stats);
        assert_eq!(done[1].stats, r2.stats);
        assert_eq!(dev_q.download(dst_q), want_a);
        assert_eq!(dev_q.download(dst2_q), want_b);
        assert_eq!(dev_q.launches().len(), 2);
    }

    /// Overflowing the window completes the oldest launch first.
    #[test]
    fn launch_queue_completes_oldest_on_overflow() {
        let (mut dev, src, dst) = setup(4);
        let dst2 = dev.alloc("q.dst2", 4 * 32);
        let k1 = ScaleKernel { src, dst, blocks: 4 };
        let k2 = ScaleKernel { src, dst: dst2, blocks: 4 };
        let mut queue = crate::exec::LaunchQueue::new(1);
        let p1 = dev.launch_deferred(&k1, ExecMode::Functional);
        queue.push(&mut dev, p1);
        let p2 = dev.launch_deferred(&k2, ExecMode::Functional);
        let done = queue.push(&mut dev, p2);
        assert_eq!(done.len(), 1, "depth-1 window completes on the next push");
        assert_eq!(done[0].name, "scale2");
        assert_eq!(dev.download(dst)[5], C32::real(10.0), "oldest applied");
        assert_eq!(dev.download(dst2)[5], C32::ZERO, "newest still journaled");
        queue.flush(&mut dev);
        assert_eq!(dev.download(dst2)[5], C32::real(10.0));
    }

    #[test]
    fn worker_key_tracks_policy_changes() {
        let dev = GpuDevice::a100();
        let base = dev.worker_key();
        assert_eq!(base, GpuDevice::a100().worker_key(), "key is stable");
        let pinned = GpuDevice::a100().with_workers(1);
        assert_ne!(base, pinned.worker_key(), "override changes the key");
        let mut legacy = GpuDevice::a100();
        legacy.legacy_executor = true;
        assert_ne!(base, legacy.worker_key(), "executor flavor changes the key");
    }

    #[test]
    fn time_increases_with_work() {
        let (mut dev, src, dst) = setup(256);
        let small = ScaleKernel { src, dst, blocks: 4 };
        let t_small = dev.launch(&small, ExecMode::Analytical).time_us;
        let big = ScaleKernel {
            src,
            dst,
            blocks: 256,
        };
        let t_big = dev.launch(&big, ExecMode::Analytical).time_us;
        assert!(t_big > t_small);
    }

    use crate::fault::{FaultKind, FaultPlan, LaunchError};

    /// A faulted launch must be invisible: no writes, no history entry,
    /// and the immediate retry (next launch index) produces the exact
    /// result an unfaulted device would.
    #[test]
    fn transient_fault_leaves_device_clean_and_retry_is_bitwise() {
        let (mut dev, src, dst) = setup(4);
        dev.set_fault_plan(Some(
            FaultPlan::seeded(11).at_launch(0, FaultKind::TransientLaunch),
        ));
        let k = ScaleKernel { src, dst, blocks: 4 };
        let err = dev.try_launch(&k, ExecMode::Functional).unwrap_err();
        assert!(matches!(err, LaunchError::Transient { launch_index: 0, .. }));
        assert!(dev.launches().is_empty(), "failed launch left history");
        assert_eq!(dev.download(dst)[3], C32::ZERO, "failed launch wrote memory");

        let rec = dev.try_launch(&k, ExecMode::Functional).expect("retry succeeds");
        assert_eq!(rec.stats, expected_stats(4));
        let (mut clean, csrc, cdst) = setup(4);
        clean.launch(&ScaleKernel { src: csrc, dst: cdst, blocks: 4 }, ExecMode::Functional);
        assert_eq!(dev.download(dst), clean.download(cdst), "retry is bitwise-equal");
        let st = dev.fault_stats();
        assert_eq!((st.launches_checked, st.transient), (2, 1));
    }

    #[test]
    fn worker_panic_fault_discards_the_whole_launch() {
        let (mut dev, src, dst) = setup(64);
        dev.set_fault_plan(Some(FaultPlan::seeded(3).at_launch(0, FaultKind::WorkerPanic)));
        let k = ScaleKernel { src, dst, blocks: 64 };
        let err = dev.try_launch(&k, ExecMode::Functional).unwrap_err();
        assert!(matches!(err, LaunchError::WorkerPanic { .. }));
        assert!(dev.launches().is_empty());
        assert_eq!(dev.download(dst)[63], C32::ZERO);
        assert_eq!(dev.fault_stats().worker_panics, 1);
        dev.try_launch(&k, ExecMode::Functional).expect("retry succeeds");
        assert_eq!(dev.download(dst)[63], C32::real(126.0));
    }

    #[test]
    fn stall_fault_delays_but_succeeds() {
        let (mut dev, src, dst) = setup(2);
        dev.set_fault_plan(Some(
            FaultPlan::seeded(0).at_launch(0, FaultKind::Stall).stall_us(100),
        ));
        let k = ScaleKernel { src, dst, blocks: 2 };
        let rec = dev.try_launch(&k, ExecMode::Functional).expect("stall still succeeds");
        assert_eq!(rec.stats, expected_stats(2));
        let st = dev.fault_stats();
        assert_eq!((st.stalls, st.injected()), (1, 0));
    }

    #[test]
    fn oom_fault_fails_alloc_then_recovers() {
        let mut dev = GpuDevice::a100().with_faults(FaultPlan::seeded(9).at_alloc(0));
        let err = dev.try_alloc("victim", 128).unwrap_err();
        assert!(matches!(err, LaunchError::Oom { requested: 128, alloc_index: 0, .. }));
        let id = dev.try_alloc("survivor", 128).expect("next alloc succeeds");
        assert_eq!(dev.download(id).len(), 128);
        assert_eq!(dev.fault_stats().oom, 1);
    }

    /// Analytical launches model cost math, not device work: never faulted.
    #[test]
    fn analytical_launches_are_never_faulted() {
        let (mut dev, src, dst) = setup(4);
        dev.set_fault_plan(Some(FaultPlan::seeded(1).transient(1.0)));
        let k = ScaleKernel { src, dst, blocks: 4 };
        dev.try_launch(&k, ExecMode::Analytical).expect("analytical is exempt");
        assert_eq!(dev.fault_stats().launches_checked, 0);
    }

    /// The legacy panicking wrapper converts an injected fault into a
    /// clearly attributed panic pointing at the typed API.
    #[test]
    #[should_panic(expected = "injected device fault")]
    fn panicking_launch_names_the_typed_api() {
        let (mut dev, src, dst) = setup(2);
        dev.set_fault_plan(Some(
            FaultPlan::seeded(2).at_launch(0, FaultKind::TransientLaunch),
        ));
        let k = ScaleKernel { src, dst, blocks: 2 };
        let _ = dev.launch(&k, ExecMode::Functional);
    }

    /// The eager executor moves exactly the data a simulated launch moves
    /// (serial and chunked), with only structural counters recorded.
    #[test]
    fn eager_execution_matches_simulated_launch() {
        let (mut dev, src, dst) = setup(64);
        let k = ScaleKernel { src, dst, blocks: 64 };
        dev.launch(&k, ExecMode::Functional);
        let want = dev.download(dst);

        for workers in [1usize, 4] {
            let (mut eager, src2, dst2) = setup(64);
            let k2 = ScaleKernel { src: src2, dst: dst2, blocks: 64 };
            let stats = run_functional_eager(&mut eager.memory, &k2, workers);
            assert_eq!(eager.download(dst2), want, "workers={workers}");
            assert_eq!(stats.blocks, 64);
            assert_eq!(stats.flops, 64 * 64);
            assert_eq!(stats.syncthreads, 64);
            assert_eq!(
                (stats.global_load_sectors, stats.global_store_sectors),
                (0, 0),
                "eager execution must skip traffic accounting"
            );
        }
    }

    /// The shared analytical helper is bit-identical to the device path.
    #[test]
    fn analytical_stats_helper_matches_device_path() {
        let (mut dev, src, dst) = setup(7);
        let k = ScaleKernel { src, dst, blocks: 7 };
        let rec = dev.launch(&k, ExecMode::Analytical);
        let direct = run_analytical_stats(&dev.memory, &k, false);
        assert_eq!(rec.stats, direct);
        assert_eq!(direct, expected_stats(7));
    }

    /// Probability schedules resolve per launch index, so they replay
    /// identically on a device with a freshly reinstalled identical plan.
    #[test]
    fn probability_schedule_is_reproducible() {
        let run = |seed: u64| -> Vec<bool> {
            let (mut dev, src, dst) = setup(2);
            dev.set_fault_plan(Some(FaultPlan::seeded(seed).transient(0.4)));
            let k = ScaleKernel { src, dst, blocks: 2 };
            (0..32)
                .map(|_| dev.try_launch(&k, ExecMode::Functional).is_err())
                .collect()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}
