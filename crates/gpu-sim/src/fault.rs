//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] installed on a [`GpuDevice`](crate::GpuDevice) (via
//! [`with_faults`](crate::GpuDevice::with_faults) /
//! [`set_fault_plan`](crate::GpuDevice::set_fault_plan)) injects failures
//! into the *functional* launch and allocation paths:
//!
//! * **transient launch failures** — the launch fails before any block
//!   executes; no journals exist, no history is recorded, and retrying the
//!   identical launch is bitwise-safe;
//! * **worker panics** — a block worker dies mid-launch; the whole launch
//!   is discarded (every journal dropped), which is observationally the
//!   same clean failure as a transient fault but is counted separately;
//! * **deferred-launch stalls** — the launch succeeds but its issue blocks
//!   the calling thread for [`FaultPlan::stall_us`], exercising deadline
//!   paths such as `Session::wait_timeout`;
//! * **allocation (OOM) failures** — a device allocation fails with
//!   [`LaunchError::Oom`].
//!
//! Every decision is a pure function of `(seed, event index, fault kind)`
//! — a [splitmix64](https://prng.di.unimi.it/splitmix64.c) hash mapped to
//! the unit interval — so a schedule replays identically across runs,
//! worker counts, and executors. Faults can also be pinned to *precise*
//! launch/allocation indices with [`FaultPlan::at_launch`] /
//! [`FaultPlan::at_alloc`]. Analytical launches model host-side cost math,
//! not device work, and are never faulted; the same goes for virtual
//! (analytics-only) allocations, which go through
//! [`GlobalMemory::alloc_virtual`](crate::memory::GlobalMemory) directly.
//!
//! With no plan installed the hook is a single `Option` check per launch
//! and per allocation — the `fault-overhead` bench scenario pins this at
//! under 1%.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The launch fails at issue, before any block runs.
    TransientLaunch,
    /// A block worker dies mid-launch; the launch is discarded whole.
    WorkerPanic,
    /// The launch succeeds after blocking the caller for
    /// [`FaultPlan::stall_us`] microseconds.
    Stall,
    /// A device allocation fails (only meaningful for
    /// [`FaultPlan::at_alloc`] / [`FaultPlan::oom`]).
    Alloc,
}

/// Typed failure of a device operation — the non-unwinding error surface
/// of [`GpuDevice::try_launch`](crate::GpuDevice::try_launch),
/// [`try_launch_deferred`](crate::GpuDevice::try_launch_deferred) and
/// [`try_alloc`](crate::GpuDevice::try_alloc).
///
/// Every variant is *clean*: the failed operation applied no writes,
/// recorded no history, and leaked no memory, so retrying it is always
/// sound (the simulator is deterministic, so a retried success is
/// bitwise-equal to an unfaulted run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Transient launch failure injected at issue.
    Transient { kernel: String, launch_index: u64 },
    /// A worker thread died mid-launch; all journals were discarded.
    WorkerPanic { kernel: String, launch_index: u64 },
    /// Simulated device out-of-memory on an allocation.
    Oom {
        name: String,
        requested: usize,
        alloc_index: u64,
    },
    /// The static launch-plan verifier rejected the operation before it
    /// was issued (see the core crate's `verify` module). Unlike the
    /// fault-injected variants this is *not* retryable — the plan itself
    /// is wrong, and retrying the identical plan can only fail again.
    PlanRejected { kernel: String, reason: String },
    /// The execution backend does not implement the requested operation
    /// (see the `tfno-backend` capability flags). Not retryable: the same
    /// backend will decline the same operation every time — callers should
    /// consult `Backend::caps` and take the supported path instead.
    Unsupported {
        backend: &'static str,
        op: &'static str,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Transient {
                kernel,
                launch_index,
            } => write!(
                f,
                "transient launch failure: kernel '{kernel}' (launch index {launch_index})"
            ),
            LaunchError::WorkerPanic {
                kernel,
                launch_index,
            } => write!(
                f,
                "worker panic: kernel '{kernel}' lost a block worker \
                 (launch index {launch_index}); launch discarded"
            ),
            LaunchError::Oom {
                name,
                requested,
                alloc_index,
            } => write!(
                f,
                "device out of memory: allocation '{name}' of {requested} elements \
                 (alloc index {alloc_index})"
            ),
            LaunchError::PlanRejected { kernel, reason } => write!(
                f,
                "plan verifier rejected kernel '{kernel}': {reason}"
            ),
            LaunchError::Unsupported { backend, op } => write!(
                f,
                "backend '{backend}' does not support {op} \
                 (check Backend::caps before requesting it)"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Injection counters, snapshotted by
/// [`GpuDevice::fault_stats`](crate::GpuDevice::fault_stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Functional launches that consulted the plan.
    pub launches_checked: u64,
    /// Device allocations that consulted the plan.
    pub allocs_checked: u64,
    /// Transient launch failures injected.
    pub transient: u64,
    /// Worker panics injected.
    pub worker_panics: u64,
    /// Stalls injected (the launch still succeeded).
    pub stalls: u64,
    /// Allocation failures injected.
    pub oom: u64,
}

impl FaultStats {
    /// Total failures injected (stalls succeed, so they are not failures).
    pub fn injected(&self) -> u64 {
        self.transient + self.worker_panics + self.oom
    }
}

/// A seeded, deterministic fault schedule.
///
/// Probabilities are per-event (`transient`/`worker_panic`/`stall` per
/// functional launch, `oom` per device allocation) and are resolved by
/// hashing `(seed, event index)` — never by a stateful RNG — so the same
/// plan injects the same faults at the same points on every run. Precise
/// single-shot faults are pinned with [`at_launch`](FaultPlan::at_launch)
/// and [`at_alloc`](FaultPlan::at_alloc); they take priority over the
/// probability roll at that index.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    p_transient: f64,
    p_worker_panic: f64,
    p_stall: f64,
    p_oom: f64,
    stall_us: u64,
    at_launch: HashMap<u64, FaultKind>,
    at_alloc: HashSet<u64>,
}

/// Default stall duration: long enough that a millisecond-scale
/// `wait_timeout` deadline reliably trips on a stalled launch.
const DEFAULT_STALL_US: u64 = 2_000;

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            stall_us: DEFAULT_STALL_US,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-launch probability of a transient launch failure.
    pub fn transient(mut self, p: f64) -> Self {
        self.p_transient = p.clamp(0.0, 1.0);
        self
    }

    /// Per-launch probability of an injected worker panic.
    pub fn worker_panic(mut self, p: f64) -> Self {
        self.p_worker_panic = p.clamp(0.0, 1.0);
        self
    }

    /// Per-launch probability of a stall (launch succeeds late).
    pub fn stall(mut self, p: f64) -> Self {
        self.p_stall = p.clamp(0.0, 1.0);
        self
    }

    /// Per-allocation probability of a simulated OOM.
    pub fn oom(mut self, p: f64) -> Self {
        self.p_oom = p.clamp(0.0, 1.0);
        self
    }

    /// Stall duration in microseconds (default 2000).
    pub fn stall_us(mut self, us: u64) -> Self {
        self.stall_us = us;
        self
    }

    /// Pin a fault to an exact functional-launch index (0-based, counted
    /// per installed plan). `FaultKind::Alloc` is not a launch fault.
    pub fn at_launch(mut self, index: u64, kind: FaultKind) -> Self {
        assert!(
            kind != FaultKind::Alloc,
            "FaultKind::Alloc is an allocation fault; use FaultPlan::at_alloc"
        );
        self.at_launch.insert(index, kind);
        self
    }

    /// Pin an OOM to an exact device-allocation index (0-based, counted
    /// per installed plan).
    pub fn at_alloc(mut self, index: u64) -> Self {
        self.at_alloc.insert(index);
        self
    }

    /// The fault (if any) this plan injects for functional launch `idx`.
    fn launch_decision(&self, idx: u64) -> Option<FaultKind> {
        if let Some(&k) = self.at_launch.get(&idx) {
            return Some(k);
        }
        let r = unit(self.seed, idx, SALT_LAUNCH);
        // One roll partitions the unit interval, so the total fault rate
        // is exactly the sum of the per-kind probabilities.
        if r < self.p_transient {
            Some(FaultKind::TransientLaunch)
        } else if r < self.p_transient + self.p_worker_panic {
            Some(FaultKind::WorkerPanic)
        } else if r < self.p_transient + self.p_worker_panic + self.p_stall {
            Some(FaultKind::Stall)
        } else {
            None
        }
    }

    /// Whether this plan fails device allocation `idx`.
    fn alloc_decision(&self, idx: u64) -> bool {
        self.at_alloc.contains(&idx) || unit(self.seed, idx, SALT_ALLOC) < self.p_oom
    }
}

const SALT_LAUNCH: u64 = 0x6C61_756E_6368_2121; // "launch!!"
const SALT_ALLOC: u64 = 0x616C_6C6F_6321_2121; // "alloc!!!"

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, index, salt)` mapped to `[0, 1)`.
fn unit(seed: u64, idx: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ salt ^ splitmix64(idx));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The installed plan plus its interior-mutable event counters. Launch
/// issue holds only `&GpuDevice`, so the cursors and stats are atomics.
pub(crate) struct FaultState {
    plan: FaultPlan,
    launch_cursor: AtomicU64,
    alloc_cursor: AtomicU64,
    transient: AtomicU64,
    worker_panics: AtomicU64,
    stalls: AtomicU64,
    oom: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            launch_cursor: AtomicU64::new(0),
            alloc_cursor: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            oom: AtomicU64::new(0),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consume one functional-launch event: bump the cursor, roll the
    /// plan, count what was drawn.
    pub(crate) fn next_launch(&self) -> Option<(u64, FaultKind)> {
        let idx = self.launch_cursor.fetch_add(1, Ordering::Relaxed);
        let kind = self.plan.launch_decision(idx)?;
        match kind {
            FaultKind::TransientLaunch => self.transient.fetch_add(1, Ordering::Relaxed),
            FaultKind::WorkerPanic => self.worker_panics.fetch_add(1, Ordering::Relaxed),
            FaultKind::Stall => self.stalls.fetch_add(1, Ordering::Relaxed),
            FaultKind::Alloc => unreachable!("at_launch rejects FaultKind::Alloc"),
        };
        Some((idx, kind))
    }

    /// Consume one device-allocation event; returns the failed index.
    pub(crate) fn next_alloc(&self) -> Option<u64> {
        let idx = self.alloc_cursor.fetch_add(1, Ordering::Relaxed);
        if self.plan.alloc_decision(idx) {
            self.oom.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    pub(crate) fn stall_us(&self) -> u64 {
        self.plan.stall_us
    }

    pub(crate) fn stats(&self) -> FaultStats {
        FaultStats {
            launches_checked: self.launch_cursor.load(Ordering::Relaxed),
            allocs_checked: self.alloc_cursor.load(Ordering::Relaxed),
            transient: self.transient.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            oom: self.oom.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::seeded(42).transient(0.3).worker_panic(0.1).stall(0.1);
        let a: Vec<_> = (0..256).map(|i| p.launch_decision(i)).collect();
        let b: Vec<_> = (0..256).map(|i| p.launch_decision(i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|d| d.is_some()), "some faults drawn");
        assert!(a.iter().any(|d| d.is_none()), "some launches clean");
    }

    #[test]
    fn seeds_produce_different_schedules() {
        let a = FaultPlan::seeded(1).transient(0.5);
        let b = FaultPlan::seeded(2).transient(0.5);
        let da: Vec<_> = (0..128).map(|i| a.launch_decision(i)).collect();
        let db: Vec<_> = (0..128).map(|i| b.launch_decision(i)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn pinned_indices_override_probability() {
        let p = FaultPlan::seeded(7).at_launch(3, FaultKind::WorkerPanic).at_alloc(1);
        assert_eq!(p.launch_decision(3), Some(FaultKind::WorkerPanic));
        assert_eq!(p.launch_decision(2), None);
        assert!(p.alloc_decision(1));
        assert!(!p.alloc_decision(0));
    }

    #[test]
    fn probability_roll_roughly_matches_rate() {
        let p = FaultPlan::seeded(99).transient(0.25);
        let hits = (0..4096).filter(|&i| p.launch_decision(i).is_some()).count();
        let rate = hits as f64 / 4096.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
    }

    #[test]
    #[should_panic(expected = "allocation fault")]
    fn alloc_kind_rejected_at_launch() {
        let _ = FaultPlan::seeded(0).at_launch(0, FaultKind::Alloc);
    }

    #[test]
    fn state_counts_events_and_stats() {
        let s = FaultState::new(FaultPlan::seeded(5).at_launch(1, FaultKind::TransientLaunch));
        assert_eq!(s.next_launch(), None);
        assert_eq!(s.next_launch(), Some((1, FaultKind::TransientLaunch)));
        assert_eq!(s.next_alloc(), None);
        let st = s.stats();
        assert_eq!(st.launches_checked, 2);
        assert_eq!(st.allocs_checked, 1);
        assert_eq!(st.transient, 1);
        assert_eq!(st.injected(), 1);
    }
}
