//! Launch-record reporting: formatted tables and resource breakdowns.
//!
//! Examples and diagnostics all want the same view of a pipeline run: a
//! per-kernel table with modeled time, the binding resource, and traffic
//! summaries. Centralizing it here keeps the formatting consistent and
//! testable.

use crate::cost::CostModel;
use crate::kernel::{LaunchDims, LaunchRecord};

/// Which resource dominates a kernel's modeled time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindingResource {
    Dram,
    Compute,
    SharedMemory,
    LaunchOverhead,
}

impl BindingResource {
    pub fn tag(&self) -> &'static str {
        match self {
            BindingResource::Dram => "DRAM",
            BindingResource::Compute => "FP32",
            BindingResource::SharedMemory => "SMEM",
            BindingResource::LaunchOverhead => "LNCH",
        }
    }
}

/// Classify a launch by its dominating resource.
pub fn binding_resource(model: &CostModel, dims: &LaunchDims, rec: &LaunchRecord) -> BindingResource {
    let b = model.breakdown(dims, &rec.stats);
    let exec = b.dram_us.max(b.compute_us).max(b.shared_us);
    if b.launch_us >= exec {
        BindingResource::LaunchOverhead
    } else if b.dram_us >= b.compute_us && b.dram_us >= b.shared_us {
        BindingResource::Dram
    } else if b.compute_us >= b.shared_us {
        BindingResource::Compute
    } else {
        BindingResource::SharedMemory
    }
}

/// Render a launch table as text (one line per kernel plus a total row).
pub fn render_table(records: &[LaunchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>8} {:>10} {:>12} {:>12} {:>8}\n",
        "kernel", "blocks", "time(us)", "GB moved", "GFLOP", "util%"
    ));
    let mut total_us = 0.0;
    let mut total_gb = 0.0;
    for r in records {
        let gb = r.stats.global_sector_bytes() as f64 / 1e9;
        let gf = r.stats.flops as f64 / 1e9;
        out.push_str(&format!(
            "{:<30} {:>8} {:>10.1} {:>12.4} {:>12.3} {:>7.1}%\n",
            r.name,
            r.dims_grid,
            r.time_us,
            gb,
            gf,
            100.0 * r.stats.bank_utilization(),
        ));
        total_us += r.time_us;
        total_gb += gb;
    }
    out.push_str(&format!(
        "{:<30} {:>8} {:>10.1} {:>12.4}\n",
        "TOTAL",
        records.len(),
        total_us,
        total_gb
    ));
    out
}

/// Aggregate bandwidth achieved by a pipeline (GB/s of sector traffic over
/// modeled time) — the metric to sanity-check against the device peak.
pub fn achieved_bandwidth_gbps(records: &[LaunchRecord]) -> f64 {
    let bytes: u64 = records.iter().map(|r| r.stats.global_sector_bytes()).sum();
    let us: f64 = records.iter().map(|r| r.time_us).sum();
    if us == 0.0 {
        0.0
    } else {
        bytes as f64 / 1e3 / us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::stats::KernelStats;

    fn record(name: &str, time_us: f64, sectors: u64, flops: u64) -> LaunchRecord {
        LaunchRecord {
            name: name.into(),
            dims_grid: 8,
            stats: KernelStats {
                blocks: 8,
                global_load_sectors: sectors,
                global_load_bytes: sectors * 32,
                flops,
                ..KernelStats::ZERO
            },
            time_us,
        }
    }

    #[test]
    fn table_contains_all_kernels_and_total() {
        let recs = vec![record("fft", 10.0, 1000, 5000), record("gemm", 20.0, 500, 90000)];
        let table = render_table(&recs);
        assert!(table.contains("fft"));
        assert!(table.contains("gemm"));
        assert!(table.contains("TOTAL"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn bandwidth_math() {
        let recs = vec![record("k", 10.0, 1_000_000, 0)]; // 32 MB in 10 us
        let bw = achieved_bandwidth_gbps(&recs);
        assert!((bw - 3200.0).abs() < 1.0, "bw={bw}");
        assert_eq!(achieved_bandwidth_gbps(&[]), 0.0);
    }

    #[test]
    fn binding_resource_classification() {
        let model = CostModel::new(DeviceConfig::a100());
        let dims = LaunchDims::new(1024, 128);
        // memory-heavy kernel
        let mem = record("mem", 0.0, 10_000_000, 1000);
        assert_eq!(binding_resource(&model, &dims, &mem), BindingResource::Dram);
        // compute-heavy kernel
        let cmp = record("cmp", 0.0, 10, 50_000_000_000);
        assert_eq!(binding_resource(&model, &dims, &cmp), BindingResource::Compute);
        // empty kernel: launch overhead dominates
        let idle = record("idle", 0.0, 0, 0);
        assert_eq!(
            binding_resource(&model, &dims, &idle),
            BindingResource::LaunchOverhead
        );
    }
}
