//! Per-launch event accounting.
//!
//! [`KernelStats`] is the contract between the functional simulator and the
//! analytical cost model: a kernel's `predict_stats()` must produce exactly
//! the counts the functional execution records (verified by property tests
//! in the kernel crates).

use std::ops::{Add, AddAssign};

/// Event counts for one kernel launch (or one block; they add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Warps launched (blocks x warps/block).
    pub warps: u64,
    /// Real floating-point operations (complex ops expanded; see
    /// `tfno_num::FLOPS_PER_CMAC` and friends).
    pub flops: u64,
    /// Bytes requested from global memory by loads.
    pub global_load_bytes: u64,
    /// Bytes written to global memory by stores.
    pub global_store_bytes: u64,
    /// 32-byte sectors touched by loads (the coalescing metric).
    pub global_load_sectors: u64,
    /// 32-byte sectors touched by stores.
    pub global_store_sectors: u64,
    /// Ideal (conflict-free) shared-memory access cycles.
    pub shared_ideal_cycles: u64,
    /// Actual shared-memory access cycles after bank-conflict replay.
    pub shared_actual_cycles: u64,
    /// Block-wide barriers executed (`__syncthreads`), summed over blocks.
    pub syncthreads: u64,
}

impl KernelStats {
    pub const ZERO: KernelStats = KernelStats {
        blocks: 0,
        warps: 0,
        flops: 0,
        global_load_bytes: 0,
        global_store_bytes: 0,
        global_load_sectors: 0,
        global_store_sectors: 0,
        shared_ideal_cycles: 0,
        shared_actual_cycles: 0,
        syncthreads: 0,
    };

    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Total 32-byte sectors moved through global memory. This — not raw
    /// bytes — is what the DRAM actually transfers once coalescing is
    /// accounted for.
    pub fn global_sector_bytes(&self) -> u64 {
        (self.global_load_sectors + self.global_store_sectors) * 32
    }

    /// Shared-memory bank utilization in `[0, 1]`
    /// (1.0 = conflict-free, 0.25 = the paper's 4-way-conflicted layouts).
    pub fn bank_utilization(&self) -> f64 {
        if self.shared_actual_cycles == 0 {
            1.0
        } else {
            self.shared_ideal_cycles as f64 / self.shared_actual_cycles as f64
        }
    }

    /// All counters multiplied by `k` — used when one representative block
    /// stands in for a class of `k` identical-pattern blocks.
    pub fn scaled(&self, k: u64) -> KernelStats {
        KernelStats {
            blocks: self.blocks * k,
            warps: self.warps * k,
            flops: self.flops * k,
            global_load_bytes: self.global_load_bytes * k,
            global_store_bytes: self.global_store_bytes * k,
            global_load_sectors: self.global_load_sectors * k,
            global_store_sectors: self.global_store_sectors * k,
            shared_ideal_cycles: self.shared_ideal_cycles * k,
            shared_actual_cycles: self.shared_actual_cycles * k,
            syncthreads: self.syncthreads * k,
        }
    }

    /// Global-load coalescing efficiency: requested bytes / sector bytes.
    pub fn load_coalescing(&self) -> f64 {
        if self.global_load_sectors == 0 {
            1.0
        } else {
            self.global_load_bytes as f64 / (self.global_load_sectors * 32) as f64
        }
    }
}

impl Add for KernelStats {
    type Output = KernelStats;
    fn add(self, rhs: KernelStats) -> KernelStats {
        KernelStats {
            blocks: self.blocks + rhs.blocks,
            warps: self.warps + rhs.warps,
            flops: self.flops + rhs.flops,
            global_load_bytes: self.global_load_bytes + rhs.global_load_bytes,
            global_store_bytes: self.global_store_bytes + rhs.global_store_bytes,
            global_load_sectors: self.global_load_sectors + rhs.global_load_sectors,
            global_store_sectors: self.global_store_sectors + rhs.global_store_sectors,
            shared_ideal_cycles: self.shared_ideal_cycles + rhs.shared_ideal_cycles,
            shared_actual_cycles: self.shared_actual_cycles + rhs.shared_actual_cycles,
            syncthreads: self.syncthreads + rhs.syncthreads,
        }
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: KernelStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for KernelStats {
    fn sum<I: Iterator<Item = KernelStats>>(iter: I) -> KernelStats {
        iter.fold(KernelStats::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_fieldwise() {
        let a = KernelStats {
            blocks: 1,
            flops: 10,
            global_load_bytes: 64,
            ..KernelStats::ZERO
        };
        let b = KernelStats {
            blocks: 2,
            flops: 5,
            global_store_bytes: 32,
            ..KernelStats::ZERO
        };
        let c = a + b;
        assert_eq!(c.blocks, 3);
        assert_eq!(c.flops, 15);
        assert_eq!(c.global_bytes(), 96);
    }

    #[test]
    fn bank_utilization_bounds() {
        let mut s = KernelStats::ZERO;
        assert_eq!(s.bank_utilization(), 1.0);
        s.shared_ideal_cycles = 10;
        s.shared_actual_cycles = 40;
        assert!((s.bank_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn coalescing_efficiency() {
        let s = KernelStats {
            global_load_bytes: 256,
            global_load_sectors: 8,
            ..KernelStats::ZERO
        };
        assert!((s.load_coalescing() - 1.0).abs() < 1e-12);
        let sparse = KernelStats {
            global_load_bytes: 256,
            global_load_sectors: 32,
            ..KernelStats::ZERO
        };
        assert!((sparse.load_coalescing() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_over_blocks() {
        let per_block = KernelStats {
            blocks: 1,
            flops: 7,
            ..KernelStats::ZERO
        };
        let total: KernelStats = (0..9).map(|_| per_block).sum();
        assert_eq!(total.blocks, 9);
        assert_eq!(total.flops, 63);
    }
}
