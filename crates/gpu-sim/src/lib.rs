//! # tfno-gpu-sim
//!
//! A software model of an NVIDIA-A100-class GPU, built so the TurboFNO
//! kernels can be implemented, *functionally executed*, and *costed* without
//! physical hardware (the reproduction's substitution for CUDA — see
//! DESIGN.md §2.1).
//!
//! The model has two coupled halves:
//!
//! 1. **Functional execution** ([`kernel`], [`memory`], [`shared`]):
//!    kernels are written warp-synchronously; every global access is issued
//!    as a 32-lane warp transaction (coalescing counted in 32-byte sectors,
//!    like the hardware's L2 sectors) and every shared-memory access goes
//!    through a 32-bank conflict model with replay accounting. The bytes
//!    really move, so kernels produce real numerical results that are
//!    checked against `tfno-num` references.
//! 2. **Analytical cost model** ([`cost`]): converts the recorded (or
//!    closed-form predicted) [`KernelStats`] into an estimated execution
//!    time using a roofline over DRAM bandwidth, FP32 throughput, shared
//!    memory throughput and `__syncthreads` latency, modulated by an
//!    occupancy model (blocks per SM limited by threads / shared memory /
//!    registers, then a saturation curve in resident blocks). This is what
//!    reproduces the paper's low-occupancy "blue regions" and
//!    bandwidth-bound large-batch regime.
//!
//! Execution semantics deliberately mirror CUDA's: global reads observe the
//! pre-launch state of the device (no cross-block communication within a
//! launch), global writes become visible when the launch completes, and
//! shared memory is per-block scratch. Writes from different blocks to the
//! same element are detected and rejected in debug builds.

pub mod access;
pub mod cost;
pub mod device;
pub mod exec;
pub mod fault;
pub mod journal;
pub mod kernel;
pub mod memo;
pub mod memory;
pub mod shared;
pub mod stats;
pub mod timeline;
pub mod warp;

pub use access::{merge_runs, runs_overlap, AccessSpan, KernelAccess};
pub use cost::CostModel;
pub use device::{DeviceConfig, Occupancy};
pub use exec::{
    configured_workers, lock_unpoisoned, wait_unpoisoned, workers_for, LaunchQueue,
    PendingLaunch, PAR_BLOCK_THRESHOLD,
};
pub use fault::{FaultKind, FaultPlan, FaultStats, LaunchError};
pub use journal::WriteJournal;
pub use kernel::{
    run_analytical_stats, run_functional_eager, BlockCtx, ExecMode, GpuDevice, Kernel,
    LaunchDims, LaunchRecord,
};
pub use memo::{
    launch_memo_clear, launch_memo_enabled, launch_memo_stats, seq_insert, seq_lookup,
    seq_memo_clear, seq_memo_stats, set_launch_memo_enabled, structural_fingerprint,
    MemoStats, SeqMemoStats,
};
pub use memory::{BufferId, GlobalMemory};
pub use shared::BankStats;
pub use stats::KernelStats;
pub use timeline::{achieved_bandwidth_gbps, binding_resource, render_table, BindingResource};
pub use warp::{WarpIdx, WARP_SIZE};
