//! Static access-set declarations for kernels (`tfno-verify` level 1).
//!
//! A kernel that implements [`Kernel::access`](crate::Kernel::access)
//! declares, without executing a single block, every global-memory element
//! it will read and write: reads as launch-level [`AccessSpan`]s, writes
//! partitioned per block. The launch-plan verifier in the core crate uses
//! these sets to *prove* plan-level safety properties before a launch is
//! issued — cross-block write disjointness, read-after-write ordering
//! through deferred launch windows, and replay-tape resource validity —
//! instead of detecting violations from write journals after the damage
//! would already be visible.
//!
//! The contract mirrors [`Kernel::fingerprint`]: the declared sets must be
//! *exact* (the verifier promises zero false positives on well-formed
//! plans, so over-approximating reads or writes is a bug just like
//! under-approximating them), and they are pure functions of the kernel's
//! structure — same shape, same spans, only the [`BufferId`]s differ.
//!
//! [`Kernel::fingerprint`]: crate::Kernel::fingerprint

use crate::memory::BufferId;

/// A strided set of element runs in one buffer: the elements
/// `start + k*stride .. start + k*stride + run` for `k in 0..count`.
///
/// `count == 1` describes a single contiguous run; `run == 1` with
/// `count > 1` describes a constant-stride gather/scatter. Runs of one
/// span may touch each other (e.g. `stride == run`), which the verifier
/// normalizes away; runs *within one span* belong to one block or one
/// launch-level read set, so internal overlap is not itself a hazard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessSpan {
    pub buf: BufferId,
    /// First element of the first run.
    pub start: usize,
    /// Elements per run.
    pub run: usize,
    /// Distance between consecutive run starts.
    pub stride: usize,
    /// Number of runs.
    pub count: usize,
}

impl AccessSpan {
    /// One contiguous run of `len` elements at `start`.
    pub fn contiguous(buf: BufferId, start: usize, len: usize) -> Self {
        AccessSpan {
            buf,
            start,
            run: len,
            stride: len.max(1),
            count: 1,
        }
    }

    /// `count` runs of `run` elements, `stride` apart.
    pub fn strided(buf: BufferId, start: usize, run: usize, stride: usize, count: usize) -> Self {
        AccessSpan {
            buf,
            start,
            run,
            stride,
            count,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.run == 0 || self.count == 0
    }

    /// One-past-the-last element this span can touch.
    pub fn end(&self) -> usize {
        if self.is_empty() {
            self.start
        } else {
            self.start + (self.count - 1) * self.stride + self.run
        }
    }

    /// The span's runs as half-open `(lo, hi)` element intervals.
    pub fn runs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (start, run, stride) = (self.start, self.run, self.stride);
        (0..if self.run == 0 { 0 } else { self.count })
            .map(move |k| (start + k * stride, start + k * stride + run))
    }
}

/// The declared global-memory footprint of one launch.
///
/// Reads are launch-level (blocks may freely share read elements — every
/// weight tile is read by many blocks); writes are partitioned per block
/// because cross-block write disjointness is exactly the property the
/// verifier proves.
#[derive(Clone, Debug, Default)]
pub struct KernelAccess {
    /// Every element any block of the launch reads.
    pub reads: Vec<AccessSpan>,
    /// Per-block write partitions: `(block_id, spans)`. Blocks that write
    /// nothing may be omitted.
    pub block_writes: Vec<(usize, Vec<AccessSpan>)>,
}

impl KernelAccess {
    pub fn new() -> Self {
        KernelAccess::default()
    }

    /// Record a launch-level read span.
    pub fn read(&mut self, span: AccessSpan) {
        if !span.is_empty() {
            self.reads.push(span);
        }
    }

    /// Record a write span owned by `block`.
    pub fn write(&mut self, block: usize, span: AccessSpan) {
        if span.is_empty() {
            return;
        }
        match self.block_writes.last_mut() {
            Some((b, spans)) if *b == block => spans.push(span),
            _ => self.block_writes.push((block, vec![span])),
        }
    }

    /// Every write span across all blocks.
    pub fn write_spans(&self) -> impl Iterator<Item = &AccessSpan> {
        self.block_writes.iter().flat_map(|(_, s)| s.iter())
    }

    /// Every span (reads then writes).
    pub fn all_spans(&self) -> impl Iterator<Item = &AccessSpan> {
        self.reads.iter().chain(self.write_spans())
    }

    /// Every distinct buffer the launch touches.
    pub fn buffers(&self) -> Vec<BufferId> {
        let mut ids: Vec<BufferId> = self.all_spans().map(|s| s.buf).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Sort half-open `(lo, hi)` intervals and coalesce overlapping or
/// touching neighbours in place.
pub fn merge_runs(runs: &mut Vec<(usize, usize)>) {
    runs.retain(|&(lo, hi)| lo < hi);
    runs.sort_unstable();
    let mut out = 0;
    for i in 0..runs.len() {
        if out > 0 && runs[i].0 <= runs[out - 1].1 {
            runs[out - 1].1 = runs[out - 1].1.max(runs[i].1);
        } else {
            runs[out] = runs[i];
            out += 1;
        }
    }
    runs.truncate(out);
}

/// Whether any interval of `a` intersects any interval of `b`. Both lists
/// must be sorted and non-overlapping (see [`merge_runs`]).
pub fn runs_overlap(a: &[(usize, usize)], b: &[(usize, usize)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].1 <= b[j].0 {
            i += 1;
        } else if b[j].1 <= a[i].0 {
            j += 1;
        } else {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(i: usize) -> BufferId {
        // Tests in this module only need distinct ids; the constructor is
        // crate-private on purpose (callers can't forge device buffers).
        BufferId(i)
    }

    #[test]
    fn span_runs_and_end() {
        let s = AccessSpan::strided(buf(0), 10, 3, 8, 2);
        assert_eq!(s.runs().collect::<Vec<_>>(), vec![(10, 13), (18, 21)]);
        assert_eq!(s.end(), 21);
        let c = AccessSpan::contiguous(buf(0), 4, 5);
        assert_eq!(c.runs().collect::<Vec<_>>(), vec![(4, 9)]);
        assert_eq!(c.end(), 9);
        assert!(AccessSpan::contiguous(buf(0), 7, 0).is_empty());
        assert_eq!(AccessSpan::contiguous(buf(0), 7, 0).runs().count(), 0);
    }

    #[test]
    fn merge_coalesces_and_sorts() {
        let mut r = vec![(5, 9), (0, 2), (8, 12), (2, 3), (20, 20)];
        merge_runs(&mut r);
        assert_eq!(r, vec![(0, 3), (5, 12)]);
    }

    #[test]
    fn overlap_detection() {
        assert!(runs_overlap(&[(0, 4), (10, 12)], &[(11, 13)]));
        assert!(!runs_overlap(&[(0, 4), (10, 12)], &[(4, 10), (12, 14)]));
        assert!(!runs_overlap(&[], &[(0, 1)]));
    }

    #[test]
    fn access_groups_writes_by_block() {
        let mut a = KernelAccess::new();
        a.write(0, AccessSpan::contiguous(buf(1), 0, 4));
        a.write(0, AccessSpan::contiguous(buf(1), 4, 4));
        a.write(1, AccessSpan::contiguous(buf(1), 8, 4));
        a.read(AccessSpan::contiguous(buf(2), 0, 16));
        a.read(AccessSpan::contiguous(buf(2), 0, 0)); // dropped
        assert_eq!(a.block_writes.len(), 2);
        assert_eq!(a.block_writes[0].1.len(), 2);
        assert_eq!(a.reads.len(), 1);
        assert_eq!(a.buffers(), vec![buf(1), buf(2)]);
        assert_eq!(a.write_spans().count(), 3);
    }
}
