//! Device configuration and the occupancy calculator.
//!
//! [`DeviceConfig::a100()`] carries the published A100-40GB (PCIe) numbers
//! the paper's evaluation platform has; every constant the cost model uses
//! is documented here so a reviewer can audit the substitution.

/// Static description of the simulated GPU.
///
/// ```
/// use tfno_gpu_sim::DeviceConfig;
/// let a100 = DeviceConfig::a100();
/// assert_eq!(a100.num_sms, 108);
/// // a 128-thread block using 16 KiB of shared memory:
/// let occ = a100.occupancy(128, 16 * 1024, 40);
/// assert!(occ.blocks_per_sm >= 8);
/// ```
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    pub name: &'static str,
    /// Number of streaming multiprocessors (A100: 108).
    pub num_sms: u32,
    /// Maximum resident threads per SM (A100: 2048).
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM (A100: 32).
    pub max_blocks_per_sm: u32,
    /// Usable shared memory per SM in bytes (A100: up to 164 KiB).
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may request.
    pub shared_mem_per_block_max: usize,
    /// 32-bit registers per SM (A100: 65536).
    pub regs_per_sm: u32,
    /// SIMT width (32 on every NVIDIA architecture to date).
    pub warp_size: u32,
    /// Number of shared-memory banks (32) and their width in bytes (4).
    pub shared_banks: u32,
    pub bank_width_bytes: u32,
    /// Boost clock in GHz (A100: 1.41).
    pub clock_ghz: f64,
    /// HBM2 bandwidth in GB/s (A100-40GB PCIe: 1555).
    pub dram_bw_gbps: f64,
    /// Peak FP32 CUDA-core throughput in GFLOP/s (A100: 19500).
    pub fp32_gflops: f64,
    /// Shared-memory bandwidth per SM in bytes/clock (A100: 128 B/clk).
    pub shared_bytes_per_clk_per_sm: f64,
    /// Fixed host-side kernel-launch overhead in microseconds. The paper's
    /// motivation (Fig. 1c) counts one launch per pipeline stage; 4 us is a
    /// representative CUDA launch + driver latency on a PCIe part.
    pub kernel_launch_overhead_us: f64,
    /// Cost of one block-wide `__syncthreads()` in cycles (barrier latency
    /// plus the average pipeline drain it forces).
    pub syncthreads_cycles: f64,
    /// Saturation constant for DRAM bandwidth utilization: with `a`
    /// resident blocks, effective bandwidth is `BW * a / (a + k)`.
    /// Calibrated so a full wave (108+ blocks) reaches >85% of peak while
    /// single-digit grids are severely launch/latency limited — the effect
    /// behind the paper's Fig. 14 "blue regions".
    pub bw_sat_blocks: f64,
    /// Saturation constant for compute-throughput utilization in resident
    /// *warps* per SM (A100 needs ~8 warps/SM to hide ALU latency).
    pub compute_sat_warps: f64,
}

impl DeviceConfig {
    /// The paper's evaluation platform: NVIDIA A100-PCIE-40GB, CUDA 12.4.
    pub fn a100() -> Self {
        DeviceConfig {
            name: "A100-PCIE-40GB (simulated)",
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block_max: 160 * 1024,
            regs_per_sm: 65536,
            warp_size: 32,
            shared_banks: 32,
            bank_width_bytes: 4,
            clock_ghz: 1.41,
            dram_bw_gbps: 1555.0,
            fp32_gflops: 19500.0,
            shared_bytes_per_clk_per_sm: 128.0,
            kernel_launch_overhead_us: 4.0,
            syncthreads_cycles: 30.0,
            bw_sat_blocks: 48.0,
            compute_sat_warps: 8.0,
        }
    }

    /// A small test device (4 SMs) so occupancy edge cases are reachable in
    /// unit tests without astronomically sized grids.
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "tiny-test-device",
            num_sms: 4,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 32 * 1024,
            shared_mem_per_block_max: 16 * 1024,
            regs_per_sm: 16384,
            ..Self::a100()
        }
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// DRAM bandwidth in bytes/us.
    pub fn dram_bytes_per_us(&self) -> f64 {
        self.dram_bw_gbps * 1e3
    }

    /// FP32 throughput in flop/us.
    pub fn fp32_flops_per_us(&self) -> f64 {
        self.fp32_gflops * 1e3
    }

    /// Compute the occupancy for a block shape.
    pub fn occupancy(
        &self,
        threads_per_block: u32,
        shared_bytes: usize,
        regs_per_thread: u32,
    ) -> Occupancy {
        assert!(threads_per_block > 0, "empty blocks are not launchable");
        assert!(
            shared_bytes <= self.shared_mem_per_block_max,
            "block requests {shared_bytes} B shared memory, device max is {}",
            self.shared_mem_per_block_max
        );
        let by_threads = self.max_threads_per_sm / threads_per_block.max(1);
        let by_blocks = self.max_blocks_per_sm;
        let by_shared = self
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .map_or(u32::MAX, |b| b as u32);
        let regs_per_block = regs_per_thread.max(1) * threads_per_block;
        // INVARIANT: regs_per_block > 0 (both factors are clamped/asserted
        // above), so checked_div is Some; the unwrap_or arm only documents
        // "no register limit" and is unreachable for user inputs.
        let by_regs = self
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let blocks_per_sm = by_threads.min(by_blocks).min(by_shared).min(by_regs);
        let limiter = if blocks_per_sm == by_threads {
            OccupancyLimiter::Threads
        } else if blocks_per_sm == by_shared {
            OccupancyLimiter::SharedMemory
        } else if blocks_per_sm == by_regs {
            OccupancyLimiter::Registers
        } else {
            OccupancyLimiter::BlockSlots
        };
        Occupancy {
            blocks_per_sm,
            limiter,
            warps_per_sm: blocks_per_sm * threads_per_block.div_ceil(self.warp_size),
        }
    }
}

/// What limits residency for a given block shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyLimiter {
    Threads,
    SharedMemory,
    Registers,
    BlockSlots,
}

/// Result of the occupancy calculation.
#[derive(Clone, Copy, Debug)]
pub struct Occupancy {
    /// How many blocks of this shape fit on one SM simultaneously.
    pub blocks_per_sm: u32,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
    /// Resident warps per SM at that residency.
    pub warps_per_sm: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_headline_numbers() {
        let d = DeviceConfig::a100();
        assert_eq!(d.num_sms, 108);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.shared_banks, 32);
        assert!((d.dram_bytes_per_us() - 1_555_000.0).abs() < 1.0);
        assert!((d.fp32_flops_per_us() - 19_500_000.0).abs() < 1.0);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let d = DeviceConfig::a100();
        let o = d.occupancy(1024, 0, 32);
        // 2048 / 1024 = 2 blocks by threads; registers allow 65536/(32*1024)=2
        assert_eq!(o.blocks_per_sm, 2);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let d = DeviceConfig::a100();
        let o = d.occupancy(128, 96 * 1024, 16);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let d = DeviceConfig::a100();
        // 256 threads * 128 regs = 32768 regs/block -> 2 blocks; threads
        // would allow 8, blocks 32, shared unlimited.
        let o = d.occupancy(256, 0, 128);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn occupancy_limited_by_block_slots() {
        let d = DeviceConfig::a100();
        let o = d.occupancy(32, 0, 16);
        // Tiny blocks: thread limit would be 64, but slot limit is 32.
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, OccupancyLimiter::BlockSlots);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn oversized_shared_request_rejected() {
        let d = DeviceConfig::a100();
        d.occupancy(128, 200 * 1024, 16);
    }

    #[test]
    fn warps_per_sm_follows_blocks() {
        let d = DeviceConfig::a100();
        let o = d.occupancy(256, 0, 32);
        assert_eq!(o.warps_per_sm, o.blocks_per_sm * 8);
    }
}
