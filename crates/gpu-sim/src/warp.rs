//! Warp-level access descriptors.
//!
//! Kernels issue memory operations one warp at a time. A [`WarpIdx`] names,
//! for each of the 32 lanes, the *element index* (in `C32` units) the lane
//! touches, or `None` when the lane is predicated off. All conflict and
//! coalescing accounting derives from these per-lane indices, which is what
//! makes the swizzle claims of the paper checkable at address level.

/// SIMT width.
pub const WARP_SIZE: usize = 32;

/// Per-lane element indices for one warp access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpIdx {
    pub lanes: [Option<usize>; WARP_SIZE],
}

impl Default for WarpIdx {
    fn default() -> Self {
        WarpIdx {
            lanes: [None; WARP_SIZE],
        }
    }
}

impl WarpIdx {
    /// All lanes inactive.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Dense access: lane `l` touches `base + l`.
    pub fn contiguous(base: usize) -> Self {
        let mut w = Self::empty();
        for (l, lane) in w.lanes.iter_mut().enumerate() {
            *lane = Some(base + l);
        }
        w
    }

    /// Strided access: lane `l` touches `base + l * stride`.
    pub fn strided(base: usize, stride: usize) -> Self {
        let mut w = Self::empty();
        for (l, lane) in w.lanes.iter_mut().enumerate() {
            *lane = Some(base + l * stride);
        }
        w
    }

    /// Build from a closure; return `None` to predicate a lane off.
    pub fn from_fn(f: impl Fn(usize) -> Option<usize>) -> Self {
        let mut w = Self::empty();
        for (l, lane) in w.lanes.iter_mut().enumerate() {
            *lane = f(l);
        }
        w
    }

    /// Dense access over the first `n` lanes only.
    pub fn contiguous_partial(base: usize, n: usize) -> Self {
        Self::from_fn(|l| if l < n { Some(base + l) } else { None })
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }

    /// Iterator over `(lane, element_index)` for active lanes.
    pub fn iter_active(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.lanes
            .iter()
            .enumerate()
            .filter_map(|(l, idx)| idx.map(|i| (l, i)))
    }
}

/// Iterate over the warps of a block: calls `f(warp_id, lane_base_tid)` for
/// each of `ceil(threads / 32)` warps.
pub fn for_each_warp(threads: usize, mut f: impl FnMut(usize, usize)) {
    let warps = threads.div_ceil(WARP_SIZE);
    for w in 0..warps {
        f(w, w * WARP_SIZE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_layout() {
        let w = WarpIdx::contiguous(100);
        assert_eq!(w.lanes[0], Some(100));
        assert_eq!(w.lanes[31], Some(131));
        assert_eq!(w.active_lanes(), 32);
    }

    #[test]
    fn strided_layout() {
        let w = WarpIdx::strided(0, 16);
        assert_eq!(w.lanes[1], Some(16));
        assert_eq!(w.lanes[31], Some(496));
    }

    #[test]
    fn predication() {
        let w = WarpIdx::contiguous_partial(0, 10);
        assert_eq!(w.active_lanes(), 10);
        assert_eq!(w.lanes[9], Some(9));
        assert_eq!(w.lanes[10], None);
    }

    #[test]
    fn from_fn_even_lanes() {
        let w = WarpIdx::from_fn(|l| (l % 2 == 0).then_some(l / 2));
        assert_eq!(w.active_lanes(), 16);
        assert_eq!(w.lanes[4], Some(2));
        assert_eq!(w.lanes[5], None);
    }

    #[test]
    fn warp_iteration_counts() {
        let mut seen = vec![];
        for_each_warp(100, |w, base| seen.push((w, base)));
        assert_eq!(seen.len(), 4); // ceil(100/32)
        assert_eq!(seen[3], (3, 96));
    }
}
