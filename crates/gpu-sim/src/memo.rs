//! Analytical launch memo.
//!
//! Analytical launches execute one representative block per equivalence
//! class to derive the launch's [`KernelStats`]. Sweeps and planners launch
//! the *same shapes* over and over (a `TurboBest` plan simulates four
//! pipeline variants; an L-layer model used to do that L times), so the
//! stats of a structurally-identical launch are pure recomputation.
//!
//! The memo caches `KernelStats` process-wide, keyed by a **signature**:
//! a name-independent structural hash of the kernel's
//! [`fingerprint`](crate::kernel::Kernel::fingerprint) (covering every
//! parameter that shapes its access pattern), its [`LaunchDims`], and its
//! block classes. Kernels opt in by returning `Some` from `fingerprint`;
//! the contract is that two kernels with equal signatures record identical
//! stats from an analytical launch. Modeled *time* is still computed per
//! launch from the dims, so the memo never changes any figure.

use crate::kernel::{LaunchDims, LaunchRecord};
use crate::stats::KernelStats;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::exec::lock_unpoisoned;
use std::sync::{Mutex, OnceLock};

/// Hit/miss counters of the process-wide memo.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

static TABLE: OnceLock<Mutex<HashMap<u64, KernelStats>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(true);

fn table() -> &'static Mutex<HashMap<u64, KernelStats>> {
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Globally enable/disable the memo (A/B benchmarking; it is on by
/// default). Per-device opt-out exists too: `GpuDevice::analytical_memo`.
pub fn set_launch_memo_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn launch_memo_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Counters plus current entry count.
pub fn launch_memo_stats() -> MemoStats {
    MemoStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: lock_unpoisoned(table()).len() as u64,
    }
}

/// Drop all cached entries (counters keep accumulating).
pub fn launch_memo_clear() {
    lock_unpoisoned(table()).clear();
}

/// Build the launch signature; `None` when the kernel opted out.
pub(crate) fn signature(
    fingerprint: Option<u64>,
    dims: &LaunchDims,
    classes: &[(usize, u64)],
) -> Option<u64> {
    let fp = fingerprint?;
    let mut h = DefaultHasher::new();
    fp.hash(&mut h);
    dims.grid_blocks.hash(&mut h);
    dims.threads_per_block.hash(&mut h);
    dims.shared_bytes.hash(&mut h);
    dims.regs_per_thread.hash(&mut h);
    dims.l1_hit_rate.to_bits().hash(&mut h);
    dims.serialization.to_bits().hash(&mut h);
    classes.hash(&mut h);
    Some(h.finish())
}

pub(crate) fn lookup(key: u64) -> Option<KernelStats> {
    let got = lock_unpoisoned(table()).get(&key).copied();
    match got {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    got
}

/// Entry cap: at the cap the table resets wholesale (epoch eviction) so a
/// shape-diverse long-running process cannot grow it without bound while
/// steady-state serving workloads stay fully cached.
const MEMO_CAP: usize = 1 << 16;

pub(crate) fn insert(key: u64, stats: KernelStats) {
    let mut table = lock_unpoisoned(table());
    if table.len() >= MEMO_CAP {
        table.clear();
    }
    table.insert(key, stats);
}

// ---------------------------------------------------------------------------
// Sequence memo
// ---------------------------------------------------------------------------
//
// The per-kernel memo above caches the *stats of one launch*. Warm serving
// loops replay whole launch **sequences** (an L-layer forward is the same
// FFT→CGEMM→iFFT chain every call), so the next level up caches the full
// `Vec<LaunchRecord>` of a sequence under a caller-provided structural key
// (hash of problem shape + variant + options + device config — never buffer
// identities). `turbofno::Session::measure` uses it to answer a warm
// analytical sweep without issuing a single launch.

/// Hit/miss counters of the process-wide sequence memo.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqMemoStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

static SEQ_TABLE: OnceLock<Mutex<HashMap<u64, Vec<LaunchRecord>>>> = OnceLock::new();
static SEQ_HITS: AtomicU64 = AtomicU64::new(0);
static SEQ_MISSES: AtomicU64 = AtomicU64::new(0);

fn seq_table() -> &'static Mutex<HashMap<u64, Vec<LaunchRecord>>> {
    SEQ_TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Entry cap for the sequence memo. Sequences are heavier than single
/// `KernelStats`, so the cap is smaller; eviction is the same wholesale
/// epoch reset as the per-kernel table.
const SEQ_MEMO_CAP: usize = 1 << 12;

/// Look up a cached launch sequence. Honors the global memo enable flag
/// (`set_launch_memo_enabled`); disabled lookups miss without counting.
pub fn seq_lookup(key: u64) -> Option<Vec<LaunchRecord>> {
    if !launch_memo_enabled() {
        return None;
    }
    let got = lock_unpoisoned(seq_table()).get(&key).cloned();
    match got {
        Some(_) => SEQ_HITS.fetch_add(1, Ordering::Relaxed),
        None => SEQ_MISSES.fetch_add(1, Ordering::Relaxed),
    };
    got
}

/// Cache the launch sequence of a completed run under `key`.
///
/// Contract mirrors the per-kernel memo: two runs with equal keys must
/// produce identical records, so the key has to cover everything that
/// shapes the sequence (problem shape, variant, options, device config)
/// while buffer identities stay out.
pub fn seq_insert(key: u64, records: Vec<LaunchRecord>) {
    if !launch_memo_enabled() {
        return;
    }
    let mut table = lock_unpoisoned(seq_table());
    if table.len() >= SEQ_MEMO_CAP {
        table.clear();
    }
    table.insert(key, records);
}

/// Counters plus current entry count of the sequence memo.
pub fn seq_memo_stats() -> SeqMemoStats {
    SeqMemoStats {
        hits: SEQ_HITS.load(Ordering::Relaxed),
        misses: SEQ_MISSES.load(Ordering::Relaxed),
        entries: lock_unpoisoned(seq_table()).len() as u64,
    }
}

/// Drop all cached sequences (counters keep accumulating).
pub fn seq_memo_clear() {
    lock_unpoisoned(seq_table()).clear();
}

/// Helper for `Kernel::fingerprint` implementations: hash a type tag (so
/// kernels of different families never share a signature) plus every
/// structural field the closure feeds in. Buffer *identities* must stay
/// out; buffer-relative address patterns (strides, bases, lengths) go in.
pub fn structural_fingerprint(type_tag: &str, fill: impl FnOnce(&mut DefaultHasher)) -> u64 {
    let mut h = DefaultHasher::new();
    type_tag.hash(&mut h);
    fill(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_requires_fingerprint() {
        let dims = LaunchDims::new(4, 128);
        assert!(signature(None, &dims, &[(0, 4)]).is_none());
        assert!(signature(Some(7), &dims, &[(0, 4)]).is_some());
    }

    #[test]
    fn signature_distinguishes_dims_and_classes() {
        let d1 = LaunchDims::new(4, 128);
        let d2 = LaunchDims::new(8, 128);
        let s1 = signature(Some(7), &d1, &[(0, 4)]).unwrap();
        let s2 = signature(Some(7), &d2, &[(0, 8)]).unwrap();
        let s3 = signature(Some(7), &d1, &[(0, 3), (3, 1)]).unwrap();
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn structural_fingerprint_separates_type_tags() {
        let a = structural_fingerprint("fft", |h| 42usize.hash(h));
        let b = structural_fingerprint("gemm", |h| 42usize.hash(h));
        assert_ne!(a, b);
    }

    /// Regression: a panic that unwinds while the process-wide table lock
    /// is held (any caught kernel/aliasing panic can do this) used to
    /// poison the memo and cascade `PoisonError` failures into every
    /// unrelated later launch. The memo must keep serving after it.
    #[test]
    fn caught_panic_while_holding_the_table_lock_does_not_wedge_the_memo() {
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = table().lock().unwrap_or_else(|e| e.into_inner());
                panic!("unwind while holding the memo table lock");
            })
            .join()
        });
        // Every public entry point must still work on the poisoned lock.
        let key = structural_fingerprint("memo-poison-key", |h| 2usize.hash(h));
        assert!(lookup(key).is_none());
        insert(key, KernelStats::ZERO);
        assert_eq!(lookup(key), Some(KernelStats::ZERO));
        let stats = launch_memo_stats();
        assert!(stats.entries >= 1);
    }

    /// Same regression as above for the PR 6 sequence memo: a caught
    /// panic that poisons `SEQ_TABLE` must not wedge `seq_lookup` /
    /// `seq_insert` / `seq_memo_stats`.
    #[test]
    fn caught_panic_while_holding_the_seq_table_lock_does_not_wedge_the_memo() {
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = seq_table().lock().unwrap_or_else(|e| e.into_inner());
                panic!("unwind while holding the seq table lock");
            })
            .join()
        });
        let key = structural_fingerprint("seq-memo-poison-key", |h| 4usize.hash(h));
        assert!(seq_lookup(key).is_none());
        let rec = vec![LaunchRecord {
            name: "post-poison".into(),
            dims_grid: 1,
            stats: KernelStats::ZERO,
            time_us: 0.5,
        }];
        seq_insert(key, rec);
        let got = seq_lookup(key).expect("seq memo must keep serving after a caught panic");
        assert_eq!(got[0].name, "post-poison");
        assert!(seq_memo_stats().entries >= 1);
    }

    #[test]
    fn seq_memo_round_trips_sequences() {
        let key = structural_fingerprint("seq-memo-test", |h| 3usize.hash(h));
        assert!(seq_lookup(key).is_none());
        let records = vec![
            LaunchRecord {
                name: "fft".into(),
                dims_grid: 4,
                stats: KernelStats::ZERO,
                time_us: 1.5,
            },
            LaunchRecord {
                name: "gemm".into(),
                dims_grid: 2,
                stats: KernelStats::ZERO,
                time_us: 2.5,
            },
        ];
        seq_insert(key, records.clone());
        let got = seq_lookup(key).expect("warm lookup must hit");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "fft");
        assert_eq!(got[1].time_us, 2.5);
        let stats = seq_memo_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1 && stats.entries >= 1);
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let key = structural_fingerprint("memo-test-key", |h| 1usize.hash(h));
        let before = launch_memo_stats();
        assert!(lookup(key).is_none());
        insert(key, KernelStats::ZERO);
        assert!(lookup(key).is_some());
        let after = launch_memo_stats();
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }
}
