//! Memoized `TurboBest` planning.
//!
//! The paper's "TurboFNO" configuration is the best of variants A–D per
//! problem size, found by simulating all four analytically. Pre-PR, every
//! `TurboBest` dispatch redid that from scratch — an L-layer forward pass
//! paid L × 4 analytical pipeline simulations for plans that are a pure
//! function of `(device, problem shape, options)`.
//!
//! [`Planner`] memoizes the decision: the first plan of a shape evaluates
//! the four candidates (on parallel host threads when available) and every
//! later plan of the same key is a hash lookup — zero simulated launches.
//! Each [`Session`](crate::Session) owns a planner, so its models, benches
//! and serving loops share one warm cache whose stats are observable per
//! session; the deprecated `run_variant_{1d,2d}` shims fall back to the
//! process-wide [`Planner::global`]. `pick_best_{1d,2d}` remain the
//! uncached cold evaluation they always were.

use crate::pipeline::{ExecCtx, LayerBufs, TurboOptions, Variant};
use crate::pool::BufferPool;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};
use tfno_culib::{FnoProblem1d, FnoProblem2d};
use tfno_gpu_sim::{configured_workers, DeviceConfig, ExecMode, GpuDevice};

/// The candidates `TurboBest` chooses among (paper Table 2, A–D).
pub const TURBO_CANDIDATES: [Variant; 4] = [
    Variant::FftOpt,
    Variant::FusedFftGemm,
    Variant::FusedGemmIfft,
    Variant::FullyFused,
];

/// Cache/evaluation counters of one [`Planner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans that required a cold evaluation.
    pub misses: u64,
    /// Kernel launches simulated by cold evaluations (a cache hit adds 0).
    pub simulated_launches: u64,
}

/// Memoizing `TurboBest` planner.
#[derive(Default)]
pub struct Planner {
    cache: Mutex<HashMap<u64, Variant>>,
    stats: Mutex<PlannerStats>,
}

impl Planner {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide planner used by `Variant::TurboBest` dispatches.
    pub fn global() -> &'static Planner {
        static GLOBAL: OnceLock<Planner> = OnceLock::new();
        GLOBAL.get_or_init(Planner::new)
    }

    pub fn stats(&self) -> PlannerStats {
        *self.stats.lock().unwrap()
    }

    /// Drop all cached plans (counters keep accumulating).
    pub fn clear(&self) {
        self.cache.lock().unwrap().clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plan a 1D layer: cached variant, or a cold four-way evaluation.
    pub fn plan_1d(&self, cfg: &DeviceConfig, p: &FnoProblem1d, opts: &TurboOptions) -> Variant {
        let mut h = key_base(cfg, opts);
        "1d".hash(&mut h);
        p.batch.hash(&mut h);
        p.k_in.hash(&mut h);
        p.k_out.hash(&mut h);
        p.n.hash(&mut h);
        p.nf.hash(&mut h);
        self.plan(h.finish(), || evaluate_1d(cfg, p, opts))
    }

    /// Plan a 2D layer.
    pub fn plan_2d(&self, cfg: &DeviceConfig, p: &FnoProblem2d, opts: &TurboOptions) -> Variant {
        let mut h = key_base(cfg, opts);
        "2d".hash(&mut h);
        p.batch.hash(&mut h);
        p.k_in.hash(&mut h);
        p.k_out.hash(&mut h);
        p.nx.hash(&mut h);
        p.ny.hash(&mut h);
        p.nfx.hash(&mut h);
        p.nfy.hash(&mut h);
        self.plan(h.finish(), || evaluate_2d(cfg, p, opts))
    }

    /// Plan-cache entry cap (epoch eviction, like the launch memo): keeps
    /// long-running shape-diverse processes bounded.
    const CACHE_CAP: usize = 1 << 16;

    fn plan(&self, key: u64, evaluate: impl FnOnce() -> (Variant, u64)) -> Variant {
        if let Some(v) = self.cache.lock().unwrap().get(&key) {
            self.stats.lock().unwrap().hits += 1;
            return *v;
        }
        // Evaluate outside the cache lock; concurrent planners of the same
        // key may race, but they insert the same (deterministic) answer.
        let (best, launches) = evaluate();
        let mut cache = self.cache.lock().unwrap();
        if cache.len() >= Self::CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, best);
        drop(cache);
        let mut stats = self.stats.lock().unwrap();
        stats.misses += 1;
        stats.simulated_launches += launches;
        best
    }
}

/// Hash the planner-relevant device and option state.
fn key_base(cfg: &DeviceConfig, opts: &TurboOptions) -> DefaultHasher {
    let mut h = DefaultHasher::new();
    cfg.name.hash(&mut h);
    cfg.num_sms.hash(&mut h);
    cfg.max_threads_per_sm.hash(&mut h);
    cfg.max_blocks_per_sm.hash(&mut h);
    cfg.shared_mem_per_sm.hash(&mut h);
    cfg.shared_mem_per_block_max.hash(&mut h);
    cfg.regs_per_sm.hash(&mut h);
    cfg.warp_size.hash(&mut h);
    cfg.shared_banks.hash(&mut h);
    cfg.bank_width_bytes.hash(&mut h);
    cfg.clock_ghz.to_bits().hash(&mut h);
    cfg.dram_bw_gbps.to_bits().hash(&mut h);
    cfg.fp32_gflops.to_bits().hash(&mut h);
    cfg.shared_bytes_per_clk_per_sm.to_bits().hash(&mut h);
    cfg.kernel_launch_overhead_us.to_bits().hash(&mut h);
    cfg.syncthreads_cycles.to_bits().hash(&mut h);
    cfg.bw_sat_blocks.to_bits().hash(&mut h);
    cfg.compute_sat_warps.to_bits().hash(&mut h);
    opts.forward_layout.hash(&mut h);
    opts.epilogue_swizzle.hash(&mut h);
    opts.fft_l1_hit.to_bits().hash(&mut h);
    h
}

/// Cold evaluation: simulate the four candidates analytically on virtual
/// buffers (in parallel host threads when available) and return the
/// fastest plus the number of simulated launches. Ties break toward the
/// earlier candidate, matching the sequential pre-PR scan. The analytical
/// launch memo is disabled on the scratch devices so "cold" stays true —
/// every counted launch really simulates its representative blocks.
pub(crate) fn evaluate_1d(
    cfg: &DeviceConfig,
    p: &FnoProblem1d,
    opts: &TurboOptions,
) -> (Variant, u64) {
    select(evaluate_candidates(|v| {
        let mut dev = GpuDevice::new(cfg.clone());
        dev.analytical_memo = false;
        let mut pool = BufferPool::new();
        let x = dev.memory.alloc_virtual("x", p.input_len());
        let w = dev.memory.alloc_virtual("w", p.weight_len());
        let y = dev.memory.alloc_virtual("y", p.output_len());
        // Candidates are concrete, so the planner field is never consulted.
        let run = ExecCtx {
            dev: &mut dev,
            pool: &mut pool,
            planner: Planner::global(),
        }
        .run_1d(p, v, LayerBufs { x, w, y }, opts, ExecMode::Analytical);
        (run.total_us(), run.kernel_count() as u64)
    }))
}

pub(crate) fn evaluate_2d(
    cfg: &DeviceConfig,
    p: &FnoProblem2d,
    opts: &TurboOptions,
) -> (Variant, u64) {
    select(evaluate_candidates(|v| {
        let mut dev = GpuDevice::new(cfg.clone());
        dev.analytical_memo = false;
        let mut pool = BufferPool::new();
        let x = dev.memory.alloc_virtual("x", p.input_len());
        let w = dev.memory.alloc_virtual("w", p.weight_len());
        let y = dev.memory.alloc_virtual("y", p.output_len());
        let run = ExecCtx {
            dev: &mut dev,
            pool: &mut pool,
            planner: Planner::global(),
        }
        .run_2d(p, v, LayerBufs { x, w, y }, opts, ExecMode::Analytical);
        (run.total_us(), run.kernel_count() as u64)
    }))
}

/// Run the per-candidate closure for all four variants across at most
/// `configured_workers()` host threads (the `TFNO_THREADS` knob governs
/// planner fan-out like every other host-parallel loop).
fn evaluate_candidates(
    eval: impl Fn(Variant) -> (f64, u64) + Sync,
) -> [(Variant, f64, u64); 4] {
    let mut out = [(Variant::FftOpt, f64::INFINITY, 0u64); 4];
    let workers = configured_workers().min(TURBO_CANDIDATES.len());
    if workers > 1 {
        let eval = &eval;
        std::thread::scope(|scope| {
            // Round-robin candidates over the worker threads; each worker
            // returns (candidate index, result) pairs.
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        TURBO_CANDIDATES
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, &v)| (i, v, eval(v)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, v, (t, launches)) in h.join().expect("planner evaluation panicked") {
                    out[i] = (v, t, launches);
                }
            }
        });
    } else {
        for (slot, &v) in out.iter_mut().zip(TURBO_CANDIDATES.iter()) {
            let (t, launches) = eval(v);
            *slot = (v, t, launches);
        }
    }
    out
}

fn select(results: [(Variant, f64, u64); 4]) -> (Variant, u64) {
    let mut best = (f64::INFINITY, Variant::FftOpt);
    let mut launches = 0;
    for (v, t, l) in results {
        launches += l;
        if t < best.0 {
            best = (t, v);
        }
    }
    (best.1, launches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pick_best_1d, pick_best_2d};

    fn p1() -> FnoProblem1d {
        FnoProblem1d::new(2, 16, 16, 128, 32)
    }

    fn p2() -> FnoProblem2d {
        FnoProblem2d::new(1, 8, 8, 32, 64, 8, 32)
    }

    #[test]
    fn cache_hit_matches_cold_pick_and_simulates_nothing() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();

        let cold = pick_best_1d(&cfg, &p1(), &opts);
        let first = planner.plan_1d(&cfg, &p1(), &opts);
        assert_eq!(first, cold, "planner must agree with the uncached scan");
        let after_first = planner.stats();
        assert_eq!(after_first.misses, 1);
        assert!(after_first.simulated_launches > 0);

        let second = planner.plan_1d(&cfg, &p1(), &opts);
        assert_eq!(second, first);
        let after_second = planner.stats();
        assert_eq!(after_second.hits, 1);
        assert_eq!(
            after_second.simulated_launches, after_first.simulated_launches,
            "a cache hit must perform zero simulated launches"
        );
    }

    #[test]
    fn cache_distinguishes_shapes_options_and_dim() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();
        planner.plan_1d(&cfg, &p1(), &opts);
        planner.plan_1d(&cfg, &FnoProblem1d::new(4, 16, 16, 128, 32), &opts);
        planner.plan_2d(&cfg, &p2(), &opts);
        let degraded = TurboOptions {
            epilogue_swizzle: false,
            ..TurboOptions::default()
        };
        planner.plan_1d(&cfg, &p1(), &degraded);
        assert_eq!(planner.len(), 4);
        assert_eq!(planner.stats().hits, 0);
    }

    #[test]
    fn planner_2d_matches_cold_pick() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();
        assert_eq!(planner.plan_2d(&cfg, &p2(), &opts), pick_best_2d(&cfg, &p2(), &opts));
        assert_eq!(planner.plan_2d(&cfg, &p2(), &opts), pick_best_2d(&cfg, &p2(), &opts));
        assert_eq!(planner.stats().hits, 1);
    }

    #[test]
    fn global_planner_is_shared_and_clearable() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let v = Planner::global().plan_1d(&cfg, &p1(), &opts);
        assert_eq!(Planner::global().plan_1d(&cfg, &p1(), &opts), v);
        Planner::global().clear();
    }
}
