//! Memoized `TurboBest` planning.
//!
//! The paper's "TurboFNO" configuration is the best of variants A–D per
//! problem size, found by simulating all four analytically. Pre-PR, every
//! `TurboBest` dispatch redid that from scratch — an L-layer forward pass
//! paid L × 4 analytical pipeline simulations for plans that are a pure
//! function of `(device, problem shape, options)`.
//!
//! [`Planner`] memoizes the decision: the first plan of a shape evaluates
//! the four candidates (on parallel host threads when available) and every
//! later plan of the same key is a hash lookup — zero simulated launches.
//! Each [`Session`](crate::Session) owns a planner, so its models, benches
//! and serving loops share one warm cache whose stats are observable per
//! session. Cold, uncached best-of evaluation is exposed as
//! [`Planner::pick_best_shape`] (with `pick_best_{1d,2d}` conveniences
//! over the problem descriptors). Capping uses
//! generational eviction (never a full wipe), and racing cold evaluations
//! of one key are de-duplicated: one planner evaluates, the rest wait.
//! Internal locks recover from poisoning ([`lock_unpoisoned`]), so a
//! caught panic — the documented aliasing/conflict panics unwind through
//! planner state — never wedges a shared planner for unrelated callers.

use crate::pipeline::{ExecCtx, LayerBufs, TurboOptions, Variant};
use crate::pool::BufferPool;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use tfno_culib::{FnoProblem1d, FnoProblem2d, SpectralShape};
use crate::backend::{
    configured_workers, lock_unpoisoned, wait_unpoisoned, DeviceConfig, ExecMode, SimBackend,
};

/// The candidates `TurboBest` chooses among (paper Table 2, A–D).
pub const TURBO_CANDIDATES: [Variant; 4] = [
    Variant::FftOpt,
    Variant::FusedFftGemm,
    Variant::FusedGemmIfft,
    Variant::FullyFused,
];

/// Cache/evaluation counters of one [`Planner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans that required a cold evaluation.
    pub misses: u64,
    /// Kernel launches simulated by cold evaluations (a cache hit adds 0).
    pub simulated_launches: u64,
}

/// Two-generation plan cache: inserts and promotions land in `hot`; when
/// `hot` fills half the cap, it rotates into `cold` and the previous
/// `cold` generation is dropped. Capping therefore evicts only the least
/// recently confirmed half of the entries — a full-cache `clear()` would
/// force every live shape to re-evaluate at once (a re-evaluation storm).
#[derive(Default)]
struct PlanCache {
    hot: HashMap<u64, Variant>,
    cold: HashMap<u64, Variant>,
}

impl PlanCache {
    /// `hot`/`cold` are disjoint, so the live entry count is the sum.
    fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
    }

    fn get(&mut self, key: u64, cap: usize) -> Option<Variant> {
        if let Some(v) = self.hot.get(&key) {
            return Some(*v);
        }
        let v = self.cold.remove(&key)?;
        self.put(key, v, cap);
        Some(v)
    }

    fn put(&mut self, key: u64, v: Variant, cap: usize) {
        if self.hot.len() >= (cap / 2).max(1) {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, v);
    }
}

/// Removes the in-flight marker even if the evaluation panics, so waiting
/// planners are never stranded on a key that will not resolve.
struct PendingGuard<'a> {
    planner: &'a Planner,
    key: u64,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.planner.pending).remove(&self.key);
        self.planner.pending_cv.notify_all();
    }
}

/// Memoizing `TurboBest` planner.
pub struct Planner {
    cache: Mutex<PlanCache>,
    /// Keys currently being cold-evaluated (racing planners wait instead
    /// of duplicating the four-candidate simulation).
    pending: Mutex<HashSet<u64>>,
    pending_cv: Condvar,
    stats: Mutex<PlannerStats>,
    cap: usize,
    /// Bumped on every [`Planner::clear`]. Replay artifacts that embedded
    /// a plan decision record the generation they saw; a mismatch means
    /// the plans they were recorded under may have changed, so the
    /// artifact must re-record instead of replaying a stale decision.
    generation: AtomicU64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    pub fn new() -> Self {
        Planner::with_cache_cap(Self::CACHE_CAP)
    }

    /// A planner with a custom plan-cache entry cap (tests exercise the
    /// eviction policy with small caps; serving code uses [`Planner::new`]).
    pub fn with_cache_cap(cap: usize) -> Self {
        Planner {
            cache: Mutex::new(PlanCache::default()),
            pending: Mutex::new(HashSet::new()),
            pending_cv: Condvar::new(),
            stats: Mutex::new(PlannerStats::default()),
            cap: cap.max(2),
            generation: AtomicU64::new(0),
        }
    }

    /// The process-wide planner used by `Variant::TurboBest` dispatches.
    pub fn global() -> &'static Planner {
        static GLOBAL: OnceLock<Planner> = OnceLock::new();
        GLOBAL.get_or_init(Planner::new)
    }

    pub fn stats(&self) -> PlannerStats {
        *lock_unpoisoned(&self.stats)
    }

    /// Drop all cached plans (counters keep accumulating). Bumps the
    /// planner [`generation`](Planner::generation) so downstream caches
    /// keyed on plan decisions know to re-record.
    pub fn clear(&self) {
        lock_unpoisoned(&self.cache).clear();
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic counter of [`Planner::clear`] calls — the invalidation
    /// token replay artifacts check before trusting a recorded plan.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.cache).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plan a spectral layer of any rank: cached variant, or a cold
    /// four-way evaluation.
    pub fn plan_shape(&self, cfg: &DeviceConfig, s: &SpectralShape, opts: &TurboOptions) -> Variant {
        let mut h = key_base(cfg, opts);
        "shape".hash(&mut h);
        s.rank.hash(&mut h);
        s.batch.hash(&mut h);
        s.k_in.hash(&mut h);
        s.k_out.hash(&mut h);
        s.dims.hash(&mut h);
        s.modes.hash(&mut h);
        self.plan(h.finish(), || evaluate_shape(cfg, s, opts))
    }

    /// Plan a 1D layer (convenience over [`Planner::plan_shape`]).
    pub fn plan_1d(&self, cfg: &DeviceConfig, p: &FnoProblem1d, opts: &TurboOptions) -> Variant {
        self.plan_shape(cfg, &SpectralShape::from(p), opts)
    }

    /// Plan a 2D layer (convenience over [`Planner::plan_shape`]).
    pub fn plan_2d(&self, cfg: &DeviceConfig, p: &FnoProblem2d, opts: &TurboOptions) -> Variant {
        self.plan_shape(cfg, &SpectralShape::from(p), opts)
    }

    /// Default plan-cache entry cap: keeps long-running shape-diverse
    /// processes bounded. Eviction is generational (see [`PlanCache`]), so
    /// hitting the cap drops at most the stale half of the entries.
    const CACHE_CAP: usize = 1 << 16;

    fn plan(&self, key: u64, evaluate: impl FnOnce() -> (Variant, u64)) -> Variant {
        loop {
            if let Some(v) = lock_unpoisoned(&self.cache).get(key, self.cap) {
                lock_unpoisoned(&self.stats).hits += 1;
                return v;
            }
            // Claim the key, or wait for whichever planner holds it: racing
            // cold evaluations of one key would double-count misses and
            // simulated launches (and waste the whole four-candidate sweep).
            let mut pending = lock_unpoisoned(&self.pending);
            if pending.insert(key) {
                break;
            }
            while pending.contains(&key) {
                pending = wait_unpoisoned(&self.pending_cv, pending);
            }
            // The winner has published its plan; re-read the cache.
        }
        let _guard = PendingGuard { planner: self, key };
        // The miss check and the pending claim are not atomic: the previous
        // holder may have published its plan between them. Re-check before
        // paying for an evaluation that already happened.
        if let Some(v) = lock_unpoisoned(&self.cache).get(key, self.cap) {
            lock_unpoisoned(&self.stats).hits += 1;
            return v;
        }
        // Evaluate outside every lock; only this planner evaluates `key`.
        let (best, launches) = evaluate();
        lock_unpoisoned(&self.cache).put(key, best, self.cap);
        let mut stats = lock_unpoisoned(&self.stats);
        stats.misses += 1;
        stats.simulated_launches += launches;
        best
    }

    /// Evaluate variants A–D analytically and return the fastest (the
    /// paper's "TurboFNO" best-of configuration). Always a cold, uncached
    /// evaluation; `Variant::TurboBest` dispatches use the memoized
    /// [`Planner::plan_shape`] instead.
    pub fn pick_best_shape(cfg: &DeviceConfig, s: &SpectralShape, opts: &TurboOptions) -> Variant {
        evaluate_shape(cfg, s, opts).0
    }

    /// Cold best-of evaluation for a 1D problem (see [`Planner::pick_best_shape`]).
    pub fn pick_best_1d(cfg: &DeviceConfig, p: &FnoProblem1d, opts: &TurboOptions) -> Variant {
        Self::pick_best_shape(cfg, &SpectralShape::from(p), opts)
    }

    /// Cold best-of evaluation for a 2D problem (see [`Planner::pick_best_shape`]).
    pub fn pick_best_2d(cfg: &DeviceConfig, p: &FnoProblem2d, opts: &TurboOptions) -> Variant {
        Self::pick_best_shape(cfg, &SpectralShape::from(p), opts)
    }
}

/// Hash the planner-relevant device and option state.
fn key_base(cfg: &DeviceConfig, opts: &TurboOptions) -> DefaultHasher {
    let mut h = DefaultHasher::new();
    hash_device_config(cfg, &mut h);
    opts.forward_layout.hash(&mut h);
    opts.epilogue_swizzle.hash(&mut h);
    opts.fft_l1_hit.to_bits().hash(&mut h);
    h
}

/// Hash every analytically-relevant `DeviceConfig` field. Shared by the
/// planner's cache keys and the sequence-level launch memo in `session.rs`
/// (`Session::measure`), so both invalidate on exactly the same device
/// changes.
pub(crate) fn hash_device_config(cfg: &DeviceConfig, h: &mut DefaultHasher) {
    cfg.name.hash(h);
    cfg.num_sms.hash(h);
    cfg.max_threads_per_sm.hash(h);
    cfg.max_blocks_per_sm.hash(h);
    cfg.shared_mem_per_sm.hash(h);
    cfg.shared_mem_per_block_max.hash(h);
    cfg.regs_per_sm.hash(h);
    cfg.warp_size.hash(h);
    cfg.shared_banks.hash(h);
    cfg.bank_width_bytes.hash(h);
    cfg.clock_ghz.to_bits().hash(h);
    cfg.dram_bw_gbps.to_bits().hash(h);
    cfg.fp32_gflops.to_bits().hash(h);
    cfg.shared_bytes_per_clk_per_sm.to_bits().hash(h);
    cfg.kernel_launch_overhead_us.to_bits().hash(h);
    cfg.syncthreads_cycles.to_bits().hash(h);
    cfg.bw_sat_blocks.to_bits().hash(h);
    cfg.compute_sat_warps.to_bits().hash(h);
}

/// Cold evaluation: simulate the four candidates analytically on virtual
/// buffers (in parallel host threads when available) and return the
/// fastest plus the number of simulated launches. Ties break toward the
/// earlier candidate, matching the sequential pre-PR scan. The analytical
/// launch memo is disabled on the scratch devices so "cold" stays true —
/// every counted launch really simulates its representative blocks.
pub(crate) fn evaluate_shape(
    cfg: &DeviceConfig,
    s: &SpectralShape,
    opts: &TurboOptions,
) -> (Variant, u64) {
    select(evaluate_candidates(|v| {
        let mut dev = SimBackend::new(cfg.clone());
        dev.analytical_memo = false;
        let mut pool = BufferPool::new();
        let x = dev.memory.alloc_virtual("x", s.input_len());
        let w = dev.memory.alloc_virtual("w", s.weight_len());
        let y = dev.memory.alloc_virtual("y", s.output_len());
        // Candidates are concrete, so the planner field is never consulted.
        let run = ExecCtx {
            dev: &mut dev,
            pool: &mut pool,
            planner: Planner::global(),
            tape: None,
            // Cost probes re-run already-proven plans analytically; the
            // verifier would only re-prove the same fingerprints.
            verify: None,
        }
        .try_run_spectral(s, v, LayerBufs::shared(x, w, y), opts, ExecMode::Analytical)
        // Invariant, not a fault path: probes run analytically and fault
        // injection applies only to functional launches and real
        // allocations (the operands here are virtual).
        .expect("analytical planner probes are never faulted");
        (run.total_us(), run.kernel_count() as u64)
    }))
}

/// Run the per-candidate closure for all four variants across at most
/// `configured_workers()` host threads (the `TFNO_THREADS` knob governs
/// planner fan-out like every other host-parallel loop).
fn evaluate_candidates(
    eval: impl Fn(Variant) -> (f64, u64) + Sync,
) -> [(Variant, f64, u64); 4] {
    let mut out = [(Variant::FftOpt, f64::INFINITY, 0u64); 4];
    let workers = configured_workers().min(TURBO_CANDIDATES.len());
    if workers > 1 {
        let eval = &eval;
        std::thread::scope(|scope| {
            // Round-robin candidates over the worker threads; each worker
            // returns (candidate index, result) pairs.
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        TURBO_CANDIDATES
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, &v)| (i, v, eval(v)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, v, (t, launches)) in h.join().expect("planner evaluation panicked") {
                    out[i] = (v, t, launches);
                }
            }
        });
    } else {
        for (slot, &v) in out.iter_mut().zip(TURBO_CANDIDATES.iter()) {
            let (t, launches) = eval(v);
            *slot = (v, t, launches);
        }
    }
    out
}

fn select(results: [(Variant, f64, u64); 4]) -> (Variant, u64) {
    let mut best = (f64::INFINITY, Variant::FftOpt);
    let mut launches = 0;
    for (v, t, l) in results {
        launches += l;
        if t < best.0 {
            best = (t, v);
        }
    }
    (best.1, launches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p1() -> FnoProblem1d {
        FnoProblem1d::new(2, 16, 16, 128, 32)
    }

    fn p2() -> FnoProblem2d {
        FnoProblem2d::new(1, 8, 8, 32, 64, 8, 32)
    }

    #[test]
    fn cache_hit_matches_cold_pick_and_simulates_nothing() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();

        let cold = Planner::pick_best_1d(&cfg, &p1(), &opts);
        let first = planner.plan_1d(&cfg, &p1(), &opts);
        assert_eq!(first, cold, "planner must agree with the uncached scan");
        let after_first = planner.stats();
        assert_eq!(after_first.misses, 1);
        assert!(after_first.simulated_launches > 0);

        let second = planner.plan_1d(&cfg, &p1(), &opts);
        assert_eq!(second, first);
        let after_second = planner.stats();
        assert_eq!(after_second.hits, 1);
        assert_eq!(
            after_second.simulated_launches, after_first.simulated_launches,
            "a cache hit must perform zero simulated launches"
        );
    }

    #[test]
    fn cache_distinguishes_shapes_options_and_dim() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();
        planner.plan_1d(&cfg, &p1(), &opts);
        planner.plan_1d(&cfg, &FnoProblem1d::new(4, 16, 16, 128, 32), &opts);
        planner.plan_2d(&cfg, &p2(), &opts);
        let degraded = TurboOptions {
            epilogue_swizzle: false,
            ..TurboOptions::default()
        };
        planner.plan_1d(&cfg, &p1(), &degraded);
        assert_eq!(planner.len(), 4);
        assert_eq!(planner.stats().hits, 0);
    }

    #[test]
    fn planner_2d_matches_cold_pick() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::new();
        assert_eq!(planner.plan_2d(&cfg, &p2(), &opts), Planner::pick_best_2d(&cfg, &p2(), &opts));
        assert_eq!(planner.plan_2d(&cfg, &p2(), &opts), Planner::pick_best_2d(&cfg, &p2(), &opts));
        assert_eq!(planner.stats().hits, 1);
    }

    /// Regression (re-evaluation storm): hitting the cache cap must not
    /// wipe every plan — recently planned shapes stay cached across an
    /// eviction, and only older generations fall out.
    #[test]
    fn cap_evicts_generationally_not_wholesale() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        // cap 4 -> hot generation holds 2 entries
        let planner = Planner::with_cache_cap(4);
        let shapes: Vec<FnoProblem1d> = (0..3)
            .map(|i| FnoProblem1d::new(1 + i, 8, 8, 128, 32))
            .collect();
        for p in &shapes {
            planner.plan_1d(&cfg, p, &opts);
        }
        assert_eq!(planner.stats().misses, 3);
        assert!(planner.len() <= 4, "cache stays within its cap");
        // The third insert rotated {shape0, shape1} into the cold
        // generation; all three must still be hits, not re-evaluations.
        for p in &shapes {
            planner.plan_1d(&cfg, p, &opts);
        }
        let s = planner.stats();
        assert_eq!(
            s.misses, 3,
            "re-planning recently cached shapes after an eviction must not re-evaluate"
        );
        assert_eq!(s.hits, 3);
    }

    /// With a tiny cap, old generations do eventually fall out — the cache
    /// is bounded, and an evicted shape costs exactly one re-evaluation.
    #[test]
    fn cache_stays_bounded_under_shape_churn() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let planner = Planner::with_cache_cap(2);
        for i in 0..5 {
            planner.plan_1d(&cfg, &FnoProblem1d::new(1 + i, 8, 8, 128, 32), &opts);
            assert!(planner.len() <= 2, "cap 2 exceeded: {}", planner.len());
        }
        assert_eq!(planner.stats().misses, 5);
    }

    /// Regression (racing cold evaluations): N threads planning the same
    /// key concurrently must produce exactly one miss and one evaluation's
    /// worth of simulated launches — not N.
    #[test]
    fn racing_planners_deduplicate_the_cold_evaluation() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();

        // One uncontended evaluation's launch count, for comparison.
        let reference = Planner::new();
        reference.plan_1d(&cfg, &p1(), &opts);
        let one_eval = reference.stats().simulated_launches;
        assert!(one_eval > 0);

        let planner = Planner::new();
        let threads = 4;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| planner.plan_1d(&cfg, &p1(), &opts)))
                .collect();
            let plans: Vec<Variant> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(plans.windows(2).all(|w| w[0] == w[1]));
        });
        let s = planner.stats();
        assert_eq!(s.misses, 1, "exactly one thread performs the cold evaluation");
        assert_eq!(s.hits, threads - 1, "the racers are served from the cache");
        assert_eq!(
            s.simulated_launches, one_eval,
            "simulated launches must not be double-counted by the race"
        );
    }

    /// Regression: a panicking cold evaluation (any documented kernel or
    /// aliasing panic can surface inside one) must neither strand waiters
    /// on the pending marker nor poison the planner's locks — a caught
    /// panic used to wedge the process-wide planner for every later test.
    #[test]
    fn caught_evaluation_panic_does_not_wedge_the_planner() {
        let planner = Planner::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            planner.plan(42, || panic!("evaluation blew up"))
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The pending marker is gone (no deadlock) and the same key plans
        // cleanly on retry.
        let v = planner.plan(42, || (Variant::FullyFused, 7));
        assert_eq!(v, Variant::FullyFused);
        let s = planner.stats();
        assert_eq!((s.misses, s.simulated_launches), (1, 7));
        assert_eq!(planner.len(), 1);
    }

    /// Regression companion: even a lock poisoned mid-critical-section
    /// (simulated by panicking while holding it) keeps serving.
    #[test]
    fn poisoned_planner_locks_recover() {
        let planner = Planner::new();
        planner.plan(7, || (Variant::FftOpt, 3));
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = planner.stats.lock().unwrap();
                let _cache = planner.cache.lock().unwrap();
                panic!("poison the planner locks");
            })
            .join()
        });
        assert_eq!(planner.stats().misses, 1, "stats lock must recover");
        assert_eq!(planner.plan(7, || unreachable!()), Variant::FftOpt);
        assert_eq!(planner.stats().hits, 1, "cache lock must recover");
    }

    #[test]
    fn clear_bumps_the_generation() {
        let planner = Planner::new();
        let g0 = planner.generation();
        planner.plan(9, || (Variant::FftOpt, 1));
        assert_eq!(planner.generation(), g0, "planning alone never invalidates");
        planner.clear();
        assert_eq!(planner.generation(), g0 + 1);
    }

    #[test]
    fn global_planner_is_shared_and_clearable() {
        let cfg = DeviceConfig::a100();
        let opts = TurboOptions::default();
        let v = Planner::global().plan_1d(&cfg, &p1(), &opts);
        assert_eq!(Planner::global().plan_1d(&cfg, &p1(), &opts), v);
        Planner::global().clear();
    }
}
