//! # turbofno
//!
//! The paper's core contribution, reproduced on the simulated GPU: fully
//! fused FFT–CGEMM–iFFT kernels for Fourier Neural Operators with
//! dataflow alignment (§4.1), an iFFT epilogue (§4.2), and the two
//! shared-memory swizzling patterns that take bank utilization from 25%
//! to 100% (Figs. 7–8).
//!
//! * [`session`] — the execution surface: [`Session`] (device + planner +
//!   buffer pool in one owning handle), [`LayerSpec`] (builder-style layer
//!   description) and [`Session::run_many`] batched serving;
//! * [`swizzle`] — the address-level swizzle patterns with pinned
//!   utilization numbers;
//! * [`fused`] — the generic fused kernel (variants B/C/D) over
//!   rank-generic layer geometries ([`GeomNd`]);
//! * [`pipeline`] — executors for every evaluated variant (Table 2),
//!   including the PyTorch baseline via `tfno-culib` and the best-of
//!   selection the paper calls "TurboFNO";
//! * [`pool`] — the size-class scratch [`BufferPool`] sessions allocate
//!   pipeline intermediates from;
//! * [`planner`] — the memoizing `TurboBest` [`Planner`];
//! * [`replay`] — whole-forward launch replay: warm serving loops re-issue
//!   a recorded kernel sequence instead of re-planning and re-assembling
//!   every layer (see the "Warm-path replay" section of the README).
//!
//! Numerical equivalence of every variant against the naive reference
//! layer is enforced by the test suite (`tests/` in this crate and the
//! workspace-level integration tests).

// Lane loops (`for l in 0..WARP_SIZE`) deliberately mirror the CUDA
// warp-synchronous style.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod error;
pub mod fused;
#[cfg(test)]
mod fused_tests;
pub mod pipeline;
pub mod planner;
pub mod pool;
pub mod replay;
pub mod session;
pub mod swizzle;
pub mod verify;

pub use backend::{
    parse_backend_kind, AnyBackend, Backend, BackendCaps, BackendKind, NativeBackend, SimBackend,
};
pub use error::{RecoveryStats, RetryPolicy, TfnoError};
pub use fused::{FusedGeometry, FusedKernel, GeomNd, FUSED_FFT_BS};
pub use pipeline::{TurboOptions, Variant, TURBO_FFT_L1_HIT};
pub use planner::{Planner, PlannerStats, TURBO_CANDIDATES};
pub use pool::{BufferPool, PoolStats};
pub use replay::ReplayStats;
pub use session::{DispatchStats, LaunchHandle, LayerSpec, Request, Session};
pub use verify::{
    check_queue_aliasing, check_tape, set_verify_override, verifier_enabled, PlanHazard,
    PlanVerifier, QueueAccess,
};
// The strided-batched weight layout mixed-weight serving stacks ride on.
pub use tfno_cgemm::WeightStacking;
pub use swizzle::{
    epilogue_store_pattern, fft_writeback_pattern, fig8_offset, forward_to_as_pattern,
    pattern_utilization, EpilogueStaging, ForwardLayout,
};

// Re-export the problem descriptors so users of the core crate see one API.
pub use tfno_culib::{FnoProblem1d, FnoProblem2d, PipelineRun, SpectralShape, MAX_RANK};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AnyBackend, Backend, BufferId, ExecMode, SimBackend};
    use tfno_num::error::rel_l2_error;
    use tfno_num::{C32, CTensor};

    /// O(N log N) reference Fourier layer via the host Stockham path of
    /// `tfno-model` (dev-dependency; itself pinned against the naive
    /// O(N^2) DFT), so the hottest equivalence checks here do not pay
    /// quadratic DFT cost.
    fn reference_layer_1d(x: &CTensor, w: &CTensor, p: &FnoProblem1d) -> CTensor {
        tfno_model::spectral::SpectralConv1d::new(p.k_in, p.k_out, p.n, p.nf, w.clone())
            .forward_host(x)
    }

    fn reference_layer_2d(x: &CTensor, w: &CTensor, p: &FnoProblem2d) -> CTensor {
        tfno_model::spectral::SpectralConv2d::new(
            p.k_in, p.k_out, p.nx, p.ny, p.nfx, p.nfy, w.clone(),
        )
        .forward_host(x)
    }

    fn rand_like(len: usize, seed: f32) -> Vec<C32> {
        (0..len)
            .map(|i| {
                C32::new(
                    ((i as f32) * 0.19 + seed).sin(),
                    ((i as f32) * 0.31 - seed).cos(),
                )
            })
            .collect()
    }

    /// A fresh session with uploaded operands for `p`; returns the
    /// uploaded data so references are computed from exactly those values.
    /// Runs on the env-selected backend; tests that pin sim-modeled stats
    /// use [`session_for_1d_sim`] instead.
    #[allow(clippy::type_complexity)]
    fn session_for_1d(
        p: &FnoProblem1d,
    ) -> (
        Session<AnyBackend>,
        LayerSpec,
        [BufferId; 3],
        (Vec<C32>, Vec<C32>),
    ) {
        session_for_1d_in(Session::a100(), p)
    }

    /// Like [`session_for_1d`] but pinned to the simulator, for tests that
    /// assert modeled traffic/cycle stats or analytical-mode agreement.
    #[allow(clippy::type_complexity)]
    fn session_for_1d_sim(
        p: &FnoProblem1d,
    ) -> (
        Session<SimBackend>,
        LayerSpec,
        [BufferId; 3],
        (Vec<C32>, Vec<C32>),
    ) {
        session_for_1d_in(Session::new(SimBackend::a100()), p)
    }

    #[allow(clippy::type_complexity)]
    fn session_for_1d_in<B: Backend>(
        mut sess: Session<B>,
        p: &FnoProblem1d,
    ) -> (
        Session<B>,
        LayerSpec,
        [BufferId; 3],
        (Vec<C32>, Vec<C32>),
    ) {
        let spec = LayerSpec::from_problem_1d(p);
        let x = sess.alloc("x", p.input_len());
        let w = sess.alloc("w", p.weight_len());
        let y = sess.alloc("y", p.output_len());
        let xd = rand_like(p.input_len(), 0.5);
        let wd = rand_like(p.weight_len(), 0.8);
        sess.upload(x, &xd);
        sess.upload(w, &wd);
        (sess, spec, [x, w, y], (xd, wd))
    }

    fn run_1d(p: &FnoProblem1d, v: Variant) -> (Vec<C32>, PipelineRun, CTensor) {
        run_1d_in(session_for_1d(p), p, v)
    }

    /// Like [`run_1d`] but pinned to the simulator (modeled stats).
    fn run_1d_sim(p: &FnoProblem1d, v: Variant) -> (Vec<C32>, PipelineRun, CTensor) {
        run_1d_in(session_for_1d_sim(p), p, v)
    }

    #[allow(clippy::type_complexity)]
    fn run_1d_in<B: Backend>(
        parts: (Session<B>, LayerSpec, [BufferId; 3], (Vec<C32>, Vec<C32>)),
        p: &FnoProblem1d,
        v: Variant,
    ) -> (Vec<C32>, PipelineRun, CTensor) {
        let (mut sess, spec, [x, w, y], (xd, wd)) = parts;
        let run = sess.run(&spec.variant(v), x, w, y);
        let xt = CTensor::from_vec(xd, &[p.batch, p.k_in, p.n]);
        let wt = CTensor::from_vec(wd, &[p.k_in, p.k_out]);
        let want = reference_layer_1d(&xt, &wt, p);
        (sess.download(y), run, want)
    }

    #[test]
    fn all_1d_variants_match_reference() {
        let p = FnoProblem1d::new(2, 12, 16, 128, 32);
        for v in Variant::CONCRETE {
            let (got, run, want) = run_1d(&p, v);
            let err = rel_l2_error(&got, want.data());
            assert!(err < 1e-4, "{v:?}: rel l2 error {err}");
            let expected_kernels = match v {
                Variant::Pytorch => 5,
                Variant::FftOpt => 3,
                Variant::FusedFftGemm | Variant::FusedGemmIfft => 2,
                Variant::FullyFused => 1,
                Variant::TurboBest => unreachable!(),
            };
            assert_eq!(run.kernel_count(), expected_kernels, "{v:?}");
        }
    }

    #[test]
    fn turbo_best_matches_reference_1d() {
        let p = FnoProblem1d::new(2, 8, 8, 128, 32);
        let (got, run, want) = run_1d(&p, Variant::TurboBest);
        let err = rel_l2_error(&got, want.data());
        assert!(err < 1e-4, "rel l2 error {err}");
        assert!(run.kernel_count() <= 3);
    }

    #[test]
    fn fused_variants_reduce_traffic_and_launches() {
        let p = FnoProblem1d::new(4, 32, 32, 128, 32);
        let (_, pt, _) = run_1d_sim(&p, Variant::Pytorch);
        let (_, a, _) = run_1d_sim(&p, Variant::FftOpt);
        let (_, d, _) = run_1d_sim(&p, Variant::FullyFused);
        let pt_bytes = pt.total_stats().global_bytes();
        let a_bytes = a.total_stats().global_bytes();
        let d_bytes = d.total_stats().global_bytes();
        assert!(
            a_bytes < pt_bytes,
            "A must cut traffic: {a_bytes} !< {pt_bytes}"
        );
        assert!(
            d_bytes < a_bytes,
            "D must cut traffic further: {d_bytes} !< {a_bytes}"
        );
        assert!(pt.kernel_count() > a.kernel_count());
        assert!(a.kernel_count() > d.kernel_count());
    }

    #[test]
    fn ablation_layouts_only_change_bank_stats() {
        let p = FnoProblem1d::new(2, 16, 16, 128, 32);
        let run_with = |layout: ForwardLayout, swz: bool| {
            let (mut sess, spec, [x, w, y], _) = session_for_1d_sim(&p);
            let opts = TurboOptions {
                forward_layout: layout,
                epilogue_swizzle: swz,
                ..Default::default()
            };
            let run = sess.run(
                &spec.variant(Variant::FullyFused).options(opts),
                x,
                w,
                y,
            );
            (sess.download(y), run)
        };
        let (y_good, run_good) = run_with(ForwardLayout::TurboContiguous, true);
        let (y_bad, run_bad) = run_with(ForwardLayout::VkFftStrided, false);
        // numerics identical
        let err = rel_l2_error(&y_good, &y_bad);
        assert!(err < 1e-6, "layouts changed numerics: {err}");
        // The bad layout must pay more shared-memory replay cycles. (The
        // whole-kernel utilization delta is modest because butterfly and
        // staging traffic dominates; the per-pattern 25% -> 100% numbers of
        // Figs. 7/8 are pinned exactly in swizzle::tests.)
        let good = run_good.total_stats();
        let bad = run_bad.total_stats();
        assert_eq!(good.shared_ideal_cycles, bad.shared_ideal_cycles);
        assert!(
            bad.shared_actual_cycles > good.shared_actual_cycles,
            "swizzles must remove replays: {} vs {}",
            bad.shared_actual_cycles,
            good.shared_actual_cycles
        );
    }

    fn run_2d(p: &FnoProblem2d, v: Variant) -> (Vec<C32>, PipelineRun, CTensor) {
        let mut sess = Session::a100();
        let spec = LayerSpec::from_problem_2d(p).variant(v);
        let x = sess.alloc("x", p.input_len());
        let w = sess.alloc("w", p.weight_len());
        let y = sess.alloc("y", p.output_len());
        let xd = rand_like(p.input_len(), 0.2);
        let wd = rand_like(p.weight_len(), 0.6);
        sess.upload(x, &xd);
        sess.upload(w, &wd);
        let run = sess.run(&spec, x, w, y);
        let xt = CTensor::from_vec(xd, &[p.batch, p.k_in, p.nx, p.ny]);
        let wt = CTensor::from_vec(wd, &[p.k_in, p.k_out]);
        let want = reference_layer_2d(&xt, &wt, p);
        (sess.download(y), run, want)
    }

    #[test]
    fn all_2d_variants_match_reference() {
        let p = FnoProblem2d::new(1, 10, 8, 32, 64, 8, 32);
        for v in Variant::CONCRETE {
            let (got, run, want) = run_2d(&p, v);
            let err = rel_l2_error(&got, want.data());
            assert!(err < 1e-4, "{v:?}: rel l2 error {err}");
            let expected_kernels = match v {
                Variant::Pytorch => 7,
                Variant::FftOpt => 5,
                Variant::FusedFftGemm | Variant::FusedGemmIfft => 4,
                Variant::FullyFused => 3,
                Variant::TurboBest => unreachable!(),
            };
            assert_eq!(run.kernel_count(), expected_kernels, "{v:?}");
        }
    }

    #[test]
    fn analytical_equals_functional_fused() {
        let p = FnoProblem1d::new(3, 16, 24, 128, 32);
        for v in [
            Variant::FftOpt,
            Variant::FusedFftGemm,
            Variant::FusedGemmIfft,
            Variant::FullyFused,
        ] {
            let (mut sess, spec, [x, w, y], _) = session_for_1d_sim(&p);
            let f = sess.run(&spec.variant(v), x, w, y);
            let a = sess.run(&spec.variant(v).exec(ExecMode::Analytical), x, w, y);
            assert_eq!(f.total_stats(), a.total_stats(), "{v:?}");
        }
    }

    #[test]
    fn analytical_equals_functional_fused_2d() {
        let p = FnoProblem2d::new(2, 12, 8, 32, 64, 8, 32);
        for v in [Variant::FftOpt, Variant::FullyFused] {
            let mut sess = Session::new(SimBackend::a100());
            let spec = LayerSpec::from_problem_2d(&p).variant(v);
            let x = sess.alloc("x", p.input_len());
            let w = sess.alloc("w", p.weight_len());
            let y = sess.alloc("y", p.output_len());
            sess.upload(x, &rand_like(p.input_len(), 0.3));
            sess.upload(w, &rand_like(p.weight_len(), 0.4));
            let f = sess.run(&spec, x, w, y);
            let a = sess.run(&spec.exec(ExecMode::Analytical), x, w, y);
            assert_eq!(f.total_stats(), a.total_stats(), "{v:?}");
        }
    }
}
