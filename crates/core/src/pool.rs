//! Size-class buffer pooling for pipeline scratch.
//!
//! Every Turbo pipeline variant needs intermediate device buffers (the
//! truncated spectra `xf_t`/`yf_t`, the 2D stage tensors `t1`/`t3`).
//! Pre-Session, each `run_variant_*` call allocated them fresh via
//! `alloc_like` and never reused them — in a serving loop that is an
//! allocation per stage per layer per forward, and the simulated global
//! memory never frees, so the buffer table grew without bound.
//!
//! [`BufferPool`] recycles them: buffers are keyed by `(length,
//! virtualness)` size class, leased for the duration of one pipeline run
//! and returned afterwards. Reuse is numerically safe because every
//! pipeline stage fully overwrites its scratch output before any stage
//! reads it (the kernels write whole pencils/tiles, never read-modify),
//! so stale contents are unobservable; the tests in `tests/session_api.rs`
//! pin bitwise equality between pooled and fresh-buffer runs.

use std::collections::HashMap;
use tfno_gpu_sim::{BufferId, GpuDevice};

/// Counters of one [`BufferPool`] (see [`BufferPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served by recycling a pooled buffer (no device allocation).
    pub hits: u64,
    /// Leases that had to allocate a new device buffer.
    pub misses: u64,
    /// Buffers currently leased out.
    pub leased: u64,
    /// Buffers currently sitting in the free lists.
    pub pooled: u64,
}

/// A size-class pool of simulated device buffers.
///
/// Owned by a [`Session`](crate::Session); not tied to a specific
/// `GpuDevice` — the device is passed per call so the pool can live next
/// to it in one struct without borrow cycles. Handing buffers from one
/// device to a pool used with another is a logic error (buffer ids are
/// per-device indices).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: HashMap<(usize, bool), Vec<BufferId>>,
    stats: PoolStats,
    seq: u64,
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease/recycle counters so callers can prove reuse (a warm
    /// same-shape pipeline run must report `hits > 0`).
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Lease a real (value-carrying) buffer of `len` complex elements.
    pub fn acquire(&mut self, dev: &mut GpuDevice, len: usize) -> BufferId {
        self.acquire_class(dev, len, false)
    }

    /// Lease a storage-free virtual buffer (analytical sweeps).
    pub fn acquire_virtual(&mut self, dev: &mut GpuDevice, len: usize) -> BufferId {
        self.acquire_class(dev, len, true)
    }

    /// Lease a buffer matching the virtualness of `reference` — the pooled
    /// replacement for `tfno_culib::alloc_like`.
    pub fn acquire_like(
        &mut self,
        dev: &mut GpuDevice,
        reference: BufferId,
        len: usize,
    ) -> BufferId {
        let virt = dev.memory.is_virtual(reference);
        self.acquire_class(dev, len, virt)
    }

    fn acquire_class(&mut self, dev: &mut GpuDevice, len: usize, virt: bool) -> BufferId {
        if let Some(id) = self.free.get_mut(&(len, virt)).and_then(Vec::pop) {
            self.stats.hits += 1;
            self.stats.leased += 1;
            self.stats.pooled -= 1;
            return id;
        }
        self.stats.misses += 1;
        self.stats.leased += 1;
        self.seq += 1;
        let name = format!("pool.{}{}", if virt { "v" } else { "b" }, self.seq);
        if virt {
            dev.memory.alloc_virtual(&name, len)
        } else {
            dev.alloc(&name, len)
        }
    }

    /// Return a leased buffer to its size class. Accepts any buffer of
    /// `dev` (adopting foreign buffers into the pool is allowed); contents
    /// are left as-is — the next lessee must fully overwrite before
    /// reading, which every pipeline stage does.
    ///
    /// # Panics
    /// On a double release: handing the same id back twice would let two
    /// later leases alias one buffer and silently corrupt results.
    pub fn release(&mut self, dev: &GpuDevice, id: BufferId) {
        let key = (dev.memory.len(id), dev.memory.is_virtual(id));
        let list = self.free.entry(key).or_default();
        assert!(
            !list.contains(&id),
            "double release of pooled buffer {id:?} ({} elements)",
            key.0
        );
        list.push(id);
        self.stats.leased = self.stats.leased.saturating_sub(1);
        self.stats.pooled += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_by_exact_size_class() {
        let mut dev = GpuDevice::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 64);
        let b = pool.acquire(&mut dev, 64);
        assert_ne!(a, b, "two live leases must be distinct buffers");
        assert_eq!(pool.stats().misses, 2);
        pool.release(&dev, a);
        pool.release(&dev, b);
        // same class -> recycled; different length -> fresh allocation
        let c = pool.acquire(&mut dev, 64);
        let d = pool.acquire(&mut dev, 128);
        assert!(c == a || c == b);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 3);
        let _ = d;
    }

    #[test]
    fn virtual_and_real_classes_never_mix() {
        let mut dev = GpuDevice::a100();
        let mut pool = BufferPool::new();
        let v = pool.acquire_virtual(&mut dev, 32);
        pool.release(&dev, v);
        let r = pool.acquire(&mut dev, 32);
        assert_ne!(v, r, "a virtual buffer must not satisfy a real lease");
        assert!(dev.memory.is_virtual(v));
        assert!(!dev.memory.is_virtual(r));
    }

    #[test]
    fn acquire_like_follows_reference_virtualness() {
        let mut dev = GpuDevice::a100();
        let mut pool = BufferPool::new();
        let real = dev.alloc("x", 16);
        let virt = dev.memory.alloc_virtual("xv", 16);
        let like_real = pool.acquire_like(&mut dev, real, 8);
        let like_virt = pool.acquire_like(&mut dev, virt, 8);
        assert!(!dev.memory.is_virtual(like_real));
        assert!(dev.memory.is_virtual(like_virt));
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_rejected() {
        let mut dev = GpuDevice::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 8);
        pool.release(&dev, a);
        pool.release(&dev, a);
    }

    #[test]
    fn leased_and_pooled_counters_track() {
        let mut dev = GpuDevice::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 8);
        assert_eq!((pool.stats().leased, pool.stats().pooled), (1, 0));
        pool.release(&dev, a);
        assert_eq!((pool.stats().leased, pool.stats().pooled), (0, 1));
    }
}
