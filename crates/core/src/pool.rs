//! Size-class buffer pooling for pipeline scratch.
//!
//! Every Turbo pipeline variant needs intermediate device buffers (the
//! truncated spectra `xf_t`/`yf_t`, the 2D stage tensors `t1`/`t3`).
//! Pre-Session, each `run_variant_*` call allocated them fresh via
//! `alloc_like` and never reused them — in a serving loop that is an
//! allocation per stage per layer per forward, and the simulated global
//! memory never frees, so the buffer table grew without bound.
//!
//! [`BufferPool`] recycles them: buffers are keyed by `(length,
//! virtualness)` size class, leased for the duration of one pipeline run
//! and returned afterwards. Reuse is numerically safe because every
//! pipeline stage fully overwrites its scratch output before any stage
//! reads it (the kernels write whole pencils/tiles, never read-modify),
//! so stale contents are unobservable; the tests in `tests/session_api.rs`
//! pin bitwise equality between pooled and fresh-buffer runs.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use crate::backend::{Backend, BufferId, LaunchError};

/// Counters of one [`BufferPool`] (see [`BufferPool::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served by recycling a pooled buffer (no device allocation).
    pub hits: u64,
    /// Leases that had to allocate a new device buffer.
    pub misses: u64,
    /// Buffers currently leased out.
    pub leased: u64,
    /// Buffers currently sitting in the free lists.
    pub pooled: u64,
    /// Buffers moved out of the lease set into caller-owned artifacts
    /// (replay scratch retention) and not yet restored.
    pub retained: u64,
}

/// A size-class pool of simulated device buffers.
///
/// Owned by a [`Session`](crate::Session); not tied to a specific
/// backend — the backend is passed per call so the pool can live next
/// to it in one struct without borrow cycles. Handing buffers from one
/// backend to a pool used with another is a logic error (buffer ids are
/// per-backend indices).
#[derive(Debug)]
pub struct BufferPool {
    free: HashMap<(usize, bool), Vec<BufferId>>,
    /// Ids currently sitting in `free` — O(1) double-release detection.
    free_ids: HashSet<BufferId>,
    /// Ids currently leased out. `release` only accepts members; foreign
    /// buffers enter via the explicit [`BufferPool::adopt`].
    leased_ids: HashSet<BufferId>,
    /// Ids currently retained by artifacts (see [`BufferPool::retain`]).
    retained_ids: HashSet<BufferId>,
    stats: PoolStats,
    seq: u64,
    /// Process-unique pool identity (see [`BufferPool::generation`]).
    generation: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);
        BufferPool {
            free: HashMap::new(),
            free_ids: HashSet::new(),
            leased_ids: HashSet::new(),
            retained_ids: HashSet::new(),
            stats: PoolStats::default(),
            seq: 0,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Process-unique identity of this pool instance. Replay artifacts
    /// embed the generation of the pool their scratch was retained from;
    /// a key that no longer matches the session's live pool (the pool was
    /// replaced) proves the artifact's buffer ids are meaningless and the
    /// artifact must be re-recorded, not replayed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lease/recycle counters so callers can prove reuse (a warm
    /// same-shape pipeline run must report `hits > 0`).
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of `(length, virtualness)` size classes currently holding
    /// free buffers. Bounded by the number of *pooled* buffers, not by the
    /// number of shapes ever served: classes are pruned when they empty.
    pub fn size_classes(&self) -> usize {
        self.free.len()
    }

    /// Lease a real (value-carrying) buffer of `len` complex elements.
    pub fn acquire(&mut self, dev: &mut dyn Backend, len: usize) -> BufferId {
        self.try_acquire(dev, len)
            .unwrap_or_else(|e| panic!("pool allocation failed: {e}; use try_acquire"))
    }

    /// [`BufferPool::acquire`] through the device's typed fault path:
    /// pooled hits never fault, a fresh allocation can report a simulated
    /// OOM. A failed lease changes no pool state.
    pub fn try_acquire(&mut self, dev: &mut dyn Backend, len: usize) -> Result<BufferId, LaunchError> {
        self.try_acquire_class(dev, len, false)
    }

    /// Lease a storage-free virtual buffer (analytical sweeps).
    pub fn acquire_virtual(&mut self, dev: &mut dyn Backend, len: usize) -> BufferId {
        self.try_acquire_class(dev, len, true)
            .expect("virtual allocations are never faulted")
    }

    /// Lease a buffer matching the virtualness of `reference` — the pooled
    /// replacement for `tfno_culib::alloc_like`.
    pub fn acquire_like(
        &mut self,
        dev: &mut dyn Backend,
        reference: BufferId,
        len: usize,
    ) -> BufferId {
        self.try_acquire_like(dev, reference, len)
            .unwrap_or_else(|e| panic!("pool allocation failed: {e}; use try_acquire_like"))
    }

    /// [`BufferPool::acquire_like`] through the device's typed fault path.
    pub fn try_acquire_like(
        &mut self,
        dev: &mut dyn Backend,
        reference: BufferId,
        len: usize,
    ) -> Result<BufferId, LaunchError> {
        let virt = dev.memory().is_virtual(reference);
        self.try_acquire_class(dev, len, virt)
    }

    fn try_acquire_class(
        &mut self,
        dev: &mut dyn Backend,
        len: usize,
        virt: bool,
    ) -> Result<BufferId, LaunchError> {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.free.entry((len, virt)) {
            let id = e.get_mut().pop().expect("free lists are never left empty");
            // Prune the class when it empties, or a shape-diverse serving
            // loop grows the map by one dead entry per size ever seen.
            if e.get().is_empty() {
                e.remove();
            }
            self.free_ids.remove(&id);
            self.leased_ids.insert(id);
            self.stats.hits += 1;
            self.stats.leased += 1;
            self.stats.pooled -= 1;
            return Ok(id);
        }
        self.seq += 1;
        let name = format!("pool.{}{}", if virt { "v" } else { "b" }, self.seq);
        let id = if virt {
            dev.memory_mut().alloc_virtual(&name, len)
        } else {
            // A faulted allocation must leave the pool untouched (the
            // caller may retry), so the device call precedes every
            // counter/set mutation; the burned `seq` only affects the
            // debug name of the next allocation.
            dev.try_alloc(&name, len)?
        };
        self.stats.misses += 1;
        self.stats.leased += 1;
        self.leased_ids.insert(id);
        Ok(id)
    }

    /// Snapshot of the ids currently leased out — the dispatch loop's
    /// basis for releasing leases leaked by a panicked job (diff the
    /// snapshots taken before and after the job).
    pub(crate) fn leased_snapshot(&self) -> HashSet<BufferId> {
        self.leased_ids.clone()
    }

    /// Is `id` sitting in the free lists (released, available for reuse)?
    /// A replay tape referencing a free pool buffer is a use-after-release
    /// in the making — the plan verifier's freeze check rejects it.
    pub fn is_free(&self, id: BufferId) -> bool {
        self.free_ids.contains(&id)
    }

    /// Is `id` currently leased from this pool?
    pub fn is_leased(&self, id: BufferId) -> bool {
        self.leased_ids.contains(&id)
    }

    /// Return a leased buffer to its size class. Contents are left as-is —
    /// the next lessee must fully overwrite before reading, which every
    /// pipeline stage does.
    ///
    /// # Panics
    /// * On a double release: handing the same id back twice would let two
    ///   later leases alias one buffer and silently corrupt results.
    /// * On an id this pool never leased: silently accepting it used to
    ///   skew the `leased`/`pooled` counters (the decrement saturated
    ///   against leases that never happened). Foreign buffers must enter
    ///   through the explicit [`BufferPool::adopt`].
    pub fn release(&mut self, dev: &dyn Backend, id: BufferId) {
        assert!(
            !self.free_ids.contains(&id),
            "double release of pooled buffer {id:?} ({} elements)",
            dev.memory().len(id)
        );
        assert!(
            self.leased_ids.remove(&id),
            "released buffer {id:?} was never leased from this pool; \
             use `adopt` to donate a foreign buffer"
        );
        self.park(dev, id);
        self.stats.leased -= 1;
    }

    /// Donate a buffer this pool never leased (e.g. a caller-allocated
    /// operand that is no longer needed) to the free lists. Unlike
    /// [`BufferPool::release`] this does not touch the `leased` counter —
    /// the buffer was never leased, so there is nothing to decrement.
    ///
    /// # Panics
    /// If the buffer is already pooled or currently leased.
    pub fn adopt(&mut self, dev: &dyn Backend, id: BufferId) {
        assert!(
            !self.free_ids.contains(&id),
            "adopting buffer {id:?} twice would alias later leases"
        );
        assert!(
            !self.leased_ids.contains(&id),
            "buffer {id:?} is currently leased from this pool; release it instead"
        );
        self.park(dev, id);
    }

    /// Move a leased buffer out of the lease set into the caller's
    /// ownership — the mechanism replay artifacts use to keep their
    /// recorded scratch buffers alive (and their embedded ids valid)
    /// across calls without counting as an outstanding lease. The pool
    /// will not re-issue a retained id until it is [`restored`].
    ///
    /// [`restored`]: BufferPool::restore
    ///
    /// # Panics
    /// If the buffer is not currently leased from this pool.
    pub fn retain(&mut self, id: BufferId) {
        assert!(
            self.leased_ids.remove(&id),
            "retained buffer {id:?} is not currently leased from this pool"
        );
        self.retained_ids.insert(id);
        self.stats.leased -= 1;
        self.stats.retained += 1;
    }

    /// Return a retained buffer to the free lists (artifact eviction or
    /// invalidation). The inverse of [`BufferPool::retain`].
    ///
    /// # Panics
    /// If the buffer is not currently retained.
    pub fn restore(&mut self, dev: &dyn Backend, id: BufferId) {
        assert!(
            self.retained_ids.remove(&id),
            "restored buffer {id:?} is not retained from this pool"
        );
        self.stats.retained -= 1;
        self.park(dev, id);
    }

    fn park(&mut self, dev: &dyn Backend, id: BufferId) {
        let key = (dev.memory().len(id), dev.memory().is_virtual(id));
        self.free.entry(key).or_default().push(id);
        self.free_ids.insert(id);
        self.stats.pooled += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;

    #[test]
    fn reuse_is_by_exact_size_class() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 64);
        let b = pool.acquire(&mut dev, 64);
        assert_ne!(a, b, "two live leases must be distinct buffers");
        assert_eq!(pool.stats().misses, 2);
        pool.release(&dev, a);
        pool.release(&dev, b);
        // same class -> recycled; different length -> fresh allocation
        let c = pool.acquire(&mut dev, 64);
        let d = pool.acquire(&mut dev, 128);
        assert!(c == a || c == b);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 3);
        let _ = d;
    }

    #[test]
    fn virtual_and_real_classes_never_mix() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let v = pool.acquire_virtual(&mut dev, 32);
        pool.release(&dev, v);
        let r = pool.acquire(&mut dev, 32);
        assert_ne!(v, r, "a virtual buffer must not satisfy a real lease");
        assert!(dev.memory().is_virtual(v));
        assert!(!dev.memory().is_virtual(r));
    }

    #[test]
    fn acquire_like_follows_reference_virtualness() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let real = dev.alloc("x", 16);
        let virt = dev.memory.alloc_virtual("xv", 16);
        let like_real = pool.acquire_like(&mut dev, real, 8);
        let like_virt = pool.acquire_like(&mut dev, virt, 8);
        assert!(!dev.memory().is_virtual(like_real));
        assert!(dev.memory().is_virtual(like_virt));
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_rejected() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 8);
        pool.release(&dev, a);
        pool.release(&dev, a);
    }

    #[test]
    fn leased_and_pooled_counters_track() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 8);
        assert_eq!((pool.stats().leased, pool.stats().pooled), (1, 0));
        pool.release(&dev, a);
        assert_eq!((pool.stats().leased, pool.stats().pooled), (0, 1));
    }

    /// Regression: releasing a buffer the pool never leased used to be
    /// silently absorbed (with `leased` saturating toward zero and `pooled`
    /// inflating). It must be rejected loudly.
    #[test]
    #[should_panic(expected = "never leased from this pool")]
    fn releasing_a_foreign_buffer_is_rejected() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let foreign = dev.alloc("foreign", 32);
        pool.release(&dev, foreign);
    }

    /// Regression companion: the counters stay exact when foreign buffers
    /// enter through the explicit adoption path.
    #[test]
    fn adoption_is_explicit_and_keeps_stats_exact() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let leased = pool.acquire(&mut dev, 32);
        let foreign = dev.alloc("foreign", 32);
        pool.adopt(&dev, foreign);
        // one lease out, one adopted buffer pooled — not 0/2 or 2/0
        assert_eq!((pool.stats().leased, pool.stats().pooled), (1, 1));
        // the adopted buffer satisfies the next same-class lease
        let next = pool.acquire(&mut dev, 32);
        assert_eq!(next, foreign);
        assert_eq!(pool.stats().hits, 1);
        pool.release(&dev, leased);
        pool.release(&dev, next);
        assert_eq!((pool.stats().leased, pool.stats().pooled), (0, 2));
    }

    #[test]
    #[should_panic(expected = "adopting buffer")]
    fn double_adoption_is_rejected() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let foreign = dev.alloc("foreign", 8);
        pool.adopt(&dev, foreign);
        pool.adopt(&dev, foreign);
    }

    #[test]
    #[should_panic(expected = "currently leased")]
    fn adopting_a_leased_buffer_is_rejected() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 8);
        pool.adopt(&dev, a);
    }

    /// Retained buffers leave the lease count (a replay artifact holding
    /// scratch must not read as an outstanding lease), cannot be re-issued
    /// while retained, and re-enter circulation on restore.
    #[test]
    fn retain_restore_lifecycle() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let a = pool.acquire(&mut dev, 16);
        pool.retain(a);
        assert_eq!(
            (pool.stats().leased, pool.stats().retained, pool.stats().pooled),
            (0, 1, 0)
        );
        // a retained id is out of circulation: a same-class lease allocates
        let b = pool.acquire(&mut dev, 16);
        assert_ne!(a, b);
        pool.restore(&dev, a);
        assert_eq!(
            (pool.stats().leased, pool.stats().retained, pool.stats().pooled),
            (1, 0, 1)
        );
        // ...and a restored id satisfies the next lease again
        let c = pool.acquire(&mut dev, 16);
        assert_eq!(c, a);
    }

    #[test]
    #[should_panic(expected = "not currently leased")]
    fn retaining_an_unleased_buffer_is_rejected() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        let foreign = dev.alloc("foreign", 8);
        pool.retain(foreign);
    }

    #[test]
    fn pool_generations_are_unique_per_instance() {
        assert_ne!(BufferPool::new().generation(), BufferPool::new().generation());
    }

    /// Regression: a shape-diverse serving loop must not grow the free map
    /// by one empty `Vec` per size class ever seen — emptied classes are
    /// pruned, so the map tracks *pooled buffers*, not history.
    #[test]
    fn empty_size_classes_are_pruned() {
        let mut dev = SimBackend::a100();
        let mut pool = BufferPool::new();
        for len in (1..=64).map(|i| i * 17) {
            let a = pool.acquire(&mut dev, len);
            pool.release(&dev, a);
            let b = pool.acquire(&mut dev, len); // re-lease empties the class
            assert_eq!(a, b);
            assert_eq!(
                pool.size_classes(),
                0,
                "emptied class for len {len} must be pruned"
            );
            pool.release(&dev, b);
            assert_eq!(pool.size_classes(), 1);
            let _ = pool.acquire(&mut dev, len);
        }
        assert_eq!(pool.size_classes(), 0);
        assert_eq!(pool.stats().leased, 64, "every final lease is live");
    }
}
