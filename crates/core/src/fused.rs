//! The fused FFT–CGEMM–iFFT kernels (paper §4, Figs. 6 and 9 right).
//!
//! One generic kernel implements all three fusion levels via two flags:
//!
//! * `fuse_fft` — the CGEMM `A` operand is produced *inside* the k-loop by
//!   the forward FFT writing its truncated output straight into the `As`
//!   shared tile (§4.1). With it off, `A` is read from global memory (the
//!   separate-FFT variants).
//! * `fuse_ifft` — the inverse FFT runs as a CGEMM epilogue: the `C`
//!   accumulators are staged into shared memory (with the Fig. 8 swizzle)
//!   and transformed in place, writing final spatial-domain rows to global
//!   memory (§4.2). With it off, `C` is stored to global memory.
//!
//! The geometry of the surrounding tensor (1D layer or the second stage of
//! a 2D layer) is abstracted by [`FusedGeometry`].
//!
//! Key structural constraint inherited from the paper's configuration: the
//! block's `m_tb` equals the retained mode count (`N = 64/128` in Table 1's
//! evaluation), so each block owns a complete mode pencil and no butterfly
//! work crosses blocks.

use crate::swizzle::{EpilogueStaging, ForwardLayout};
use std::hash::Hash;
use tfno_cgemm::{
    view_spans, AProvider, BOperand, CFragments, CgemmBlockEngine, MatView, TileConfig,
    WeightStacking,
};
use tfno_fft::{FftBlockEngine, FftIo, FftPlan, InstanceOrder, PencilTarget, TraceCache};
use tfno_gpu_sim::{
    structural_fingerprint, AccessSpan, BlockCtx, BufferId, Kernel, KernelAccess, LaunchDims,
    WarpIdx, WARP_SIZE,
};
use tfno_num::{C32, C32_BYTES};

/// Pencils per FFT batch inside the fused kernel — Table 1's `bs = 8`,
/// chosen to equal the CGEMM `k_tb`.
pub const FUSED_FFT_BS: usize = 8;

/// log2 of the per-thread FFT size for a given signal length (Table 1's
/// `n_1 = 8` / `n_2 = 16` scaling), for the engine's register grouping.
fn reg_bits_for(n: usize) -> usize {
    tfno_fft::FftBlockConfig::for_len(n)
        .n_thread
        .max(1)
        .trailing_zeros() as usize
}

/// Tensor geometry seen by the fused kernel.
pub trait FusedGeometry: Sync {
    /// Blocks along the non-tiled axes (batch for 1D; batch x nfy for 2D).
    fn outer_blocks(&self) -> usize;
    /// Batch index of an `outer` block — the axis stacked weight slices
    /// are grouped along.
    fn outer_batch(&self, outer: usize) -> usize;
    fn k_in(&self) -> usize;
    fn k_out(&self) -> usize;
    /// Length of the fused FFT (spatial extent along the transformed axis).
    fn fft_len(&self) -> usize;
    /// Retained modes along the transformed axis (= the tile's `m_tb`).
    fn modes(&self) -> usize;
    /// Element address of FFT input `(outer, hidden k, spatial idx)`.
    fn x_addr(&self, outer: usize, k: usize, idx: usize) -> usize;
    /// `A` view when the forward FFT is *not* fused (reads pre-truncated
    /// modes): `view.at(m, k_global)`.
    fn a_view(&self, outer: usize) -> MatView;
    /// `C` view when the inverse FFT is *not* fused (stores truncated
    /// modes): `view.at(m, n_local)`, already offset to channel `n0`.
    fn c_view(&self, outer: usize, n0: usize) -> MatView;
    /// Element address of iFFT output `(outer, channel, spatial idx)`.
    fn y_addr(&self, outer: usize, ch: usize, idx: usize) -> usize;

    /// Equivalence classes of `outer` indices whose blocks issue identical
    /// access *patterns* (same sector/bank counts). Geometries whose
    /// addresses shift by non-sector-aligned amounts across `outer` must
    /// split classes by alignment phase.
    fn outer_classes(&self) -> Vec<(usize, u64)> {
        vec![(0, self.outer_blocks() as u64)]
    }

    /// Phase-serialization factors `(fully_fused, single_fusion)` for the
    /// cost model. 2D fused kernels overlap worse than 1D ones: their
    /// per-outer working set (one fx slice) is smaller, so the k-loop's
    /// FFT/MAC dependency chain leaves less independent work in flight —
    /// consistent with the paper's near-zero 2D fusion gains (§5.2 B.2).
    fn serialization(&self) -> (f64, f64) {
        (0.40, 0.30)
    }

    /// Structural hash of the geometry for the analytical launch memo:
    /// must cover every field that shapes the kernel's addresses.
    fn fingerprint(&self) -> u64;
}

/// Rank-generic fused-middle geometry (`[batch, k, outer modes..., n]`
/// tensors): the ONE geometry every rank shares.
///
/// The paper keeps the FFT stages along strided outer axes as standalone
/// kernels and fuses only the *innermost, contiguous* axis — that is what
/// makes the k-loop-ordered loads of the fused kernel coalesced
/// (§2.3 / Fig. 6). By the time the fused middle runs, all outer axes are
/// already truncated to their retained modes, so the only geometry the
/// kernel needs is the product of those outer modes (`outer_modes`, 1 for
/// rank 1) plus the innermost extent/mode pair:
///
/// * rank 1: input `[batch, k, n]`, `outer_modes = 1`;
/// * rank 2: input `[batch, k, nfx, ny]`, `outer_modes = nfx`;
/// * rank 3: input `[batch, k, nfx, nfy, nz]`, `outer_modes = nfx * nfy`.
///
/// Output is either truncated modes (`m_inner` per pencil) or the restored
/// innermost axis (`n_inner`) when the inverse stage is fused too.
#[derive(Clone, Copy, Debug)]
pub struct GeomNd {
    pub batch: usize,
    pub k_in: usize,
    pub k_out: usize,
    /// Spatial rank of the surrounding layer (serialization lookup only —
    /// the addressing is fully determined by the other fields).
    pub rank: usize,
    /// Spatial extent of the fused (innermost, contiguous) axis.
    pub n_inner: usize,
    /// Retained modes along the fused axis (= the tile's `m_tb`).
    pub m_inner: usize,
    /// Product of the retained modes of every already-transformed outer
    /// axis (1 for rank 1).
    pub outer_modes: usize,
}

impl GeomNd {
    /// The fused-middle geometry of a [`tfno_culib::SpectralShape`].
    pub fn from_shape(s: &tfno_culib::SpectralShape) -> Self {
        GeomNd {
            batch: s.batch,
            k_in: s.k_in,
            k_out: s.k_out,
            rank: s.rank,
            n_inner: s.dims[s.rank - 1],
            m_inner: s.modes[s.rank - 1],
            outer_modes: s.outer_modes(),
        }
    }

    fn split(&self, outer: usize) -> (usize, usize) {
        (outer / self.outer_modes, outer % self.outer_modes)
    }

    /// Product of retained modes across ALL axes (the CGEMM column
    /// stride of the packed spectral tensors).
    fn modes_total(&self) -> usize {
        self.outer_modes * self.m_inner
    }
}

impl FusedGeometry for GeomNd {
    fn outer_blocks(&self) -> usize {
        self.batch * self.outer_modes
    }
    fn outer_batch(&self, outer: usize) -> usize {
        self.split(outer).0
    }
    fn k_in(&self) -> usize {
        self.k_in
    }
    fn k_out(&self) -> usize {
        self.k_out
    }
    fn fft_len(&self) -> usize {
        self.n_inner
    }
    fn modes(&self) -> usize {
        self.m_inner
    }
    fn x_addr(&self, outer: usize, k: usize, idx: usize) -> usize {
        let (b, f) = self.split(outer);
        ((b * self.k_in + k) * self.outer_modes + f) * self.n_inner + idx
    }
    fn a_view(&self, outer: usize) -> MatView {
        let (b, f) = self.split(outer);
        MatView {
            base: (b * self.k_in * self.outer_modes + f) * self.m_inner,
            row_stride: 1,
            col_stride: self.modes_total(),
        }
    }
    fn c_view(&self, outer: usize, n0: usize) -> MatView {
        let (b, f) = self.split(outer);
        MatView {
            base: ((b * self.k_out + n0) * self.outer_modes + f) * self.m_inner,
            row_stride: 1,
            col_stride: self.modes_total(),
        }
    }
    fn y_addr(&self, outer: usize, ch: usize, idx: usize) -> usize {
        let (b, f) = self.split(outer);
        ((b * self.k_out + ch) * self.outer_modes + f) * self.n_inner + idx
    }

    fn serialization(&self) -> (f64, f64) {
        // Higher ranks overlap worse: the per-outer working set (one outer
        // mode slice) shrinks as the outer-mode product grows, so the
        // k-loop's FFT/MAC dependency chain leaves less independent work in
        // flight — consistent with the paper's near-zero 2D fusion gains
        // (§5.2 B.2); rank 3 extrapolates that trend.
        match self.rank {
            1 => (0.40, 0.30),
            2 => (0.85, 0.65),
            _ => (0.90, 0.70),
        }
    }

    fn fingerprint(&self) -> u64 {
        structural_fingerprint("fused.geomnd", |h| {
            self.batch.hash(h);
            self.k_in.hash(h);
            self.k_out.hash(h);
            self.rank.hash(h);
            self.n_inner.hash(h);
            self.m_inner.hash(h);
            self.outer_modes.hash(h);
        })
    }

    fn outer_classes(&self) -> Vec<(usize, u64)> {
        // Every base address is a multiple of m_inner / n_inner elements;
        // with m_inner % 4 == 0 all outers share one sector-alignment
        // phase (rank 1 always does: its only outer-mode index is 0).
        if self.m_inner.is_multiple_of(4) {
            return vec![(0, self.outer_blocks() as u64)];
        }
        // Group outers by the sector phase of their base addresses.
        let mut rep: [Option<usize>; 4] = [None; 4];
        let mut count = [0u64; 4];
        for f in 0..self.outer_modes {
            let ph = (f * self.m_inner) % 4;
            if rep[ph].is_none() {
                rep[ph] = Some(f);
            }
            count[ph] += 1;
        }
        (0..4)
            .filter_map(|ph| rep[ph].map(|r| (r, count[ph] * self.batch as u64)))
            .collect()
    }
}

/// The fused kernel (variants B, C and D of the evaluation).
pub struct FusedKernel<G: FusedGeometry> {
    pub name: String,
    pub geom: G,
    pub fuse_fft: bool,
    pub fuse_ifft: bool,
    pub tile: TileConfig,
    pub fwd_plan: FftPlan,
    pub inv_plan: FftPlan,
    /// `x` (fused FFT) or pre-truncated modes (separate FFT).
    pub input: BufferId,
    /// Weights `[k_in, k_out]` row-major — one slice, or a
    /// `weights`-strided stack of them.
    pub w: BufferId,
    /// How `w` advances across the batch axis ([`WeightStacking::SHARED`]
    /// unless the kernel serves a coalesced mixed-weight stack).
    pub weights: WeightStacking,
    /// `y` rows (fused iFFT) or truncated modes (separate iFFT).
    pub output: BufferId,
    pub forward_layout: ForwardLayout,
    pub epilogue_swizzle: bool,
    pub l1_hit_rate: f64,
    /// Butterfly schedules of the fused forward / inverse FFT stages,
    /// shared across blocks and k-iterations of a launch.
    fwd_traces: TraceCache,
    inv_traces: TraceCache,
}

impl<G: FusedGeometry> FusedKernel<G> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        geom: G,
        fuse_fft: bool,
        fuse_ifft: bool,
        n_tb: usize,
        input: BufferId,
        w: BufferId,
        output: BufferId,
        l1_hit_rate: f64,
    ) -> Self {
        assert!(fuse_fft || fuse_ifft, "use BatchedCgemmKernel when nothing is fused");
        let modes = geom.modes();
        assert!(
            modes.is_multiple_of(32),
            "fused kernels need the retained mode count ({modes}) to be a multiple of the warp M-tile"
        );
        let tile = TileConfig::for_fused(modes, n_tb);
        tile.validate();
        let n = geom.fft_len();
        let fwd_plan = FftPlan::new(n, tfno_fft::FftDirection::Forward, n, modes);
        let inv_plan = FftPlan::new(n, tfno_fft::FftDirection::Inverse, modes, n);
        FusedKernel {
            name: name.into(),
            geom,
            fuse_fft,
            fuse_ifft,
            tile,
            fwd_plan,
            inv_plan,
            input,
            w,
            weights: WeightStacking::SHARED,
            output,
            forward_layout: ForwardLayout::TurboContiguous,
            epilogue_swizzle: true,
            l1_hit_rate,
            fwd_traces: TraceCache::new(),
            inv_traces: TraceCache::new(),
        }
    }

    pub fn with_forward_layout(mut self, layout: ForwardLayout) -> Self {
        self.forward_layout = layout;
        self
    }

    pub fn with_epilogue_swizzle(mut self, on: bool) -> Self {
        self.epilogue_swizzle = on;
        self
    }

    /// Serve a coalesced stack: `w` holds one `[k_in, k_out]` slice per
    /// `ws.group` batch entries, `ws.stride` elements apart.
    pub fn with_weight_stacking(mut self, ws: WeightStacking) -> Self {
        self.weights = ws;
        self
    }

    /// `B` view of the weight slice an `outer` block reads, shifted to
    /// channel tile `n0`.
    fn w_view(&self, outer: usize, n0: usize) -> MatView {
        let base = self.weights.slice_base(self.geom.outer_batch(outer));
        MatView::row_major(base, self.geom.k_out()).tile(0, n0)
    }

    fn n_tiles(&self) -> usize {
        self.geom.k_out().div_ceil(self.tile.n_tb)
    }

    fn grid(&self) -> usize {
        self.geom.outer_blocks() * self.n_tiles()
    }

    fn staging(&self) -> EpilogueStaging {
        EpilogueStaging {
            ms: self.tile.m_tb,
            swizzled: self.epilogue_swizzle,
        }
    }

    /// Shared-memory layout: [GEMM tiles][FFT ping/pong][epilogue staging].
    fn shared_layout(&self) -> (usize, usize, usize) {
        let engine = CgemmBlockEngine {
            tile: self.tile,
            k_total: self.geom.k_in(),
        };
        let gemm = if self.fuse_fft {
            engine.shared_elems_custom_a()
        } else {
            engine.shared_elems()
        };
        let fft_base = gemm;
        let fft = if self.fuse_fft || self.fuse_ifft {
            FftBlockEngine::staging_elems(self.geom.fft_len(), FUSED_FFT_BS)
        } else {
            0
        };
        let staging_base = fft_base + fft;
        let staging = if self.fuse_ifft {
            self.staging().elems(FUSED_FFT_BS)
        } else {
            0
        };
        (fft_base, staging_base, staging_base + staging)
    }
}

impl<G: FusedGeometry> Kernel for FusedKernel<G> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn dims(&self) -> LaunchDims {
        let (_, _, total_elems) = self.shared_layout();
        // Blend the dataflow-dependent hit rate of the bulk loads with the
        // near-perfect reuse of the weight matrix (every block re-reads the
        // same [k_in, n_tb] tiles; only the first read misses L2).
        let g = &self.geom;
        let bulk_bytes = if self.fuse_fft {
            self.grid() * FUSED_FFT_BS * g.fft_len() * C32_BYTES * g.k_in().div_ceil(FUSED_FFT_BS)
        } else {
            self.grid() * g.modes() * g.k_in() * C32_BYTES
        } as f64;
        let w_bytes = (self.grid() * g.k_in() * self.tile.n_tb * C32_BYTES) as f64;
        let blended = (bulk_bytes * self.l1_hit_rate + w_bytes * 0.95) / (bulk_bytes + w_bytes);
        // Fusion serializes its sync-separated FFT / MAC / epilogue phases
        // against each other far more than a homogeneous streaming kernel.
        let (serial_full, serial_single) = self.geom.serialization();
        let serial = if self.fuse_fft && self.fuse_ifft {
            serial_full
        } else {
            serial_single
        };
        LaunchDims::new(self.grid(), self.tile.threads() as u32)
            .with_shared(total_elems * C32_BYTES)
            .with_regs(self.tile.regs_per_thread() + 16)
            .with_l1_hit_rate(blended)
            .with_serialization(serial)
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_>) {
        let geom = &self.geom;
        let tile = self.tile;
        let (fft_base, staging_base, _) = self.shared_layout();
        let outer = block_id / self.n_tiles();
        let ntile = block_id % self.n_tiles();
        let n0 = ntile * tile.n_tb;
        let active_n = tile.n_tb.min(geom.k_out() - n0);
        let ms = tile.m_tb;
        let n_len = geom.fft_len();

        let engine = CgemmBlockEngine {
            tile,
            k_total: geom.k_in(),
        };

        // ---- main loop with either a fused-FFT A provider or global A ----
        let frags: CFragments = if self.fuse_fft {
            let fwd_plan = &self.fwd_plan;
            let order = match self.forward_layout {
                ForwardLayout::TurboContiguous => InstanceOrder::IdxFastest,
                ForwardLayout::VkFftStrided => InstanceOrder::PencilFastest,
            };
            let input = self.input;
            let k_in = geom.k_in();
            let fwd_traces = &self.fwd_traces;
            let mut provider_fn = |ctx: &mut BlockCtx<'_>, k0: usize, as_buf: usize| {
                let active_p = FUSED_FFT_BS.min(k_in - k0);
                let fft = FftBlockEngine {
                    plan: fwd_plan,
                    active_pencils: active_p,
                    bs_layout: FUSED_FFT_BS,
                    ping_base: fft_base,
                    pong_base: fft_base + n_len * FUSED_FFT_BS,
                    reg_group_bits: reg_bits_for(n_len),
                };
                let in_addr = |p: usize, idx: usize| geom.x_addr(outer, k0 + p, idx);
                let out_addr = |p: usize, m: usize| as_buf + p * ms + m;
                let io = FftIo::new(
                    PencilTarget::Global {
                        buf: input,
                        addr: &in_addr,
                    },
                    PencilTarget::Shared { addr: &out_addr },
                )
                .with_output_order(order);
                if ctx.legacy_mode() {
                    fft.run(ctx, &io);
                } else {
                    let trace = fwd_traces.get(&fft);
                    fft.run_traced(ctx, &io, &trace);
                }
                ctx.syncthreads();
            };
            let mut a = AProvider::Custom(&mut provider_fn);
            let b = BOperand {
                buf: self.w,
                view: self.w_view(outer, n0),
            };
            engine.run_mainloop(ctx, &mut a, &b, ms, active_n, 0)
        } else {
            let mut a = AProvider::Global {
                buf: self.input,
                view: geom.a_view(outer),
            };
            let b = BOperand {
                buf: self.w,
                view: self.w_view(outer, n0),
            };
            engine.run_mainloop(ctx, &mut a, &b, ms, active_n, 0)
        };

        // ---- epilogue ----
        if self.fuse_ifft {
            let staging = self.staging();
            let groups = active_n.div_ceil(FUSED_FFT_BS);
            for g in 0..groups {
                let ch0 = g * FUSED_FFT_BS;
                let chs = FUSED_FFT_BS.min(active_n - ch0);

                // Stage the group's C fragments into shared memory with the
                // Fig. 8 access pattern.
                for w in 0..tile.warps() {
                    for i in 0..tile.m_t {
                        for j in 0..tile.n_t {
                            let lane_mn = |l: usize| {
                                let tid = w * WARP_SIZE + l;
                                let (m0, nloc0) = CFragments::thread_origin(&tile, tid);
                                let (m, n) = (m0 + i, nloc0 + j);
                                (n >= ch0 && n < ch0 + chs).then_some((m, n))
                            };
                            let idx = WarpIdx::from_fn(|l| {
                                lane_mn(l).map(|(m, n)| staging_base + staging.addr(m, n - ch0))
                            });
                            if idx.active_lanes() == 0 {
                                continue;
                            }
                            let mut vals = [C32::ZERO; WARP_SIZE];
                            for l in 0..WARP_SIZE {
                                if lane_mn(l).is_some() {
                                    vals[l] = frags.get(w * WARP_SIZE + l, i, j);
                                }
                            }
                            ctx.shared_store(&idx, &vals);
                        }
                    }
                }
                ctx.syncthreads();

                // Inverse FFT of the staged channels, writing spatial rows.
                let ifft = FftBlockEngine {
                    plan: &self.inv_plan,
                    active_pencils: chs,
                    bs_layout: FUSED_FFT_BS,
                    ping_base: fft_base,
                    pong_base: fft_base + n_len * FUSED_FFT_BS,
                    reg_group_bits: reg_bits_for(n_len),
                };
                let in_addr = |p: usize, m: usize| staging_base + staging.addr(m, p);
                let out_addr = |p: usize, t: usize| geom.y_addr(outer, n0 + ch0 + p, t);
                let io = FftIo::new(
                    PencilTarget::Shared { addr: &in_addr },
                    PencilTarget::Global {
                        buf: self.output,
                        addr: &out_addr,
                    },
                )
                .with_input_order(InstanceOrder::IdxFastest);
                if ctx.legacy_mode() {
                    ifft.run(ctx, &io);
                } else {
                    let trace = self.inv_traces.get(&ifft);
                    ifft.run_traced(ctx, &io, &trace);
                }
                ctx.syncthreads();
            }
        } else {
            let c_view = geom.c_view(outer, n0);
            tfno_cgemm::store_c_global(
                ctx,
                &frags,
                self.output,
                &c_view,
                ms,
                active_n,
                C32::ONE,
                C32::ZERO,
            );
        }
    }

    fn access(&self) -> Option<KernelAccess> {
        let geom = &self.geom;
        let ms = self.tile.m_tb;
        // Both geometries are contiguous along the fused axis, but probe
        // the stride instead of assuming it so a future strided geometry
        // cannot silently break the exactness contract.
        let pencil = |buf: BufferId, base: usize, stride: usize, len: usize| {
            if stride == 1 {
                AccessSpan::contiguous(buf, base, len)
            } else {
                AccessSpan::strided(buf, base, 1, stride, len)
            }
        };
        let mut acc = KernelAccess::new();
        for block_id in 0..self.grid() {
            let outer = block_id / self.n_tiles();
            let ntile = block_id % self.n_tiles();
            let n0 = ntile * self.tile.n_tb;
            let active_n = self.tile.n_tb.min(geom.k_out() - n0);
            if self.fuse_fft {
                let len = self.fwd_plan.n_in_valid;
                for k in 0..geom.k_in() {
                    let base = geom.x_addr(outer, k, 0);
                    let stride = if len > 1 {
                        geom.x_addr(outer, k, 1) - base
                    } else {
                        1
                    };
                    acc.read(pencil(self.input, base, stride, len));
                }
            } else {
                for s in view_spans(self.input, &geom.a_view(outer), ms, geom.k_in()) {
                    acc.read(s);
                }
            }
            for s in view_spans(self.w, &self.w_view(outer, n0), geom.k_in(), active_n) {
                acc.read(s);
            }
            if self.fuse_ifft {
                let len = self.inv_plan.n_out_keep;
                for ch in 0..active_n {
                    let base = geom.y_addr(outer, n0 + ch, 0);
                    let stride = if len > 1 {
                        geom.y_addr(outer, n0 + ch, 1) - base
                    } else {
                        1
                    };
                    acc.write(block_id, pencil(self.output, base, stride, len));
                }
            } else {
                for s in view_spans(self.output, &geom.c_view(outer, n0), ms, active_n) {
                    acc.write(block_id, s);
                }
            }
        }
        Some(acc)
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(structural_fingerprint("fused.kernel", |h| {
            self.geom.fingerprint().hash(h);
            self.fuse_fft.hash(h);
            self.fuse_ifft.hash(h);
            self.tile.hash(h);
            for plan in [&self.fwd_plan, &self.inv_plan] {
                plan.n.hash(h);
                plan.n_in_valid.hash(h);
                plan.n_out_keep.hash(h);
            }
            self.forward_layout.hash(h);
            self.epilogue_swizzle.hash(h);
            self.weights.hash(h);
            self.l1_hit_rate.to_bits().hash(h);
        }))
    }

    fn block_classes(&self) -> Vec<(usize, u64)> {
        let nt = self.n_tiles();
        let ntile_classes: Vec<(usize, u64)> =
            if self.geom.k_out().is_multiple_of(self.tile.n_tb) || nt == 1 {
                vec![(0, nt as u64)]
            } else {
                vec![(0, nt as u64 - 1), (nt - 1, 1)]
            };
        // Stacked weight slices whose stride is not sector-aligned give
        // each outer its own weight-base phase; fall back to enumerating
        // outers rather than reusing one representative's sector counts.
        let outer_classes = if !self.weights.is_shared() && !self.weights.stride.is_multiple_of(4) {
            (0..self.geom.outer_blocks()).map(|o| (o, 1)).collect()
        } else {
            self.geom.outer_classes()
        };
        let mut classes = Vec::new();
        for (outer_rep, outer_count) in outer_classes {
            for &(nt_rep, nt_count) in &ntile_classes {
                classes.push((outer_rep * nt + nt_rep, outer_count * nt_count));
            }
        }
        classes
    }
}
