//! Static launch-plan verifier (`tfno-verify` level 1).
//!
//! Every kernel in the suite declares its global-memory footprint through
//! [`Kernel::access`] — per-buffer read spans plus per-block write
//! partitions (declared in the simulator's access module). [`PlanVerifier`] consumes
//! those declarations to *prove*, without executing a block, that a
//! launch plan is hazard-free:
//!
//! * **Block-write disjointness** — no two blocks of one launch write the
//!   same element (the static counterpart of the device's journal-time
//!   `validate_writes`, caught before the launch instead of after).
//! * **Deferred-window ordering** — a launch issued while deferred
//!   launches are pending must not read (RAW) or write (WAW) elements a
//!   still-pending launch will write: deferred blocks execute at issue
//!   against current memory, but their writes journal in and apply at
//!   [`Backend::complete`] time, so such a plan
//!   observes stale data or loses writes.
//! * **Lease discipline** — every pool lease a sequence takes is released
//!   exactly once, and no launch touches a buffer after its release.
//! * **Replay-tape validity** — at freeze time a tape references only
//!   scratch that is still alive (about to be retained) and was leased
//!   from the pool generation the tape recorded ([`check_tape`]).
//!
//! The declared access sets are exact, so the verifier holds a zero
//! false-positive contract: a plan the engine would execute correctly is
//! never rejected (`tests/verify.rs` pins this across every variant and
//! the mutation suite).
//!
//! Verification runs by default in debug builds; `TFNO_VERIFY=1` forces
//! it on in release, `TFNO_VERIFY=0` forces it off, and
//! [`set_verify_override`] takes precedence over both (the env var is
//! read once per process).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::error::TfnoError;
use crate::pool::BufferPool;
use crate::backend::{
    lock_unpoisoned, merge_runs, runs_overlap, Backend, BufferId, Kernel, KernelAccess,
    LaunchError,
};

/// A provable defect in a launch plan. Each variant is one hazard class
/// the verifier detects; `Display` produces the human-readable reason
/// embedded in [`TfnoError::Validation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanHazard {
    /// Two blocks of one launch write overlapping elements.
    BlockWriteOverlap { kernel: String, buf: String },
    /// A declared read span ends past the end of its buffer.
    ReadOutOfBounds {
        kernel: String,
        buf: String,
        end: usize,
        len: usize,
    },
    /// A declared write span ends past the end of its buffer.
    WriteOutOfBounds {
        kernel: String,
        buf: String,
        end: usize,
        len: usize,
    },
    /// The launch reads elements a still-pending deferred launch writes:
    /// it would observe pre-write (stale) data.
    RawHazard {
        kernel: String,
        pending: String,
        buf: String,
    },
    /// The launch writes elements a still-pending deferred launch writes:
    /// the pending journal would clobber them on completion.
    WawHazard {
        kernel: String,
        pending: String,
        buf: String,
    },
    /// The launch touches a buffer after its pool lease was released.
    UseAfterRelease { kernel: String, buf: String },
    /// A lease was released twice.
    DoubleRelease { buf: String },
    /// A release of a buffer the sequence never acquired.
    ReleaseUnleased { buf: String },
    /// The sequence finished with leases still outstanding.
    UnreleasedLease { count: usize },
    /// A frozen tape step references a pool buffer that was released back
    /// to the free lists (a replay would read/write recycled scratch).
    TapeUnretainedScratch { step: String, buf: String },
    /// A tape's scratch list names a buffer that is not leased from the
    /// pool at freeze time, so it cannot be retained.
    TapeScratchNotLeased { buf: String },
    /// A tape recorded against a different pool generation than the one
    /// it is being frozen against: its buffer ids are meaningless.
    StaleGeneration { recorded: u64, current: u64 },
    /// A queued request's output aliases one of its own operands.
    SelfAlias { index: usize, operand: String },
    /// A queued request's output is an operand (or the output) of another
    /// request in the same group-reordered queue.
    CrossAlias { writer: usize, reader: usize },
}

impl fmt::Display for PlanHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanHazard::BlockWriteOverlap { kernel, buf } => write!(
                f,
                "blocks of kernel '{kernel}' write overlapping elements of {buf}"
            ),
            PlanHazard::ReadOutOfBounds {
                kernel,
                buf,
                end,
                len,
            } => write!(
                f,
                "kernel '{kernel}' reads {buf} up to element {end} but the buffer holds {len}"
            ),
            PlanHazard::WriteOutOfBounds {
                kernel,
                buf,
                end,
                len,
            } => write!(
                f,
                "kernel '{kernel}' writes {buf} up to element {end} but the buffer holds {len}"
            ),
            PlanHazard::RawHazard {
                kernel,
                pending,
                buf,
            } => write!(
                f,
                "kernel '{kernel}' reads elements of {buf} that pending deferred launch \
                 '{pending}' writes (stale read: deferred writes apply at completion)"
            ),
            PlanHazard::WawHazard {
                kernel,
                pending,
                buf,
            } => write!(
                f,
                "kernel '{kernel}' writes elements of {buf} that pending deferred launch \
                 '{pending}' also writes (the pending journal would clobber them)"
            ),
            PlanHazard::UseAfterRelease { kernel, buf } => write!(
                f,
                "kernel '{kernel}' touches {buf} after its pool lease was released"
            ),
            PlanHazard::DoubleRelease { buf } => {
                write!(f, "lease of {buf} released twice")
            }
            PlanHazard::ReleaseUnleased { buf } => {
                write!(f, "release of {buf}, which this sequence never acquired")
            }
            PlanHazard::UnreleasedLease { count } => {
                write!(f, "sequence finished with {count} unreleased pool lease(s)")
            }
            PlanHazard::TapeUnretainedScratch { step, buf } => write!(
                f,
                "replay tape step '{step}' references pool buffer {buf}, which was \
                 released back to the free lists"
            ),
            PlanHazard::TapeScratchNotLeased { buf } => write!(
                f,
                "replay tape scratch {buf} is not leased from the pool at freeze time"
            ),
            PlanHazard::StaleGeneration { recorded, current } => write!(
                f,
                "replay tape recorded against pool generation {recorded} but is frozen \
                 against generation {current}"
            ),
            PlanHazard::SelfAlias { index, operand } => {
                write!(f, "request {index} is self-aliased (y == {operand})")
            }
            PlanHazard::CrossAlias { writer, reader } => write!(
                f,
                "request {writer}'s output is an operand of request {reader}"
            ),
        }
    }
}

impl From<PlanHazard> for TfnoError {
    fn from(h: PlanHazard) -> Self {
        TfnoError::Validation(format!("plan verifier: {h}"))
    }
}

impl PlanHazard {
    /// Wrap the hazard in the device-level typed error for a specific
    /// kernel, which [`From<LaunchError>`](TfnoError) then surfaces as
    /// [`TfnoError::Validation`] — one conversion path for every choke
    /// point that has a kernel in hand.
    pub fn rejecting(self, kernel: &dyn Kernel) -> TfnoError {
        LaunchError::PlanRejected {
            kernel: kernel.name(),
            reason: self.to_string(),
        }
        .into()
    }
}

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

/// Programmatic override: 0 = none, 1 = forced off, 2 = forced on.
static VERIFY_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force verification on/off for this process (`Some(true)` / `Some(false)`)
/// or restore the environment/default policy (`None`). Takes precedence
/// over `TFNO_VERIFY` and build profile — the bench harness and the
/// on-vs-off equivalence tests toggle within one process, where the
/// env var has already been cached.
pub fn set_verify_override(v: Option<bool>) {
    let raw = match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    VERIFY_OVERRIDE.store(raw, Ordering::Relaxed);
}

/// Should launch plans be verified? Override > `TFNO_VERIFY` env
/// (`1` on, `0` off; read once per process) > on in debug builds.
pub fn verifier_enabled() -> bool {
    match VERIFY_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<Option<bool>> = OnceLock::new();
            let env = ENV.get_or_init(|| match std::env::var("TFNO_VERIFY").as_deref() {
                Ok("1") => Some(true),
                Ok("0") => Some(false),
                _ => None,
            });
            env.unwrap_or(cfg!(debug_assertions))
        }
    }
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

/// Merged, pending (journaled but not yet applied) writes of one deferred
/// launch.
#[derive(Debug)]
struct PendingWrites {
    kernel: String,
    writes: HashMap<BufferId, Vec<(usize, usize)>>,
}

/// Tracks one execution sequence (an `ExecCtx` lifetime or a queue
/// window) and proves each launch hazard-free before it issues.
///
/// The verifier mirrors the engine's ordering semantics exactly: deferred
/// blocks *execute at issue* (reads see current memory) while their
/// writes journal in and apply at completion — so only pending **writes**
/// participate in hazard tracking, and completing a deferred launch
/// ([`complete_oldest`](PlanVerifier::complete_oldest)) retires its
/// window.
#[derive(Debug, Default)]
pub struct PlanVerifier {
    pending: VecDeque<PendingWrites>,
    leased: HashSet<BufferId>,
    released: HashSet<BufferId>,
}

/// Process-wide memo of write-partition disjointness proofs, keyed by
/// kernel fingerprint + write-buffer aliasing pattern (success only).
/// Disjointness is a pure function of that key: fingerprints are invariant
/// under buffer ids by convention, so the aliasing pattern (which write
/// spans share a buffer) is folded in to keep the memo sound for
/// multi-output kernels like the segmented copy.
fn disjoint_memo() -> &'static Mutex<HashSet<u64>> {
    static MEMO: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashSet::new()))
}

fn disjoint_key(kernel: &dyn Kernel, access: &KernelAccess) -> Option<u64> {
    let fp = kernel.fingerprint()?;
    let mut h = DefaultHasher::new();
    fp.hash(&mut h);
    let mut labels: HashMap<BufferId, usize> = HashMap::new();
    for span in access.write_spans() {
        let next = labels.len();
        (*labels.entry(span.buf).or_insert(next)).hash(&mut h);
    }
    Some(h.finish())
}

impl PlanVerifier {
    pub fn new() -> Self {
        Self::default()
    }

    /// Note a pool lease taken by this sequence. Re-acquiring a buffer
    /// that was released earlier in the sequence (pool recycling) makes
    /// it live again.
    pub fn acquire(&mut self, buf: BufferId) {
        self.released.remove(&buf);
        self.leased.insert(buf);
    }

    /// Note a lease whose release was deferred past this sequence (a
    /// recording tape retaining its scratch): the sequence's balance no
    /// longer owes a release, but the buffer stays live — later launches
    /// may still reference it.
    pub fn transfer(&mut self, buf: BufferId) {
        self.leased.remove(&buf);
    }

    /// Note a lease release. Rejects double releases and releases of
    /// buffers this sequence never acquired.
    pub fn release(&mut self, buf: BufferId) -> Result<(), PlanHazard> {
        if self.released.contains(&buf) {
            return Err(PlanHazard::DoubleRelease {
                buf: format!("{buf:?}"),
            });
        }
        if !self.leased.remove(&buf) {
            return Err(PlanHazard::ReleaseUnleased {
                buf: format!("{buf:?}"),
            });
        }
        self.released.insert(buf);
        Ok(())
    }

    /// Prove a synchronous launch safe against the current window. The
    /// launch executes and completes immediately, so nothing is added to
    /// the pending set.
    pub fn check_launch(&mut self, dev: &dyn Backend, kernel: &dyn Kernel) -> Result<(), PlanHazard> {
        if let Some(access) = kernel.access() {
            self.check_access(dev, kernel, &access)?;
        }
        Ok(())
    }

    /// Prove a deferred launch safe, then track its writes as pending
    /// until [`complete_oldest`](PlanVerifier::complete_oldest) retires
    /// them.
    pub fn check_deferred(
        &mut self,
        dev: &dyn Backend,
        kernel: &dyn Kernel,
    ) -> Result<(), PlanHazard> {
        let Some(access) = kernel.access() else {
            // Opaque kernels cannot be tracked; skip permissively (they
            // also skip the sync checks).
            return Ok(());
        };
        self.check_access(dev, kernel, &access)?;
        let mut writes: HashMap<BufferId, Vec<(usize, usize)>> = HashMap::new();
        for span in access.write_spans() {
            writes.entry(span.buf).or_default().extend(span.runs());
        }
        for runs in writes.values_mut() {
            merge_runs(runs);
        }
        self.pending.push_back(PendingWrites {
            kernel: kernel.name(),
            writes,
        });
        Ok(())
    }

    /// Retire the `n` oldest pending deferred launches (their journals
    /// were applied by [`Backend::complete`]).
    pub fn complete_oldest(&mut self, n: usize) {
        for _ in 0..n {
            self.pending.pop_front();
        }
    }

    /// Deferred launches still tracked as pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drop every tracked pending window — an aborted queue run drops its
    /// deferred launches unexecuted, so a retry starts from a clean slate.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }

    /// End-of-sequence check: every lease must have been released.
    pub fn finish(&self) -> Result<(), PlanHazard> {
        if !self.leased.is_empty() {
            return Err(PlanHazard::UnreleasedLease {
                count: self.leased.len(),
            });
        }
        Ok(())
    }

    fn check_access(
        &self,
        dev: &dyn Backend,
        kernel: &dyn Kernel,
        access: &KernelAccess,
    ) -> Result<(), PlanHazard> {
        let name = |buf: BufferId| format!("'{}'", dev.memory().name(buf));

        // Bounds: cheap (O(spans)) and a precondition for everything else.
        for span in &access.reads {
            if span.end() > dev.memory().len(span.buf) {
                return Err(PlanHazard::ReadOutOfBounds {
                    kernel: kernel.name(),
                    buf: name(span.buf),
                    end: span.end(),
                    len: dev.memory().len(span.buf),
                });
            }
        }
        for span in access.write_spans() {
            if span.end() > dev.memory().len(span.buf) {
                return Err(PlanHazard::WriteOutOfBounds {
                    kernel: kernel.name(),
                    buf: name(span.buf),
                    end: span.end(),
                    len: dev.memory().len(span.buf),
                });
            }
        }

        // Use-after-release of pool leases.
        for buf in access.buffers() {
            if self.released.contains(&buf) {
                return Err(PlanHazard::UseAfterRelease {
                    kernel: kernel.name(),
                    buf: name(buf),
                });
            }
        }

        // Cross-block write disjointness, memoized per structure.
        let key = disjoint_key(kernel, access);
        let proven = key
            .map(|k| lock_unpoisoned(disjoint_memo()).contains(&k))
            .unwrap_or(false);
        if !proven {
            let mut seen: HashMap<BufferId, Vec<(usize, usize)>> = HashMap::new();
            for (_, spans) in &access.block_writes {
                let mut per_buf: HashMap<BufferId, Vec<(usize, usize)>> = HashMap::new();
                for span in spans {
                    per_buf.entry(span.buf).or_default().extend(span.runs());
                }
                for (buf, mut runs) in per_buf {
                    merge_runs(&mut runs);
                    let earlier = seen.entry(buf).or_default();
                    if runs_overlap(earlier, &runs) {
                        return Err(PlanHazard::BlockWriteOverlap {
                            kernel: kernel.name(),
                            buf: name(buf),
                        });
                    }
                    earlier.extend(runs);
                    merge_runs(earlier);
                }
            }
            if let Some(k) = key {
                lock_unpoisoned(disjoint_memo()).insert(k);
            }
        }

        // RAW / WAW against pending deferred writes. A launch issued now
        // reads current memory and (sync) applies its writes before the
        // older pending journals do — both directions are plan bugs.
        if !self.pending.is_empty() {
            let mut reads: HashMap<BufferId, Vec<(usize, usize)>> = HashMap::new();
            for span in &access.reads {
                reads.entry(span.buf).or_default().extend(span.runs());
            }
            let mut writes: HashMap<BufferId, Vec<(usize, usize)>> = HashMap::new();
            for span in access.write_spans() {
                writes.entry(span.buf).or_default().extend(span.runs());
            }
            for runs in reads.values_mut().chain(writes.values_mut()) {
                merge_runs(runs);
            }
            for p in &self.pending {
                for (buf, pending_runs) in &p.writes {
                    if let Some(r) = reads.get(buf) {
                        if runs_overlap(r, pending_runs) {
                            return Err(PlanHazard::RawHazard {
                                kernel: kernel.name(),
                                pending: p.kernel.clone(),
                                buf: name(*buf),
                            });
                        }
                    }
                    if let Some(w) = writes.get(buf) {
                        if runs_overlap(w, pending_runs) {
                            return Err(PlanHazard::WawHazard {
                                kernel: kernel.name(),
                                pending: p.kernel.clone(),
                                buf: name(*buf),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Queue aliasing (satellite of the Session submit path)
// ---------------------------------------------------------------------------

/// The buffer-level operand sets of one queued request, labeled so alias
/// rejections can name the offending operand. Derived by `Session` from
/// the same buffers its plans' access sets will name.
#[derive(Clone, Debug)]
pub struct QueueAccess {
    /// `(label, buffer)` operand reads, e.g. `[("x", x), ("w", w)]`.
    pub reads: Vec<(&'static str, BufferId)>,
    /// Buffers the request writes (its output).
    pub writes: Vec<BufferId>,
}

/// Prove a group-reorderable queue alias-free: no request's output is one
/// of its own operands ([`PlanHazard::SelfAlias`]) and no request's
/// output is an operand or output of any other request
/// ([`PlanHazard::CrossAlias`]). Queues are executed group-reordered, so
/// aliasing either way breaks the sequential-equivalence contract.
pub fn check_queue_aliasing(reqs: &[QueueAccess]) -> Result<(), PlanHazard> {
    // Scan order is part of the contract: for each request, its self-alias
    // is reported before any cross-alias it participates in, and pairs are
    // found writer-major — `Session` formats its pinned messages from the
    // first hazard, so this must match the historical scan exactly.
    for (i, a) in reqs.iter().enumerate() {
        for w in &a.writes {
            if let Some((label, _)) = a.reads.iter().find(|(_, b)| b == w) {
                return Err(PlanHazard::SelfAlias {
                    index: i,
                    operand: (*label).to_string(),
                });
            }
        }
        for (j, b) in reqs.iter().enumerate() {
            if i == j {
                continue;
            }
            let aliased = a.writes.iter().any(|w| {
                b.reads.iter().any(|(_, r)| r == w) || b.writes.contains(w)
            });
            if aliased {
                return Err(PlanHazard::CrossAlias {
                    writer: i,
                    reader: j,
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Replay-tape freeze check
// ---------------------------------------------------------------------------

/// Prove a replay tape safe to freeze: the pool generation matches the
/// one the tape recorded, every scratch buffer slated for retention is
/// still leased, and no recorded step references a pool buffer that was
/// released back to the free lists.
pub fn check_tape(
    pool: &BufferPool,
    recorded_gen: u64,
    scratch: &[BufferId],
    steps: impl Iterator<Item = (String, Option<KernelAccess>)>,
) -> Result<(), PlanHazard> {
    if recorded_gen != pool.generation() {
        return Err(PlanHazard::StaleGeneration {
            recorded: recorded_gen,
            current: pool.generation(),
        });
    }
    for &b in scratch {
        if !pool.is_leased(b) {
            return Err(PlanHazard::TapeScratchNotLeased {
                buf: format!("{b:?}"),
            });
        }
    }
    for (step, access) in steps {
        let Some(access) = access else { continue };
        for buf in access.buffers() {
            if pool.is_free(buf) {
                return Err(PlanHazard::TapeUnretainedScratch {
                    step,
                    buf: format!("{buf:?}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use tfno_culib::copy::{CopySegment, SegmentedCopyKernel};

    fn dev_with(lens: &[usize]) -> (SimBackend, Vec<BufferId>) {
        let mut dev = SimBackend::a100();
        let ids = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| dev.alloc(&format!("b{i}"), l))
            .collect();
        (dev, ids)
    }

    #[test]
    fn disjoint_copy_passes_and_overlap_is_rejected() {
        let (dev, ids) = dev_with(&[64, 64]);
        let (src, dst) = (ids[0], ids[1]);
        let ok = SegmentedCopyKernel::new(
            "ok",
            vec![
                CopySegment { src, src_base: 0, dst, dst_base: 0, len: 32 },
                CopySegment { src, src_base: 32, dst, dst_base: 32, len: 32 },
            ],
        );
        let mut v = PlanVerifier::new();
        v.check_launch(&dev, &ok).expect("disjoint plan accepted");

        let bad = SegmentedCopyKernel::new(
            "bad",
            vec![
                CopySegment { src, src_base: 0, dst, dst_base: 0, len: 32 },
                CopySegment { src, src_base: 32, dst, dst_base: 16, len: 32 },
            ],
        );
        let err = v.check_launch(&dev, &bad).unwrap_err();
        assert!(matches!(err, PlanHazard::BlockWriteOverlap { .. }), "{err}");
    }

    #[test]
    fn memoized_disjointness_distinguishes_buffer_aliasing() {
        // Same structural fingerprint (bases/lengths), different buffer
        // aliasing: two distinct outputs are disjoint, one shared output
        // overlaps. The memo must not let the first proof excuse the
        // second kernel.
        let (dev, ids) = dev_with(&[64, 64, 64]);
        let (src, d0, d1) = (ids[0], ids[1], ids[2]);
        let seg = |dst, dst_base| CopySegment { src, src_base: 0, dst, dst_base, len: 32 };
        let distinct =
            SegmentedCopyKernel::new("distinct", vec![seg(d0, 0), seg(d1, 0)]);
        let mut v = PlanVerifier::new();
        v.check_launch(&dev, &distinct).expect("distinct outputs accepted");
        let shared = SegmentedCopyKernel::new("shared", vec![seg(d0, 0), seg(d0, 0)]);
        let err = v.check_launch(&dev, &shared).unwrap_err();
        assert!(matches!(err, PlanHazard::BlockWriteOverlap { .. }), "{err}");
    }

    #[test]
    fn bounds_are_checked() {
        let (dev, ids) = dev_with(&[64, 16]);
        let k = SegmentedCopyKernel::new(
            "oob",
            vec![CopySegment { src: ids[0], src_base: 0, dst: ids[1], dst_base: 0, len: 32 }],
        );
        let err = PlanVerifier::new().check_launch(&dev, &k).unwrap_err();
        assert!(matches!(err, PlanHazard::WriteOutOfBounds { .. }), "{err}");
    }

    #[test]
    fn pending_window_raw_and_waw() {
        let (dev, ids) = dev_with(&[64, 64, 64]);
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let copy = |name: &str, src, dst| {
            SegmentedCopyKernel::new(
                name,
                vec![CopySegment { src, src_base: 0, dst, dst_base: 0, len: 64 }],
            )
        };
        let mut v = PlanVerifier::new();
        v.check_deferred(&dev, &copy("w_b", a, b)).expect("first defer");
        // Reading b while its write is pending -> stale read.
        let err = v.check_launch(&dev, &copy("r_b", b, c)).unwrap_err();
        assert!(matches!(err, PlanHazard::RawHazard { .. }), "{err}");
        // Writing b while its write is pending -> lost write.
        let err = v.check_launch(&dev, &copy("w_b2", c, b)).unwrap_err();
        assert!(matches!(err, PlanHazard::WawHazard { .. }), "{err}");
        // Disjoint traffic is fine, and completion clears the window.
        v.check_launch(&dev, &copy("ok", a, c)).expect("disjoint launch");
        v.complete_oldest(1);
        assert_eq!(v.pending_len(), 0);
        v.check_launch(&dev, &copy("r_b_after", b, c))
            .expect("ordered read after completion");
    }

    #[test]
    fn lease_discipline() {
        let (dev, ids) = dev_with(&[64, 64]);
        let (a, b) = (ids[0], ids[1]);
        let mut v = PlanVerifier::new();
        v.acquire(a);
        assert!(matches!(
            v.release(b),
            Err(PlanHazard::ReleaseUnleased { .. })
        ));
        v.release(a).expect("first release");
        assert!(matches!(v.release(a), Err(PlanHazard::DoubleRelease { .. })));
        let k = SegmentedCopyKernel::new(
            "uar",
            vec![CopySegment { src: b, src_base: 0, dst: a, dst_base: 0, len: 8 }],
        );
        let err = v.check_launch(&dev, &k).unwrap_err();
        assert!(matches!(err, PlanHazard::UseAfterRelease { .. }), "{err}");
        // Re-acquiring (pool recycling) makes the buffer live again.
        v.acquire(a);
        v.check_launch(&dev, &k).expect("recycled lease is live");
        v.release(a).expect("balanced");
        v.finish().expect("no outstanding leases");
        v.acquire(b);
        assert!(matches!(
            v.finish(),
            Err(PlanHazard::UnreleasedLease { count: 1 })
        ));
    }

    #[test]
    fn queue_aliasing_typed_hazards() {
        let (_, ids) = dev_with(&[8, 8, 8, 8]);
        let req = |x, w, y| QueueAccess {
            reads: vec![("x", x), ("w", w)],
            writes: vec![y],
        };
        check_queue_aliasing(&[req(ids[0], ids[1], ids[2]), req(ids[0], ids[1], ids[3])])
            .expect("shared operands are fine");
        let err =
            check_queue_aliasing(&[req(ids[0], ids[1], ids[0])]).unwrap_err();
        assert_eq!(
            err,
            PlanHazard::SelfAlias { index: 0, operand: "x".into() }
        );
        let err = check_queue_aliasing(&[
            req(ids[0], ids[1], ids[2]),
            req(ids[2], ids[1], ids[3]),
        ])
        .unwrap_err();
        assert_eq!(err, PlanHazard::CrossAlias { writer: 0, reader: 1 });
    }

    #[test]
    fn override_beats_env_and_default() {
        set_verify_override(Some(true));
        assert!(verifier_enabled());
        set_verify_override(Some(false));
        assert!(!verifier_enabled());
        set_verify_override(None);
        let _ = verifier_enabled(); // env/profile default; just must not panic
    }

    #[test]
    fn hazard_display_names_every_class() {
        let cases: Vec<(PlanHazard, &str)> = vec![
            (
                PlanHazard::BlockWriteOverlap { kernel: "k".into(), buf: "b".into() },
                "overlapping",
            ),
            (
                PlanHazard::ReadOutOfBounds { kernel: "k".into(), buf: "b".into(), end: 9, len: 8 },
                "reads",
            ),
            (
                PlanHazard::WriteOutOfBounds { kernel: "k".into(), buf: "b".into(), end: 9, len: 8 },
                "writes",
            ),
            (
                PlanHazard::RawHazard { kernel: "k".into(), pending: "p".into(), buf: "b".into() },
                "stale read",
            ),
            (
                PlanHazard::WawHazard { kernel: "k".into(), pending: "p".into(), buf: "b".into() },
                "clobber",
            ),
            (
                PlanHazard::UseAfterRelease { kernel: "k".into(), buf: "b".into() },
                "after its pool lease",
            ),
            (PlanHazard::DoubleRelease { buf: "b".into() }, "twice"),
            (PlanHazard::ReleaseUnleased { buf: "b".into() }, "never acquired"),
            (PlanHazard::UnreleasedLease { count: 2 }, "unreleased"),
            (
                PlanHazard::TapeUnretainedScratch { step: "s".into(), buf: "b".into() },
                "free lists",
            ),
            (PlanHazard::TapeScratchNotLeased { buf: "b".into() }, "not leased"),
            (PlanHazard::StaleGeneration { recorded: 1, current: 2 }, "generation"),
            (PlanHazard::SelfAlias { index: 0, operand: "x".into() }, "self-aliased"),
            (PlanHazard::CrossAlias { writer: 0, reader: 1 }, "operand of request"),
        ];
        for (h, needle) in cases {
            assert!(h.to_string().contains(needle), "{h}");
            let e: TfnoError = h.into();
            assert!(matches!(e, TfnoError::Validation(_)));
        }
    }
}
