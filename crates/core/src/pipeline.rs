//! Pipeline variants of the paper's evaluation (Table 2) and their
//! executors.
//!
//! | Variant | Fusion | 1D kernels | 2D kernels | 3D kernels |
//! |---|---|---|---|---|
//! | `Pytorch`       | none (cuFFT/cuBLAS + copies) | 5 | 7 | 9 |
//! | `FftOpt` (A)    | none, but truncation/padding/pruning built into the FFT | 3 | 5 | 7 |
//! | `FusedFftGemm` (B) | FFT fused into the CGEMM k-loop | 2 | 4 | 6 |
//! | `FusedGemmIfft` (C) | iFFT fused as CGEMM epilogue | 2 | 4 | 6 |
//! | `FullyFused` (D) | both | 1 | 3 | 5 |
//! | `TurboBest` (E) | best of A–D per problem size | — | — | — |
//!
//! At every rank the stages along strided outer axes (forward first,
//! inverse last) stay standalone kernels in every Turbo variant — only the
//! stage along the contiguous innermost axis participates in fusion,
//! exactly as in the paper (§5.2: the first FFT's overhead is what masks
//! 2D fusion gains). The executor here is **rank-generic**: one body walks
//! the outer axes of a [`SpectralShape`] and hands the innermost axis to
//! the fused middle, so 1D, 2D and 3D layers all run through the same
//! code path (the pre-refactor `try_run_{1d,2d}` twins are gone).
//!
//! The public execution surface is [`crate::Session`]: it owns the device,
//! the memoizing [`crate::Planner`] and a scratch [`crate::BufferPool`],
//! and dispatches [`crate::LayerSpec`]s through the executors here.

use crate::backend::{
    Backend, BufferId, ExecMode, Kernel, LaunchError, LaunchRecord, PendingLaunch,
};
use crate::fused::{FusedKernel, GeomNd};
use crate::pool::BufferPool;
use crate::replay::{ReplayStep, ReplayTape};
use crate::swizzle::ForwardLayout;
use std::sync::Arc;
use tfno_cgemm::{BatchedCgemmKernel, BatchedOperand, GemmShape, MatView, WeightStacking};
use tfno_culib::{try_run_pytorch_stacked, CuBlas, PipelineRun, SpectralShape, CUFFT_L1_HIT};
use tfno_fft::{
    BatchedFftKernel, FftBlockConfig, FftDirection, FftKernelConfig, FftPlan, RowPencils,
    StridedPencils,
};
use tfno_num::C32;

/// L1/L2 hit rate of the hidden-dim-ordered Turbo FFT: the k-loop-aligned
/// dataflow gives up the spatial locality the baseline FFT enjoys (paper
/// §5.1 A.1 — the reason the A-variant speedup settles near 50% at large K
/// instead of staying at 100%).
pub const TURBO_FFT_L1_HIT: f64 = 0.10;

/// The evaluated pipeline variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    Pytorch,
    FftOpt,
    FusedFftGemm,
    FusedGemmIfft,
    FullyFused,
    TurboBest,
}

impl Variant {
    /// All concrete variants (E excluded — it delegates).
    pub const CONCRETE: [Variant; 5] = [
        Variant::Pytorch,
        Variant::FftOpt,
        Variant::FusedFftGemm,
        Variant::FusedGemmIfft,
        Variant::FullyFused,
    ];

    /// The paper's label for figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Pytorch => "PyTorch",
            Variant::FftOpt => "FFT+GEMM+iFFT",
            Variant::FusedFftGemm => "Fused_FFT_GEMM+iFFT",
            Variant::FusedGemmIfft => "FFT+Fused_GEMM_iFFT",
            Variant::FullyFused => "Fused_FFT_GEMM_iFFT",
            Variant::TurboBest => "TurboFNO",
        }
    }
}

/// Tuning/ablation knobs of the Turbo variants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TurboOptions {
    pub forward_layout: ForwardLayout,
    pub epilogue_swizzle: bool,
    /// L1 hit rate of the hidden-dim-ordered FFT stages.
    pub fft_l1_hit: f64,
}

impl Default for TurboOptions {
    fn default() -> Self {
        TurboOptions {
            forward_layout: ForwardLayout::TurboContiguous,
            epilogue_swizzle: true,
            fft_l1_hit: TURBO_FFT_L1_HIT,
        }
    }
}

/// GEMM tile width along the output-channel axis used by the fused
/// kernels. The paper runs the fused configurations with `N_tb = 128`
/// (§5.1 A.3): covering the whole hidden output dimension in one tile
/// avoids re-running the forward FFT per n-tile. Beyond 128 channels the
/// tile caps out and the recompute cost appears — the mechanism behind the
/// paper's observation that "for large hidden dimensions (K >= 128),
/// fusion may even degrade performance".
fn fused_n_tb(k_out: usize) -> usize {
    (k_out.div_ceil(16) * 16).clamp(16, 128)
}

/// Per-rank kernel naming so traces, stats and replay keys keep the
/// established `turbo.*` vocabulary (1D/2D names are byte-identical to the
/// pre-refactor twin pipelines).
struct StageNames {
    /// Forward outer-axis stages, outermost axis first (empty for rank 1).
    fwd_outer: &'static [&'static str],
    /// Inverse outer-axis stages, indexed by axis (applied in reverse).
    inv_outer: &'static [&'static str],
    fwd_inner: &'static str,
    inv_inner: &'static str,
    gemm: &'static str,
    fused_fft_gemm: &'static str,
    fused_gemm_ifft: &'static str,
    fused_all: &'static str,
}

static STAGE_NAMES: [StageNames; tfno_culib::MAX_RANK] = [
    StageNames {
        fwd_outer: &[],
        inv_outer: &[],
        fwd_inner: "turbo.fft",
        inv_inner: "turbo.ifft",
        gemm: "turbo.cgemm",
        fused_fft_gemm: "turbo.fused_fft_gemm",
        fused_gemm_ifft: "turbo.fused_gemm_ifft",
        fused_all: "turbo.fused_fft_gemm_ifft",
    },
    StageNames {
        fwd_outer: &["turbo.fft_x"],
        inv_outer: &["turbo.ifft_x"],
        fwd_inner: "turbo.fft_y",
        inv_inner: "turbo.ifft_y",
        gemm: "turbo.cgemm2d",
        fused_fft_gemm: "turbo.fused2d_fft_gemm",
        fused_gemm_ifft: "turbo.fused2d_gemm_ifft",
        fused_all: "turbo.fused2d_fft_gemm_ifft",
    },
    StageNames {
        fwd_outer: &["turbo.fft3_x", "turbo.fft3_y"],
        inv_outer: &["turbo.ifft3_x", "turbo.ifft3_y"],
        fwd_inner: "turbo.fft3_z",
        inv_inner: "turbo.ifft3_z",
        gemm: "turbo.cgemm3d",
        fused_fft_gemm: "turbo.fused3d_fft_gemm",
        fused_gemm_ifft: "turbo.fused3d_gemm_ifft",
        fused_all: "turbo.fused3d_fft_gemm_ifft",
    },
];

fn stage_names(rank: usize) -> &'static StageNames {
    &STAGE_NAMES[rank - 1]
}

/// The three tensor operands of one Fourier-layer execution, plus the
/// weight-stacking layout of `w` (shared single matrix unless the run is
/// a coalesced mixed-weight stack).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LayerBufs {
    pub x: BufferId,
    pub w: BufferId,
    pub y: BufferId,
    pub ws: WeightStacking,
}

impl LayerBufs {
    /// The classic layout: one weight matrix for the whole batch.
    pub fn shared(x: BufferId, w: BufferId, y: BufferId) -> Self {
        LayerBufs {
            x,
            w,
            y,
            ws: WeightStacking::SHARED,
        }
    }
}

/// Everything a pipeline execution needs from its surrounding
/// [`Session`](crate::Session): the backend, the scratch pool, and the
/// planner consulted for `TurboBest` dispatches. Synchronous `Session`
/// calls build one over the resident state; async dispatch threads build
/// one over the device/pool they temporarily own — both paths therefore
/// execute the exact same engine code (see `session.rs`).
pub(crate) struct ExecCtx<'a> {
    pub dev: &'a mut dyn Backend,
    pub pool: &'a mut BufferPool,
    pub planner: &'a crate::Planner,
    /// Recording tape for whole-forward launch replay (`replay.rs`). When
    /// present, every launch routed through [`ExecCtx::step`] is captured;
    /// `None` on paths that never record (planner cost probes, measure).
    pub tape: Option<ReplayTape>,
    /// Static launch-plan verifier (`verify.rs`). When present, every
    /// launch routed through `try_step`/`try_step_deferred` is proven
    /// hazard-free before it issues, and lease traffic is balanced; `None`
    /// when verification is disabled (see `verify::verifier_enabled`) and
    /// on planner cost probes, which re-run proven plans analytically.
    pub verify: Option<crate::verify::PlanVerifier>,
}

// -------------------------------------------------- stage builders ----

/// Forward FFT with built-in truncation along strided outer axis `axis`
/// (all Turbo variants, ranks >= 2). Pencils are adjacent along the inner
/// axes, so the reads coalesce across pencils — the baseline-quality
/// spatial dataflow, hence the cuFFT-grade L1 hit rate.
fn turbo_fft_outer(
    s: &SpectralShape,
    axis: usize,
    src: BufferId,
    dst: BufferId,
) -> BatchedFftKernel<StridedPencils> {
    let slabs = s.batch * s.k_in * s.modes[..axis].iter().product::<usize>();
    let inner: usize = s.dims[axis + 1..s.rank].iter().product();
    let cfg =
        FftKernelConfig::new(FftBlockConfig::for_len(s.dims[axis])).with_l1_hit_rate(CUFFT_L1_HIT);
    let plan = FftPlan::new(s.dims[axis], FftDirection::Forward, s.dims[axis], s.modes[axis]);
    let addr = StridedPencils::along_axis(slabs, s.dims[axis], s.modes[axis], inner);
    BatchedFftKernel::new(stage_names(s.rank).fwd_outer[axis], cfg, plan, addr, src, dst)
}

/// Inverse FFT with built-in zero padding along strided outer axis `axis`.
fn turbo_ifft_outer(
    s: &SpectralShape,
    axis: usize,
    src: BufferId,
    dst: BufferId,
) -> BatchedFftKernel<StridedPencils> {
    let slabs = s.batch * s.k_out * s.modes[..axis].iter().product::<usize>();
    let inner: usize = s.dims[axis + 1..s.rank].iter().product();
    let cfg =
        FftKernelConfig::new(FftBlockConfig::for_len(s.dims[axis])).with_l1_hit_rate(CUFFT_L1_HIT);
    let plan = FftPlan::new(s.dims[axis], FftDirection::Inverse, s.modes[axis], s.dims[axis]);
    let addr = StridedPencils::along_axis(slabs, s.modes[axis], s.dims[axis], inner);
    BatchedFftKernel::new(stage_names(s.rank).inv_outer[axis], cfg, plan, addr, src, dst)
}

/// Standalone truncated FFT along the contiguous innermost axis (variants
/// A and C). Hidden-dim-ordered (the fusable stage), hence the lower L1
/// hit rate and the k-blocked launch shape.
fn turbo_fft_inner(
    s: &SpectralShape,
    src: BufferId,
    dst: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let (n, m) = (s.dims[s.rank - 1], s.modes[s.rank - 1]);
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(s.k_in.div_ceil(8));
    let plan = FftPlan::new(n, FftDirection::Forward, n, m);
    let addr = RowPencils {
        count: s.batch * s.k_in * s.outer_modes(),
        in_row_len: n,
        out_row_len: m,
    };
    BatchedFftKernel::new(stage_names(s.rank).fwd_inner, cfg, plan, addr, src, dst)
}

/// Standalone zero-padded inverse FFT along the innermost axis (variants
/// A and B).
fn turbo_ifft_inner(
    s: &SpectralShape,
    src: BufferId,
    dst: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let (n, m) = (s.dims[s.rank - 1], s.modes[s.rank - 1]);
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(s.k_out.div_ceil(8));
    let plan = FftPlan::new(n, FftDirection::Inverse, m, n);
    let addr = RowPencils {
        count: s.batch * s.k_out * s.outer_modes(),
        in_row_len: m,
        out_row_len: n,
    };
    BatchedFftKernel::new(stage_names(s.rank).inv_inner, cfg, plan, addr, src, dst)
}

/// Standalone CGEMM over the retained modes of every axis (variant A).
fn turbo_gemm(
    s: &SpectralShape,
    xf_t: BufferId,
    w: BufferId,
    ws: WeightStacking,
    yf_t: BufferId,
) -> BatchedCgemmKernel {
    let m = s.modes_total();
    CuBlas::kernel(
        stage_names(s.rank).gemm,
        GemmShape {
            batch: s.batch,
            m,
            n: s.k_out,
            k: s.k_in,
        },
        BatchedOperand::strided(
            xf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: m,
            },
            s.k_in * m,
        ),
        BatchedOperand::stacked(w, MatView::row_major(0, s.k_out), ws),
        BatchedOperand::strided(
            yf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: m,
            },
            s.k_out * m,
        ),
        C32::ONE,
        C32::ZERO,
    )
}

impl ExecCtx<'_> {
    /// Lease pipeline scratch matching the virtualness of the layer input.
    /// A faulted lease leaves the pool untouched and nothing to release.
    fn try_scratch(
        &mut self,
        like: BufferId,
        len: usize,
        leases: &mut Vec<BufferId>,
    ) -> Result<BufferId, LaunchError> {
        let id = self.pool.try_acquire_like(self.dev, like, len)?;
        if let Some(v) = &mut self.verify {
            v.acquire(id);
        }
        leases.push(id);
        Ok(id)
    }

    /// Lease a real staging buffer (serving-queue gather/scatter scratch),
    /// keeping the verifier's lease ledger in step with the pool's.
    pub(crate) fn try_stage(
        &mut self,
        len: usize,
        leases: &mut Vec<BufferId>,
    ) -> Result<BufferId, LaunchError> {
        let id = self.pool.try_acquire(self.dev, len)?;
        if let Some(v) = &mut self.verify {
            v.acquire(id);
        }
        leases.push(id);
        Ok(id)
    }

    pub(crate) fn release(&mut self, leases: Vec<BufferId>) {
        // While a replay recording is live, scratch stays leased: on a
        // successful recording the artifact retains it (so the buffers —
        // and therefore the recorded kernels' operand views — remain
        // exclusively its own), and on an abandoned one `replay::record`
        // releases it. Data-wise this is invisible: every stage fully
        // overwrites the scratch it reads.
        if let Some(tape) = &mut self.tape {
            if let Some(v) = &mut self.verify {
                // The tape now owes the release, not this sequence — and
                // the buffers stay live (recorded steps reference them).
                for id in &leases {
                    v.transfer(*id);
                }
            }
            tape.scratch.extend(leases);
            return;
        }
        for id in leases {
            self.pool.release(self.dev, id);
            if let Some(v) = &mut self.verify {
                // The pool's own panics fire first on a bad release, so
                // the ledgers cannot disagree here.
                let balanced = v.release(id);
                debug_assert!(balanced.is_ok(), "verifier and pool lease ledgers diverged");
            }
        }
    }

    /// Prove a launch hazard-free before it issues (no-op when the
    /// verifier is off). A rejection surfaces as
    /// [`LaunchError::PlanRejected`], which the session's error layer maps
    /// to non-retryable `TfnoError::Validation`.
    fn check_plan(&mut self, kernel: &dyn Kernel, deferred: bool) -> Result<(), LaunchError> {
        let Some(v) = &mut self.verify else {
            return Ok(());
        };
        let checked = if deferred {
            v.check_deferred(self.dev, kernel)
        } else {
            v.check_launch(self.dev, kernel)
        };
        checked.map_err(|hazard| LaunchError::PlanRejected {
            kernel: kernel.name(),
            reason: hazard.to_string(),
        })
    }

    /// Retire the `n` oldest verified deferred launches (their journals
    /// were applied by [`Backend::complete`]).
    pub(crate) fn note_completions(&mut self, n: usize) {
        if let Some(v) = &mut self.verify {
            v.complete_oldest(n);
        }
    }

    /// End-of-sequence verifier check: every lease this sequence took must
    /// have been released (or handed to a recording tape).
    pub(crate) fn verify_finish(&mut self) -> Result<(), crate::error::TfnoError> {
        if let Some(v) = &mut self.verify {
            v.finish()?;
        }
        Ok(())
    }

    /// Launch a kernel, capturing it on the replay tape when recording.
    ///
    /// A faulted launch marks the tape: a recording that saw a fault is
    /// never frozen into a replay artifact (`replay::record` abandons it),
    /// so the cache can only ever serve sequences that completed cleanly.
    pub(crate) fn try_step<K: Kernel + Send + Sync + 'static>(
        &mut self,
        kernel: K,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        self.check_plan(&kernel, false)?;
        match &mut self.tape {
            Some(tape) if tape.recordable => {
                let kernel: Arc<dyn Kernel + Send + Sync> = Arc::new(kernel);
                match self.dev.try_launch(&*kernel, mode) {
                    Ok(rec) => {
                        tape.steps.push(ReplayStep { kernel, mode });
                        Ok(rec)
                    }
                    Err(e) => {
                        tape.faulted = true;
                        Err(e)
                    }
                }
            }
            _ => self.dev.try_launch(&kernel, mode),
        }
    }

    /// Deferred-completion variant of [`ExecCtx::try_step`] for launches
    /// whose writes nothing later in the sequence reads (serving-queue
    /// scatters). On the tape the step is ordinary — replay completes
    /// synchronously, which is bitwise-identical.
    pub(crate) fn try_step_deferred<K: Kernel + Send + Sync + 'static>(
        &mut self,
        kernel: K,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        self.check_plan(&kernel, true)?;
        match &mut self.tape {
            Some(tape) if tape.recordable => {
                let kernel: Arc<dyn Kernel + Send + Sync> = Arc::new(kernel);
                match self.dev.try_launch_deferred(&*kernel, mode) {
                    Ok(pending) => {
                        tape.steps.push(ReplayStep { kernel, mode });
                        Ok(pending)
                    }
                    Err(e) => {
                        tape.faulted = true;
                        Err(e)
                    }
                }
            }
            _ => self.dev.try_launch_deferred(&kernel, mode),
        }
    }

    /// Close the current output unit: steps since the previous boundary
    /// belong to `out[out_idx]` when the recording is replayed.
    pub(crate) fn mark_unit(&mut self, out_idx: usize) {
        if let Some(tape) = &mut self.tape {
            let end = tape.steps.len();
            tape.plan.push((out_idx, end));
        }
    }

    /// The sequence took a path that cannot be captured (the opaque
    /// `Pytorch` baseline); the recording is abandoned.
    pub(crate) fn mark_unrecordable(&mut self) {
        if let Some(tape) = &mut self.tape {
            tape.recordable = false;
        }
    }

    /// Run one variant of the rank-`s.rank` Fourier layer.
    ///
    /// * `x`: `[batch, k_in, dims...]`, `w`: `[k_in, k_out]`,
    ///   `y`: `[batch, k_out, dims...]`
    ///
    /// A faulted launch aborts the remaining stages and returns the fault;
    /// leases are always released (or handed to the recording tape, which
    /// releases them when the faulted recording is abandoned), completed
    /// stages only wrote scratch or `y` — both fully overwritten on a retry
    /// — so re-running the layer whole is always sound.
    pub(crate) fn try_run_spectral(
        &mut self,
        s: &SpectralShape,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
    ) -> Result<PipelineRun, LaunchError> {
        match variant {
            // The baseline allocates its copy temporaries per call on
            // purpose: that churn is part of the library stack it emulates
            // (only Turbo scratch goes through the pool). Its internal
            // launches never reach the tape, so the recording is abandoned.
            Variant::Pytorch => {
                self.mark_unrecordable();
                return try_run_pytorch_stacked(self.dev, s, b.x, b.w, b.ws, b.y, mode);
            }
            Variant::TurboBest => {
                let best = self.planner.plan_shape(self.dev.config(), s, opts);
                return self.try_run_spectral(s, best, b, opts, mode);
            }
            _ => {}
        }
        let mut leases = Vec::new();
        let out = self.turbo_spectral(s, variant, b, opts, mode, &mut leases);
        self.release(leases);
        out
    }

    /// Turbo-variant body of [`ExecCtx::try_run_spectral`]; `leases` is
    /// owned by the caller so scratch is returned on every exit path.
    ///
    /// Stage plan (rank r): forward outer FFTs along axes `0..r-1`
    /// (outermost first, each truncating its axis to the retained modes),
    /// then the fusable innermost middle (FFT/CGEMM/iFFT in the
    /// variant-chosen fusion), then inverse outer FFTs along axes
    /// `r-2..=0` (each zero-padding its axis back to full extent).
    fn turbo_spectral(
        &mut self,
        s: &SpectralShape,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
        leases: &mut Vec<BufferId>,
    ) -> Result<PipelineRun, LaunchError> {
        let mut run = PipelineRun::default();
        let geom = GeomNd::from_shape(s);
        let names = stage_names(s.rank);
        let LayerBufs { x, w, y, ws } = b;
        let r = s.rank;

        // Outer-axis scratch. `fwd[a]` holds the forward chain after axis
        // `a` is truncated (axes `..=a` at modes, axes `a+1..` full);
        // `inv[a]` is its k_out-sized mirror on the inverse chain.
        let mut fwd = Vec::new();
        let mut inv = Vec::new();
        for a in 0..r - 1 {
            let len = s.batch
                * s.k_in
                * s.modes[..=a].iter().product::<usize>()
                * s.dims[a + 1..r].iter().product::<usize>();
            fwd.push(self.try_scratch(x, len, leases)?);
        }
        for a in 0..r - 1 {
            let len = s.batch
                * s.k_out
                * s.modes[..=a].iter().product::<usize>()
                * s.dims[a + 1..r].iter().product::<usize>();
            inv.push(self.try_scratch(x, len, leases)?);
        }

        // Forward outer stages, outermost axis first.
        for a in 0..r - 1 {
            let src = if a == 0 { x } else { fwd[a - 1] };
            run.push(self.try_step(turbo_fft_outer(s, a, src, fwd[a]), mode)?);
        }

        // The fusable middle along the innermost, contiguous axis.
        let mid_in = if r == 1 { x } else { fwd[r - 2] };
        let mid_out = if r == 1 { y } else { inv[r - 2] };
        match variant {
            Variant::FftOpt => {
                let xf_t = self.try_scratch(x, s.batch * s.k_in * s.modes_total(), leases)?;
                let yf_t = self.try_scratch(x, s.batch * s.k_out * s.modes_total(), leases)?;
                run.push(self.try_step(turbo_fft_inner(s, mid_in, xf_t, opts), mode)?);
                run.push(self.try_step(turbo_gemm(s, xf_t, w, ws, yf_t), mode)?);
                run.push(self.try_step(turbo_ifft_inner(s, yf_t, mid_out, opts), mode)?);
            }
            Variant::FusedFftGemm => {
                let yf_t = self.try_scratch(x, s.batch * s.k_out * s.modes_total(), leases)?;
                let k = FusedKernel::new(
                    names.fused_fft_gemm,
                    geom,
                    true,
                    false,
                    fused_n_tb(s.k_out),
                    mid_in,
                    w,
                    yf_t,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
                run.push(self.try_step(turbo_ifft_inner(s, yf_t, mid_out, opts), mode)?);
            }
            Variant::FusedGemmIfft => {
                let xf_t = self.try_scratch(x, s.batch * s.k_in * s.modes_total(), leases)?;
                run.push(self.try_step(turbo_fft_inner(s, mid_in, xf_t, opts), mode)?);
                let k = FusedKernel::new(
                    names.fused_gemm_ifft,
                    geom,
                    false,
                    true,
                    fused_n_tb(s.k_out),
                    xf_t,
                    w,
                    mid_out,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::FullyFused => {
                let k = FusedKernel::new(
                    names.fused_all,
                    geom,
                    true,
                    true,
                    fused_n_tb(s.k_out),
                    mid_in,
                    w,
                    mid_out,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::Pytorch | Variant::TurboBest => unreachable!("handled by try_run_spectral"),
        }

        // Inverse outer stages, innermost remaining axis first.
        for a in (0..r - 1).rev() {
            let dst = if a == 0 { y } else { inv[a - 1] };
            run.push(self.try_step(turbo_ifft_outer(s, a, inv[a], dst), mode)?);
        }
        Ok(run)
    }
}
