//! Pipeline variants of the paper's evaluation (Table 2) and their
//! executors.
//!
//! | Variant | Fusion | 1D kernels | 2D kernels |
//! |---|---|---|---|
//! | `Pytorch`       | none (cuFFT/cuBLAS + copies) | 5 | 7 |
//! | `FftOpt` (A)    | none, but truncation/padding/pruning built into the FFT | 3 | 5 |
//! | `FusedFftGemm` (B) | FFT fused into the CGEMM k-loop | 2 | 4 |
//! | `FusedGemmIfft` (C) | iFFT fused as CGEMM epilogue | 2 | 4 |
//! | `FullyFused` (D) | both | 1 | 3 |
//! | `TurboBest` (E) | best of A–D per problem size | — | — |
//!
//! In 2D the stage along the strided x axis (forward first, inverse last)
//! stays a standalone kernel in every Turbo variant — only the stage along
//! the contiguous y axis participates in fusion, exactly as in the paper
//! (§5.2: the first FFT's overhead is what masks 2D fusion gains).
//!
//! The public execution surface is [`crate::Session`]: it owns the device,
//! the memoizing [`crate::Planner`] and a scratch [`crate::BufferPool`],
//! and dispatches [`crate::LayerSpec`]s through the executors here. (The
//! pre-Session `run_variant_{1d,2d}` shims have completed their one
//! deprecation release and are gone; cold best-of evaluation lives on as
//! `Planner::pick_best_{1d,2d}`.)

use crate::fused::{FusedKernel, Geom1d, Geom2d};
use crate::pool::BufferPool;
use crate::replay::{ReplayStep, ReplayTape};
use crate::swizzle::ForwardLayout;
use std::sync::Arc;
use tfno_cgemm::{BatchedCgemmKernel, BatchedOperand, GemmShape, MatView, WeightStacking};
use tfno_culib::{
    try_run_pytorch_1d_stacked, try_run_pytorch_2d_stacked, CuBlas, FnoProblem1d, FnoProblem2d,
    PipelineRun, CUFFT_L1_HIT,
};
use tfno_fft::{
    BatchedFftKernel, FftBlockConfig, FftDirection, FftKernelConfig, FftPlan, RowPencils,
    StridedPencils,
};
use crate::backend::{
    Backend, BufferId, ExecMode, Kernel, LaunchError, LaunchRecord, PendingLaunch,
};
use tfno_num::C32;

/// L1/L2 hit rate of the hidden-dim-ordered Turbo FFT: the k-loop-aligned
/// dataflow gives up the spatial locality the baseline FFT enjoys (paper
/// §5.1 A.1 — the reason the A-variant speedup settles near 50% at large K
/// instead of staying at 100%).
pub const TURBO_FFT_L1_HIT: f64 = 0.10;

/// The evaluated pipeline variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    Pytorch,
    FftOpt,
    FusedFftGemm,
    FusedGemmIfft,
    FullyFused,
    TurboBest,
}

impl Variant {
    /// All concrete variants (E excluded — it delegates).
    pub const CONCRETE: [Variant; 5] = [
        Variant::Pytorch,
        Variant::FftOpt,
        Variant::FusedFftGemm,
        Variant::FusedGemmIfft,
        Variant::FullyFused,
    ];

    /// The paper's label for figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Pytorch => "PyTorch",
            Variant::FftOpt => "FFT+GEMM+iFFT",
            Variant::FusedFftGemm => "Fused_FFT_GEMM+iFFT",
            Variant::FusedGemmIfft => "FFT+Fused_GEMM_iFFT",
            Variant::FullyFused => "Fused_FFT_GEMM_iFFT",
            Variant::TurboBest => "TurboFNO",
        }
    }
}

/// Tuning/ablation knobs of the Turbo variants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TurboOptions {
    pub forward_layout: ForwardLayout,
    pub epilogue_swizzle: bool,
    /// L1 hit rate of the hidden-dim-ordered FFT stages.
    pub fft_l1_hit: f64,
}

impl Default for TurboOptions {
    fn default() -> Self {
        TurboOptions {
            forward_layout: ForwardLayout::TurboContiguous,
            epilogue_swizzle: true,
            fft_l1_hit: TURBO_FFT_L1_HIT,
        }
    }
}

/// GEMM tile width along the output-channel axis used by the fused
/// kernels. The paper runs the fused configurations with `N_tb = 128`
/// (§5.1 A.3): covering the whole hidden output dimension in one tile
/// avoids re-running the forward FFT per n-tile. Beyond 128 channels the
/// tile caps out and the recompute cost appears — the mechanism behind the
/// paper's observation that "for large hidden dimensions (K >= 128),
/// fusion may even degrade performance".
fn fused_n_tb(k_out: usize) -> usize {
    (k_out.div_ceil(16) * 16).clamp(16, 128)
}

/// The three tensor operands of one Fourier-layer execution, plus the
/// weight-stacking layout of `w` (shared single matrix unless the run is
/// a coalesced mixed-weight stack).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LayerBufs {
    pub x: BufferId,
    pub w: BufferId,
    pub y: BufferId,
    pub ws: WeightStacking,
}

impl LayerBufs {
    /// The classic layout: one weight matrix for the whole batch.
    pub fn shared(x: BufferId, w: BufferId, y: BufferId) -> Self {
        LayerBufs {
            x,
            w,
            y,
            ws: WeightStacking::SHARED,
        }
    }
}

/// Everything a pipeline execution needs from its surrounding
/// [`Session`](crate::Session): the backend, the scratch pool, and the
/// planner consulted for `TurboBest` dispatches. Synchronous `Session`
/// calls build one over the resident state; async dispatch threads build
/// one over the device/pool they temporarily own — both paths therefore
/// execute the exact same engine code (see `session.rs`).
pub(crate) struct ExecCtx<'a> {
    pub dev: &'a mut dyn Backend,
    pub pool: &'a mut BufferPool,
    pub planner: &'a crate::Planner,
    /// Recording tape for whole-forward launch replay (`replay.rs`). When
    /// present, every launch routed through [`ExecCtx::step`] is captured;
    /// `None` on paths that never record (planner cost probes, measure).
    pub tape: Option<ReplayTape>,
    /// Static launch-plan verifier (`verify.rs`). When present, every
    /// launch routed through `try_step`/`try_step_deferred` is proven
    /// hazard-free before it issues, and lease traffic is balanced; `None`
    /// when verification is disabled (see `verify::verifier_enabled`) and
    /// on planner cost probes, which re-run proven plans analytically.
    pub verify: Option<crate::verify::PlanVerifier>,
}

// ---------------------------------------------------------------- 1D ----

/// Truncated forward FFT kernel of the Turbo pipeline (variant A / C).
///
/// The `turbo_*` helpers build the kernel object without launching it so
/// every launch can flow through [`ExecCtx::step`] (and onto the replay
/// tape when one is recording).
fn turbo_fft_1d(
    p: &FnoProblem1d,
    x: BufferId,
    xf_t: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.n))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(p.k_in.div_ceil(8));
    let plan = FftPlan::new(p.n, FftDirection::Forward, p.n, p.nf);
    let addr = RowPencils {
        count: p.batch * p.k_in,
        in_row_len: p.n,
        out_row_len: p.nf,
    };
    BatchedFftKernel::new("turbo.fft", cfg, plan, addr, x, xf_t)
}

/// Zero-padded inverse FFT kernel (variant A / B).
fn turbo_ifft_1d(
    p: &FnoProblem1d,
    yf_t: BufferId,
    y: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.n))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(p.k_out.div_ceil(8));
    let plan = FftPlan::new(p.n, FftDirection::Inverse, p.nf, p.n);
    let addr = RowPencils {
        count: p.batch * p.k_out,
        in_row_len: p.nf,
        out_row_len: p.n,
    };
    BatchedFftKernel::new("turbo.ifft", cfg, plan, addr, yf_t, y)
}

/// Standalone CGEMM over truncated modes (variant A).
fn turbo_gemm_1d(
    p: &FnoProblem1d,
    xf_t: BufferId,
    w: BufferId,
    ws: WeightStacking,
    yf_t: BufferId,
) -> BatchedCgemmKernel {
    CuBlas::kernel(
        "turbo.cgemm",
        GemmShape {
            batch: p.batch,
            m: p.nf,
            n: p.k_out,
            k: p.k_in,
        },
        BatchedOperand::strided(
            xf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: p.nf,
            },
            p.k_in * p.nf,
        ),
        BatchedOperand::stacked(w, MatView::row_major(0, p.k_out), ws),
        BatchedOperand::strided(
            yf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: p.nf,
            },
            p.k_out * p.nf,
        ),
        C32::ONE,
        C32::ZERO,
    )
}

impl ExecCtx<'_> {
    /// Lease pipeline scratch matching the virtualness of the layer input.
    /// A faulted lease leaves the pool untouched and nothing to release.
    fn try_scratch(
        &mut self,
        like: BufferId,
        len: usize,
        leases: &mut Vec<BufferId>,
    ) -> Result<BufferId, LaunchError> {
        let id = self.pool.try_acquire_like(self.dev, like, len)?;
        if let Some(v) = &mut self.verify {
            v.acquire(id);
        }
        leases.push(id);
        Ok(id)
    }

    /// Lease a real staging buffer (serving-queue gather/scatter scratch),
    /// keeping the verifier's lease ledger in step with the pool's.
    pub(crate) fn try_stage(
        &mut self,
        len: usize,
        leases: &mut Vec<BufferId>,
    ) -> Result<BufferId, LaunchError> {
        let id = self.pool.try_acquire(self.dev, len)?;
        if let Some(v) = &mut self.verify {
            v.acquire(id);
        }
        leases.push(id);
        Ok(id)
    }

    pub(crate) fn release(&mut self, leases: Vec<BufferId>) {
        // While a replay recording is live, scratch stays leased: on a
        // successful recording the artifact retains it (so the buffers —
        // and therefore the recorded kernels' operand views — remain
        // exclusively its own), and on an abandoned one `replay::record`
        // releases it. Data-wise this is invisible: every stage fully
        // overwrites the scratch it reads.
        if let Some(tape) = &mut self.tape {
            if let Some(v) = &mut self.verify {
                // The tape now owes the release, not this sequence — and
                // the buffers stay live (recorded steps reference them).
                for id in &leases {
                    v.transfer(*id);
                }
            }
            tape.scratch.extend(leases);
            return;
        }
        for id in leases {
            self.pool.release(self.dev, id);
            if let Some(v) = &mut self.verify {
                // The pool's own panics fire first on a bad release, so
                // the ledgers cannot disagree here.
                let balanced = v.release(id);
                debug_assert!(balanced.is_ok(), "verifier and pool lease ledgers diverged");
            }
        }
    }

    /// Prove a launch hazard-free before it issues (no-op when the
    /// verifier is off). A rejection surfaces as
    /// [`LaunchError::PlanRejected`], which the session's error layer maps
    /// to non-retryable `TfnoError::Validation`.
    fn check_plan(&mut self, kernel: &dyn Kernel, deferred: bool) -> Result<(), LaunchError> {
        let Some(v) = &mut self.verify else {
            return Ok(());
        };
        let checked = if deferred {
            v.check_deferred(self.dev, kernel)
        } else {
            v.check_launch(self.dev, kernel)
        };
        checked.map_err(|hazard| LaunchError::PlanRejected {
            kernel: kernel.name(),
            reason: hazard.to_string(),
        })
    }

    /// Retire the `n` oldest verified deferred launches (their journals
    /// were applied by [`Backend::complete`]).
    pub(crate) fn note_completions(&mut self, n: usize) {
        if let Some(v) = &mut self.verify {
            v.complete_oldest(n);
        }
    }

    /// End-of-sequence verifier check: every lease this sequence took must
    /// have been released (or handed to a recording tape).
    pub(crate) fn verify_finish(&mut self) -> Result<(), crate::error::TfnoError> {
        if let Some(v) = &mut self.verify {
            v.finish()?;
        }
        Ok(())
    }

    /// Launch a kernel, capturing it on the replay tape when recording.
    ///
    /// A faulted launch marks the tape: a recording that saw a fault is
    /// never frozen into a replay artifact (`replay::record` abandons it),
    /// so the cache can only ever serve sequences that completed cleanly.
    pub(crate) fn try_step<K: Kernel + Send + Sync + 'static>(
        &mut self,
        kernel: K,
        mode: ExecMode,
    ) -> Result<LaunchRecord, LaunchError> {
        self.check_plan(&kernel, false)?;
        match &mut self.tape {
            Some(tape) if tape.recordable => {
                let kernel: Arc<dyn Kernel + Send + Sync> = Arc::new(kernel);
                match self.dev.try_launch(&*kernel, mode) {
                    Ok(rec) => {
                        tape.steps.push(ReplayStep { kernel, mode });
                        Ok(rec)
                    }
                    Err(e) => {
                        tape.faulted = true;
                        Err(e)
                    }
                }
            }
            _ => self.dev.try_launch(&kernel, mode),
        }
    }

    /// Deferred-completion variant of [`ExecCtx::try_step`] for launches
    /// whose writes nothing later in the sequence reads (serving-queue
    /// scatters). On the tape the step is ordinary — replay completes
    /// synchronously, which is bitwise-identical.
    pub(crate) fn try_step_deferred<K: Kernel + Send + Sync + 'static>(
        &mut self,
        kernel: K,
        mode: ExecMode,
    ) -> Result<PendingLaunch, LaunchError> {
        self.check_plan(&kernel, true)?;
        match &mut self.tape {
            Some(tape) if tape.recordable => {
                let kernel: Arc<dyn Kernel + Send + Sync> = Arc::new(kernel);
                match self.dev.try_launch_deferred(&*kernel, mode) {
                    Ok(pending) => {
                        tape.steps.push(ReplayStep { kernel, mode });
                        Ok(pending)
                    }
                    Err(e) => {
                        tape.faulted = true;
                        Err(e)
                    }
                }
            }
            _ => self.dev.try_launch_deferred(&kernel, mode),
        }
    }

    /// Close the current output unit: steps since the previous boundary
    /// belong to `out[out_idx]` when the recording is replayed.
    pub(crate) fn mark_unit(&mut self, out_idx: usize) {
        if let Some(tape) = &mut self.tape {
            let end = tape.steps.len();
            tape.plan.push((out_idx, end));
        }
    }

    /// The sequence took a path that cannot be captured (the opaque
    /// `Pytorch` baseline); the recording is abandoned.
    pub(crate) fn mark_unrecordable(&mut self) {
        if let Some(tape) = &mut self.tape {
            tape.recordable = false;
        }
    }

    /// Run one variant of the 1D Fourier layer.
    ///
    /// * `x`: `[batch, k_in, n]`, `w`: `[k_in, k_out]`, `y`: `[batch, k_out, n]`
    ///
    /// A faulted launch aborts the remaining stages and returns the fault;
    /// leases are always released (or handed to the recording tape, which
    /// releases them when the faulted recording is abandoned), completed
    /// stages only wrote scratch or `y` — both fully overwritten on a retry
    /// — so re-running the layer whole is always sound.
    pub(crate) fn try_run_1d(
        &mut self,
        p: &FnoProblem1d,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
    ) -> Result<PipelineRun, LaunchError> {
        match variant {
            // The baseline allocates its copy temporaries per call on
            // purpose: that churn is part of the library stack it emulates
            // (only Turbo scratch goes through the pool). Its internal
            // launches never reach the tape, so the recording is abandoned.
            Variant::Pytorch => {
                self.mark_unrecordable();
                return try_run_pytorch_1d_stacked(self.dev, p, b.x, b.w, b.ws, b.y, mode);
            }
            Variant::TurboBest => {
                let best = self.planner.plan_1d(self.dev.config(), p, opts);
                return self.try_run_1d(p, best, b, opts, mode);
            }
            _ => {}
        }
        let mut leases = Vec::new();
        let out = self.turbo_1d(p, variant, b, opts, mode, &mut leases);
        self.release(leases);
        out
    }

    /// Turbo-variant body of [`ExecCtx::try_run_1d`]; `leases` is owned by
    /// the caller so scratch is returned on every exit path.
    fn turbo_1d(
        &mut self,
        p: &FnoProblem1d,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
        leases: &mut Vec<BufferId>,
    ) -> Result<PipelineRun, LaunchError> {
        let mut run = PipelineRun::default();
        let geom = Geom1d {
            batch: p.batch,
            k_in: p.k_in,
            k_out: p.k_out,
            n: p.n,
            nf: p.nf,
        };
        let LayerBufs { x, w, y, ws } = b;
        match variant {
            Variant::FftOpt => {
                let xf_t = self.try_scratch(x, p.batch * p.k_in * p.nf, leases)?;
                let yf_t = self.try_scratch(x, p.batch * p.k_out * p.nf, leases)?;
                run.push(self.try_step(turbo_fft_1d(p, x, xf_t, opts), mode)?);
                run.push(self.try_step(turbo_gemm_1d(p, xf_t, w, ws, yf_t), mode)?);
                run.push(self.try_step(turbo_ifft_1d(p, yf_t, y, opts), mode)?);
            }
            Variant::FusedFftGemm => {
                let yf_t = self.try_scratch(x, p.batch * p.k_out * p.nf, leases)?;
                let k = FusedKernel::new(
                    "turbo.fused_fft_gemm",
                    geom,
                    true,
                    false,
                    fused_n_tb(p.k_out),
                    x,
                    w,
                    yf_t,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
                run.push(self.try_step(turbo_ifft_1d(p, yf_t, y, opts), mode)?);
            }
            Variant::FusedGemmIfft => {
                let xf_t = self.try_scratch(x, p.batch * p.k_in * p.nf, leases)?;
                run.push(self.try_step(turbo_fft_1d(p, x, xf_t, opts), mode)?);
                let k = FusedKernel::new(
                    "turbo.fused_gemm_ifft",
                    geom,
                    false,
                    true,
                    fused_n_tb(p.k_out),
                    xf_t,
                    w,
                    y,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::FullyFused => {
                let k = FusedKernel::new(
                    "turbo.fused_fft_gemm_ifft",
                    geom,
                    true,
                    true,
                    fused_n_tb(p.k_out),
                    x,
                    w,
                    y,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::Pytorch | Variant::TurboBest => unreachable!("handled by try_run_1d"),
        }
        Ok(run)
    }

    /// Run one variant of the 2D Fourier layer.
    ///
    /// * `x`: `[batch, k_in, nx, ny]`, `w`: `[k_in, k_out]`,
    ///   `y`: `[batch, k_out, nx, ny]`
    ///
    /// Same abort/retry contract as [`ExecCtx::try_run_1d`].
    pub(crate) fn try_run_2d(
        &mut self,
        p: &FnoProblem2d,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
    ) -> Result<PipelineRun, LaunchError> {
        if variant == Variant::Pytorch {
            self.mark_unrecordable();
            return try_run_pytorch_2d_stacked(self.dev, p, b.x, b.w, b.ws, b.y, mode);
        }
        if variant == Variant::TurboBest {
            let best = self.planner.plan_2d(self.dev.config(), p, opts);
            return self.try_run_2d(p, best, b, opts, mode);
        }
        let mut leases = Vec::new();
        let out = self.turbo_2d(p, variant, b, opts, mode, &mut leases);
        self.release(leases);
        out
    }

    /// Turbo-variant body of [`ExecCtx::try_run_2d`]; `leases` is owned by
    /// the caller so scratch is returned on every exit path.
    fn turbo_2d(
        &mut self,
        p: &FnoProblem2d,
        variant: Variant,
        b: LayerBufs,
        opts: &TurboOptions,
        mode: ExecMode,
        leases: &mut Vec<BufferId>,
    ) -> Result<PipelineRun, LaunchError> {
        let mut run = PipelineRun::default();
        let geom = Geom2d {
            batch: p.batch,
            k_in: p.k_in,
            k_out: p.k_out,
            ny: p.ny,
            nfy: p.nfy,
            nfx: p.nfx,
        };
        let LayerBufs { x, w, y, ws } = b;

        // Stage 1: truncated FFT along the strided x axis.
        let t1 = self.try_scratch(x, p.batch * p.k_in * p.nfx * p.ny, leases)?;
        // Output of the (possibly fused) y-stage inverse: [b, k_out, nfx, ny].
        let t3 = self.try_scratch(x, p.batch * p.k_out * p.nfx * p.ny, leases)?;
        run.push(self.try_step(turbo_fft_x(p, x, t1), mode)?);

        match variant {
            Variant::FftOpt => {
                let xf_t = self.try_scratch(x, p.batch * p.k_in * p.nfx * p.nfy, leases)?;
                let yf_t = self.try_scratch(x, p.batch * p.k_out * p.nfx * p.nfy, leases)?;
                run.push(self.try_step(turbo_fft_y(p, t1, xf_t, opts), mode)?);
                run.push(self.try_step(turbo_gemm_2d(p, xf_t, w, ws, yf_t), mode)?);
                run.push(self.try_step(turbo_ifft_y(p, yf_t, t3, opts), mode)?);
            }
            Variant::FusedFftGemm => {
                let yf_t = self.try_scratch(x, p.batch * p.k_out * p.nfx * p.nfy, leases)?;
                let k = FusedKernel::new(
                    "turbo.fused2d_fft_gemm",
                    geom,
                    true,
                    false,
                    fused_n_tb(p.k_out),
                    t1,
                    w,
                    yf_t,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
                run.push(self.try_step(turbo_ifft_y(p, yf_t, t3, opts), mode)?);
            }
            Variant::FusedGemmIfft => {
                let xf_t = self.try_scratch(x, p.batch * p.k_in * p.nfx * p.nfy, leases)?;
                run.push(self.try_step(turbo_fft_y(p, t1, xf_t, opts), mode)?);
                let k = FusedKernel::new(
                    "turbo.fused2d_gemm_ifft",
                    geom,
                    false,
                    true,
                    fused_n_tb(p.k_out),
                    xf_t,
                    w,
                    t3,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::FullyFused => {
                let k = FusedKernel::new(
                    "turbo.fused2d_fft_gemm_ifft",
                    geom,
                    true,
                    true,
                    fused_n_tb(p.k_out),
                    t1,
                    w,
                    t3,
                    opts.fft_l1_hit,
                )
                .with_forward_layout(opts.forward_layout)
                .with_epilogue_swizzle(opts.epilogue_swizzle)
                .with_weight_stacking(ws);
                run.push(self.try_step(k, mode)?);
            }
            Variant::Pytorch | Variant::TurboBest => unreachable!("handled by try_run_2d"),
        }

        // Final stage: zero-padded inverse FFT along x.
        run.push(self.try_step(turbo_ifft_x(p, t3, y), mode)?);
        Ok(run)
    }
}

// ---------------------------------------------------------------- 2D ----

/// Stage-1 FFT along the strided x axis with built-in truncation (all
/// Turbo variants). Pencils are adjacent in y, so the reads coalesce
/// across pencils — the baseline-quality spatial dataflow.
fn turbo_fft_x(p: &FnoProblem2d, x: BufferId, t1: BufferId) -> BatchedFftKernel<StridedPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.nx)).with_l1_hit_rate(CUFFT_L1_HIT);
    let plan = FftPlan::new(p.nx, FftDirection::Forward, p.nx, p.nfx);
    let addr = StridedPencils {
        count: p.batch * p.k_in * p.ny,
        group: p.ny,
        in_group_stride: p.nx * p.ny,
        in_pencil_stride: 1,
        in_idx_stride: p.ny,
        out_group_stride: p.nfx * p.ny,
        out_pencil_stride: 1,
        out_idx_stride: p.ny,
    };
    BatchedFftKernel::new("turbo.fft_x", cfg, plan, addr, x, t1)
}

/// Final inverse FFT along the strided x axis with built-in zero padding.
fn turbo_ifft_x(p: &FnoProblem2d, t3: BufferId, y: BufferId) -> BatchedFftKernel<StridedPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.nx)).with_l1_hit_rate(CUFFT_L1_HIT);
    let plan = FftPlan::new(p.nx, FftDirection::Inverse, p.nfx, p.nx);
    let addr = StridedPencils {
        count: p.batch * p.k_out * p.ny,
        group: p.ny,
        in_group_stride: p.nfx * p.ny,
        in_pencil_stride: 1,
        in_idx_stride: p.ny,
        out_group_stride: p.nx * p.ny,
        out_pencil_stride: 1,
        out_idx_stride: p.ny,
    };
    BatchedFftKernel::new("turbo.ifft_x", cfg, plan, addr, t3, y)
}

/// Standalone truncated y-stage FFT over the contiguous rows of `t1`
/// (variants A and C). Hidden-dim-ordered (the fusable stage), hence the
/// lower L1 hit rate.
fn turbo_fft_y(
    p: &FnoProblem2d,
    t1: BufferId,
    xf_t: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.ny))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(p.k_in.div_ceil(8));
    let plan = FftPlan::new(p.ny, FftDirection::Forward, p.ny, p.nfy);
    let addr = RowPencils {
        count: p.batch * p.k_in * p.nfx,
        in_row_len: p.ny,
        out_row_len: p.nfy,
    };
    BatchedFftKernel::new("turbo.fft_y", cfg, plan, addr, t1, xf_t)
}

/// Standalone padded y-stage inverse FFT (variants A and B).
fn turbo_ifft_y(
    p: &FnoProblem2d,
    yf_t: BufferId,
    t3: BufferId,
    opts: &TurboOptions,
) -> BatchedFftKernel<RowPencils> {
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(p.ny))
        .with_l1_hit_rate(opts.fft_l1_hit)
        .with_k_iters(p.k_out.div_ceil(8));
    let plan = FftPlan::new(p.ny, FftDirection::Inverse, p.nfy, p.ny);
    let addr = RowPencils {
        count: p.batch * p.k_out * p.nfx,
        in_row_len: p.nfy,
        out_row_len: p.ny,
    };
    BatchedFftKernel::new("turbo.ifft_y", cfg, plan, addr, yf_t, t3)
}

/// Standalone CGEMM over the truncated 2D modes (variant A).
fn turbo_gemm_2d(
    p: &FnoProblem2d,
    xf_t: BufferId,
    w: BufferId,
    ws: WeightStacking,
    yf_t: BufferId,
) -> BatchedCgemmKernel {
    let m = p.nfx * p.nfy;
    CuBlas::kernel(
        "turbo.cgemm2d",
        GemmShape {
            batch: p.batch,
            m,
            n: p.k_out,
            k: p.k_in,
        },
        BatchedOperand::strided(
            xf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: m,
            },
            p.k_in * m,
        ),
        BatchedOperand::stacked(w, MatView::row_major(0, p.k_out), ws),
        BatchedOperand::strided(
            yf_t,
            MatView {
                base: 0,
                row_stride: 1,
                col_stride: m,
            },
            p.k_out * m,
        ),
        C32::ONE,
        C32::ZERO,
    )
}
