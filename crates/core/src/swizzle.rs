//! Shared-memory swizzling patterns (paper §4.1–4.2, Figs. 7 and 8).
//!
//! Everything here is *address-level*: the functions build the exact warp
//! access patterns the paper draws and measure their bank utilization with
//! the simulator's conflict model. The unit tests pin the paper's numbers:
//!
//! * Fig. 7(b): 16-point-per-thread FFT register writeback — 6.25%
//!   utilization raw, 100% with the `+tid` offset;
//! * Fig. 7(c): 8-point-per-thread — conflicted raw, 100% with `+tid/2`;
//! * Fig. 7(a): forwarding FFT output to the CGEMM `As` tile — the
//!   VkFFT-style thread-to-data layout collides (<= 25% utilization),
//!   TurboFNO's consecutive-elements layout reaches 100%;
//! * Fig. 8: CGEMM accumulator tiles written to the iFFT staging buffer —
//!   25% raw, 100% with the `+tid/4` offset.

use tfno_gpu_sim::shared::warp_bank_cycles;
use tfno_gpu_sim::{BankStats, WarpIdx};

/// FFT final-stage register writeback (Fig. 7b/c): `threads` threads (one
/// pencil each here), thread `t` holding `n_thread` outputs, writing
/// register `j` at `t * n_thread + j`, optionally offset by the paper's
/// swizzle `t * n_thread / 16` (i.e. `+tid` for 16-point, `+tid/2` for
/// 8-point threads).
pub fn fft_writeback_pattern(n_thread: usize, swizzled: bool) -> Vec<WarpIdx> {
    let threads = 16; // the paper draws one half-warp phase
    (0..n_thread)
        .map(|j| {
            WarpIdx::from_fn(|l| {
                (l < threads).then(|| {
                    let base = l * n_thread + j;
                    if swizzled {
                        base + (l * n_thread) / 16
                    } else {
                        base
                    }
                })
            })
        })
        .collect()
}

/// Aggregate utilization of a pattern sequence.
pub fn pattern_utilization(patterns: &[WarpIdx]) -> f64 {
    let mut total = BankStats::default();
    for p in patterns {
        let s = warp_bank_cycles(p);
        total.ideal_cycles += s.ideal_cycles;
        total.actual_cycles += s.actual_cycles;
    }
    total.utilization()
}

/// Thread-to-data assignment when forwarding FFT output into the CGEMM
/// `As` tile (Fig. 7a). `ms` is the tile's M extent (= retained modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ForwardLayout {
    /// VkFFT-style: consecutive threads hold the same offset of different
    /// pencils; forwarding writes `As[k][m]` with `k` varying fastest
    /// across lanes — the column-major tile serializes on a few banks.
    VkFftStrided,
    /// TurboFNO: consecutive threads hold consecutive elements of the same
    /// pencil; forwarding writes are contiguous in `m` — bank-aligned.
    TurboContiguous,
}

/// Build one warp's forwarding accesses into a column-major `As` tile
/// (`addr = k * ms + m`) holding `bs` pencils of `ms` kept modes.
/// Returns the access sequence that moves one warp-sized batch of data.
pub fn forward_to_as_pattern(layout: ForwardLayout, ms: usize, bs: usize) -> Vec<WarpIdx> {
    match layout {
        ForwardLayout::VkFftStrided => {
            // lanes cycle over pencils fastest: lane l -> pencil l % bs,
            // element (l / bs) + chunk * (32 / bs)
            let per_chunk = 32 / bs;
            (0..ms.div_ceil(per_chunk).min(8))
                .map(|chunk| {
                    WarpIdx::from_fn(|l| {
                        let k = l % bs;
                        let m = l / bs + chunk * per_chunk;
                        (m < ms).then(|| k * ms + m)
                    })
                })
                .collect()
        }
        ForwardLayout::TurboContiguous => {
            // lanes cover 32 consecutive m of one pencil per access
            let chunks = ms.div_ceil(32);
            (0..bs.min(8))
                .flat_map(|k| {
                    (0..chunks).map(move |c| {
                        WarpIdx::from_fn(move |l| {
                            let m = c * 32 + l;
                            (m < ms).then(|| k * ms + m)
                        })
                    })
                })
                .collect()
        }
    }
}

/// The Fig. 8 swizzle offset for CGEMM→iFFT staging writes within one
/// warp: the writer of C element `(m, n)` is lane `tn * 8 + tm`
/// (`tm = (m % 32)/4`, `tn = (n % 16)/4`), staggered by `lane / 4`.
pub fn fig8_offset(m: usize, n: usize) -> usize {
    let tm = (m % 32) / 4;
    let tn = (n % 16) / 4;
    (tn * 8 + tm) / 4
}

/// Staging-buffer addressing for the CGEMM→iFFT epilogue: C element
/// `(m, n)` of an `ms x ns` tile stored column-per-channel, optionally
/// swizzled per Fig. 8 with the full `threadIdx.x / 4` offset (the warp
/// row index contributes too when `ms > 32`).
///
/// The swizzled layout pads each column by `ms / 4` elements so the
/// monotone offsets never spill into the next channel's column — the
/// shared-memory cost of the conflict-free pattern.
#[derive(Clone, Copy, Debug)]
pub struct EpilogueStaging {
    pub ms: usize,
    pub swizzled: bool,
}

impl EpilogueStaging {
    fn warps_m(&self) -> usize {
        (self.ms / 32).max(1)
    }

    /// Column-to-column stride (padded when swizzled).
    pub fn col_stride(&self) -> usize {
        if self.swizzled {
            self.ms + 8 * self.warps_m()
        } else {
            self.ms
        }
    }

    /// The `threadIdx.x / 4` offset of element `(m, n)`'s writer thread.
    pub fn offset(&self, m: usize, n: usize) -> usize {
        if !self.swizzled {
            return 0;
        }
        let wm = m / 32;
        let tm = (m % 32) / 4;
        let wn = n / 16;
        let tn = (n % 16) / 4;
        let tid = (wn * self.warps_m() + wm) * 32 + tn * 8 + tm;
        tid / 4
    }

    pub fn addr(&self, m: usize, n: usize) -> usize {
        n * self.col_stride() + m + self.offset(m, n)
    }

    /// Elements the staging region needs for `channels` columns.
    pub fn elems(&self, channels: usize) -> usize {
        channels * self.col_stride()
    }
}

/// One warp's staging writes for its `(i, j)` register position (Fig. 8):
/// a 32-thread warp covering a 32x16 C tile, each thread a 4x4 sub-tile.
pub fn epilogue_store_pattern(staging: &EpilogueStaging, i: usize, j: usize) -> WarpIdx {
    WarpIdx::from_fn(|l| {
        let tm = l % 8;
        let tn = l / 8;
        let m = tm * 4 + i;
        let n = tn * 4 + j;
        Some(staging.addr(m, n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 7(b): 16-pt-per-thread writeback: 6.25% -> 100%.
    #[test]
    fn fig7b_sixteen_point() {
        let raw = pattern_utilization(&fft_writeback_pattern(16, false));
        assert!((raw - 0.0625).abs() < 1e-9, "raw {raw}");
        let swz = pattern_utilization(&fft_writeback_pattern(16, true));
        assert!((swz - 1.0).abs() < 1e-9, "swizzled {swz}");
    }

    /// Fig. 7(c): 8-pt-per-thread writeback: conflicted -> 100% with tid/2.
    #[test]
    fn fig7c_eight_point() {
        let raw = pattern_utilization(&fft_writeback_pattern(8, false));
        assert!(raw < 0.2, "raw should conflict heavily: {raw}");
        let swz = pattern_utilization(&fft_writeback_pattern(8, true));
        assert!((swz - 1.0).abs() < 1e-9, "swizzled {swz}");
    }

    /// Fig. 7(a): forwarding layouts. The VkFFT-style assignment collides
    /// on the column-major As tile (paper: 25% utilization); TurboFNO's
    /// contiguous assignment is conflict-free.
    #[test]
    fn fig7a_forwarding_layouts() {
        for ms in [64usize, 128] {
            let vk = pattern_utilization(&forward_to_as_pattern(
                ForwardLayout::VkFftStrided,
                ms,
                8,
            ));
            assert!(vk <= 0.26, "VkFFT layout should collide: {vk} (ms={ms})");
            let turbo = pattern_utilization(&forward_to_as_pattern(
                ForwardLayout::TurboContiguous,
                ms,
                8,
            ));
            assert!((turbo - 1.0).abs() < 1e-9, "turbo layout {turbo} (ms={ms})");
        }
    }

    /// Fig. 8: C-fragment staging writes: 25% raw, 100% with +tid/4.
    #[test]
    fn fig8_epilogue_swizzle() {
        let ms = 64;
        let raw = EpilogueStaging { ms, swizzled: false };
        let swz = EpilogueStaging { ms, swizzled: true };
        let mut raw_pats = Vec::new();
        let mut swz_pats = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                raw_pats.push(epilogue_store_pattern(&raw, i, j));
                swz_pats.push(epilogue_store_pattern(&swz, i, j));
            }
        }
        let u_raw = pattern_utilization(&raw_pats);
        let u_swz = pattern_utilization(&swz_pats);
        assert!((u_raw - 0.25).abs() < 1e-9, "raw {u_raw}");
        assert!((u_swz - 1.0).abs() < 1e-9, "swizzled {u_swz}");
    }

    /// The swizzle is a permutation: no two (m, n) pairs of a staging tile
    /// may collide on the same address — for every mode count we use.
    #[test]
    fn fig8_swizzle_is_injective() {
        for ms in [32usize, 64, 128] {
            for swizzled in [false, true] {
                let st = EpilogueStaging { ms, swizzled };
                let mut seen = std::collections::HashSet::new();
                for n in 0..8 {
                    for m in 0..ms {
                        assert!(
                            seen.insert(st.addr(m, n)),
                            "collision at m={m} n={n} ms={ms} swizzled={swizzled}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn staging_capacity_covers_swizzle() {
        for ms in [32usize, 64, 128] {
            let st = EpilogueStaging { ms, swizzled: true };
            let mut max_addr = 0;
            for n in 0..8 {
                for m in 0..ms {
                    max_addr = max_addr.max(st.addr(m, n));
                }
            }
            assert!(
                max_addr < st.elems(8),
                "ms={ms}: max {max_addr} elems {}",
                st.elems(8)
            );
        }
    }
}
