//! Whole-forward launch replay.
//!
//! A warm serving loop repeats the same forward over and over: same layer
//! shape, same variant, same weight-stacking layout, same operand buffers.
//! The cold path re-resolves the plan, re-leases scratch, re-builds every
//! kernel object and re-validates its launch parameters each time — all of
//! which is pure overhead once the first execution has proven the sequence.
//!
//! This module memoizes that launch sequence the way a CUDA graph does: the
//! first execution of a `(call shape, variant, stack layout, operand
//! buffers)` tuple records every kernel object it launches onto a
//! `ReplayTape`; on success the tape is frozen into a `ReplayArtifact`
//! together with the scratch leases it used (retained from the pool so no
//! other caller can reuse them) and the generation stamps of everything the
//! sequence depends on. A warm call replays the artifact: one pass over the
//! stored kernels, re-launched in order against the same buffers — no
//! planning, no pool traffic, no kernel assembly, and every per-kernel trace
//! cache (FFT butterfly traces, CGEMM main-loop traces, segmented-copy
//! address templates) already hot because the kernel *objects* are retained.
//!
//! Replay is bitwise-identical to the un-replayed path by construction: the
//! same kernel objects run against the same buffers in the same order, and
//! scratch contents never leak between runs because every pipeline stage
//! fully overwrites the scratch it reads (the pool's documented contract).
//!
//! ## Invalidation
//!
//! An artifact must never be served stale. Three generation stamps guard it:
//!
//! * [`Planner::generation`](crate::Planner::generation) — bumped by
//!   `Planner::clear`, so a replanned `TurboBest` resolution re-records;
//! * [`BufferPool::generation`](crate::BufferPool::generation) — process-
//!   unique per pool instance, so an artifact can never be replayed against
//!   a pool that does not own its retained scratch;
//! * [`Backend::worker_key`](crate::backend::Backend::worker_key) —
//!   hashes the executor configuration (worker
//!   count, parallel flag, legacy executor), so changing the worker setup
//!   re-records instead of replaying under a stale configuration.
//!
//! Shape, variant, options, exec mode, operand buffers and the full request
//! list of a serving queue are part of the *key*, so mutating any of them is
//! a miss (a fresh recording), not a stale hit. A stale artifact is evicted
//! on sight and its retained scratch returned to the pool.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use tfno_culib::PipelineRun;
use crate::backend::{lock_unpoisoned, BufferId, ExecMode, Kernel, LaunchError, LaunchRecord};

use crate::error::TfnoError;
use crate::pipeline::ExecCtx;

/// Artifacts kept per session before the oldest recording is evicted (and
/// its retained scratch released back to the pool).
pub(crate) const REPLAY_CAP: usize = 32;

/// One recorded launch: the kernel object itself plus its exec mode.
///
/// Retaining the object (not a description of it) is the point: its
/// internal trace caches stay warm across replays.
pub(crate) struct ReplayStep {
    pub kernel: Arc<dyn Kernel + Send + Sync>,
    pub mode: ExecMode,
}

/// A recording in progress, carried by [`ExecCtx`] while the first
/// execution of a sequence runs.
#[derive(Default)]
pub(crate) struct ReplayTape {
    /// Kernel launches in issue order.
    pub steps: Vec<ReplayStep>,
    /// Output plan: `(out_idx, end)` pairs in emission order — the steps
    /// since the previous boundary belong to `out[out_idx]`. Serving
    /// queues emit groups out of request order, so the mapping must be
    /// recorded, not inferred.
    pub plan: Vec<(usize, usize)>,
    /// Scratch leases whose release was deferred to the end of the
    /// recording; on success they are retained inside the artifact.
    pub scratch: Vec<BufferId>,
    /// Cleared when the sequence takes a path that cannot be replayed
    /// (the opaque multi-kernel `Pytorch` baseline).
    pub recordable: bool,
    /// Set when a recorded launch faulted. A tape that saw a fault is never
    /// frozen — even if a caller were to swallow the error — so the cache
    /// can only serve sequences that completed cleanly end to end.
    pub faulted: bool,
    /// Generation of the pool the recording leased its scratch from; the
    /// freeze-time verifier check (`verify::check_tape`) proves the tape
    /// is frozen against the same pool.
    pub pool_gen: u64,
}

impl ReplayTape {
    fn new(pool_gen: u64) -> Self {
        ReplayTape {
            recordable: true,
            pool_gen,
            ..ReplayTape::default()
        }
    }
}

/// A frozen, replayable whole-forward launch sequence.
pub(crate) struct ReplayArtifact {
    steps: Vec<ReplayStep>,
    plan: Vec<(usize, usize)>,
    /// Scratch buffers held out of the pool for the artifact's lifetime.
    retained: Vec<BufferId>,
    planner_gen: u64,
    pool_gen: u64,
    worker_key: u64,
}

/// Observability counters for the warm path (see
/// [`Session::replay_stats`](crate::Session::replay_stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Warm calls served by replaying a recorded artifact.
    pub hits: u64,
    /// Calls that recorded a fresh artifact (or ran unrecorded).
    pub misses: u64,
    /// Artifacts discarded because a generation stamp went stale
    /// (planner cleared, pool swapped, worker configuration changed).
    pub invalidations: u64,
    /// Replays that hit a device fault mid-sequence: the artifact was
    /// evicted and the call fell back to the functional (recording) path.
    pub faulted: u64,
    /// Artifacts currently cached.
    pub entries: u64,
}

/// Per-session artifact cache, shared between the synchronous surface and
/// the dispatch thread behind an `Arc<Mutex<..>>`.
pub(crate) struct ReplayCache {
    entries: HashMap<u64, Arc<ReplayArtifact>>,
    /// Insertion order, for FIFO eviction at [`REPLAY_CAP`].
    order: VecDeque<u64>,
    stats: ReplayStats,
}

impl ReplayCache {
    pub fn new() -> Self {
        ReplayCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: ReplayStats::default(),
        }
    }

    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            entries: self.entries.len() as u64,
            ..self.stats
        }
    }
}

enum Lookup {
    Hit(Arc<ReplayArtifact>),
    Stale(Arc<ReplayArtifact>),
    Miss,
}

/// Run `work` through the replay cache: serve a warm hit by replaying the
/// recorded sequence, otherwise execute `work` while recording it.
///
/// `n_out` is the number of `PipelineRun`s the call produces (1 for a
/// single-layer run, `reqs.len()` for a serving queue); `enable` gates the
/// whole mechanism (analytical sequences are memoized elsewhere — see
/// `Session::measure` — and virtual/mixed queues run unrecorded).
///
/// Fault handling: a replay that faults mid-sequence evicts its artifact
/// (restoring the retained scratch to the pool), counts a `faulted` stat,
/// and falls back to executing `work` on the functional path — the caller
/// never sees a replay-layer failure it could not have seen cold. A
/// recording whose work faults (or whose tape saw a fault) is abandoned,
/// never frozen.
pub(crate) fn try_execute(
    ctx: &mut ExecCtx<'_>,
    cache: &Mutex<ReplayCache>,
    key: u64,
    n_out: usize,
    enable: bool,
    work: impl FnOnce(&mut ExecCtx<'_>) -> Result<Vec<PipelineRun>, TfnoError>,
) -> Result<Vec<PipelineRun>, TfnoError> {
    if !enable {
        return work(ctx);
    }
    let looked_up = {
        let mut c = lock_unpoisoned(cache);
        let fresh = c.entries.get(&key).map(|a| {
            a.planner_gen == ctx.planner.generation()
                && a.pool_gen == ctx.pool.generation()
                && a.worker_key == ctx.dev.worker_key()
        });
        match fresh {
            Some(true) => {
                c.stats.hits += 1;
                Lookup::Hit(Arc::clone(&c.entries[&key]))
            }
            Some(false) => {
                c.stats.invalidations += 1;
                c.stats.misses += 1;
                let a = c.entries.remove(&key).expect("entry present");
                c.order.retain(|k| *k != key);
                Lookup::Stale(a)
            }
            None => {
                c.stats.misses += 1;
                Lookup::Miss
            }
        }
    };
    match looked_up {
        Lookup::Hit(a) => match try_replay(ctx, &a, n_out) {
            Ok(out) => Ok(out),
            Err(_fault) => {
                // The artifact replayed into a fault. Completed steps only
                // wrote scratch/output buffers the functional path fully
                // overwrites, so evict the artifact and re-record from the
                // still-unconsumed work closure.
                {
                    let mut c = lock_unpoisoned(cache);
                    c.stats.faulted += 1;
                    c.entries.remove(&key);
                    c.order.retain(|k| *k != key);
                }
                for &id in &a.retained {
                    ctx.pool.restore(ctx.dev, id);
                }
                record(ctx, cache, key, work)
            }
        },
        Lookup::Stale(a) => {
            for &id in &a.retained {
                ctx.pool.restore(ctx.dev, id);
            }
            record(ctx, cache, key, work)
        }
        Lookup::Miss => record(ctx, cache, key, work),
    }
}

/// Warm path: re-launch the stored kernel objects in order and split the
/// records back into per-request runs per the recorded plan. A faulted
/// step aborts the pass (the failed launch wrote nothing).
fn try_replay(
    ctx: &mut ExecCtx<'_>,
    artifact: &ReplayArtifact,
    n_out: usize,
) -> Result<Vec<PipelineRun>, LaunchError> {
    let mut records: Vec<LaunchRecord> = Vec::with_capacity(artifact.steps.len());
    for s in &artifact.steps {
        records.push(ctx.dev.try_launch(&*s.kernel, s.mode)?);
    }
    let mut out: Vec<PipelineRun> = (0..n_out).map(|_| PipelineRun::default()).collect();
    let mut start = 0;
    for &(idx, end) in &artifact.plan {
        out[idx].launches.extend_from_slice(&records[start..end]);
        start = end;
    }
    Ok(out)
}

/// Cold path: execute `work` with a fresh tape on the context; freeze the
/// tape into an artifact if every launch proved recordable and none
/// faulted.
fn record(
    ctx: &mut ExecCtx<'_>,
    cache: &Mutex<ReplayCache>,
    key: u64,
    work: impl FnOnce(&mut ExecCtx<'_>) -> Result<Vec<PipelineRun>, TfnoError>,
) -> Result<Vec<PipelineRun>, TfnoError> {
    ctx.tape = Some(ReplayTape::new(ctx.pool.generation()));
    let out = work(ctx);
    let tape = ctx.tape.take().expect("recording tape still installed");
    if out.is_err() || tape.faulted || !tape.recordable || tape.steps.is_empty() {
        // Unreplayable (or faulted) sequence: undo the deferred scratch
        // releases and leave the cache untouched (the call still counted
        // as a miss).
        for id in tape.scratch {
            ctx.pool.release(ctx.dev, id);
        }
        return out;
    }
    // Freeze-time verification: the tape must reference only scratch that
    // is still alive and leased from the generation it recorded against —
    // a stale or recycled reference would replay against someone else's
    // buffer. Rejection abandons the recording (the outputs it produced
    // are discarded with it: a tape the verifier cannot prove is a bug,
    // not a servable result).
    if crate::verify::verifier_enabled() {
        let steps = tape
            .steps
            .iter()
            .map(|s| (s.kernel.name(), s.kernel.access()));
        if let Err(hazard) = crate::verify::check_tape(ctx.pool, tape.pool_gen, &tape.scratch, steps)
        {
            for id in tape.scratch {
                ctx.pool.release(ctx.dev, id);
            }
            return Err(hazard.into());
        }
    }
    for &id in &tape.scratch {
        ctx.pool.retain(id);
    }
    let artifact = Arc::new(ReplayArtifact {
        steps: tape.steps,
        plan: tape.plan,
        retained: tape.scratch,
        planner_gen: ctx.planner.generation(),
        pool_gen: ctx.pool.generation(),
        worker_key: ctx.dev.worker_key(),
    });
    let mut c = lock_unpoisoned(cache);
    while c.order.len() >= REPLAY_CAP {
        let evicted = c.order.pop_front().expect("order non-empty");
        if let Some(old) = c.entries.remove(&evicted) {
            for &id in &old.retained {
                ctx.pool.restore(ctx.dev, id);
            }
        }
    }
    if let Some(old) = c.entries.insert(key, artifact) {
        // A same-key artifact can sneak back in if the key was recorded
        // twice before the first insert (not reachable today — jobs are
        // serialized per session — but never leak the retained leases).
        for &id in &old.retained {
            ctx.pool.restore(ctx.dev, id);
        }
    } else {
        c.order.push_back(key);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirror of the gpu-sim memo wedge-regression tests: a thread that
    /// panics while holding the replay-cache lock poisons the mutex, and
    /// every later session call would wedge if the cache used plain
    /// `lock().unwrap()` instead of `lock_unpoisoned`.
    #[test]
    fn caught_panic_while_holding_the_cache_lock_does_not_wedge_the_cache() {
        let cache = Arc::new(Mutex::new(ReplayCache::new()));
        let c2 = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = c2.lock().unwrap();
            panic!("poison the replay cache lock");
        })
        .join();
        assert!(cache.is_poisoned(), "the panic must have poisoned the lock");
        // The cache stays fully usable through the poison-stripping lock.
        let mut c = lock_unpoisoned(&cache);
        c.stats.misses += 1;
        c.order.push_back(7);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().entries, 0);
    }
}
