//! `Session` — the batch-first execution surface of the crate.
//!
//! The paper's thesis is that FNO performance is lost to per-stage round
//! trips; the pre-Session host API re-created that problem one level up:
//! every `run_variant_*` call took eight positional arguments, allocated
//! its scratch fresh, and callers threaded device, planner, options and
//! mode through every layer by hand. A [`Session`] owns that state once —
//! the simulated [`GpuDevice`], the memoizing [`Planner`], and a
//! size-class [`BufferPool`] — and executes [`LayerSpec`]s against it:
//!
//! ```
//! use turbofno::{LayerSpec, Session, Variant};
//!
//! let mut sess = Session::a100();
//! let spec = LayerSpec::d1(2, 16, 16, 128).modes(32).variant(Variant::FftOpt);
//! let x = sess.alloc("x", spec.input_len());
//! let w = sess.alloc("w", spec.weight_len());
//! let y = sess.alloc("y", spec.output_len());
//! // ... upload x/w ...
//! let run = sess.run(&spec, x, w, y);
//! assert_eq!(run.kernel_count(), 3); // FFT, CGEMM, iFFT
//! // A second same-shape run reuses the pooled scratch spectra:
//! sess.run(&spec, x, w, y);
//! assert!(sess.pool_stats().hits > 0);
//! ```
//!
//! [`Session::run_many`] is the serving entry point: requests of the same
//! shape share one `TurboBest` planning decision, run back-to-back through
//! the same pooled scratch, and — when they also share a weight buffer —
//! coalesce into a single stacked-batch launch sequence.

use crate::pipeline::{ExecCtx, LayerBufs, TurboOptions, Variant};
use crate::planner::{Planner, PlannerStats};
use crate::pool::{BufferPool, PoolStats};
use tfno_cgemm::WeightStacking;
use tfno_culib::{CopySegment, FnoProblem1d, FnoProblem2d, PipelineRun, SegmentedCopyKernel};
use tfno_gpu_sim::{BufferId, ExecMode, GpuDevice};
use tfno_num::C32;

/// Dimension-generic description of one Fourier-layer execution.
///
/// Built with [`LayerSpec::d1`]/[`LayerSpec::d2`] plus chained setters;
/// consumed by [`Session::run`]/[`Session::run_many`]. Until `.modes(..)`
/// is called the spec keeps the full spectrum (`nf = n`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    shape: SpecShape,
    /// Pipeline variant to execute (default [`Variant::TurboBest`]).
    pub variant: Variant,
    /// Turbo tuning/ablation knobs.
    pub opts: TurboOptions,
    /// Execution mode (default [`ExecMode::Functional`]).
    pub exec: ExecMode,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum SpecShape {
    D1 {
        batch: usize,
        k_in: usize,
        k_out: usize,
        n: usize,
        nf: usize,
    },
    D2 {
        batch: usize,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    },
}

impl LayerSpec {
    /// A 1D Fourier layer: `x [batch, k_in, n] -> y [batch, k_out, n]`.
    pub fn d1(batch: usize, k_in: usize, k_out: usize, n: usize) -> Self {
        LayerSpec {
            shape: SpecShape::D1 {
                batch,
                k_in,
                k_out,
                n,
                nf: n,
            },
            variant: Variant::TurboBest,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        }
    }

    /// A 2D Fourier layer: `x [batch, k_in, nx, ny] -> y [batch, k_out, nx, ny]`.
    pub fn d2(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize) -> Self {
        LayerSpec {
            shape: SpecShape::D2 {
                batch,
                k_in,
                k_out,
                nx,
                ny,
                nfx: nx,
                nfy: ny,
            },
            variant: Variant::TurboBest,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        }
    }

    /// Spec matching an existing 1D problem descriptor.
    pub fn from_problem_1d(p: &FnoProblem1d) -> Self {
        LayerSpec::d1(p.batch, p.k_in, p.k_out, p.n).modes(p.nf)
    }

    /// Spec matching an existing 2D problem descriptor.
    pub fn from_problem_2d(p: &FnoProblem2d) -> Self {
        LayerSpec::d2(p.batch, p.k_in, p.k_out, p.nx, p.ny).modes_xy(p.nfx, p.nfy)
    }

    /// Retain `nf` low-frequency modes per transformed axis (clamped to
    /// the axis length in 2D).
    pub fn modes(mut self, nf: usize) -> Self {
        match &mut self.shape {
            SpecShape::D1 { nf: m, .. } => *m = nf,
            SpecShape::D2 {
                nx, ny, nfx, nfy, ..
            } => {
                *nfx = nf.min(*nx);
                *nfy = nf.min(*ny);
            }
        }
        self
    }

    /// Retain an `nfx x nfy` corner (2D only).
    ///
    /// # Panics
    /// On a 1D spec — a 1D layer has a single mode count; use
    /// [`LayerSpec::modes`].
    pub fn modes_xy(mut self, nfx_new: usize, nfy_new: usize) -> Self {
        match &mut self.shape {
            SpecShape::D1 { .. } => panic!("modes_xy on a 1D LayerSpec; use .modes(nf)"),
            SpecShape::D2 { nfx, nfy, .. } => {
                *nfx = nfx_new;
                *nfy = nfy_new;
            }
        }
        self
    }

    /// Select the pipeline variant (default `TurboBest`).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Override the Turbo tuning knobs.
    pub fn options(mut self, opts: TurboOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution mode (default `Functional`).
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// The 1D problem descriptor, if this spec is 1D. Shape invariants
    /// (power-of-two length, mode bounds) are asserted here.
    pub fn problem_1d(&self) -> Option<FnoProblem1d> {
        match self.shape {
            SpecShape::D1 {
                batch,
                k_in,
                k_out,
                n,
                nf,
            } => Some(FnoProblem1d::new(batch, k_in, k_out, n, nf)),
            SpecShape::D2 { .. } => None,
        }
    }

    /// The 2D problem descriptor, if this spec is 2D.
    pub fn problem_2d(&self) -> Option<FnoProblem2d> {
        match self.shape {
            SpecShape::D1 { .. } => None,
            SpecShape::D2 {
                batch,
                k_in,
                k_out,
                nx,
                ny,
                nfx,
                nfy,
            } => Some(FnoProblem2d::new(batch, k_in, k_out, nx, ny, nfx, nfy)),
        }
    }

    /// Leading (batch) dimension.
    pub fn batch(&self) -> usize {
        match self.shape {
            SpecShape::D1 { batch, .. } | SpecShape::D2 { batch, .. } => batch,
        }
    }

    /// Required length of the `x` operand in complex elements.
    pub fn input_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 { batch, k_in, n, .. } => batch * k_in * n,
            SpecShape::D2 {
                batch, k_in, nx, ny, ..
            } => batch * k_in * nx * ny,
        }
    }

    /// Required length of the `w` operand (`k_in * k_out`).
    pub fn weight_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 { k_in, k_out, .. } | SpecShape::D2 { k_in, k_out, .. } => k_in * k_out,
        }
    }

    /// Required length of the `y` operand.
    pub fn output_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 {
                batch, k_out, n, ..
            } => batch * k_out * n,
            SpecShape::D2 {
                batch, k_out, nx, ny, ..
            } => batch * k_out * nx * ny,
        }
    }

    /// The same layer with the batch dimension scaled by `factor` — the
    /// shape of a coalesced stack of `factor` identical requests.
    fn stacked(&self, factor: usize) -> LayerSpec {
        let mut s = *self;
        match &mut s.shape {
            SpecShape::D1 { batch, .. } | SpecShape::D2 { batch, .. } => *batch *= factor,
        }
        s
    }
}

/// One queued layer execution for [`Session::run_many`].
#[derive(Clone, Copy, Debug)]
pub struct Request {
    pub spec: LayerSpec,
    pub x: BufferId,
    pub w: BufferId,
    pub y: BufferId,
}

/// An owning execution handle: simulated device + memoizing planner +
/// scratch buffer pool. The single way to execute Fourier layers (and,
/// via `tfno-model`, whole FNO forwards).
///
/// Sessions are cheap to create but meant to be long-lived: planner and
/// pool state warm up over the first request of each shape and every later
/// same-shape request skips planning and scratch allocation entirely.
pub struct Session {
    dev: GpuDevice,
    planner: Planner,
    pool: BufferPool,
}

impl Session {
    /// Wrap an existing device (its executor/memo configuration is kept).
    pub fn new(dev: GpuDevice) -> Self {
        Session {
            dev,
            planner: Planner::new(),
            pool: BufferPool::new(),
        }
    }

    /// A session over the paper's evaluation device.
    pub fn a100() -> Self {
        Session::new(GpuDevice::a100())
    }

    pub fn device(&self) -> &GpuDevice {
        &self.dev
    }

    pub fn device_mut(&mut self) -> &mut GpuDevice {
        &mut self.dev
    }

    /// The session-local `TurboBest` planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Planning counters: a warm same-shape request must add zero
    /// `simulated_launches`.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.stats()
    }

    /// Scratch-pool counters: a warm same-shape request must report
    /// `hits > 0`.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Allocate a named long-lived buffer (weights, persistent activations).
    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        self.dev.alloc(name, len)
    }

    /// Lease a real buffer from the pool (return it with [`Session::release`]).
    pub fn acquire(&mut self, len: usize) -> BufferId {
        self.pool.acquire(&mut self.dev, len)
    }

    /// Lease a storage-free virtual buffer from the pool.
    pub fn acquire_virtual(&mut self, len: usize) -> BufferId {
        self.pool.acquire_virtual(&mut self.dev, len)
    }

    /// Return a leased buffer to the pool.
    pub fn release(&mut self, id: BufferId) {
        self.pool.release(&self.dev, id);
    }

    /// Donate a buffer the pool never leased (e.g. one created with
    /// [`Session::alloc`] that is no longer needed) to the free lists.
    pub fn adopt(&mut self, id: BufferId) {
        self.pool.adopt(&self.dev, id);
    }

    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        self.dev.upload(id, data);
    }

    pub fn download(&self, id: BufferId) -> Vec<C32> {
        self.dev.download(id)
    }

    fn ctx(&mut self) -> ExecCtx<'_> {
        ExecCtx {
            dev: &mut self.dev,
            pool: &mut self.pool,
            planner: &self.planner,
        }
    }

    fn validate(&self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) {
        let mem = &self.dev.memory;
        assert_eq!(mem.len(x), spec.input_len(), "x length != spec input_len");
        assert_eq!(mem.len(w), spec.weight_len(), "w length != spec weight_len");
        assert_eq!(mem.len(y), spec.output_len(), "y length != spec output_len");
    }

    /// Execute one layer spec. `TurboBest` consults the session planner
    /// (memoized per shape); scratch comes from the session pool.
    pub fn run(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> PipelineRun {
        self.validate(spec, x, w, y);
        self.run_unchecked(spec, spec.variant, x, w, y)
    }

    fn run_unchecked(
        &mut self,
        spec: &LayerSpec,
        variant: Variant,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> PipelineRun {
        self.run_bufs(spec, variant, LayerBufs::shared(x, w, y))
    }

    fn run_bufs(&mut self, spec: &LayerSpec, variant: Variant, bufs: LayerBufs) -> PipelineRun {
        let (opts, exec) = (spec.opts, spec.exec);
        if let Some(p) = spec.problem_1d() {
            self.ctx().run_1d(&p, variant, bufs, &opts, exec)
        } else {
            let p = spec.problem_2d().expect("spec is 1D or 2D");
            self.ctx().run_2d(&p, variant, bufs, &opts, exec)
        }
    }

    /// Resolve `TurboBest` to a concrete variant (one planner consult; a
    /// cache hit for every shape the session has planned before).
    fn resolve(&mut self, spec: &LayerSpec) -> Variant {
        if spec.variant != Variant::TurboBest {
            return spec.variant;
        }
        if let Some(p) = spec.problem_1d() {
            self.planner.plan_1d(&self.dev.config, &p, &spec.opts)
        } else {
            let p = spec.problem_2d().expect("spec is 1D or 2D");
            self.planner.plan_2d(&self.dev.config, &p, &spec.opts)
        }
    }

    /// Execute a queue of layer requests, coalescing where possible.
    ///
    /// * Requests with identical specs share one planning decision —
    ///   `TurboBest` is resolved once per shape group, so N same-shape
    ///   requests cost exactly one (possibly cached) plan.
    /// * Within a shape group, every stackable request (functional mode,
    ///   value-carrying buffers) joins **one** stack along the batch axis
    ///   and executes as a single batched launch sequence — *even when the
    ///   requests use different weight buffers*: the weights are packed
    ///   into a pooled strided buffer and the kernels read one slice per
    ///   stacked sub-batch ([`WeightStacking`]). Per-sample results are
    ///   bitwise-identical to sequential [`Session::run`] calls because
    ///   every kernel treats batch entries independently.
    /// * Everything else (virtual buffers, analytical mode) runs
    ///   back-to-back through the shared scratch pool, so N same-shape
    ///   requests allocate scratch once and reuse it N−1 times.
    ///
    /// Returns one [`PipelineRun`] per request, in order. A coalesced
    /// group reports its launches (a device-side gather, the pipeline
    /// kernels, a device-side scatter) on the group's first request; the
    /// other members report empty runs (their outputs are still written).
    ///
    /// The queue is a *parallel batch*: no request's output buffer may be
    /// one of its own or another request's operands (coalescing and shape
    /// grouping reorder execution, so chained or in-place layers must go
    /// through sequential [`Session::run`] calls). Violations panic.
    pub fn run_many(&mut self, reqs: &[Request]) -> Vec<PipelineRun> {
        for r in reqs {
            self.validate(&r.spec, r.x, r.w, r.y);
        }
        for (i, a) in reqs.iter().enumerate() {
            assert!(
                a.y != a.x && a.y != a.w,
                "run_many request {i} is self-aliased (y == {}): group-reordered \
                 execution would run it in-place; use a distinct output buffer or a \
                 sequential `run` call",
                if a.y == a.x { "x" } else { "w" }
            );
            for (j, b) in reqs.iter().enumerate() {
                assert!(
                    i == j || (a.y != b.x && a.y != b.w && a.y != b.y),
                    "run_many requests must not alias outputs: request {i}'s y is an \
                     operand of request {j}; chain dependent layers through \
                     sequential `run` calls instead"
                );
            }
        }
        let mut out: Vec<Option<PipelineRun>> = vec![None; reqs.len()];
        let mut claimed = vec![false; reqs.len()];
        for i in 0..reqs.len() {
            if claimed[i] {
                continue;
            }
            // The shape group: every unclaimed request with an identical spec.
            let group: Vec<usize> = (i..reqs.len())
                .filter(|&j| !claimed[j] && reqs[j].spec == reqs[i].spec)
                .collect();
            for &j in &group {
                claimed[j] = true;
            }
            let concrete = self.resolve(&reqs[i].spec);

            // One stack for the whole shape group, mixed weights included;
            // non-stackable members (virtual buffers, analytical mode) run
            // sequentially, as does a singleton — it gains nothing from
            // the staging copies.
            let (mut stack, mut rest): (Vec<usize>, Vec<usize>) = group
                .iter()
                .copied()
                .partition(|&j| self.stackable(&reqs[j]));
            if stack.len() < 2 {
                rest.append(&mut stack);
                rest.sort_unstable();
            }
            if !stack.is_empty() {
                let run = self.run_stacked(reqs, &stack, concrete);
                let mut run = Some(run);
                for &j in &stack {
                    out[j] = Some(run.take().unwrap_or_default());
                }
            }
            for j in rest {
                let r = &reqs[j];
                out[j] = Some(self.run_unchecked(&r.spec, concrete, r.x, r.w, r.y));
            }
        }
        out.into_iter().map(|r| r.expect("every request ran")).collect()
    }

    /// Stacking moves values through device-side gather/scatter copies, so
    /// it requires functional execution on real buffers.
    fn stackable(&self, r: &Request) -> bool {
        r.spec.exec == ExecMode::Functional
            && !self.dev.memory.is_virtual(r.x)
            && !self.dev.memory.is_virtual(r.y)
            && !self.dev.memory.is_virtual(r.w)
    }

    /// Execute a same-spec stack of requests as one batched launch
    /// sequence:
    ///
    /// 1. one device-side gather launch assembles the stacked input
    ///    `[x_0 .. x_{k-1}]` — and, when the requests use different weight
    ///    buffers, packs `[w_0 .. w_{k-1}]` into a pooled strided weight
    ///    buffer in the same launch;
    /// 2. the pipeline runs once at `batch * stack_len`, with the weight
    ///    operand advancing one slice per stacked sub-batch
    ///    ([`WeightStacking`]);
    /// 3. one device-side scatter launch redistributes the stacked output
    ///    to the requests' `y` buffers.
    ///
    /// No values round-trip through the host, and the launch count is the
    /// same whether the stack shares one weight buffer or uses `k`
    /// distinct ones.
    fn run_stacked(&mut self, reqs: &[Request], stack: &[usize], concrete: Variant) -> PipelineRun {
        let base = reqs[stack[0]].spec;
        let spec = base.stacked(stack.len());
        let (in_len, out_len, w_len) = (base.input_len(), base.output_len(), base.weight_len());

        let sx = self.acquire(spec.input_len());
        let sy = self.acquire(spec.output_len());

        // Gather inputs (and, for mixed weights, the packed weight stack)
        // in one launch.
        let mut gather: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: reqs[j].x,
                src_base: 0,
                dst: sx,
                dst_base: pos * in_len,
                len: in_len,
            })
            .collect();
        let mixed = stack.iter().any(|&j| reqs[j].w != reqs[stack[0]].w);
        let (w, ws, sw) = if mixed {
            let sw = self.acquire(stack.len() * w_len);
            gather.extend(stack.iter().enumerate().map(|(pos, &j)| CopySegment {
                src: reqs[j].w,
                src_base: 0,
                dst: sw,
                dst_base: pos * w_len,
                len: w_len,
            }));
            (sw, WeightStacking::strided(w_len, base.batch()), Some(sw))
        } else {
            (reqs[stack[0]].w, WeightStacking::SHARED, None)
        };

        let mut run = PipelineRun::default();
        let gather = SegmentedCopyKernel::new("serve.gather", gather);
        run.push(self.dev.launch(&gather, ExecMode::Functional));

        let pipeline = self.run_bufs(&spec, concrete, LayerBufs { x: sx, w, y: sy, ws });
        run.launches.extend(pipeline.launches);

        let scatter: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: sy,
                src_base: pos * out_len,
                dst: reqs[j].y,
                dst_base: 0,
                len: out_len,
            })
            .collect();
        let scatter = SegmentedCopyKernel::new("serve.scatter", scatter);
        run.push(self.dev.launch(&scatter, ExecMode::Functional));

        self.release(sx);
        self.release(sy);
        if let Some(sw) = sw {
            self.release(sw);
        }
        run
    }

    /// Model one spec analytically on pooled virtual buffers (no values
    /// move; addresses and event counts only). The spec's `exec` mode is
    /// ignored — measurement is always [`ExecMode::Analytical`].
    pub fn measure(&mut self, spec: &LayerSpec) -> PipelineRun {
        let x = self.acquire_virtual(spec.input_len());
        let w = self.acquire_virtual(spec.weight_len());
        let y = self.acquire_virtual(spec.output_len());
        let spec = spec.exec(ExecMode::Analytical);
        let run = self.run_unchecked(&spec, spec.variant, x, w, y);
        self.release(x);
        self.release(w);
        self.release(y);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_lengths() {
        let s = LayerSpec::d1(2, 8, 16, 128).modes(32);
        assert_eq!(s.input_len(), 2 * 8 * 128);
        assert_eq!(s.weight_len(), 8 * 16);
        assert_eq!(s.output_len(), 2 * 16 * 128);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(2, 8, 16, 128, 32));
        assert!(s.problem_2d().is_none());

        let s2 = LayerSpec::d2(1, 4, 4, 32, 64).modes(32);
        let p2 = s2.problem_2d().unwrap();
        assert_eq!((p2.nfx, p2.nfy), (32, 32), "modes clamp to the axis");
        assert_eq!(
            LayerSpec::d2(1, 4, 4, 32, 64).modes_xy(8, 32).problem_2d().unwrap(),
            FnoProblem2d::new(1, 4, 4, 32, 64, 8, 32)
        );
    }

    #[test]
    fn spec_defaults_are_turbo_best_functional_full_spectrum() {
        let s = LayerSpec::d1(1, 4, 4, 64);
        assert_eq!(s.variant, Variant::TurboBest);
        assert_eq!(s.exec, ExecMode::Functional);
        assert_eq!(s.problem_1d().unwrap().nf, 64);
    }

    #[test]
    #[should_panic(expected = "modes_xy on a 1D")]
    fn modes_xy_rejects_1d() {
        let _ = LayerSpec::d1(1, 1, 1, 64).modes_xy(4, 4);
    }

    #[test]
    fn stacked_scales_only_batch() {
        let s = LayerSpec::d1(3, 8, 8, 128).modes(32).stacked(4);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(12, 8, 8, 128, 32));
    }

    #[test]
    #[should_panic(expected = "input_len")]
    fn run_validates_buffer_lengths() {
        let mut sess = Session::a100();
        let spec = LayerSpec::d1(1, 2, 2, 64).variant(Variant::FftOpt);
        let x = sess.alloc("x", 7); // wrong
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        sess.run(&spec, x, w, y);
    }

    #[test]
    fn measure_is_analytical_and_pools_its_buffers() {
        let mut sess = Session::a100();
        let spec = LayerSpec::d1(2, 8, 8, 128).modes(32).variant(Variant::FftOpt);
        let a = sess.measure(&spec);
        assert_eq!(a.kernel_count(), 3);
        assert!(a.total_us() > 0.0);
        let cold = sess.pool_stats();
        let b = sess.measure(&spec);
        assert_eq!(a.total_stats(), b.total_stats());
        assert!(
            sess.pool_stats().hits > cold.hits,
            "second measure must recycle the virtual operand buffers"
        );
    }
}
