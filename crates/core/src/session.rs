//! `Session` — the batch-first execution surface of the crate.
//!
//! The paper's thesis is that FNO performance is lost to per-stage round
//! trips; the pre-Session host API re-created that problem one level up:
//! every `run_variant_*` call took eight positional arguments, allocated
//! its scratch fresh, and callers threaded device, planner, options and
//! mode through every layer by hand. A [`Session`] owns that state once —
//! an execution [`Backend`] (the simulated
//! device by default), the memoizing [`Planner`], and a size-class
//! [`BufferPool`] — and executes [`LayerSpec`]s against it:
//!
//! ```
//! use turbofno::{LayerSpec, Session, Variant};
//!
//! let mut sess = Session::a100();
//! let spec = LayerSpec::d1(2, 16, 16, 128).modes(32).variant(Variant::FftOpt);
//! let x = sess.alloc("x", spec.input_len());
//! let w = sess.alloc("w", spec.weight_len());
//! let y = sess.alloc("y", spec.output_len());
//! // ... upload x/w ...
//! let run = sess.run(&spec, x, w, y);
//! assert_eq!(run.kernel_count(), 3); // FFT, CGEMM, iFFT
//! // A second same-shape-same-buffers run replays the recorded launch
//! // sequence — no planning, no scratch leasing, no kernel assembly:
//! let warm = sess.run(&spec, x, w, y);
//! assert_eq!(warm.kernel_count(), 3);
//! assert_eq!(sess.replay_stats().hits, 1);
//! ```
//!
//! [`Session::run_many`] is the serving entry point: requests of the same
//! shape share one `TurboBest` planning decision, run back-to-back through
//! the same pooled scratch, and — when they also share a weight buffer —
//! coalesce into a single stacked-batch launch sequence.
//!
//! ## Warm-path replay
//!
//! Every functional `run`/`run_many` (and their submitted halves) goes
//! through the whole-forward replay cache (`replay.rs`): the first call of
//! a `(shape, variant, options, stack layout, operand buffers)` tuple
//! records its complete launch sequence — kernel objects included — as a
//! replayable artifact that also retains the scratch it leased; every
//! later identical call re-issues that sequence in one pass. Results are
//! bitwise-identical to the cold path. Artifacts are invalidated (never
//! served stale) when the planner is cleared, the pool is swapped, or the
//! device's worker configuration changes; changing shape, variant,
//! options, stack depth or weight-stacking layout is simply a different
//! key. [`Session::replay_stats`] exposes hits/misses/invalidations.
//!
//! ## Async layer dispatch
//!
//! [`Session::submit`]/[`Session::submit_many`] are the asynchronous halves
//! of `run`/`run_many`: they enqueue the same launch sequence on the
//! session's *dispatch thread* — one long-lived thread, created at the
//! first submit and reused for every later one — and return a
//! [`LaunchHandle`] immediately, so the host can do unrelated work — an
//! FNO layer's pointwise bypass, the next batch's staging — while the
//! simulated device executes. Up to [`Session::pipeline_depth`] submits
//! ride the in-order queue concurrently; past that, `submit` waits for the
//! oldest job before enqueueing (backpressure, never reordering).
//! [`Session::wait`] (or [`Session::wait_many`]) synchronizes and returns
//! the same [`PipelineRun`]s the synchronous call would have; outputs are
//! bitwise-identical because the dispatched work *is* the synchronous code
//! path, merely running on another thread.
//!
//! While dispatched work is in flight the device and pool live on the
//! dispatch thread: any `&mut Session` method except `submit`/`submit_many`
//! first synchronizes (so `submit` → `run` is legal and simply
//! serializes), while `&self` inspection methods ([`Session::download`],
//! [`Session::device`], [`Session::pool_stats`]) panic rather than observe
//! half-complete state (their `try_*` twins return
//! [`TfnoError::InFlight`] instead). Submits themselves validate against a
//! shadow length ledger so a deep pipeline never drains just to check
//! shapes. Buffers leased before a `submit` stay leased until after the
//! `wait` — the lease ledger travels with the pool, so in-flight layers
//! keep their operands pinned.
//!
//! ## Failure semantics
//!
//! Every entry point has a typed twin — [`Session::try_run`],
//! [`Session::try_run_many`], [`Session::try_submit`],
//! [`Session::try_submit_many`], [`Session::try_wait`] /
//! [`Session::try_wait_many`] — returning `Result<_, `[`TfnoError`]`>`.
//! The legacy panicking surface is a thin wrapper over the same engine, so
//! the success path is bitwise-identical.
//!
//! Transient device faults (see [`FaultPlan`]) are retried
//! under the session's [`RetryPolicy`]; a fused variant that keeps
//! faulting is re-planned onto the unfused `FftOpt` pipeline (the
//! *degradation ladder*) before the error surfaces. Failed launches write
//! nothing, so every retry — and the final success — is bitwise-identical
//! to a fault-free run of the same variant.
//!
//! The dispatch thread *self-heals*: a dispatched job that panics is
//! caught there, scratch leases the unwind leaked are released, and only
//! that job's handle reports the failure — panics park per-handle
//! ([`Session::wait`] re-raises the payload, [`Session::try_wait`] returns
//! [`TfnoError::Fatal`]) and later submits proceed unaffected. A handle
//! dropped without `wait` is *abandoned*: its work still completes, its
//! result is discarded at the next synchronizing call (a parked panic is
//! re-raised there). [`Session::recovery_stats`] counts all of it.

use crate::error::{RecoveryStats, RetryPolicy, TfnoError};
use crate::pipeline::{ExecCtx, LayerBufs, TurboOptions, Variant};
use crate::planner::{hash_device_config, Planner, PlannerStats};
use crate::pool::{BufferPool, PoolStats};
use crate::replay::{self, ReplayCache, ReplayStats};
use crate::verify::{check_queue_aliasing, verifier_enabled, PlanHazard, PlanVerifier, QueueAccess};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tfno_cgemm::WeightStacking;
use tfno_culib::{
    CopySegment, FnoProblem1d, FnoProblem2d, PipelineRun, SegmentedCopyKernel, SpectralShape,
    MAX_RANK,
};
use crate::backend::{
    lock_unpoisoned, seq_insert, seq_lookup, AnyBackend, Backend, BufferId, DeferredWindow,
    ExecMode, FaultPlan, FaultStats, LaunchError, PendingLaunch, SimBackend,
};
use tfno_num::C32;

/// Rank-generic description of one Fourier-layer execution.
///
/// Built with [`LayerSpec::d1`]/[`LayerSpec::d2`]/[`LayerSpec::d3`] (or
/// [`LayerSpec::from_shape`] over any [`SpectralShape`]) plus chained
/// setters; consumed by [`Session::run`]/[`Session::run_many`]. Until
/// `.modes(..)` is called the spec keeps the full spectrum on every axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    shape: SpectralShape,
    /// Pipeline variant to execute (default [`Variant::TurboBest`]).
    pub variant: Variant,
    /// Turbo tuning/ablation knobs.
    pub opts: TurboOptions,
    /// Execution mode (default [`ExecMode::Functional`]).
    pub exec: ExecMode,
}

impl LayerSpec {
    /// A spec over an arbitrary-rank spectral shape (the generic entry the
    /// `d1`/`d2`/`d3` conveniences delegate to).
    pub fn from_shape(shape: SpectralShape) -> Self {
        LayerSpec {
            shape,
            variant: Variant::TurboBest,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        }
    }

    /// A 1D Fourier layer: `x [batch, k_in, n] -> y [batch, k_out, n]`.
    pub fn d1(batch: usize, k_in: usize, k_out: usize, n: usize) -> Self {
        LayerSpec::from_shape(SpectralShape::d1(batch, k_in, k_out, n))
    }

    /// A 2D Fourier layer: `x [batch, k_in, nx, ny] -> y [batch, k_out, nx, ny]`.
    pub fn d2(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize) -> Self {
        LayerSpec::from_shape(SpectralShape::d2(batch, k_in, k_out, nx, ny))
    }

    /// A 3D Fourier layer:
    /// `x [batch, k_in, nx, ny, nz] -> y [batch, k_out, nx, ny, nz]`.
    pub fn d3(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize, nz: usize) -> Self {
        LayerSpec::from_shape(SpectralShape::d3(batch, k_in, k_out, nx, ny, nz))
    }

    /// Spec matching an existing 1D problem descriptor.
    pub fn from_problem_1d(p: &FnoProblem1d) -> Self {
        LayerSpec::d1(p.batch, p.k_in, p.k_out, p.n).modes(p.nf)
    }

    /// Spec matching an existing 2D problem descriptor.
    pub fn from_problem_2d(p: &FnoProblem2d) -> Self {
        LayerSpec::d2(p.batch, p.k_in, p.k_out, p.nx, p.ny).modes_xy(p.nfx, p.nfy)
    }

    /// Retain `nf` low-frequency modes per transformed axis, clamped to
    /// each axis length — one clamp rule shared by every rank.
    ///
    /// The clamp is to the *full* axis length, not `n/2`: retained modes
    /// count complex spectrum entries from DC upward (this formulation has
    /// no Hermitian-symmetry truncation), so `.modes(n)` keeps the whole
    /// spectrum and any larger request degrades to exactly that instead of
    /// building an invalid problem that panics downstream.
    pub fn modes(mut self, nf: usize) -> Self {
        let per_axis = [nf; MAX_RANK];
        self.shape = self.shape.with_modes(&per_axis[..self.shape.rank]);
        self
    }

    /// Retain an `nfx x nfy` corner (2D only), with the same per-axis
    /// clamping as [`LayerSpec::modes`] — `.modes(k)` and `.modes_xy(k, k)`
    /// agree on every input, in and out of range.
    ///
    /// # Panics
    /// On any other rank — a 1D layer has a single mode count (use
    /// [`LayerSpec::modes`]); a 3D layer has three
    /// ([`LayerSpec::modes_xyz`]).
    pub fn modes_xy(mut self, nfx: usize, nfy: usize) -> Self {
        match self.shape.rank {
            1 => panic!("modes_xy on a 1D LayerSpec; use .modes(nf)"),
            2 => {}
            r => panic!("modes_xy on a {r}D LayerSpec; use .modes_xyz(nfx, nfy, nfz)"),
        }
        self.shape = self.shape.with_modes(&[nfx, nfy]);
        self
    }

    /// Retain an `nfx x nfy x nfz` corner (3D only), with the same
    /// per-axis clamping as [`LayerSpec::modes`].
    ///
    /// # Panics
    /// On any other rank.
    pub fn modes_xyz(mut self, nfx: usize, nfy: usize, nfz: usize) -> Self {
        let r = self.shape.rank;
        assert!(r == 3, "modes_xyz on a {r}D LayerSpec; use .modes(nf) or .modes_xy(nfx, nfy)");
        self.shape = self.shape.with_modes(&[nfx, nfy, nfz]);
        self
    }

    /// Select the pipeline variant (default `TurboBest`).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Override the Turbo tuning knobs.
    pub fn options(mut self, opts: TurboOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution mode (default `Functional`).
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// The spectral shape this spec executes.
    pub fn shape(&self) -> SpectralShape {
        self.shape
    }

    /// The 1D problem descriptor, if this spec is rank 1.
    pub fn problem_1d(&self) -> Option<FnoProblem1d> {
        self.shape.to_problem_1d()
    }

    /// The 2D problem descriptor, if this spec is rank 2.
    pub fn problem_2d(&self) -> Option<FnoProblem2d> {
        self.shape.to_problem_2d()
    }

    /// Assert the shape invariants (power-of-two lengths, mode bounds) so
    /// shape panics surface on the submitting thread, not inside a
    /// dispatch.
    fn assert_valid_shape(&self) {
        self.shape.validate();
    }

    /// Leading (batch) dimension.
    pub fn batch(&self) -> usize {
        self.shape.batch
    }

    /// Required length of the `x` operand in complex elements.
    pub fn input_len(&self) -> usize {
        self.shape.input_len()
    }

    /// Required length of the `w` operand (`k_in * k_out`).
    pub fn weight_len(&self) -> usize {
        self.shape.weight_len()
    }

    /// Required length of the `y` operand.
    pub fn output_len(&self) -> usize {
        self.shape.output_len()
    }

    /// The same layer with the batch dimension scaled by `factor` — the
    /// shape of a coalesced stack of `factor` identical requests.
    fn stacked(&self, factor: usize) -> LayerSpec {
        let mut s = *self;
        s.shape.batch *= factor;
        s
    }
}

/// One queued layer execution for [`Session::run_many`].
#[derive(Clone, Copy, Debug)]
pub struct Request {
    pub spec: LayerSpec,
    pub x: BufferId,
    pub w: BufferId,
    pub y: BufferId,
}

/// Ticket for work dispatched with [`Session::submit`] or
/// [`Session::submit_many`]. Redeem it with [`Session::wait`] /
/// [`Session::wait_many`] (or their `try_*` twins) on the session that
/// issued it — handles are session-bound and single-use (consumed by the
/// wait).
///
/// Dropping a handle without waiting does not cancel the work, but it no
/// longer strands its result either: the drop registers the handle as
/// *abandoned*, and the session's next synchronizing call discards the
/// parked result (re-raising its panic payload, if the work panicked) and
/// counts it in [`RecoveryStats::abandoned_handles`].
#[derive(Debug)]
#[must_use = "dispatched work completes, but its PipelineRun is lost unless the handle is waited on"]
pub struct LaunchHandle {
    session: u64,
    seq: u64,
    /// Shared abandoned-handle registry of the issuing session; disarmed
    /// (`None`) when a wait redeems the handle.
    abandoned: Option<Arc<Mutex<Vec<u64>>>>,
}

impl LaunchHandle {
    /// Redeem on the issuing session with a deadline — sugar for
    /// [`Session::wait_timeout`].
    pub fn wait_timeout<B: Backend>(
        self,
        sess: &mut Session<B>,
        timeout: Duration,
    ) -> Result<Vec<PipelineRun>, (Option<LaunchHandle>, TfnoError)> {
        sess.wait_timeout(self, timeout)
    }
}

impl Drop for LaunchHandle {
    fn drop(&mut self) {
        if let Some(reg) = self.abandoned.take() {
            lock_unpoisoned(&reg).push(self.seq);
        }
    }
}

/// A dispatched pipeline body: runs against the thread-resident state and
/// yields one `PipelineRun` per request, or the typed error the resilient
/// engine could not recover from.
type DispatchWork =
    Box<dyn FnOnce(&mut ExecCtx<'_>) -> Result<Vec<PipelineRun>, TfnoError> + Send>;

/// Parked terminal state of one dispatched job, held until its handle is
/// redeemed (or the handle is abandoned and a synchronize discards it).
enum Outcome {
    Done(Vec<PipelineRun>),
    /// The resilient engine exhausted retries/degradation (or validation
    /// raced a buffer change); only this job's handle reports it.
    Failed(TfnoError),
    /// The work panicked; the dispatch thread healed (leaked leases
    /// released) and the payload waits here for the handle's wait.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Work items for the session's long-lived dispatch thread.
enum Job<B: Backend> {
    /// Move the device and pool onto the dispatch thread (boxed so the
    /// queue slot stays small).
    Install(Box<(B, BufferPool)>),
    /// Execute one dispatched pipeline; the result travels back over the
    /// in-order results channel tagged with `seq`.
    Work { seq: u64, work: DispatchWork },
    /// Hand the device and pool back to the session (synchronize).
    Return,
}

/// The session's persistent dispatch thread: created at the first
/// `submit`, reused for every later one, joined on drop. Holds the device
/// and pool between `Install` and `Return` so a deep pipeline of submits
/// pays zero thread spawns and zero state hand-offs per job.
/// What a dispatched job reports back: its sequence number plus either
/// the job's typed result or its panic payload (`std::thread::Result`
/// captures the unwind).
type JobOutcome = (u64, std::thread::Result<Result<Vec<PipelineRun>, TfnoError>>);

struct Dispatcher<B: Backend> {
    jobs: mpsc::Sender<Job<B>>,
    results: mpsc::Receiver<JobOutcome>,
    state_back: mpsc::Receiver<Box<(B, BufferPool)>>,
    join: std::thread::JoinHandle<()>,
}

/// Body of the dispatch thread: drain jobs in order until the session
/// drops its sender. The device and pool live in `state` and are only
/// *borrowed* per job, so a panicking pipeline can never lose them — the
/// panic payload rides the results channel and the thread keeps serving.
///
/// Self-healing: a snapshot of the pool's lease ledger is taken before
/// each job, so when the job unwinds, every lease it acquired and leaked
/// (pipeline scratch, staging buffers, a live recording tape's deferred
/// releases) is released here before the next job runs. Only the panicked
/// job's handle observes the failure.
fn dispatch_loop<B: Backend>(
    jobs: mpsc::Receiver<Job<B>>,
    results: mpsc::Sender<JobOutcome>,
    state_back: mpsc::Sender<Box<(B, BufferPool)>>,
    planner: Arc<Planner>,
    recovery: Arc<Mutex<RecoveryStats>>,
) {
    let mut state: Option<Box<(B, BufferPool)>> = None;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Install(s) => state = Some(s),
            Job::Work { seq, work } => {
                let s = state.as_mut().expect("Work job follows an Install");
                let (dev, pool) = &mut **s;
                let before = pool.leased_snapshot();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = ExecCtx {
                        dev: &mut *dev,
                        pool: &mut *pool,
                        planner: &planner,
                        tape: None,
                        verify: verifier_enabled().then(PlanVerifier::new),
                    };
                    work(&mut ctx)
                }));
                if result.is_err() {
                    let leaked: Vec<BufferId> = pool
                        .leased_snapshot()
                        .difference(&before)
                        .copied()
                        .collect();
                    let mut r = lock_unpoisoned(&recovery);
                    r.jobs_healed += 1;
                    r.leases_recovered += leaked.len() as u64;
                    drop(r);
                    for id in leaked {
                        pool.release(&*dev, id);
                    }
                }
                if results.send((seq, result)).is_err() {
                    return; // session gone; nothing left to serve
                }
            }
            Job::Return => {
                let s = state.take().expect("Return job follows an Install");
                if state_back.send(s).is_err() {
                    return;
                }
            }
        }
    }
}

/// Counters for the persistent dispatch thread (see
/// [`Session::dispatch_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dispatch threads created over the session's lifetime. Stays at 1 no
    /// matter how many submits ran (the thread is reused, not respawned).
    pub threads_spawned: u64,
    /// Jobs enqueued on the dispatch thread.
    pub jobs_dispatched: u64,
    /// High-water mark of concurrently in-flight jobs (bounded by
    /// [`Session::pipeline_depth`]).
    pub max_in_flight: u64,
}

/// Default in-flight depth of the dispatch pipeline: double-buffered — the
/// host stages submit N+1 while the device runs submit N.
const DEFAULT_PIPELINE_DEPTH: usize = 2;

static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

const IN_FLIGHT: &str = "session has in-flight submitted work; wait on its LaunchHandle \
                         (any `&mut Session` method also synchronizes) before reading \
                         session state, or use the typed try_download/try_device/\
                         try_pool_stats inspectors for a recoverable InFlight error";

/// An owning execution handle: simulated device + memoizing planner +
/// scratch buffer pool. The single way to execute Fourier layers (and,
/// via `tfno-model`, whole FNO forwards).
///
/// Sessions are cheap to create but meant to be long-lived: planner and
/// pool state warm up over the first request of each shape and every later
/// same-shape request skips planning and scratch allocation entirely.
///
/// Execution is synchronous ([`Session::run`], [`Session::run_many`]) or
/// asynchronous ([`Session::submit`], [`Session::submit_many`] — see the
/// [module docs](self) for the dispatch model); both produce bitwise-equal
/// results.
pub struct Session<B: Backend = SimBackend> {
    /// `None` exactly while dispatched work is in flight (the device lives
    /// on the dispatch thread between `Install` and `Return`).
    dev: Option<B>,
    /// Travels with the device so in-flight pipelines lease scratch and
    /// leases pinned by the host stay tracked.
    pool: Option<BufferPool>,
    /// Shared with the dispatch thread; all planner state is interior-mutex.
    planner: Arc<Planner>,
    /// Whole-forward replay cache, shared with the dispatch thread.
    replay: Arc<Mutex<ReplayCache>>,
    id: u64,
    next_seq: u64,
    /// Max jobs in flight before `submit` applies backpressure.
    depth: usize,
    dispatcher: Option<Dispatcher<B>>,
    /// Sequence numbers of jobs on the dispatch thread, oldest first.
    inflight: VecDeque<u64>,
    /// Terminal states of finished dispatches not yet redeemed by a `wait`.
    completed: HashMap<u64, Outcome>,
    /// Seqs of handles dropped without a wait; shared with every issued
    /// [`LaunchHandle`], drained (results discarded) at synchronize.
    abandoned: Arc<Mutex<Vec<u64>>>,
    /// Bounded retry budget for transient faults (see [`RetryPolicy`]).
    retry: RetryPolicy,
    /// Counters of the recovery machinery, shared with dispatched bodies
    /// and the dispatch loop's healing path.
    recovery: Arc<Mutex<RecoveryStats>>,
    stats: DispatchStats,
    /// Shadow operand-length ledger: lets `submit` validate shapes while
    /// the authoritative memory ledger is away on the dispatch thread.
    buf_meta: HashMap<BufferId, usize>,
    /// Gates recording and replaying (the artifact cache itself is kept);
    /// see [`Session::set_replay_enabled`].
    replay_enabled: bool,
}

impl Session<AnyBackend> {
    /// A session over the paper's evaluation device, on the backend
    /// selected by the `TFNO_BACKEND` environment variable (`sim` — the
    /// default — or `native`).
    pub fn a100() -> Self {
        Session::new(AnyBackend::a100())
    }

    /// A session over an explicitly chosen backend (builder-style
    /// selection; bypasses the `TFNO_BACKEND` environment variable):
    ///
    /// ```
    /// use turbofno::{NativeBackend, Session};
    ///
    /// let sess = Session::with_backend(NativeBackend::a100());
    /// assert!(!sess.device().caps().fault_injection);
    /// ```
    pub fn with_backend(backend: impl Into<AnyBackend>) -> Self {
        Session::new(backend.into())
    }
}

impl<B: Backend> Session<B> {
    /// Wrap an existing backend (its executor/memo configuration is kept).
    pub fn new(dev: B) -> Self {
        Session {
            dev: Some(dev),
            pool: Some(BufferPool::new()),
            planner: Arc::new(Planner::new()),
            replay: Arc::new(Mutex::new(ReplayCache::new())),
            id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            depth: DEFAULT_PIPELINE_DEPTH,
            dispatcher: None,
            inflight: VecDeque::new(),
            completed: HashMap::new(),
            abandoned: Arc::new(Mutex::new(Vec::new())),
            retry: RetryPolicy::default(),
            recovery: Arc::new(Mutex::new(RecoveryStats::default())),
            stats: DispatchStats::default(),
            buf_meta: HashMap::new(),
            replay_enabled: true,
        }
    }

    fn dev_ref(&self) -> &B {
        self.dev.as_ref().expect(IN_FLIGHT)
    }

    pub fn device(&self) -> &B {
        self.dev_ref()
    }

    /// Typed twin of [`Session::device`]: [`TfnoError::InFlight`] instead
    /// of a panic while submitted work holds the device.
    pub fn try_device(&self) -> Result<&B, TfnoError> {
        self.dev.as_ref().ok_or(TfnoError::InFlight)
    }

    pub fn device_mut(&mut self) -> &mut B {
        self.synchronize();
        self.dev.as_mut().expect("device resident after synchronize")
    }

    /// The session-local `TurboBest` planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Planning counters: a warm same-shape request must add zero
    /// `simulated_launches`.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.stats()
    }

    /// Scratch-pool counters: a warm same-shape request must report
    /// `hits > 0`.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.as_ref().expect(IN_FLIGHT).stats()
    }

    /// Typed twin of [`Session::pool_stats`].
    pub fn try_pool_stats(&self) -> Result<PoolStats, TfnoError> {
        self.pool
            .as_ref()
            .map(|p| p.stats())
            .ok_or(TfnoError::InFlight)
    }

    /// Install (or clear, with `None`) a deterministic fault-injection
    /// plan on the session's device. Synchronizes first so the plan's
    /// event cursors start from a quiescent state.
    ///
    /// # Panics
    /// If the backend does not advertise fault injection (see
    /// [`BackendCaps::fault_injection`](crate::backend::BackendCaps)) —
    /// use [`Session::try_set_fault_plan`] for the typed twin. Clearing
    /// with `None` succeeds on every backend.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        if let Err(e) = self.try_set_fault_plan(plan) {
            panic!("{e}");
        }
    }

    /// Typed twin of [`Session::set_fault_plan`]: a backend that does not
    /// advertise fault injection reports [`TfnoError::Validation`]
    /// instead of panicking (asking for an unadvertised capability is a
    /// request error — check [`Backend::caps`] first).
    pub fn try_set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<(), TfnoError> {
        self.synchronize();
        self.dev
            .as_mut()
            // INVARIANT: synchronize() just reclaimed the device from the
            // dispatch thread; it stays resident until the next submit.
            .expect("device resident after synchronize")
            .try_set_fault_plan(plan)
            .map_err(TfnoError::from)
    }

    /// Fault-injection counters of the session's device (all zero when no
    /// plan is installed).
    ///
    /// # Panics
    /// While submitted work is in flight (the counters live on the
    /// device); synchronize or wait first.
    pub fn fault_stats(&self) -> FaultStats {
        self.dev_ref().fault_stats()
    }

    /// Bounded retry budget applied by `try_run`/`try_run_many`/`try_submit`
    /// (and their legacy wrappers) to transient device faults.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Counters of the recovery machinery: transient retries, degradations
    /// to the unfused pipeline, exhausted operations, faulted replays,
    /// healed dispatch jobs and the leases they leaked, abandoned handles.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut s = *lock_unpoisoned(&self.recovery);
        s.faulted_replays = lock_unpoisoned(&self.replay).stats().faulted;
        s
    }

    /// True while submitted work (or the session state that ran it) is
    /// still on the dispatch thread — it flips false at the next
    /// synchronizing call, not by itself.
    pub fn pending(&self) -> bool {
        self.dev.is_none()
    }

    /// Replay-cache counters: a steady-state serving loop must report
    /// `hits` growing and `misses` flat (see the module docs).
    pub fn replay_stats(&self) -> ReplayStats {
        lock_unpoisoned(&self.replay).stats()
    }

    /// Dispatch-thread counters: `threads_spawned` stays at 1 however many
    /// submits ran; `max_in_flight` shows how deep the pipeline actually got.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.stats
    }

    /// Turn whole-forward replay off (or back on). While off, calls
    /// neither record nor replay artifacts — every execution takes the
    /// full cold path — but artifacts already cached are kept (with their
    /// retained scratch) and serve again once re-enabled. Useful for
    /// A/B-measuring the warm path against the cold one on a single
    /// session, and for callers that would otherwise churn the FIFO
    /// artifact cache with never-repeating keys.
    pub fn set_replay_enabled(&mut self, on: bool) {
        self.replay_enabled = on;
    }

    /// Whether warm-path replay is active (the default).
    pub fn replay_enabled(&self) -> bool {
        self.replay_enabled
    }

    /// Max submitted jobs in flight before [`Session::submit`] blocks on
    /// the oldest (clamped to ≥ 1). Depth 1 is classic double-buffering's
    /// degenerate case: one job runs while the host stages the next submit.
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// Current in-flight depth bound (default 2).
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// Lazily create the session's one long-lived dispatch thread.
    fn ensure_dispatcher(&mut self) {
        if self.dispatcher.is_some() {
            return;
        }
        let (jobs_tx, jobs_rx) = mpsc::channel();
        let (res_tx, res_rx) = mpsc::channel();
        let (state_tx, state_rx) = mpsc::channel();
        let planner = Arc::clone(&self.planner);
        let recovery = Arc::clone(&self.recovery);
        let join = std::thread::Builder::new()
            .name("tfno-dispatch".into())
            .spawn(move || dispatch_loop(jobs_rx, res_tx, state_tx, planner, recovery))
            .expect("spawn dispatch thread");
        self.stats.threads_spawned += 1;
        self.dispatcher = Some(Dispatcher {
            jobs: jobs_tx,
            results: res_rx,
            state_back: state_rx,
            join,
        });
    }

    /// Park one received result under its seq, as a typed [`Outcome`].
    fn park(&mut self, seq: u64, result: std::thread::Result<Result<Vec<PipelineRun>, TfnoError>>) {
        let outcome = match result {
            Ok(Ok(runs)) => Outcome::Done(runs),
            Ok(Err(e)) => Outcome::Failed(e),
            Err(payload) => Outcome::Panicked(payload),
        };
        self.completed.insert(seq, outcome);
    }

    /// Receive the oldest in-flight job's result, parking it for its
    /// `wait`. Failures — typed or panic — park per-seq: only the handle
    /// that submitted the job observes them.
    fn collect_one(&mut self) {
        let Some(seq) = self.inflight.pop_front() else {
            return;
        };
        let d = self
            .dispatcher
            .as_ref()
            .expect("dispatcher alive while jobs are in flight");
        let (got, result) = d.results.recv().expect("dispatch thread alive");
        debug_assert_eq!(got, seq, "results arrive in submit order");
        self.park(got, result);
    }

    /// Drain the dispatch pipeline, restore the device and pool, and
    /// discard the parked results of abandoned handles — re-raising the
    /// first abandoned panic payload, so a dropped handle can never make a
    /// dispatched panic disappear silently. Every `&mut Session` entry
    /// point except `submit`/`submit_many` calls this first, so session
    /// state is never observed mid-dispatch.
    pub fn synchronize(&mut self) {
        while !self.inflight.is_empty() {
            self.collect_one();
        }
        if self.dev.is_none() {
            let d = self
                .dispatcher
                .as_ref()
                .expect("dispatcher holds the device while it is away");
            d.jobs.send(Job::Return).expect("dispatch thread alive");
            let state = d
                .state_back
                .recv()
                .expect("dispatch thread returns the device");
            let (dev, pool) = *state;
            self.dev = Some(dev);
            self.pool = Some(pool);
        }
        let drained: Vec<u64> = {
            let mut reg = lock_unpoisoned(&self.abandoned);
            reg.drain(..).collect()
        };
        if drained.is_empty() {
            return;
        }
        lock_unpoisoned(&self.recovery).abandoned_handles += drained.len() as u64;
        let mut first_panic = None;
        for seq in drained {
            if let Some(Outcome::Panicked(payload)) = self.completed.remove(&seq) {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Allocate a named long-lived buffer (weights, persistent activations).
    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        let id = self.device_mut().alloc(name, len);
        self.buf_meta.insert(id, len);
        id
    }

    /// Lease a real buffer from the pool (return it with [`Session::release`]).
    pub fn acquire(&mut self, len: usize) -> BufferId {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        let id = pool.acquire(&mut *dev, len);
        let n = dev.memory().len(id);
        self.buf_meta.insert(id, n);
        id
    }

    /// Lease a storage-free virtual buffer from the pool.
    pub fn acquire_virtual(&mut self, len: usize) -> BufferId {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        let id = pool.acquire_virtual(&mut *dev, len);
        let n = dev.memory().len(id);
        self.buf_meta.insert(id, n);
        id
    }

    /// Return a leased buffer to the pool.
    pub fn release(&mut self, id: BufferId) {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        pool.release(&*dev, id);
    }

    /// Donate a buffer the pool never leased (e.g. one created with
    /// [`Session::alloc`] that is no longer needed) to the free lists.
    pub fn adopt(&mut self, id: BufferId) {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        pool.adopt(&*dev, id);
    }

    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        self.device_mut().upload(id, data);
    }

    pub fn download(&self, id: BufferId) -> Vec<C32> {
        self.dev_ref().download(id)
    }

    /// Typed twin of [`Session::download`]: [`TfnoError::InFlight`]
    /// instead of a panic while submitted work holds the device.
    pub fn try_download(&self, id: BufferId) -> Result<Vec<C32>, TfnoError> {
        Ok(self.try_device()?.download(id))
    }

    /// Both halves of the resident state, after a `synchronize`.
    fn resident_mut(&mut self) -> (&mut B, &mut BufferPool) {
        (
            self.dev.as_mut().expect("device resident after synchronize"),
            self.pool.as_mut().expect("pool resident after synchronize"),
        )
    }

    fn ctx(&mut self) -> ExecCtx<'_> {
        ExecCtx {
            dev: self.dev.as_mut().expect("device resident after synchronize"),
            pool: self.pool.as_mut().expect("pool resident after synchronize"),
            planner: &self.planner,
            tape: None,
            verify: verifier_enabled().then(PlanVerifier::new),
        }
    }

    /// Operand-length check against the resident memory ledger, or the
    /// shadow ledger while the device is on the dispatch thread — so a
    /// deep pipeline of submits never drains just to check shapes. A
    /// buffer the shadow ledger has not seen (created directly via
    /// [`Session::device_mut`]) falls back to a synchronize plus the
    /// authoritative ledger.
    fn try_validate(
        &mut self,
        spec: &LayerSpec,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> Result<(), TfnoError> {
        if self.dev.is_none() && [x, w, y].iter().any(|id| !self.buf_meta.contains_key(id)) {
            self.synchronize();
        }
        let len = |id: BufferId| match &self.dev {
            Some(dev) => dev.memory().len(id),
            None => self.buf_meta[&id],
        };
        for (got, want, msg) in [
            (len(x), spec.input_len(), "x length != spec input_len"),
            (len(w), spec.weight_len(), "w length != spec weight_len"),
            (len(y), spec.output_len(), "y length != spec output_len"),
        ] {
            if got != want {
                return Err(TfnoError::Validation(format!("{msg} ({got} != {want})")));
            }
        }
        Ok(())
    }

    /// Legacy panicking admission check; the panic message is the
    /// validation error's (pinned by the API tests).
    fn validate(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) {
        if let Err(e) = self.try_validate(spec, x, w, y) {
            let TfnoError::Validation(msg) = e else {
                unreachable!("try_validate only raises Validation")
            };
            panic!("{msg}");
        }
    }

    /// The full `run_many` admission contract: operand lengths plus the
    /// aliasing rules. Runs on the caller's thread for both the
    /// synchronous and the submitted path, so failures always surface at
    /// the call site.
    fn try_validate_queue(&mut self, reqs: &[Request]) -> Result<(), TfnoError> {
        for r in reqs {
            self.try_validate(&r.spec, r.x, r.w, r.y)?;
            try_shape(&r.spec)?;
        }
        // The aliasing rules are one `PlanVerifier` code path shared by the
        // sync, async and replayed entry points; only the message text —
        // pinned by the API tests — is rendered here.
        let access: Vec<QueueAccess> = reqs
            .iter()
            .map(|r| QueueAccess {
                reads: vec![("x", r.x), ("w", r.w)],
                writes: vec![r.y],
            })
            .collect();
        match check_queue_aliasing(&access) {
            Ok(()) => Ok(()),
            Err(PlanHazard::SelfAlias { index, operand }) => Err(TfnoError::Validation(format!(
                "run_many request {index} is self-aliased (y == {operand}): group-reordered \
                 execution would run it in-place; use a distinct output buffer or a \
                 sequential `run` call"
            ))),
            Err(PlanHazard::CrossAlias { writer, reader }) => Err(TfnoError::Validation(format!(
                "run_many requests must not alias outputs: request {writer}'s y is an \
                 operand of request {reader}; chain dependent layers through \
                 sequential `run` calls instead"
            ))),
            Err(other) => Err(other.into()),
        }
    }

    /// Legacy panicking queue admission check (same messages).
    fn validate_queue(&mut self, reqs: &[Request]) {
        for r in reqs {
            self.validate(&r.spec, r.x, r.w, r.y);
            r.spec.assert_valid_shape();
        }
        if let Err(TfnoError::Validation(msg)) = self.try_validate_queue(reqs) {
            panic!("{msg}");
        }
    }

    /// Execute one layer spec. `TurboBest` consults the session planner
    /// (memoized per shape); scratch comes from the session pool. Warm
    /// same-key calls replay the recorded launch sequence (see the module
    /// docs), bitwise equal to a cold run.
    ///
    /// # Panics
    /// On validation failures (with the documented messages), and if the
    /// resilient engine exhausts its retry/degradation budget under an
    /// installed fault plan — use [`Session::try_run`] for typed recovery.
    pub fn run(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> PipelineRun {
        self.synchronize();
        self.validate(spec, x, w, y);
        match self.run_resilient(spec, x, w, y) {
            Ok(run) => run,
            Err(e) => panic!("layer execution failed: {e}; use Session::try_run for typed recovery"),
        }
    }

    /// Typed twin of [`Session::run`]: validation errors, and transient
    /// faults that survived the session's [`RetryPolicy`] and the
    /// degradation ladder, come back as [`TfnoError`] instead of panics.
    /// The success path is bitwise-identical to [`Session::run`].
    pub fn try_run(
        &mut self,
        spec: &LayerSpec,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> Result<PipelineRun, TfnoError> {
        self.synchronize();
        self.try_validate(spec, x, w, y)?;
        try_shape(spec)?;
        self.run_resilient(spec, x, w, y)
    }

    /// Shared resilient body of `run`/`try_run` (operands already
    /// validated).
    fn run_resilient(
        &mut self,
        spec: &LayerSpec,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> Result<PipelineRun, TfnoError> {
        let enable = self.replay_enabled && spec.exec == ExecMode::Functional;
        let cache = Arc::clone(&self.replay);
        let recovery = Arc::clone(&self.recovery);
        let policy = self.retry;
        let spec = *spec;
        let mut ctx = self.ctx();
        let mut runs = run_single_resilient(
            &mut ctx, &cache, &recovery, policy, &spec, x, w, y, enable,
        )?;
        // Invariant: the engine produces exactly one PipelineRun per
        // single-layer call (n_out = 1), on both cold and replayed paths.
        Ok(runs.pop().expect("one run per single-layer call"))
    }

    /// Execute a queue of layer requests, coalescing where possible.
    ///
    /// * Requests with identical specs share one planning decision —
    ///   `TurboBest` is resolved once per shape group, so N same-shape
    ///   requests cost exactly one (possibly cached) plan.
    /// * Within a shape group, every stackable request (functional mode,
    ///   value-carrying buffers) joins **one** stack along the batch axis
    ///   and executes as a single batched launch sequence — *even when the
    ///   requests use different weight buffers*: the weights are packed
    ///   into a pooled strided buffer and the kernels read one slice per
    ///   stacked sub-batch ([`WeightStacking`]). Per-sample results are
    ///   bitwise-identical to sequential [`Session::run`] calls because
    ///   every kernel treats batch entries independently.
    /// * Everything else (virtual buffers, analytical mode) runs
    ///   back-to-back through the shared scratch pool, so N same-shape
    ///   requests allocate scratch once and reuse it N−1 times.
    ///
    /// Returns one [`PipelineRun`] per request, in order. A coalesced
    /// group reports its launches (a device-side gather, the pipeline
    /// kernels, a device-side scatter) on the group's first request; the
    /// other members report empty runs (their outputs are still written).
    ///
    /// The queue is a *parallel batch*: no request's output buffer may be
    /// one of its own or another request's operands (coalescing and shape
    /// grouping reorder execution, so chained or in-place layers must go
    /// through sequential [`Session::run`] calls). Violations panic.
    pub fn run_many(&mut self, reqs: &[Request]) -> Vec<PipelineRun> {
        self.synchronize();
        self.validate_queue(reqs);
        match self.run_many_resilient(reqs) {
            Ok(runs) => runs,
            Err(e) => panic!(
                "serving queue execution failed: {e}; use Session::try_run_many for typed recovery"
            ),
        }
    }

    /// Typed twin of [`Session::run_many`] (same coalescing, same
    /// aliasing contract, typed errors instead of panics).
    pub fn try_run_many(&mut self, reqs: &[Request]) -> Result<Vec<PipelineRun>, TfnoError> {
        self.synchronize();
        self.try_validate_queue(reqs)?;
        self.run_many_resilient(reqs)
    }

    /// Shared resilient body of `run_many`/`try_run_many` (queue already
    /// validated).
    fn run_many_resilient(&mut self, reqs: &[Request]) -> Result<Vec<PipelineRun>, TfnoError> {
        let enable =
            self.replay_enabled && reqs.iter().all(|r| r.spec.exec == ExecMode::Functional);
        let cache = Arc::clone(&self.replay);
        let recovery = Arc::clone(&self.recovery);
        let policy = self.retry;
        let reqs = reqs.to_vec();
        let mut ctx = self.ctx();
        run_queue_resilient(&mut ctx, &cache, &recovery, policy, reqs, enable)
    }

    /// Issue [`Session::run`] asynchronously: the launch sequence executes
    /// on the session's dispatch thread while this call returns
    /// immediately. Redeem the handle with [`Session::wait`] for the
    /// [`PipelineRun`]; the output buffer holds its result from that point
    /// on, bitwise equal to the synchronous call. Operand/shape validation
    /// still happens here, synchronously.
    ///
    /// Up to [`Session::pipeline_depth`] submits ride the in-order queue
    /// concurrently; past that, this call waits for the oldest job before
    /// enqueueing. Interleaving host work *between* submits and their
    /// waits is the profitable pattern.
    pub fn submit(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> LaunchHandle {
        self.validate(spec, x, w, y);
        spec.assert_valid_shape();
        self.submit_validated(spec, x, w, y)
    }

    /// Typed twin of [`Session::submit`]: validation failures come back as
    /// [`TfnoError::Validation`] instead of panics. The dispatched body is
    /// the same resilient engine as [`Session::try_run`]; its outcome
    /// (typed error or panic payload) parks under the returned handle.
    pub fn try_submit(
        &mut self,
        spec: &LayerSpec,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> Result<LaunchHandle, TfnoError> {
        self.try_validate(spec, x, w, y)?;
        try_shape(spec)?;
        Ok(self.submit_validated(spec, x, w, y))
    }

    /// Shared dispatching body of `submit`/`try_submit` (operands already
    /// validated).
    fn submit_validated(
        &mut self,
        spec: &LayerSpec,
        x: BufferId,
        w: BufferId,
        y: BufferId,
    ) -> LaunchHandle {
        let enable = self.replay_enabled && spec.exec == ExecMode::Functional;
        let cache = Arc::clone(&self.replay);
        let recovery = Arc::clone(&self.recovery);
        let policy = self.retry;
        let spec = *spec;
        self.dispatch(Box::new(move |ctx| {
            run_single_resilient(ctx, &cache, &recovery, policy, &spec, x, w, y, enable)
        }))
    }

    /// Issue [`Session::run_many`] asynchronously (same coalescing, same
    /// aliasing contract — validated here, synchronously; same warm-path
    /// replay). Redeem with [`Session::wait_many`].
    pub fn submit_many(&mut self, reqs: &[Request]) -> LaunchHandle {
        self.validate_queue(reqs);
        self.submit_many_validated(reqs)
    }

    /// Typed twin of [`Session::submit_many`].
    pub fn try_submit_many(&mut self, reqs: &[Request]) -> Result<LaunchHandle, TfnoError> {
        self.try_validate_queue(reqs)?;
        Ok(self.submit_many_validated(reqs))
    }

    fn submit_many_validated(&mut self, reqs: &[Request]) -> LaunchHandle {
        let enable =
            self.replay_enabled && reqs.iter().all(|r| r.spec.exec == ExecMode::Functional);
        let cache = Arc::clone(&self.replay);
        let recovery = Arc::clone(&self.recovery);
        let policy = self.retry;
        let reqs = reqs.to_vec();
        self.dispatch(Box::new(move |ctx| {
            run_queue_resilient(ctx, &cache, &recovery, policy, reqs, enable)
        }))
    }

    /// Enqueue `work` on the persistent dispatch thread, moving the device
    /// and pool there first if they are still resident. Applies the
    /// pipeline-depth backpressure and hands back the job's ticket.
    fn dispatch(&mut self, work: DispatchWork) -> LaunchHandle {
        self.ensure_dispatcher();
        if let (Some(dev), Some(pool)) = (self.dev.take(), self.pool.take()) {
            let d = self.dispatcher.as_ref().expect("dispatcher just ensured");
            d.jobs
                .send(Job::Install(Box::new((dev, pool))))
                .expect("dispatch thread alive");
        }
        while self.inflight.len() >= self.depth {
            self.collect_one();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let d = self.dispatcher.as_ref().expect("dispatcher just ensured");
        d.jobs
            .send(Job::Work { seq, work })
            .expect("dispatch thread alive");
        self.inflight.push_back(seq);
        self.stats.jobs_dispatched += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.inflight.len() as u64);
        LaunchHandle {
            session: self.id,
            seq,
            abandoned: Some(Arc::clone(&self.abandoned)),
        }
    }

    /// Redeem a [`Session::submit`] handle: synchronize with the dispatch
    /// and return its [`PipelineRun`].
    ///
    /// # Panics
    /// If the handle came from another session or from [`Session::submit_many`]
    /// with more than one request (use [`Session::wait_many`]).
    pub fn wait(&mut self, handle: LaunchHandle) -> PipelineRun {
        let mut runs = self.wait_many(handle);
        assert_eq!(
            runs.len(),
            1,
            "wait() on a multi-request submit_many handle; use wait_many()"
        );
        runs.pop().expect("one run")
    }

    /// Redeem a [`Session::submit_many`] handle: one [`PipelineRun`] per
    /// submitted request, in order, exactly as [`Session::run_many`] would
    /// have returned them.
    ///
    /// # Panics
    /// Re-raises the dispatched work's panic, or panics with the typed
    /// failure's message ("dispatched work failed: ...") — use
    /// [`Session::try_wait_many`] for recoverable errors.
    pub fn wait_many(&mut self, handle: LaunchHandle) -> Vec<PipelineRun> {
        match self.try_wait_many(handle) {
            Ok(runs) => runs,
            Err(e) => {
                panic!("dispatched work failed: {e}; use Session::try_wait_many for typed recovery")
            }
        }
    }

    /// Typed twin of [`Session::wait`].
    pub fn try_wait(&mut self, handle: LaunchHandle) -> Result<PipelineRun, TfnoError> {
        let mut runs = self.try_wait_many(handle)?;
        assert_eq!(
            runs.len(),
            1,
            "wait() on a multi-request submit_many handle; use wait_many()"
        );
        // INVARIANT: the assert above just proved runs.len() == 1.
        Ok(runs.pop().expect("one run"))
    }

    /// Typed twin of [`Session::wait_many`]: a job that exhausted the
    /// retry/degradation ladder reports its [`TfnoError`] here instead of
    /// panicking; a job that *panicked* still re-raises its payload (a
    /// panic is a bug, not a recoverable condition).
    pub fn try_wait_many(&mut self, handle: LaunchHandle) -> Result<Vec<PipelineRun>, TfnoError> {
        let seq = self.redeem(handle);
        self.synchronize();
        match self.completed.remove(&seq) {
            Some(Outcome::Done(runs)) => Ok(runs),
            Some(Outcome::Failed(e)) => Err(e),
            Some(Outcome::Panicked(payload)) => std::panic::resume_unwind(payload),
            // INVARIANT: redeem() consumes the handle, so a missing parked
            // result means a double-wait — a caller bug, not an engine error.
            None => panic!("no parked result for this LaunchHandle (already waited on?)"),
        }
    }

    /// Redeem a handle with a deadline. On success the parked runs come
    /// back exactly as [`Session::wait_many`] would return them. On
    /// timeout the handle is returned *re-armed* alongside
    /// [`TfnoError::Timeout`], so the caller can keep waiting; any other
    /// error consumes the handle (`None`).
    ///
    /// Unlike the blocking waits this does not drain the whole pipeline:
    /// it collects completions in dispatch order only until this handle's
    /// job lands, so the device and pool stay on the dispatch thread.
    pub fn wait_timeout(
        &mut self,
        handle: LaunchHandle,
        timeout: Duration,
    ) -> Result<Vec<PipelineRun>, (Option<LaunchHandle>, TfnoError)> {
        assert_eq!(
            handle.session, self.id,
            "LaunchHandle was issued by a different Session"
        );
        let start = Instant::now();
        while !self.completed.contains_key(&handle.seq) {
            let Some(d) = self.dispatcher.as_ref() else {
                // No dispatcher ⇒ nothing in flight ⇒ the handle was
                // already redeemed (impossible: redeeming consumes it) or
                // parked; fall through to the lookup panic below.
                break;
            };
            let waited = start.elapsed();
            let Some(remaining) = timeout.checked_sub(waited) else {
                return Err((Some(handle), TfnoError::Timeout { waited }));
            };
            match d.results.recv_timeout(remaining) {
                Ok((seq, result)) => {
                    let front = self.inflight.pop_front();
                    debug_assert_eq!(front, Some(seq), "results arrive in dispatch order");
                    self.park(seq, result);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err((Some(handle), TfnoError::Timeout { waited: start.elapsed() }));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err((
                        None,
                        TfnoError::Poisoned("dispatch thread exited unexpectedly".into()),
                    ));
                }
            }
        }
        let seq = self.redeem(handle);
        match self.completed.remove(&seq) {
            Some(Outcome::Done(runs)) => Ok(runs),
            Some(Outcome::Failed(e)) => Err((None, e)),
            Some(Outcome::Panicked(payload)) => std::panic::resume_unwind(payload),
            None => panic!("no parked result for this LaunchHandle (already waited on?)"),
        }
    }

    /// Consume a handle without tripping its abandoned-drop hook and hand
    /// back its sequence number.
    fn redeem(&self, mut handle: LaunchHandle) -> u64 {
        assert_eq!(
            handle.session, self.id,
            "LaunchHandle was issued by a different Session"
        );
        handle.abandoned = None;
        handle.seq
    }

    /// Model one spec analytically on pooled virtual buffers (no values
    /// move; addresses and event counts only). The spec's `exec` mode is
    /// ignored — measurement is always [`ExecMode::Analytical`].
    pub fn measure(&mut self, spec: &LayerSpec) -> PipelineRun {
        self.synchronize();
        self.ctx().measure_spec(spec)
    }
}

impl<B: Backend> Drop for Session<B> {
    /// Never leak the dispatch thread: drop its job queue (the loop exits
    /// at the closed channel, finishing any in-flight work first) and join
    /// it, discarding parked results and swallowing — not re-raising — any
    /// panic payload, since panicking in drop would abort.
    fn drop(&mut self) {
        if let Some(d) = self.dispatcher.take() {
            let Dispatcher { jobs, join, .. } = d;
            drop(jobs);
            let _ = join.join();
        }
    }
}

/// Hash the spec fields that shape a launch sequence: geometry, variant,
/// the options that steer kernel assembly, and the functional/analytical
/// split. Shared by the replay keys and the `measure` sequence memo.
fn hash_spec(spec: &LayerSpec, h: &mut DefaultHasher) {
    let s = &spec.shape;
    (s.rank as u8).hash(h);
    [s.batch, s.k_in, s.k_out].hash(h);
    s.dims.hash(h);
    s.modes.hash(h);
    spec.variant.hash(h);
    spec.opts.forward_layout.hash(h);
    spec.opts.epilogue_swizzle.hash(h);
    spec.opts.fft_l1_hit.to_bits().hash(h);
    (spec.exec == ExecMode::Analytical).hash(h);
}

/// Replay key of a single-layer call: spec identity plus operand
/// buffers (prefix-tagged so single runs and queues never collide).
fn single_key(spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> u64 {
    let mut h = DefaultHasher::new();
    0xF0u8.hash(&mut h);
    hash_spec(spec, &mut h);
    (x, w, y).hash(&mut h);
    h.finish()
}

/// Replay key of a serving queue: the full request list, in order.
fn queue_key(reqs: &[Request]) -> u64 {
    let mut h = DefaultHasher::new();
    0xF1u8.hash(&mut h);
    reqs.len().hash(&mut h);
    for r in reqs {
        hash_spec(&r.spec, &mut h);
        (r.x, r.w, r.y).hash(&mut h);
    }
    h.finish()
}

/// Deferred serving-queue output scatters: a small [`DeferredWindow`]
/// completes each stacked group's scatter a couple of groups behind issue,
/// so the next group's gather and pipeline overlap the previous group's
/// output redistribution (double-buffered staging on the device side).
///
/// Safe by the `run_many` admission contract: no request's `y` is any
/// request's operand, so nothing issued while a scatter is pending reads
/// its writes — and the scatter itself read its sources at issue time
/// (execute-at-issue semantics), so releasing or reusing the stacked
/// scratch behind it is fine.
struct ScatterWindow {
    queue: DeferredWindow,
    /// `out` index owning each pending scatter, oldest first (parallel to
    /// the queue's in-flight order).
    owners: VecDeque<usize>,
}

impl ScatterWindow {
    fn new() -> Self {
        ScatterWindow {
            queue: DeferredWindow::new(2),
            owners: VecDeque::new(),
        }
    }

    /// Returns how many pending scatters *completed* during the push, so
    /// the caller can retire their verifier windows in the same order.
    fn push(
        &mut self,
        dev: &mut dyn Backend,
        pending: PendingLaunch,
        owner: usize,
        out: &mut [PipelineRun],
    ) -> usize {
        self.owners.push_back(owner);
        let mut completed = 0;
        for rec in self.queue.push(dev, pending) {
            let o = self.owners.pop_front().expect("one owner per completion");
            out[o].push(rec);
            completed += 1;
        }
        completed
    }

    /// Returns how many pending scatters completed (see `push`).
    fn flush(&mut self, dev: &mut dyn Backend, out: &mut [PipelineRun]) -> usize {
        let mut completed = 0;
        for rec in self.queue.flush(dev) {
            let o = self.owners.pop_front().expect("one owner per completion");
            out[o].push(rec);
            completed += 1;
        }
        completed
    }
}

/// The execution engine shared by the synchronous entry points and the
/// dispatch threads: everything here runs against an [`ExecCtx`], so the
/// submitted path is the *same code* as the synchronous one — the bitwise
/// equality guarantee of async dispatch is structural, not re-verified
/// per feature.
impl ExecCtx<'_> {
    /// Execute one layer spec against this context. A launch fault
    /// surfaces as `Err` with nothing written and no lease held (the
    /// pipeline bodies release scratch on every exit path).
    pub(crate) fn try_run_spec(
        &mut self,
        spec: &LayerSpec,
        variant: Variant,
        bufs: LayerBufs,
    ) -> Result<PipelineRun, LaunchError> {
        let (opts, exec) = (spec.opts, spec.exec);
        self.try_run_spectral(&spec.shape, variant, bufs, &opts, exec)
    }

    /// Resolve `TurboBest` to a concrete variant (one planner consult; a
    /// cache hit for every shape the session has planned before).
    fn resolve(&self, spec: &LayerSpec) -> Variant {
        if spec.variant != Variant::TurboBest {
            return spec.variant;
        }
        self.planner.plan_shape(self.dev.config(), &spec.shape, &spec.opts)
    }

    /// The [`Session::run_many`] body (queue already validated).
    ///
    /// A coalesced group reports its launches on the group's first
    /// request; the other members report empty runs (their outputs are
    /// still written). Each group's output scatter is completed through a
    /// small [`DeferredWindow`] so the next group's work overlaps it.
    pub(crate) fn try_run_queue(&mut self, reqs: &[Request]) -> Result<Vec<PipelineRun>, LaunchError> {
        let mut out: Vec<PipelineRun> = (0..reqs.len()).map(|_| PipelineRun::default()).collect();
        let mut claimed = vec![false; reqs.len()];
        let mut window = ScatterWindow::new();
        // A retried queue starts with a fresh ScatterWindow — the aborted
        // run's deferred launches were dropped unexecuted — so the
        // verifier's pending tracking must restart with it.
        if let Some(v) = &mut self.verify {
            v.clear_pending();
        }
        for i in 0..reqs.len() {
            if claimed[i] {
                continue;
            }
            // The shape group: every unclaimed request with an identical spec.
            let group: Vec<usize> = (i..reqs.len())
                .filter(|&j| !claimed[j] && reqs[j].spec == reqs[i].spec)
                .collect();
            for &j in &group {
                claimed[j] = true;
            }
            let concrete = self.resolve(&reqs[i].spec);

            // One stack for the whole shape group, mixed weights included;
            // non-stackable members (virtual buffers, analytical mode) run
            // sequentially, as does a singleton — it gains nothing from
            // the staging copies.
            let (mut stack, mut rest): (Vec<usize>, Vec<usize>) = group
                .iter()
                .copied()
                .partition(|&j| self.stackable(&reqs[j]));
            if stack.len() < 2 {
                rest.append(&mut stack);
                rest.sort_unstable();
            }
            if !stack.is_empty() {
                // On a fault mid-group the window's pending scatters are
                // simply dropped with the queue run: deferred launches
                // never executed, so the device is consistent and a retry
                // rewrites every output from scratch.
                self.try_run_stacked(reqs, &stack, concrete, &mut window, &mut out)?;
            }
            for j in rest {
                let r = &reqs[j];
                let run = self.try_run_spec(&r.spec, concrete, LayerBufs::shared(r.x, r.w, r.y))?;
                out[j].launches.extend(run.launches);
                self.mark_unit(j);
            }
        }
        let completed = window.flush(self.dev, &mut out);
        self.note_completions(completed);
        Ok(out)
    }

    /// Stacking moves values through device-side gather/scatter copies, so
    /// it requires functional execution on real buffers.
    fn stackable(&self, r: &Request) -> bool {
        r.spec.exec == ExecMode::Functional
            && !self.dev.memory().is_virtual(r.x)
            && !self.dev.memory().is_virtual(r.y)
            && !self.dev.memory().is_virtual(r.w)
    }

    /// Execute a same-spec stack of requests as one batched launch
    /// sequence:
    ///
    /// 1. one device-side gather launch assembles the stacked input
    ///    `[x_0 .. x_{k-1}]` — and, when the requests use different weight
    ///    buffers, packs `[w_0 .. w_{k-1}]` into a pooled strided weight
    ///    buffer in the same launch;
    /// 2. the pipeline runs once at `batch * stack_len`, with the weight
    ///    operand advancing one slice per stacked sub-batch
    ///    ([`WeightStacking`]);
    /// 3. one device-side scatter launch redistributes the stacked output
    ///    to the requests' `y` buffers.
    ///
    /// No values round-trip through the host, and the launch count is the
    /// same whether the stack shares one weight buffer or uses `k`
    /// distinct ones. Launches land in `out[stack[0]]`; the scatter is
    /// issued deferred through `window` (completed up to two groups later,
    /// or synchronously on a backend without deferred launches / on replay).
    fn try_run_stacked(
        &mut self,
        reqs: &[Request],
        stack: &[usize],
        concrete: Variant,
        window: &mut ScatterWindow,
        out: &mut [PipelineRun],
    ) -> Result<(), LaunchError> {
        let mut leases = Vec::new();
        let r = self.stacked_body(reqs, stack, concrete, window, out, &mut leases);
        // The pending scatter read sy at issue; releasing the staging
        // scratch (or recycling it for the next group) cannot disturb it.
        // On the error path this returns the staging leases too — a live
        // recording tape defers them (record() releases an abandoned
        // tape's scratch), so nothing leaks either way.
        self.release(leases);
        r
    }

    fn stacked_body(
        &mut self,
        reqs: &[Request],
        stack: &[usize],
        concrete: Variant,
        window: &mut ScatterWindow,
        out: &mut [PipelineRun],
        leases: &mut Vec<BufferId>,
    ) -> Result<(), LaunchError> {
        let owner = stack[0];
        let base = reqs[owner].spec;
        let spec = base.stacked(stack.len());
        let (in_len, out_len, w_len) = (base.input_len(), base.output_len(), base.weight_len());

        let sx = self.try_stage(spec.input_len(), leases)?;
        let sy = self.try_stage(spec.output_len(), leases)?;

        // Gather inputs (and, for mixed weights, the packed weight stack)
        // in one launch.
        let mut gather: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: reqs[j].x,
                src_base: 0,
                dst: sx,
                dst_base: pos * in_len,
                len: in_len,
            })
            .collect();
        let mixed = stack.iter().any(|&j| reqs[j].w != reqs[stack[0]].w);
        let (w, ws) = if mixed {
            let sw = self.try_stage(stack.len() * w_len, leases)?;
            gather.extend(stack.iter().enumerate().map(|(pos, &j)| CopySegment {
                src: reqs[j].w,
                src_base: 0,
                dst: sw,
                dst_base: pos * w_len,
                len: w_len,
            }));
            (sw, WeightStacking::strided(w_len, base.batch()))
        } else {
            (reqs[stack[0]].w, WeightStacking::SHARED)
        };

        let gather = SegmentedCopyKernel::new("serve.gather", gather);
        out[owner].push(self.try_step(gather, ExecMode::Functional)?);

        let pipeline = self.try_run_spec(&spec, concrete, LayerBufs { x: sx, w, y: sy, ws })?;
        out[owner].launches.extend(pipeline.launches);

        let scatter: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: sy,
                src_base: pos * out_len,
                dst: reqs[j].y,
                dst_base: 0,
                len: out_len,
            })
            .collect();
        let scatter = SegmentedCopyKernel::new("serve.scatter", scatter);
        if !self.dev.caps().deferred_launch {
            // Backends without deferred completion (the sim's legacy
            // executor, the eager native backend) run the scatter
            // synchronously (bitwise-identical either way).
            out[owner].push(self.try_step(scatter, ExecMode::Functional)?);
        } else {
            let pending = self.try_step_deferred(scatter, ExecMode::Functional)?;
            let completed = window.push(self.dev, pending, owner, out);
            self.note_completions(completed);
        }
        self.mark_unit(owner);
        Ok(())
    }

    /// The [`Session::measure`] body: analytical run on pooled virtual
    /// operands.
    ///
    /// Warm measurements are answered from the process-wide sequence memo
    /// ([`seq_lookup`](crate::backend::seq_lookup)) without issuing a
    /// single launch: the key covers device config, spec geometry, variant
    /// and options — never buffer identities or worker configuration,
    /// since analytical records are independent of both.
    /// [`Backend::analytical_memo`] opts a backend out.
    pub(crate) fn measure_spec(&mut self, spec: &LayerSpec) -> PipelineRun {
        let spec = spec.exec(ExecMode::Analytical);
        let key = {
            let mut h = DefaultHasher::new();
            0xF2u8.hash(&mut h);
            hash_device_config(self.dev.config(), &mut h);
            hash_spec(&spec, &mut h);
            h.finish()
        };
        if self.dev.analytical_memo() {
            if let Some(launches) = seq_lookup(key) {
                return PipelineRun { launches };
            }
        }
        let x = self.pool.acquire_virtual(self.dev, spec.input_len());
        let w = self.pool.acquire_virtual(self.dev, spec.weight_len());
        let y = self.pool.acquire_virtual(self.dev, spec.output_len());
        // INVARIANT: analytical launches on virtual buffers are exempt
        // from fault injection (a contract every backend upholds), so
        // this cannot fail even with a FaultPlan installed.
        let run = self
            .try_run_spec(&spec, spec.variant, LayerBufs::shared(x, w, y))
            .expect("analytical launches are never faulted");
        self.pool.release(self.dev, x);
        self.pool.release(self.dev, w);
        self.pool.release(self.dev, y);
        if self.dev.analytical_memo() {
            seq_insert(key, run.launches.clone());
        }
        run
    }
}

/// Render a caught panic payload as text (best effort — payloads are
/// `&str` or `String` everywhere this crate panics).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Typed twin of [`LayerSpec::assert_valid_shape`]: the legacy assertion
/// panics with pinned messages; this catches them and re-surfaces the text
/// as [`TfnoError::Validation`].
fn try_shape(spec: &LayerSpec) -> Result<(), TfnoError> {
    let s = *spec;
    std::panic::catch_unwind(move || s.assert_valid_shape())
        .map_err(|p| TfnoError::Validation(panic_message(&*p)))
}

/// The resilient single-layer engine shared by `try_run` and the
/// dispatched body of `try_submit`.
///
/// Two nested loops implement the recovery ladder:
///
/// 1. **Retry rung** — up to [`RetryPolicy::attempts`] tries of the
///    current spec. Transient faults are clean (nothing written), so a
///    retried success is bitwise-equal to an unfaulted run.
/// 2. **Degradation rung** — if the rung exhausts and the spec resolves to
///    a fused variant, the layer is re-planned onto the unfused
///    [`Variant::FftOpt`] pipeline (new replay key, one more retry rung)
///    before the error is surfaced.
///
/// Replay stays coherent throughout: a faulted recording is never frozen,
/// and a faulted replay evicts its artifact and falls back to the
/// functional path (see `replay::try_execute`).
#[allow(clippy::too_many_arguments)]
fn run_single_resilient(
    ctx: &mut ExecCtx<'_>,
    cache: &Mutex<ReplayCache>,
    recovery: &Mutex<RecoveryStats>,
    policy: RetryPolicy,
    spec: &LayerSpec,
    x: BufferId,
    w: BufferId,
    y: BufferId,
    enable: bool,
) -> Result<Vec<PipelineRun>, TfnoError> {
    let mut spec = *spec;
    let mut degraded = false;
    let mut total_attempts = 0u32;
    loop {
        let key = single_key(&spec, x, w, y);
        let mut last: Option<TfnoError> = None;
        for attempt in 1..=policy.attempts() {
            let s = spec;
            let out = replay::try_execute(ctx, cache, key, 1, enable, |ctx| {
                let run = ctx
                    .try_run_spec(&s, s.variant, LayerBufs::shared(x, w, y))
                    .map_err(TfnoError::from)?;
                ctx.mark_unit(0);
                Ok(vec![run])
            });
            total_attempts += 1;
            match out {
                Ok(runs) => {
                    // Lease balance is part of the proof: a sequence that
                    // finished with outstanding verifier leases mis-declared
                    // its scratch traffic.
                    ctx.verify_finish()?;
                    return Ok(runs);
                }
                Err(e) if e.is_transient() => {
                    if attempt < policy.attempts() {
                        lock_unpoisoned(recovery).transient_retries += 1;
                        if policy.backoff > Duration::ZERO {
                            std::thread::sleep(policy.backoff);
                        }
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        let concrete = ctx.resolve(&spec);
        let fused = matches!(
            concrete,
            Variant::FusedFftGemm | Variant::FusedGemmIfft | Variant::FullyFused
        );
        if fused && !degraded {
            degraded = true;
            lock_unpoisoned(recovery).degraded += 1;
            spec = spec.variant(Variant::FftOpt);
            continue;
        }
        lock_unpoisoned(recovery).exhausted += 1;
        return Err(match last.expect("at least one attempt ran") {
            TfnoError::Transient { fault, .. } => TfnoError::Transient {
                fault,
                attempts: total_attempts,
            },
            e => e,
        });
    }
}

/// The resilient serving-queue engine shared by `try_run_many` and the
/// dispatched body of `try_submit_many`. Same ladder as
/// [`run_single_resilient`]; the degradation rung rewrites *every* request
/// whose spec resolves to a fused variant onto `FftOpt` (the whole queue
/// is one replay unit, so the rung re-keys and re-runs it whole).
fn run_queue_resilient(
    ctx: &mut ExecCtx<'_>,
    cache: &Mutex<ReplayCache>,
    recovery: &Mutex<RecoveryStats>,
    policy: RetryPolicy,
    mut reqs: Vec<Request>,
    enable: bool,
) -> Result<Vec<PipelineRun>, TfnoError> {
    let n = reqs.len();
    let mut degraded = false;
    let mut total_attempts = 0u32;
    loop {
        let key = queue_key(&reqs);
        let mut last: Option<TfnoError> = None;
        for attempt in 1..=policy.attempts() {
            let attempt_reqs = reqs.clone();
            let out = replay::try_execute(ctx, cache, key, n, enable, move |ctx| {
                ctx.try_run_queue(&attempt_reqs).map_err(TfnoError::from)
            });
            total_attempts += 1;
            match out {
                Ok(runs) => {
                    // Lease balance is part of the proof: a sequence that
                    // finished with outstanding verifier leases mis-declared
                    // its scratch traffic.
                    ctx.verify_finish()?;
                    return Ok(runs);
                }
                Err(e) if e.is_transient() => {
                    if attempt < policy.attempts() {
                        lock_unpoisoned(recovery).transient_retries += 1;
                        if policy.backoff > Duration::ZERO {
                            std::thread::sleep(policy.backoff);
                        }
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        let any_fused = reqs.iter().any(|r| {
            matches!(
                ctx.resolve(&r.spec),
                Variant::FusedFftGemm | Variant::FusedGemmIfft | Variant::FullyFused
            )
        });
        if any_fused && !degraded {
            degraded = true;
            lock_unpoisoned(recovery).degraded += 1;
            for r in &mut reqs {
                let fused = matches!(
                    ctx.resolve(&r.spec),
                    Variant::FusedFftGemm | Variant::FusedGemmIfft | Variant::FullyFused
                );
                if fused {
                    r.spec = r.spec.variant(Variant::FftOpt);
                }
            }
            continue;
        }
        lock_unpoisoned(recovery).exhausted += 1;
        return Err(match last.expect("at least one attempt ran") {
            TfnoError::Transient { fault, .. } => TfnoError::Transient {
                fault,
                attempts: total_attempts,
            },
            e => e,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_lengths() {
        let s = LayerSpec::d1(2, 8, 16, 128).modes(32);
        assert_eq!(s.input_len(), 2 * 8 * 128);
        assert_eq!(s.weight_len(), 8 * 16);
        assert_eq!(s.output_len(), 2 * 16 * 128);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(2, 8, 16, 128, 32));
        assert!(s.problem_2d().is_none());

        let s2 = LayerSpec::d2(1, 4, 4, 32, 64).modes(32);
        let p2 = s2.problem_2d().unwrap();
        assert_eq!((p2.nfx, p2.nfy), (32, 32), "modes clamp to the axis");
        assert_eq!(
            LayerSpec::d2(1, 4, 4, 32, 64).modes_xy(8, 32).problem_2d().unwrap(),
            FnoProblem2d::new(1, 4, 4, 32, 64, 8, 32)
        );
    }

    /// Regression: the 1D arm of `modes` documented the clamp but did not
    /// apply it — `.modes(nf > n)` built an invalid `FnoProblem1d` that
    /// only failed later with an opaque downstream assert.
    #[test]
    fn modes_clamps_to_the_1d_axis() {
        let s = LayerSpec::d1(1, 2, 2, 64).modes(1000);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(1, 2, 2, 64, 64));
        // In-range requests are untouched.
        assert_eq!(LayerSpec::d1(1, 2, 2, 64).modes(16).problem_1d().unwrap().nf, 16);
    }

    /// Regression: `modes_xy` skipped the per-axis clamp `modes` applies,
    /// so the two builders disagreed on out-of-range inputs.
    #[test]
    fn modes_xy_clamps_like_modes() {
        let s = LayerSpec::d2(1, 2, 2, 32, 64).modes_xy(1000, 48);
        let p = s.problem_2d().unwrap();
        assert_eq!((p.nfx, p.nfy), (32, 48));
        // The two builders must agree on every input, in and out of range.
        for k in [1usize, 16, 32, 33, 64, 65, 1000] {
            assert_eq!(
                LayerSpec::d2(2, 4, 4, 32, 64).modes(k),
                LayerSpec::d2(2, 4, 4, 32, 64).modes_xy(k, k),
                "modes({k}) and modes_xy({k}, {k}) diverge"
            );
        }
    }

    #[test]
    fn spec_defaults_are_turbo_best_functional_full_spectrum() {
        let s = LayerSpec::d1(1, 4, 4, 64);
        assert_eq!(s.variant, Variant::TurboBest);
        assert_eq!(s.exec, ExecMode::Functional);
        assert_eq!(s.problem_1d().unwrap().nf, 64);
    }

    #[test]
    #[should_panic(expected = "modes_xy on a 1D")]
    fn modes_xy_rejects_1d() {
        let _ = LayerSpec::d1(1, 1, 1, 64).modes_xy(4, 4);
    }

    #[test]
    fn stacked_scales_only_batch() {
        let s = LayerSpec::d1(3, 8, 8, 128).modes(32).stacked(4);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(12, 8, 8, 128, 32));
    }

    #[test]
    #[should_panic(expected = "input_len")]
    fn run_validates_buffer_lengths() {
        let mut sess = Session::new(SimBackend::a100());
        let spec = LayerSpec::d1(1, 2, 2, 64).variant(Variant::FftOpt);
        let x = sess.alloc("x", 7); // wrong
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        sess.run(&spec, x, w, y);
    }

    #[test]
    fn measure_is_analytical_and_memoizes_the_sequence() {
        let mut sess = Session::new(SimBackend::a100());
        let spec = LayerSpec::d1(2, 8, 8, 128).modes(32).variant(Variant::FftOpt);
        let a = sess.measure(&spec);
        assert_eq!(a.kernel_count(), 3);
        assert!(a.total_us() > 0.0);
        let launched_cold = sess.device().launches().len();
        let b = sess.measure(&spec);
        assert_eq!(a.total_stats(), b.total_stats());
        assert_eq!(
            sess.device().launches().len(),
            launched_cold,
            "a warm measure is answered from the sequence memo, zero launches"
        );
        assert_eq!(
            sess.pool_stats().leased,
            0,
            "measure must release its virtual operands"
        );
    }

    fn seeded(len: usize, seed: f32) -> Vec<C32> {
        (0..len)
            .map(|i| {
                C32::new(
                    ((i as f32) * 0.17 + seed).sin(),
                    ((i as f32) * 0.23 - seed).cos(),
                )
            })
            .collect()
    }

    fn spec_with_operands(sess: &mut Session) -> (LayerSpec, BufferId, BufferId, BufferId) {
        let spec = LayerSpec::d1(2, 8, 8, 128).modes(32).variant(Variant::FftOpt);
        let x = sess.alloc("x", spec.input_len());
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        sess.upload(x, &seeded(spec.input_len(), 0.4));
        sess.upload(w, &seeded(spec.weight_len(), 0.9));
        (spec, x, w, y)
    }

    #[test]
    fn submit_wait_is_bitwise_equal_to_run() {
        let mut sync = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sync);
        let run_sync = sync.run(&spec, x, w, y);
        let want = sync.download(y);

        let mut agsync = Session::new(SimBackend::a100());
        let (spec2, x2, w2, y2) = spec_with_operands(&mut agsync);
        let handle = agsync.submit(&spec2, x2, w2, y2);
        assert!(agsync.pending(), "dispatch must be in flight after submit");
        let run_async = agsync.wait(handle);
        assert!(!agsync.pending());
        assert_eq!(agsync.download(y2), want);
        assert_eq!(run_async.kernel_count(), run_sync.kernel_count());
        assert_eq!(run_async.total_stats(), run_sync.total_stats());
    }

    #[test]
    fn mut_session_methods_synchronize_with_the_dispatch() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let handle = sess.submit(&spec, x, w, y);
        // `run` is a &mut method: it must serialize behind the dispatch,
        // not observe or corrupt mid-flight state.
        let y2 = sess.alloc("y2", spec.output_len());
        assert!(!sess.pending(), "alloc synchronized with the dispatch");
        sess.run(&spec, x, w, y2);
        assert_eq!(sess.download(y2), sess.download(y));
        // The handle's result was parked across the interleaved run.
        let run = sess.wait(handle);
        assert!(run.kernel_count() > 0);
    }

    #[test]
    #[should_panic(expected = "in-flight submitted work")]
    fn download_during_flight_panics() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let _handle = sess.submit(&spec, x, w, y);
        let _ = sess.download(y);
    }

    #[test]
    #[should_panic(expected = "different Session")]
    fn foreign_handles_are_rejected() {
        let mut a = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut a);
        let handle = a.submit(&spec, x, w, y);
        let mut b = Session::new(SimBackend::a100());
        let _ = b.wait(handle);
    }

    /// Shape panics surface on the submitting thread, exactly like the
    /// synchronous path — not deferred into the dispatch.
    #[test]
    #[should_panic(expected = "mode count out of range")]
    fn submit_validates_shapes_synchronously() {
        let mut sess = Session::new(SimBackend::a100());
        // Bypass the modes() clamp to build an invalid spec directly.
        let spec = LayerSpec {
            shape: SpectralShape {
                batch: 1,
                k_in: 2,
                k_out: 2,
                rank: 1,
                dims: [64, 1, 1],
                modes: [0, 1, 1],
            },
            variant: Variant::FftOpt,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        };
        let x = sess.alloc("x", spec.input_len());
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        let _ = sess.submit(&spec, x, w, y);
    }

    #[test]
    fn transient_fault_is_retried_and_bitwise_equal() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        sess.run(&spec, x, w, y);
        let want = sess.download(y);

        // A fresh output buffer gives the faulted run its own replay key.
        let y2 = sess.alloc("y2", spec.output_len());
        sess.set_fault_plan(Some(
            FaultPlan::seeded(11).at_launch(0, crate::backend::FaultKind::TransientLaunch),
        ));
        let run = sess.try_run(&spec, x, w, y2).expect("retry recovers");
        assert!(run.kernel_count() > 0);
        assert_eq!(sess.download(y2), want, "retried run is bitwise equal");
        let stats = sess.recovery_stats();
        assert_eq!(stats.transient_retries, 1);
        assert_eq!(stats.exhausted, 0);
        assert_eq!(sess.fault_stats().injected(), 1);
        assert_eq!(sess.pool_stats().leased, 0, "no lease leaked across the fault");
    }

    #[test]
    fn alloc_fault_is_retried_without_wedging_the_pool() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        sess.set_fault_plan(Some(FaultPlan::seeded(3).at_alloc(0)));
        sess.try_run(&spec, x, w, y).expect("alloc retry recovers");
        assert!(sess.recovery_stats().transient_retries >= 1);
        assert_eq!(sess.pool_stats().leased, 0);
    }

    #[test]
    fn exhausted_retries_surface_attempt_count() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        sess.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
        });
        // Every functional launch fails: no rung can succeed.
        sess.set_fault_plan(Some(FaultPlan::seeded(5).transient(1.0)));
        let err = sess.try_run(&spec, x, w, y).unwrap_err();
        match err {
            TfnoError::Transient { attempts, .. } => assert_eq!(attempts, 2),
            e => panic!("expected Transient, got {e}"),
        }
        assert_eq!(sess.recovery_stats().exhausted, 1);
        // The session is not wedged: lift the plan and run clean.
        sess.set_fault_plan(None);
        sess.run(&spec, x, w, y);
        assert_eq!(sess.pool_stats().leased, 0);
    }

    #[test]
    fn degradation_ladder_replans_fused_onto_fftopt() {
        let mut reference = Session::new(SimBackend::a100());
        let (spec_ref, xr, wr, yr) = spec_with_operands(&mut reference);
        let spec_ref = spec_ref.variant(Variant::FftOpt);
        reference.run(&spec_ref, xr, wr, yr);
        let want = reference.download(yr);

        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let spec = spec.variant(Variant::FullyFused);
        sess.set_retry_policy(RetryPolicy::none());
        // Exactly the first launch faults: the fused rung's single attempt
        // dies, the ladder re-plans onto FftOpt, which then runs clean.
        sess.set_fault_plan(Some(
            FaultPlan::seeded(7).at_launch(0, crate::backend::FaultKind::TransientLaunch),
        ));
        sess.try_run(&spec, x, w, y).expect("degraded rung recovers");
        let stats = sess.recovery_stats();
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.exhausted, 0);
        assert_eq!(
            sess.download(y),
            want,
            "degraded run is bitwise equal to a fault-free FftOpt run"
        );
    }

    #[test]
    fn faulted_replay_evicts_and_falls_back_to_functional() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        sess.run(&spec, x, w, y); // cold: records the tape
        let want = sess.download(y);

        // Warm call would replay; fault its first replayed launch.
        sess.set_fault_plan(Some(
            FaultPlan::seeded(13).at_launch(0, crate::backend::FaultKind::TransientLaunch),
        ));
        sess.try_run(&spec, x, w, y).expect("fallback recovers");
        assert_eq!(sess.download(y), want);
        assert_eq!(sess.recovery_stats().faulted_replays, 1);
        assert_eq!(sess.pool_stats().leased, 0);

        // The evicted artifact was re-recorded by the fallback: the next
        // warm call replays again, fault-free.
        sess.set_fault_plan(None);
        let hits_before = sess.replay_stats().hits;
        sess.run(&spec, x, w, y);
        let after = sess.replay_stats();
        assert_eq!(after.hits, hits_before + 1);
        assert_eq!(after.faulted, 1, "only the faulted warm call was evicted");
    }

    #[test]
    fn job_panic_heals_leases_and_only_fails_its_handle() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        // A job that leaks a lease and panics (only constructible from
        // inside the crate — the public surface never panics mid-lease
        // without the tape hygiene the pipelines provide).
        let bad = sess.dispatch(Box::new(|ctx| {
            let _leak = ctx
                .pool
                .try_acquire(ctx.dev, 64)
                .expect("unfaulted acquire");
            panic!("chaos: job panic")
        }));
        let good = sess.submit(&spec, x, w, y);

        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sess.try_wait(bad);
        }));
        assert!(err.is_err(), "the panicked job re-raises at its wait");

        // The later submit is unaffected and the leaked lease came back.
        let run = sess.wait(good);
        assert!(run.kernel_count() > 0);
        let stats = sess.recovery_stats();
        assert_eq!(stats.jobs_healed, 1);
        assert_eq!(stats.leases_recovered, 1);
        assert_eq!(sess.pool_stats().leased, 0);
        sess.run(&spec, x, w, y); // still serviceable
    }

    /// Satellite: dropping a handle without waiting must not strand its
    /// parked result or leak state — the next synchronize discards it.
    #[test]
    fn abandoned_handle_is_discarded_at_next_synchronize() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let handle = sess.submit(&spec, x, w, y);
        drop(handle);
        sess.synchronize();
        let stats = sess.recovery_stats();
        assert_eq!(stats.abandoned_handles, 1);
        assert_eq!(sess.pool_stats().leased, 0);
        // The output was still written (dispatch ran to completion).
        let mut reference = Session::new(SimBackend::a100());
        let (spec2, x2, w2, y2) = spec_with_operands(&mut reference);
        reference.run(&spec2, x2, w2, y2);
        assert_eq!(sess.download(y), reference.download(y2));
        sess.run(&spec, x, w, y); // still serviceable
    }

    /// A panicked job whose handle was dropped surfaces at the next
    /// synchronizing call instead of disappearing.
    #[test]
    #[should_panic(expected = "chaos: abandoned panic")]
    fn abandoned_panicked_job_reraises_at_synchronize() {
        let mut sess = Session::new(SimBackend::a100());
        let handle = sess.dispatch(Box::new(|_ctx| panic!("chaos: abandoned panic")));
        drop(handle);
        sess.synchronize();
    }

    #[test]
    fn try_inspectors_report_in_flight() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let handle = sess.submit(&spec, x, w, y);
        assert!(matches!(sess.try_download(y), Err(TfnoError::InFlight)));
        assert!(matches!(sess.try_device(), Err(TfnoError::InFlight)));
        assert!(matches!(sess.try_pool_stats(), Err(TfnoError::InFlight)));
        let _ = sess.wait(handle);
        assert!(sess.try_download(y).is_ok());
        assert!(sess.try_device().is_ok());
        assert_eq!(sess.try_pool_stats().expect("synchronized").leased, 0);
    }

    #[test]
    fn wait_timeout_rearms_the_handle_on_deadline() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        // Stall the first launch long enough for a short deadline to trip.
        sess.set_fault_plan(Some(
            FaultPlan::seeded(17)
                .at_launch(0, crate::backend::FaultKind::Stall)
                .stall_us(200_000),
        ));
        let handle = sess.submit(&spec, x, w, y);
        let handle = match sess.wait_timeout(handle, Duration::from_millis(5)) {
            Err((Some(h), TfnoError::Timeout { waited })) => {
                assert!(waited >= Duration::from_millis(5));
                h
            }
            other => panic!("expected a re-armed timeout, got {other:?}"),
        };
        // The re-armed handle stays redeemable.
        let runs = sess
            .wait_timeout(handle, Duration::from_secs(30))
            .expect("stall finishes well inside the second deadline");
        assert_eq!(runs.len(), 1);
        // wait_timeout leaves the device on the dispatch thread (it never
        // drains); synchronize before inspecting it.
        sess.synchronize();
        assert_eq!(sess.fault_stats().stalls, 1);
    }

    #[test]
    fn typed_submit_waits_report_dispatch_failures() {
        let mut sess = Session::new(SimBackend::a100());
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        sess.set_retry_policy(RetryPolicy::none());
        sess.set_fault_plan(Some(FaultPlan::seeded(23).transient(1.0)));
        let handle = sess.try_submit(&spec, x, w, y).expect("admission is clean");
        let err = sess.try_wait(handle).unwrap_err();
        assert!(err.is_transient(), "dispatched fault surfaces typed: {err}");
        // Session heals: lift the plan, run clean.
        sess.set_fault_plan(None);
        sess.run(&spec, x, w, y);
        assert_eq!(sess.pool_stats().leased, 0);
    }
}
