//! `Session` — the batch-first execution surface of the crate.
//!
//! The paper's thesis is that FNO performance is lost to per-stage round
//! trips; the pre-Session host API re-created that problem one level up:
//! every `run_variant_*` call took eight positional arguments, allocated
//! its scratch fresh, and callers threaded device, planner, options and
//! mode through every layer by hand. A [`Session`] owns that state once —
//! the simulated [`GpuDevice`], the memoizing [`Planner`], and a
//! size-class [`BufferPool`] — and executes [`LayerSpec`]s against it:
//!
//! ```
//! use turbofno::{LayerSpec, Session, Variant};
//!
//! let mut sess = Session::a100();
//! let spec = LayerSpec::d1(2, 16, 16, 128).modes(32).variant(Variant::FftOpt);
//! let x = sess.alloc("x", spec.input_len());
//! let w = sess.alloc("w", spec.weight_len());
//! let y = sess.alloc("y", spec.output_len());
//! // ... upload x/w ...
//! let run = sess.run(&spec, x, w, y);
//! assert_eq!(run.kernel_count(), 3); // FFT, CGEMM, iFFT
//! // A second same-shape-same-buffers run replays the recorded launch
//! // sequence — no planning, no scratch leasing, no kernel assembly:
//! let warm = sess.run(&spec, x, w, y);
//! assert_eq!(warm.kernel_count(), 3);
//! assert_eq!(sess.replay_stats().hits, 1);
//! ```
//!
//! [`Session::run_many`] is the serving entry point: requests of the same
//! shape share one `TurboBest` planning decision, run back-to-back through
//! the same pooled scratch, and — when they also share a weight buffer —
//! coalesce into a single stacked-batch launch sequence.
//!
//! ## Warm-path replay
//!
//! Every functional `run`/`run_many` (and their submitted halves) goes
//! through the whole-forward replay cache (`replay.rs`): the first call of
//! a `(shape, variant, options, stack layout, operand buffers)` tuple
//! records its complete launch sequence — kernel objects included — as a
//! replayable artifact that also retains the scratch it leased; every
//! later identical call re-issues that sequence in one pass. Results are
//! bitwise-identical to the cold path. Artifacts are invalidated (never
//! served stale) when the planner is cleared, the pool is swapped, or the
//! device's worker configuration changes; changing shape, variant,
//! options, stack depth or weight-stacking layout is simply a different
//! key. [`Session::replay_stats`] exposes hits/misses/invalidations.
//!
//! ## Async layer dispatch
//!
//! [`Session::submit`]/[`Session::submit_many`] are the asynchronous halves
//! of `run`/`run_many`: they enqueue the same launch sequence on the
//! session's *dispatch thread* — one long-lived thread, created at the
//! first submit and reused for every later one — and return a
//! [`LaunchHandle`] immediately, so the host can do unrelated work — an
//! FNO layer's pointwise bypass, the next batch's staging — while the
//! simulated device executes. Up to [`Session::pipeline_depth`] submits
//! ride the in-order queue concurrently; past that, `submit` waits for the
//! oldest job before enqueueing (backpressure, never reordering).
//! [`Session::wait`] (or [`Session::wait_many`]) synchronizes and returns
//! the same [`PipelineRun`]s the synchronous call would have; outputs are
//! bitwise-identical because the dispatched work *is* the synchronous code
//! path, merely running on another thread.
//!
//! While dispatched work is in flight the device and pool live on the
//! dispatch thread: any `&mut Session` method except `submit`/`submit_many`
//! first synchronizes (so `submit` → `run` is legal and simply
//! serializes), while `&self` inspection methods ([`Session::download`],
//! [`Session::device`], [`Session::pool_stats`]) panic rather than observe
//! half-complete state. Submits themselves validate against a shadow
//! length ledger so a deep pipeline never drains just to check shapes.
//! Buffers leased before a `submit` stay leased until after the `wait` —
//! the lease ledger travels with the pool, so in-flight layers keep their
//! operands pinned. A panic raised by dispatched work (the documented
//! aliasing/shape panics) is re-raised on the host at the next
//! synchronizing call.

use crate::pipeline::{ExecCtx, LayerBufs, TurboOptions, Variant};
use crate::planner::{hash_device_config, Planner, PlannerStats};
use crate::pool::{BufferPool, PoolStats};
use crate::replay::{self, ReplayCache, ReplayStats};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use tfno_cgemm::WeightStacking;
use tfno_culib::{CopySegment, FnoProblem1d, FnoProblem2d, PipelineRun, SegmentedCopyKernel};
use tfno_gpu_sim::{
    lock_unpoisoned, seq_insert, seq_lookup, BufferId, ExecMode, GpuDevice, LaunchQueue,
    PendingLaunch,
};
use tfno_num::C32;

/// Dimension-generic description of one Fourier-layer execution.
///
/// Built with [`LayerSpec::d1`]/[`LayerSpec::d2`] plus chained setters;
/// consumed by [`Session::run`]/[`Session::run_many`]. Until `.modes(..)`
/// is called the spec keeps the full spectrum (`nf = n`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    shape: SpecShape,
    /// Pipeline variant to execute (default [`Variant::TurboBest`]).
    pub variant: Variant,
    /// Turbo tuning/ablation knobs.
    pub opts: TurboOptions,
    /// Execution mode (default [`ExecMode::Functional`]).
    pub exec: ExecMode,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum SpecShape {
    D1 {
        batch: usize,
        k_in: usize,
        k_out: usize,
        n: usize,
        nf: usize,
    },
    D2 {
        batch: usize,
        k_in: usize,
        k_out: usize,
        nx: usize,
        ny: usize,
        nfx: usize,
        nfy: usize,
    },
}

impl LayerSpec {
    /// A 1D Fourier layer: `x [batch, k_in, n] -> y [batch, k_out, n]`.
    pub fn d1(batch: usize, k_in: usize, k_out: usize, n: usize) -> Self {
        LayerSpec {
            shape: SpecShape::D1 {
                batch,
                k_in,
                k_out,
                n,
                nf: n,
            },
            variant: Variant::TurboBest,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        }
    }

    /// A 2D Fourier layer: `x [batch, k_in, nx, ny] -> y [batch, k_out, nx, ny]`.
    pub fn d2(batch: usize, k_in: usize, k_out: usize, nx: usize, ny: usize) -> Self {
        LayerSpec {
            shape: SpecShape::D2 {
                batch,
                k_in,
                k_out,
                nx,
                ny,
                nfx: nx,
                nfy: ny,
            },
            variant: Variant::TurboBest,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        }
    }

    /// Spec matching an existing 1D problem descriptor.
    pub fn from_problem_1d(p: &FnoProblem1d) -> Self {
        LayerSpec::d1(p.batch, p.k_in, p.k_out, p.n).modes(p.nf)
    }

    /// Spec matching an existing 2D problem descriptor.
    pub fn from_problem_2d(p: &FnoProblem2d) -> Self {
        LayerSpec::d2(p.batch, p.k_in, p.k_out, p.nx, p.ny).modes_xy(p.nfx, p.nfy)
    }

    /// Retain `nf` low-frequency modes per transformed axis, clamped to
    /// the axis length (`n` in 1D, `nx`/`ny` in 2D).
    ///
    /// The clamp is to the *full* axis length, not `n/2`: retained modes
    /// count complex spectrum entries from DC upward (this formulation has
    /// no Hermitian-symmetry truncation), so `.modes(n)` keeps the whole
    /// spectrum and any larger request degrades to exactly that instead of
    /// building an invalid problem that panics downstream.
    pub fn modes(mut self, nf: usize) -> Self {
        match &mut self.shape {
            SpecShape::D1 { n, nf: m, .. } => *m = nf.min(*n),
            SpecShape::D2 {
                nx, ny, nfx, nfy, ..
            } => {
                *nfx = nf.min(*nx);
                *nfy = nf.min(*ny);
            }
        }
        self
    }

    /// Retain an `nfx x nfy` corner (2D only), with the same per-axis
    /// clamping as [`LayerSpec::modes`] — `.modes(k)` and `.modes_xy(k, k)`
    /// agree on every input, in and out of range.
    ///
    /// # Panics
    /// On a 1D spec — a 1D layer has a single mode count; use
    /// [`LayerSpec::modes`].
    pub fn modes_xy(mut self, nfx_new: usize, nfy_new: usize) -> Self {
        match &mut self.shape {
            SpecShape::D1 { .. } => panic!("modes_xy on a 1D LayerSpec; use .modes(nf)"),
            SpecShape::D2 {
                nx, ny, nfx, nfy, ..
            } => {
                *nfx = nfx_new.min(*nx);
                *nfy = nfy_new.min(*ny);
            }
        }
        self
    }

    /// Select the pipeline variant (default `TurboBest`).
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Override the Turbo tuning knobs.
    pub fn options(mut self, opts: TurboOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution mode (default `Functional`).
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// The 1D problem descriptor, if this spec is 1D. Shape invariants
    /// (power-of-two length, mode bounds) are asserted here.
    pub fn problem_1d(&self) -> Option<FnoProblem1d> {
        match self.shape {
            SpecShape::D1 {
                batch,
                k_in,
                k_out,
                n,
                nf,
            } => Some(FnoProblem1d::new(batch, k_in, k_out, n, nf)),
            SpecShape::D2 { .. } => None,
        }
    }

    /// The 2D problem descriptor, if this spec is 2D.
    pub fn problem_2d(&self) -> Option<FnoProblem2d> {
        match self.shape {
            SpecShape::D1 { .. } => None,
            SpecShape::D2 {
                batch,
                k_in,
                k_out,
                nx,
                ny,
                nfx,
                nfy,
            } => Some(FnoProblem2d::new(batch, k_in, k_out, nx, ny, nfx, nfy)),
        }
    }

    /// Construct (and discard) the problem descriptor so shape panics
    /// surface on the submitting thread, not inside a dispatch.
    fn assert_valid_shape(&self) {
        let _ = self.problem_1d();
        let _ = self.problem_2d();
    }

    /// Leading (batch) dimension.
    pub fn batch(&self) -> usize {
        match self.shape {
            SpecShape::D1 { batch, .. } | SpecShape::D2 { batch, .. } => batch,
        }
    }

    /// Required length of the `x` operand in complex elements.
    pub fn input_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 { batch, k_in, n, .. } => batch * k_in * n,
            SpecShape::D2 {
                batch, k_in, nx, ny, ..
            } => batch * k_in * nx * ny,
        }
    }

    /// Required length of the `w` operand (`k_in * k_out`).
    pub fn weight_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 { k_in, k_out, .. } | SpecShape::D2 { k_in, k_out, .. } => k_in * k_out,
        }
    }

    /// Required length of the `y` operand.
    pub fn output_len(&self) -> usize {
        match self.shape {
            SpecShape::D1 {
                batch, k_out, n, ..
            } => batch * k_out * n,
            SpecShape::D2 {
                batch, k_out, nx, ny, ..
            } => batch * k_out * nx * ny,
        }
    }

    /// The same layer with the batch dimension scaled by `factor` — the
    /// shape of a coalesced stack of `factor` identical requests.
    fn stacked(&self, factor: usize) -> LayerSpec {
        let mut s = *self;
        match &mut s.shape {
            SpecShape::D1 { batch, .. } | SpecShape::D2 { batch, .. } => *batch *= factor,
        }
        s
    }
}

/// One queued layer execution for [`Session::run_many`].
#[derive(Clone, Copy, Debug)]
pub struct Request {
    pub spec: LayerSpec,
    pub x: BufferId,
    pub w: BufferId,
    pub y: BufferId,
}

/// Ticket for work dispatched with [`Session::submit`] or
/// [`Session::submit_many`]. Redeem it with [`Session::wait`] /
/// [`Session::wait_many`] on the session that issued it — handles are
/// session-bound and single-use (consumed by the wait).
///
/// Dropping a handle without waiting does not cancel the work: it still
/// completes at the session's next synchronizing call, and its result is
/// parked until (never) collected — wait on every handle you submit.
#[derive(Debug)]
#[must_use = "dispatched work completes, but its PipelineRun is lost unless the handle is waited on"]
pub struct LaunchHandle {
    session: u64,
    seq: u64,
}

/// A dispatched pipeline body: runs against the thread-resident state and
/// yields one `PipelineRun` per request.
type DispatchWork = Box<dyn FnOnce(&mut ExecCtx<'_>) -> Vec<PipelineRun> + Send>;

/// Work items for the session's long-lived dispatch thread.
enum Job {
    /// Move the device and pool onto the dispatch thread (boxed so the
    /// queue slot stays small).
    Install(Box<(GpuDevice, BufferPool)>),
    /// Execute one dispatched pipeline; the result travels back over the
    /// in-order results channel tagged with `seq`.
    Work { seq: u64, work: DispatchWork },
    /// Hand the device and pool back to the session (synchronize).
    Return,
}

/// The session's persistent dispatch thread: created at the first
/// `submit`, reused for every later one, joined on drop. Holds the device
/// and pool between `Install` and `Return` so a deep pipeline of submits
/// pays zero thread spawns and zero state hand-offs per job.
struct Dispatcher {
    jobs: mpsc::Sender<Job>,
    results: mpsc::Receiver<(u64, std::thread::Result<Vec<PipelineRun>>)>,
    state_back: mpsc::Receiver<Box<(GpuDevice, BufferPool)>>,
    join: std::thread::JoinHandle<()>,
}

/// Body of the dispatch thread: drain jobs in order until the session
/// drops its sender. The device and pool live in `state` and are only
/// *borrowed* per job, so a panicking pipeline can never lose them — the
/// panic payload rides the results channel and the thread keeps serving.
fn dispatch_loop(
    jobs: mpsc::Receiver<Job>,
    results: mpsc::Sender<(u64, std::thread::Result<Vec<PipelineRun>>)>,
    state_back: mpsc::Sender<Box<(GpuDevice, BufferPool)>>,
    planner: Arc<Planner>,
) {
    let mut state: Option<Box<(GpuDevice, BufferPool)>> = None;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Install(s) => state = Some(s),
            Job::Work { seq, work } => {
                let s = state.as_mut().expect("Work job follows an Install");
                let (dev, pool) = &mut **s;
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut ctx = ExecCtx {
                        dev,
                        pool,
                        planner: &planner,
                        tape: None,
                    };
                    work(&mut ctx)
                }));
                if results.send((seq, result)).is_err() {
                    return; // session gone; nothing left to serve
                }
            }
            Job::Return => {
                let s = state.take().expect("Return job follows an Install");
                if state_back.send(s).is_err() {
                    return;
                }
            }
        }
    }
}

/// Counters for the persistent dispatch thread (see
/// [`Session::dispatch_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dispatch threads created over the session's lifetime. Stays at 1 no
    /// matter how many submits ran (the thread is reused, not respawned).
    pub threads_spawned: u64,
    /// Jobs enqueued on the dispatch thread.
    pub jobs_dispatched: u64,
    /// High-water mark of concurrently in-flight jobs (bounded by
    /// [`Session::pipeline_depth`]).
    pub max_in_flight: u64,
}

/// Default in-flight depth of the dispatch pipeline: double-buffered — the
/// host stages submit N+1 while the device runs submit N.
const DEFAULT_PIPELINE_DEPTH: usize = 2;

static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

const IN_FLIGHT: &str = "session has in-flight submitted work; wait on its LaunchHandle \
                         (any `&mut Session` method also synchronizes) before reading \
                         session state";

/// An owning execution handle: simulated device + memoizing planner +
/// scratch buffer pool. The single way to execute Fourier layers (and,
/// via `tfno-model`, whole FNO forwards).
///
/// Sessions are cheap to create but meant to be long-lived: planner and
/// pool state warm up over the first request of each shape and every later
/// same-shape request skips planning and scratch allocation entirely.
///
/// Execution is synchronous ([`Session::run`], [`Session::run_many`]) or
/// asynchronous ([`Session::submit`], [`Session::submit_many`] — see the
/// [module docs](self) for the dispatch model); both produce bitwise-equal
/// results.
pub struct Session {
    /// `None` exactly while dispatched work is in flight (the device lives
    /// on the dispatch thread between `Install` and `Return`).
    dev: Option<GpuDevice>,
    /// Travels with the device so in-flight pipelines lease scratch and
    /// leases pinned by the host stay tracked.
    pool: Option<BufferPool>,
    /// Shared with the dispatch thread; all planner state is interior-mutex.
    planner: Arc<Planner>,
    /// Whole-forward replay cache, shared with the dispatch thread.
    replay: Arc<Mutex<ReplayCache>>,
    id: u64,
    next_seq: u64,
    /// Max jobs in flight before `submit` applies backpressure.
    depth: usize,
    dispatcher: Option<Dispatcher>,
    /// Sequence numbers of jobs on the dispatch thread, oldest first.
    inflight: VecDeque<u64>,
    /// First panic payload caught from dispatched work; re-raised at the
    /// next synchronizing call.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Finished dispatches not yet collected by a `wait`.
    completed: HashMap<u64, Vec<PipelineRun>>,
    stats: DispatchStats,
    /// Shadow operand-length ledger: lets `submit` validate shapes while
    /// the authoritative memory ledger is away on the dispatch thread.
    buf_meta: HashMap<BufferId, usize>,
    /// Gates recording and replaying (the artifact cache itself is kept);
    /// see [`Session::set_replay_enabled`].
    replay_enabled: bool,
}

impl Session {
    /// Wrap an existing device (its executor/memo configuration is kept).
    pub fn new(dev: GpuDevice) -> Self {
        Session {
            dev: Some(dev),
            pool: Some(BufferPool::new()),
            planner: Arc::new(Planner::new()),
            replay: Arc::new(Mutex::new(ReplayCache::new())),
            id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            depth: DEFAULT_PIPELINE_DEPTH,
            dispatcher: None,
            inflight: VecDeque::new(),
            panic: None,
            completed: HashMap::new(),
            stats: DispatchStats::default(),
            buf_meta: HashMap::new(),
            replay_enabled: true,
        }
    }

    /// A session over the paper's evaluation device.
    pub fn a100() -> Self {
        Session::new(GpuDevice::a100())
    }

    fn dev_ref(&self) -> &GpuDevice {
        self.dev.as_ref().expect(IN_FLIGHT)
    }

    pub fn device(&self) -> &GpuDevice {
        self.dev_ref()
    }

    pub fn device_mut(&mut self) -> &mut GpuDevice {
        self.synchronize();
        self.dev.as_mut().expect("device resident after synchronize")
    }

    /// The session-local `TurboBest` planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Planning counters: a warm same-shape request must add zero
    /// `simulated_launches`.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.stats()
    }

    /// Scratch-pool counters: a warm same-shape request must report
    /// `hits > 0`.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.as_ref().expect(IN_FLIGHT).stats()
    }

    /// True while submitted work (or the session state that ran it) is
    /// still on the dispatch thread — it flips false at the next
    /// synchronizing call, not by itself.
    pub fn pending(&self) -> bool {
        self.dev.is_none()
    }

    /// Replay-cache counters: a steady-state serving loop must report
    /// `hits` growing and `misses` flat (see the module docs).
    pub fn replay_stats(&self) -> ReplayStats {
        lock_unpoisoned(&self.replay).stats()
    }

    /// Dispatch-thread counters: `threads_spawned` stays at 1 however many
    /// submits ran; `max_in_flight` shows how deep the pipeline actually got.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.stats
    }

    /// Turn whole-forward replay off (or back on). While off, calls
    /// neither record nor replay artifacts — every execution takes the
    /// full cold path — but artifacts already cached are kept (with their
    /// retained scratch) and serve again once re-enabled. Useful for
    /// A/B-measuring the warm path against the cold one on a single
    /// session, and for callers that would otherwise churn the FIFO
    /// artifact cache with never-repeating keys.
    pub fn set_replay_enabled(&mut self, on: bool) {
        self.replay_enabled = on;
    }

    /// Whether warm-path replay is active (the default).
    pub fn replay_enabled(&self) -> bool {
        self.replay_enabled
    }

    /// Max submitted jobs in flight before [`Session::submit`] blocks on
    /// the oldest (clamped to ≥ 1). Depth 1 is classic double-buffering's
    /// degenerate case: one job runs while the host stages the next submit.
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// Current in-flight depth bound (default 2).
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// Lazily create the session's one long-lived dispatch thread.
    fn ensure_dispatcher(&mut self) {
        if self.dispatcher.is_some() {
            return;
        }
        let (jobs_tx, jobs_rx) = mpsc::channel();
        let (res_tx, res_rx) = mpsc::channel();
        let (state_tx, state_rx) = mpsc::channel();
        let planner = Arc::clone(&self.planner);
        let join = std::thread::Builder::new()
            .name("tfno-dispatch".into())
            .spawn(move || dispatch_loop(jobs_rx, res_tx, state_tx, planner))
            .expect("spawn dispatch thread");
        self.stats.threads_spawned += 1;
        self.dispatcher = Some(Dispatcher {
            jobs: jobs_tx,
            results: res_rx,
            state_back: state_rx,
            join,
        });
    }

    /// Receive the oldest in-flight job's result, parking it for its
    /// `wait`. Panic payloads are recorded (first one wins) and re-raised
    /// by `synchronize`, after the device is safely home.
    fn collect_one(&mut self) {
        let Some(seq) = self.inflight.pop_front() else {
            return;
        };
        let d = self
            .dispatcher
            .as_ref()
            .expect("dispatcher alive while jobs are in flight");
        let (got, result) = d.results.recv().expect("dispatch thread alive");
        debug_assert_eq!(got, seq, "results arrive in submit order");
        match result {
            Ok(runs) => {
                self.completed.insert(seq, runs);
            }
            Err(payload) => {
                self.panic.get_or_insert(payload);
            }
        }
    }

    /// Drain the dispatch pipeline, restore the device and pool, and
    /// re-raise the first panic any dispatched job produced. Every
    /// `&mut Session` entry point except `submit`/`submit_many` calls this
    /// first, so session state is never observed mid-dispatch.
    pub fn synchronize(&mut self) {
        while !self.inflight.is_empty() {
            self.collect_one();
        }
        if self.dev.is_none() {
            let d = self
                .dispatcher
                .as_ref()
                .expect("dispatcher holds the device while it is away");
            d.jobs.send(Job::Return).expect("dispatch thread alive");
            let state = d
                .state_back
                .recv()
                .expect("dispatch thread returns the device");
            let (dev, pool) = *state;
            self.dev = Some(dev);
            self.pool = Some(pool);
        }
        if let Some(payload) = self.panic.take() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Allocate a named long-lived buffer (weights, persistent activations).
    pub fn alloc(&mut self, name: &str, len: usize) -> BufferId {
        let id = self.device_mut().alloc(name, len);
        self.buf_meta.insert(id, len);
        id
    }

    /// Lease a real buffer from the pool (return it with [`Session::release`]).
    pub fn acquire(&mut self, len: usize) -> BufferId {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        let id = pool.acquire(dev, len);
        let n = dev.memory.len(id);
        self.buf_meta.insert(id, n);
        id
    }

    /// Lease a storage-free virtual buffer from the pool.
    pub fn acquire_virtual(&mut self, len: usize) -> BufferId {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        let id = pool.acquire_virtual(dev, len);
        let n = dev.memory.len(id);
        self.buf_meta.insert(id, n);
        id
    }

    /// Return a leased buffer to the pool.
    pub fn release(&mut self, id: BufferId) {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        pool.release(dev, id);
    }

    /// Donate a buffer the pool never leased (e.g. one created with
    /// [`Session::alloc`] that is no longer needed) to the free lists.
    pub fn adopt(&mut self, id: BufferId) {
        self.synchronize();
        let (dev, pool) = self.resident_mut();
        pool.adopt(dev, id);
    }

    pub fn upload(&mut self, id: BufferId, data: &[C32]) {
        self.device_mut().upload(id, data);
    }

    pub fn download(&self, id: BufferId) -> Vec<C32> {
        self.dev_ref().download(id)
    }

    /// Both halves of the resident state, after a `synchronize`.
    fn resident_mut(&mut self) -> (&mut GpuDevice, &mut BufferPool) {
        (
            self.dev.as_mut().expect("device resident after synchronize"),
            self.pool.as_mut().expect("pool resident after synchronize"),
        )
    }

    fn ctx(&mut self) -> ExecCtx<'_> {
        ExecCtx {
            dev: self.dev.as_mut().expect("device resident after synchronize"),
            pool: self.pool.as_mut().expect("pool resident after synchronize"),
            planner: &self.planner,
            tape: None,
        }
    }

    /// Operand-length check against the resident memory ledger, or the
    /// shadow ledger while the device is on the dispatch thread — so a
    /// deep pipeline of submits never drains just to check shapes. A
    /// buffer the shadow ledger has not seen (created directly via
    /// [`Session::device_mut`]) falls back to a synchronize plus the
    /// authoritative ledger.
    fn validate(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) {
        if self.dev.is_none() && [x, w, y].iter().any(|id| !self.buf_meta.contains_key(id)) {
            self.synchronize();
        }
        let len = |id: BufferId| match &self.dev {
            Some(dev) => dev.memory.len(id),
            None => self.buf_meta[&id],
        };
        assert_eq!(len(x), spec.input_len(), "x length != spec input_len");
        assert_eq!(len(w), spec.weight_len(), "w length != spec weight_len");
        assert_eq!(len(y), spec.output_len(), "y length != spec output_len");
    }

    /// The full `run_many` admission contract: operand lengths plus the
    /// aliasing rules. Runs on the caller's thread for both the
    /// synchronous and the submitted path, so the documented panics always
    /// surface at the call site.
    fn validate_queue(&mut self, reqs: &[Request]) {
        for r in reqs {
            self.validate(&r.spec, r.x, r.w, r.y);
            r.spec.assert_valid_shape();
        }
        for (i, a) in reqs.iter().enumerate() {
            assert!(
                a.y != a.x && a.y != a.w,
                "run_many request {i} is self-aliased (y == {}): group-reordered \
                 execution would run it in-place; use a distinct output buffer or a \
                 sequential `run` call",
                if a.y == a.x { "x" } else { "w" }
            );
            for (j, b) in reqs.iter().enumerate() {
                assert!(
                    i == j || (a.y != b.x && a.y != b.w && a.y != b.y),
                    "run_many requests must not alias outputs: request {i}'s y is an \
                     operand of request {j}; chain dependent layers through \
                     sequential `run` calls instead"
                );
            }
        }
    }

    /// Replay key of a single-layer call: spec identity plus operand
    /// buffers (prefix-tagged so single runs and queues never collide).
    fn single_key(spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> u64 {
        let mut h = DefaultHasher::new();
        0xF0u8.hash(&mut h);
        hash_spec(spec, &mut h);
        (x, w, y).hash(&mut h);
        h.finish()
    }

    /// Replay key of a serving queue: the full request list, in order.
    fn queue_key(reqs: &[Request]) -> u64 {
        let mut h = DefaultHasher::new();
        0xF1u8.hash(&mut h);
        reqs.len().hash(&mut h);
        for r in reqs {
            hash_spec(&r.spec, &mut h);
            (r.x, r.w, r.y).hash(&mut h);
        }
        h.finish()
    }

    /// Execute one layer spec. `TurboBest` consults the session planner
    /// (memoized per shape); scratch comes from the session pool. Warm
    /// same-key calls replay the recorded launch sequence (see the module
    /// docs), bitwise equal to a cold run.
    pub fn run(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> PipelineRun {
        self.synchronize();
        self.validate(spec, x, w, y);
        let key = Session::single_key(spec, x, w, y);
        let enable = self.replay_enabled && spec.exec == ExecMode::Functional;
        let cache = Arc::clone(&self.replay);
        let spec = *spec;
        let mut ctx = self.ctx();
        let mut runs = replay::execute(&mut ctx, &cache, key, 1, enable, move |ctx| {
            let run = ctx.run_spec(&spec, spec.variant, LayerBufs::shared(x, w, y));
            ctx.mark_unit(0);
            vec![run]
        });
        runs.pop().expect("one run per single-layer call")
    }

    /// Execute a queue of layer requests, coalescing where possible.
    ///
    /// * Requests with identical specs share one planning decision —
    ///   `TurboBest` is resolved once per shape group, so N same-shape
    ///   requests cost exactly one (possibly cached) plan.
    /// * Within a shape group, every stackable request (functional mode,
    ///   value-carrying buffers) joins **one** stack along the batch axis
    ///   and executes as a single batched launch sequence — *even when the
    ///   requests use different weight buffers*: the weights are packed
    ///   into a pooled strided buffer and the kernels read one slice per
    ///   stacked sub-batch ([`WeightStacking`]). Per-sample results are
    ///   bitwise-identical to sequential [`Session::run`] calls because
    ///   every kernel treats batch entries independently.
    /// * Everything else (virtual buffers, analytical mode) runs
    ///   back-to-back through the shared scratch pool, so N same-shape
    ///   requests allocate scratch once and reuse it N−1 times.
    ///
    /// Returns one [`PipelineRun`] per request, in order. A coalesced
    /// group reports its launches (a device-side gather, the pipeline
    /// kernels, a device-side scatter) on the group's first request; the
    /// other members report empty runs (their outputs are still written).
    ///
    /// The queue is a *parallel batch*: no request's output buffer may be
    /// one of its own or another request's operands (coalescing and shape
    /// grouping reorder execution, so chained or in-place layers must go
    /// through sequential [`Session::run`] calls). Violations panic.
    pub fn run_many(&mut self, reqs: &[Request]) -> Vec<PipelineRun> {
        self.synchronize();
        self.validate_queue(reqs);
        let key = Session::queue_key(reqs);
        let enable =
            self.replay_enabled && reqs.iter().all(|r| r.spec.exec == ExecMode::Functional);
        let cache = Arc::clone(&self.replay);
        let n = reqs.len();
        let reqs = reqs.to_vec();
        let mut ctx = self.ctx();
        replay::execute(&mut ctx, &cache, key, n, enable, move |ctx| {
            ctx.run_queue(&reqs)
        })
    }

    /// Issue [`Session::run`] asynchronously: the launch sequence executes
    /// on the session's dispatch thread while this call returns
    /// immediately. Redeem the handle with [`Session::wait`] for the
    /// [`PipelineRun`]; the output buffer holds its result from that point
    /// on, bitwise equal to the synchronous call. Operand/shape validation
    /// still happens here, synchronously.
    ///
    /// Up to [`Session::pipeline_depth`] submits ride the in-order queue
    /// concurrently; past that, this call waits for the oldest job before
    /// enqueueing. Interleaving host work *between* submits and their
    /// waits is the profitable pattern.
    pub fn submit(&mut self, spec: &LayerSpec, x: BufferId, w: BufferId, y: BufferId) -> LaunchHandle {
        self.validate(spec, x, w, y);
        spec.assert_valid_shape();
        let key = Session::single_key(spec, x, w, y);
        let enable = self.replay_enabled && spec.exec == ExecMode::Functional;
        let cache = Arc::clone(&self.replay);
        let spec = *spec;
        self.dispatch(Box::new(move |ctx| {
            replay::execute(ctx, &cache, key, 1, enable, |ctx| {
                let run = ctx.run_spec(&spec, spec.variant, LayerBufs::shared(x, w, y));
                ctx.mark_unit(0);
                vec![run]
            })
        }))
    }

    /// Issue [`Session::run_many`] asynchronously (same coalescing, same
    /// aliasing contract — validated here, synchronously; same warm-path
    /// replay). Redeem with [`Session::wait_many`].
    pub fn submit_many(&mut self, reqs: &[Request]) -> LaunchHandle {
        self.validate_queue(reqs);
        let key = Session::queue_key(reqs);
        let enable =
            self.replay_enabled && reqs.iter().all(|r| r.spec.exec == ExecMode::Functional);
        let cache = Arc::clone(&self.replay);
        let n = reqs.len();
        let reqs = reqs.to_vec();
        self.dispatch(Box::new(move |ctx| {
            replay::execute(ctx, &cache, key, n, enable, move |ctx| ctx.run_queue(&reqs))
        }))
    }

    /// Enqueue `work` on the persistent dispatch thread, moving the device
    /// and pool there first if they are still resident. Applies the
    /// pipeline-depth backpressure and hands back the job's ticket.
    fn dispatch(&mut self, work: DispatchWork) -> LaunchHandle {
        self.ensure_dispatcher();
        if let (Some(dev), Some(pool)) = (self.dev.take(), self.pool.take()) {
            let d = self.dispatcher.as_ref().expect("dispatcher just ensured");
            d.jobs
                .send(Job::Install(Box::new((dev, pool))))
                .expect("dispatch thread alive");
        }
        while self.inflight.len() >= self.depth {
            self.collect_one();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let d = self.dispatcher.as_ref().expect("dispatcher just ensured");
        d.jobs
            .send(Job::Work { seq, work })
            .expect("dispatch thread alive");
        self.inflight.push_back(seq);
        self.stats.jobs_dispatched += 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.inflight.len() as u64);
        LaunchHandle {
            session: self.id,
            seq,
        }
    }

    /// Redeem a [`Session::submit`] handle: synchronize with the dispatch
    /// and return its [`PipelineRun`].
    ///
    /// # Panics
    /// If the handle came from another session or from [`Session::submit_many`]
    /// with more than one request (use [`Session::wait_many`]).
    pub fn wait(&mut self, handle: LaunchHandle) -> PipelineRun {
        let mut runs = self.wait_many(handle);
        assert_eq!(
            runs.len(),
            1,
            "wait() on a multi-request submit_many handle; use wait_many()"
        );
        runs.pop().expect("one run")
    }

    /// Redeem a [`Session::submit_many`] handle: one [`PipelineRun`] per
    /// submitted request, in order, exactly as [`Session::run_many`] would
    /// have returned them.
    pub fn wait_many(&mut self, handle: LaunchHandle) -> Vec<PipelineRun> {
        assert_eq!(
            handle.session, self.id,
            "LaunchHandle was issued by a different Session"
        );
        self.synchronize();
        self.completed
            .remove(&handle.seq)
            .expect("no parked result for this LaunchHandle (already waited on?)")
    }

    /// Model one spec analytically on pooled virtual buffers (no values
    /// move; addresses and event counts only). The spec's `exec` mode is
    /// ignored — measurement is always [`ExecMode::Analytical`].
    pub fn measure(&mut self, spec: &LayerSpec) -> PipelineRun {
        self.synchronize();
        self.ctx().measure_spec(spec)
    }
}

impl Drop for Session {
    /// Never leak the dispatch thread: drop its job queue (the loop exits
    /// at the closed channel, finishing any in-flight work first) and join
    /// it, discarding parked results and swallowing — not re-raising — any
    /// panic payload, since panicking in drop would abort.
    fn drop(&mut self) {
        if let Some(d) = self.dispatcher.take() {
            let Dispatcher { jobs, join, .. } = d;
            drop(jobs);
            let _ = join.join();
        }
    }
}

/// Hash the spec fields that shape a launch sequence: geometry, variant,
/// the options that steer kernel assembly, and the functional/analytical
/// split. Shared by the replay keys and the `measure` sequence memo.
fn hash_spec(spec: &LayerSpec, h: &mut DefaultHasher) {
    match spec.shape {
        SpecShape::D1 {
            batch,
            k_in,
            k_out,
            n,
            nf,
        } => {
            0u8.hash(h);
            [batch, k_in, k_out, n, nf].hash(h);
        }
        SpecShape::D2 {
            batch,
            k_in,
            k_out,
            nx,
            ny,
            nfx,
            nfy,
        } => {
            1u8.hash(h);
            [batch, k_in, k_out, nx, ny, nfx, nfy].hash(h);
        }
    }
    spec.variant.hash(h);
    spec.opts.forward_layout.hash(h);
    spec.opts.epilogue_swizzle.hash(h);
    spec.opts.fft_l1_hit.to_bits().hash(h);
    (spec.exec == ExecMode::Analytical).hash(h);
}

/// Deferred serving-queue output scatters: a small [`LaunchQueue`] window
/// completes each stacked group's scatter a couple of groups behind issue,
/// so the next group's gather and pipeline overlap the previous group's
/// output redistribution (double-buffered staging on the device side).
///
/// Safe by the `run_many` admission contract: no request's `y` is any
/// request's operand, so nothing issued while a scatter is pending reads
/// its writes — and the scatter itself read its sources at issue time
/// (execute-at-issue semantics), so releasing or reusing the stacked
/// scratch behind it is fine.
struct ScatterWindow {
    queue: LaunchQueue,
    /// `out` index owning each pending scatter, oldest first (parallel to
    /// the queue's in-flight order).
    owners: VecDeque<usize>,
}

impl ScatterWindow {
    fn new() -> Self {
        ScatterWindow {
            queue: LaunchQueue::new(2),
            owners: VecDeque::new(),
        }
    }

    fn push(
        &mut self,
        dev: &mut GpuDevice,
        pending: PendingLaunch,
        owner: usize,
        out: &mut [PipelineRun],
    ) {
        self.owners.push_back(owner);
        for rec in self.queue.push(dev, pending) {
            let o = self.owners.pop_front().expect("one owner per completion");
            out[o].push(rec);
        }
    }

    fn flush(&mut self, dev: &mut GpuDevice, out: &mut [PipelineRun]) {
        for rec in self.queue.flush(dev) {
            let o = self.owners.pop_front().expect("one owner per completion");
            out[o].push(rec);
        }
    }
}

/// The execution engine shared by the synchronous entry points and the
/// dispatch threads: everything here runs against an [`ExecCtx`], so the
/// submitted path is the *same code* as the synchronous one — the bitwise
/// equality guarantee of async dispatch is structural, not re-verified
/// per feature.
impl ExecCtx<'_> {
    /// Execute one layer spec against this context.
    pub(crate) fn run_spec(
        &mut self,
        spec: &LayerSpec,
        variant: Variant,
        bufs: LayerBufs,
    ) -> PipelineRun {
        let (opts, exec) = (spec.opts, spec.exec);
        if let Some(p) = spec.problem_1d() {
            self.run_1d(&p, variant, bufs, &opts, exec)
        } else {
            let p = spec.problem_2d().expect("spec is 1D or 2D");
            self.run_2d(&p, variant, bufs, &opts, exec)
        }
    }

    /// Resolve `TurboBest` to a concrete variant (one planner consult; a
    /// cache hit for every shape the session has planned before).
    fn resolve(&self, spec: &LayerSpec) -> Variant {
        if spec.variant != Variant::TurboBest {
            return spec.variant;
        }
        if let Some(p) = spec.problem_1d() {
            self.planner.plan_1d(&self.dev.config, &p, &spec.opts)
        } else {
            let p = spec.problem_2d().expect("spec is 1D or 2D");
            self.planner.plan_2d(&self.dev.config, &p, &spec.opts)
        }
    }

    /// The [`Session::run_many`] body (queue already validated).
    ///
    /// A coalesced group reports its launches on the group's first
    /// request; the other members report empty runs (their outputs are
    /// still written). Each group's output scatter is completed through a
    /// small [`LaunchQueue`] window so the next group's work overlaps it.
    pub(crate) fn run_queue(&mut self, reqs: &[Request]) -> Vec<PipelineRun> {
        let mut out: Vec<PipelineRun> = (0..reqs.len()).map(|_| PipelineRun::default()).collect();
        let mut claimed = vec![false; reqs.len()];
        let mut window = ScatterWindow::new();
        for i in 0..reqs.len() {
            if claimed[i] {
                continue;
            }
            // The shape group: every unclaimed request with an identical spec.
            let group: Vec<usize> = (i..reqs.len())
                .filter(|&j| !claimed[j] && reqs[j].spec == reqs[i].spec)
                .collect();
            for &j in &group {
                claimed[j] = true;
            }
            let concrete = self.resolve(&reqs[i].spec);

            // One stack for the whole shape group, mixed weights included;
            // non-stackable members (virtual buffers, analytical mode) run
            // sequentially, as does a singleton — it gains nothing from
            // the staging copies.
            let (mut stack, mut rest): (Vec<usize>, Vec<usize>) = group
                .iter()
                .copied()
                .partition(|&j| self.stackable(&reqs[j]));
            if stack.len() < 2 {
                rest.append(&mut stack);
                rest.sort_unstable();
            }
            if !stack.is_empty() {
                self.run_stacked(reqs, &stack, concrete, &mut window, &mut out);
            }
            for j in rest {
                let r = &reqs[j];
                let run = self.run_spec(&r.spec, concrete, LayerBufs::shared(r.x, r.w, r.y));
                out[j].launches.extend(run.launches);
                self.mark_unit(j);
            }
        }
        window.flush(self.dev, &mut out);
        out
    }

    /// Stacking moves values through device-side gather/scatter copies, so
    /// it requires functional execution on real buffers.
    fn stackable(&self, r: &Request) -> bool {
        r.spec.exec == ExecMode::Functional
            && !self.dev.memory.is_virtual(r.x)
            && !self.dev.memory.is_virtual(r.y)
            && !self.dev.memory.is_virtual(r.w)
    }

    /// Execute a same-spec stack of requests as one batched launch
    /// sequence:
    ///
    /// 1. one device-side gather launch assembles the stacked input
    ///    `[x_0 .. x_{k-1}]` — and, when the requests use different weight
    ///    buffers, packs `[w_0 .. w_{k-1}]` into a pooled strided weight
    ///    buffer in the same launch;
    /// 2. the pipeline runs once at `batch * stack_len`, with the weight
    ///    operand advancing one slice per stacked sub-batch
    ///    ([`WeightStacking`]);
    /// 3. one device-side scatter launch redistributes the stacked output
    ///    to the requests' `y` buffers.
    ///
    /// No values round-trip through the host, and the launch count is the
    /// same whether the stack shares one weight buffer or uses `k`
    /// distinct ones. Launches land in `out[stack[0]]`; the scatter is
    /// issued deferred through `window` (completed up to two groups later,
    /// or synchronously under a legacy executor / on replay).
    fn run_stacked(
        &mut self,
        reqs: &[Request],
        stack: &[usize],
        concrete: Variant,
        window: &mut ScatterWindow,
        out: &mut [PipelineRun],
    ) {
        let owner = stack[0];
        let base = reqs[owner].spec;
        let spec = base.stacked(stack.len());
        let (in_len, out_len, w_len) = (base.input_len(), base.output_len(), base.weight_len());

        let sx = self.pool.acquire(self.dev, spec.input_len());
        let sy = self.pool.acquire(self.dev, spec.output_len());

        // Gather inputs (and, for mixed weights, the packed weight stack)
        // in one launch.
        let mut gather: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: reqs[j].x,
                src_base: 0,
                dst: sx,
                dst_base: pos * in_len,
                len: in_len,
            })
            .collect();
        let mixed = stack.iter().any(|&j| reqs[j].w != reqs[stack[0]].w);
        let (w, ws, sw) = if mixed {
            let sw = self.pool.acquire(self.dev, stack.len() * w_len);
            gather.extend(stack.iter().enumerate().map(|(pos, &j)| CopySegment {
                src: reqs[j].w,
                src_base: 0,
                dst: sw,
                dst_base: pos * w_len,
                len: w_len,
            }));
            (sw, WeightStacking::strided(w_len, base.batch()), Some(sw))
        } else {
            (reqs[stack[0]].w, WeightStacking::SHARED, None)
        };

        let gather = SegmentedCopyKernel::new("serve.gather", gather);
        out[owner].push(self.step(gather, ExecMode::Functional));

        let pipeline = self.run_spec(&spec, concrete, LayerBufs { x: sx, w, y: sy, ws });
        out[owner].launches.extend(pipeline.launches);

        let scatter: Vec<CopySegment> = stack
            .iter()
            .enumerate()
            .map(|(pos, &j)| CopySegment {
                src: sy,
                src_base: pos * out_len,
                dst: reqs[j].y,
                dst_base: 0,
                len: out_len,
            })
            .collect();
        let scatter = SegmentedCopyKernel::new("serve.scatter", scatter);
        if self.dev.legacy_executor {
            // The legacy executor has no deferred completion; run the
            // scatter synchronously (bitwise-identical either way).
            out[owner].push(self.step(scatter, ExecMode::Functional));
        } else {
            let pending = self.step_deferred(scatter, ExecMode::Functional);
            window.push(self.dev, pending, owner, out);
        }
        self.mark_unit(owner);

        // The pending scatter read sy at issue; releasing the staging
        // scratch (or recycling it for the next group) cannot disturb it.
        let mut leases = vec![sx, sy];
        leases.extend(sw);
        self.release(leases);
    }

    /// The [`Session::measure`] body: analytical run on pooled virtual
    /// operands.
    ///
    /// Warm measurements are answered from the process-wide sequence memo
    /// (`tfno_gpu_sim::seq_lookup`) without issuing a single launch: the
    /// key covers device config, spec geometry, variant and options —
    /// never buffer identities or worker configuration, since analytical
    /// records are independent of both. `GpuDevice::analytical_memo`
    /// opts a device out.
    pub(crate) fn measure_spec(&mut self, spec: &LayerSpec) -> PipelineRun {
        let spec = spec.exec(ExecMode::Analytical);
        let key = {
            let mut h = DefaultHasher::new();
            0xF2u8.hash(&mut h);
            hash_device_config(&self.dev.config, &mut h);
            hash_spec(&spec, &mut h);
            h.finish()
        };
        if self.dev.analytical_memo {
            if let Some(launches) = seq_lookup(key) {
                return PipelineRun { launches };
            }
        }
        let x = self.pool.acquire_virtual(self.dev, spec.input_len());
        let w = self.pool.acquire_virtual(self.dev, spec.weight_len());
        let y = self.pool.acquire_virtual(self.dev, spec.output_len());
        let run = self.run_spec(&spec, spec.variant, LayerBufs::shared(x, w, y));
        self.pool.release(self.dev, x);
        self.pool.release(self.dev, w);
        self.pool.release(self.dev, y);
        if self.dev.analytical_memo {
            seq_insert(key, run.launches.clone());
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_lengths() {
        let s = LayerSpec::d1(2, 8, 16, 128).modes(32);
        assert_eq!(s.input_len(), 2 * 8 * 128);
        assert_eq!(s.weight_len(), 8 * 16);
        assert_eq!(s.output_len(), 2 * 16 * 128);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(2, 8, 16, 128, 32));
        assert!(s.problem_2d().is_none());

        let s2 = LayerSpec::d2(1, 4, 4, 32, 64).modes(32);
        let p2 = s2.problem_2d().unwrap();
        assert_eq!((p2.nfx, p2.nfy), (32, 32), "modes clamp to the axis");
        assert_eq!(
            LayerSpec::d2(1, 4, 4, 32, 64).modes_xy(8, 32).problem_2d().unwrap(),
            FnoProblem2d::new(1, 4, 4, 32, 64, 8, 32)
        );
    }

    /// Regression: the 1D arm of `modes` documented the clamp but did not
    /// apply it — `.modes(nf > n)` built an invalid `FnoProblem1d` that
    /// only failed later with an opaque downstream assert.
    #[test]
    fn modes_clamps_to_the_1d_axis() {
        let s = LayerSpec::d1(1, 2, 2, 64).modes(1000);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(1, 2, 2, 64, 64));
        // In-range requests are untouched.
        assert_eq!(LayerSpec::d1(1, 2, 2, 64).modes(16).problem_1d().unwrap().nf, 16);
    }

    /// Regression: `modes_xy` skipped the per-axis clamp `modes` applies,
    /// so the two builders disagreed on out-of-range inputs.
    #[test]
    fn modes_xy_clamps_like_modes() {
        let s = LayerSpec::d2(1, 2, 2, 32, 64).modes_xy(1000, 48);
        let p = s.problem_2d().unwrap();
        assert_eq!((p.nfx, p.nfy), (32, 48));
        // The two builders must agree on every input, in and out of range.
        for k in [1usize, 16, 32, 33, 64, 65, 1000] {
            assert_eq!(
                LayerSpec::d2(2, 4, 4, 32, 64).modes(k),
                LayerSpec::d2(2, 4, 4, 32, 64).modes_xy(k, k),
                "modes({k}) and modes_xy({k}, {k}) diverge"
            );
        }
    }

    #[test]
    fn spec_defaults_are_turbo_best_functional_full_spectrum() {
        let s = LayerSpec::d1(1, 4, 4, 64);
        assert_eq!(s.variant, Variant::TurboBest);
        assert_eq!(s.exec, ExecMode::Functional);
        assert_eq!(s.problem_1d().unwrap().nf, 64);
    }

    #[test]
    #[should_panic(expected = "modes_xy on a 1D")]
    fn modes_xy_rejects_1d() {
        let _ = LayerSpec::d1(1, 1, 1, 64).modes_xy(4, 4);
    }

    #[test]
    fn stacked_scales_only_batch() {
        let s = LayerSpec::d1(3, 8, 8, 128).modes(32).stacked(4);
        assert_eq!(s.problem_1d().unwrap(), FnoProblem1d::new(12, 8, 8, 128, 32));
    }

    #[test]
    #[should_panic(expected = "input_len")]
    fn run_validates_buffer_lengths() {
        let mut sess = Session::a100();
        let spec = LayerSpec::d1(1, 2, 2, 64).variant(Variant::FftOpt);
        let x = sess.alloc("x", 7); // wrong
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        sess.run(&spec, x, w, y);
    }

    #[test]
    fn measure_is_analytical_and_memoizes_the_sequence() {
        let mut sess = Session::a100();
        let spec = LayerSpec::d1(2, 8, 8, 128).modes(32).variant(Variant::FftOpt);
        let a = sess.measure(&spec);
        assert_eq!(a.kernel_count(), 3);
        assert!(a.total_us() > 0.0);
        let launched_cold = sess.device().launches().len();
        let b = sess.measure(&spec);
        assert_eq!(a.total_stats(), b.total_stats());
        assert_eq!(
            sess.device().launches().len(),
            launched_cold,
            "a warm measure is answered from the sequence memo, zero launches"
        );
        assert_eq!(
            sess.pool_stats().leased,
            0,
            "measure must release its virtual operands"
        );
    }

    fn seeded(len: usize, seed: f32) -> Vec<C32> {
        (0..len)
            .map(|i| {
                C32::new(
                    ((i as f32) * 0.17 + seed).sin(),
                    ((i as f32) * 0.23 - seed).cos(),
                )
            })
            .collect()
    }

    fn spec_with_operands(sess: &mut Session) -> (LayerSpec, BufferId, BufferId, BufferId) {
        let spec = LayerSpec::d1(2, 8, 8, 128).modes(32).variant(Variant::FftOpt);
        let x = sess.alloc("x", spec.input_len());
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        sess.upload(x, &seeded(spec.input_len(), 0.4));
        sess.upload(w, &seeded(spec.weight_len(), 0.9));
        (spec, x, w, y)
    }

    #[test]
    fn submit_wait_is_bitwise_equal_to_run() {
        let mut sync = Session::a100();
        let (spec, x, w, y) = spec_with_operands(&mut sync);
        let run_sync = sync.run(&spec, x, w, y);
        let want = sync.download(y);

        let mut agsync = Session::a100();
        let (spec2, x2, w2, y2) = spec_with_operands(&mut agsync);
        let handle = agsync.submit(&spec2, x2, w2, y2);
        assert!(agsync.pending(), "dispatch must be in flight after submit");
        let run_async = agsync.wait(handle);
        assert!(!agsync.pending());
        assert_eq!(agsync.download(y2), want);
        assert_eq!(run_async.kernel_count(), run_sync.kernel_count());
        assert_eq!(run_async.total_stats(), run_sync.total_stats());
    }

    #[test]
    fn mut_session_methods_synchronize_with_the_dispatch() {
        let mut sess = Session::a100();
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let handle = sess.submit(&spec, x, w, y);
        // `run` is a &mut method: it must serialize behind the dispatch,
        // not observe or corrupt mid-flight state.
        let y2 = sess.alloc("y2", spec.output_len());
        assert!(!sess.pending(), "alloc synchronized with the dispatch");
        sess.run(&spec, x, w, y2);
        assert_eq!(sess.download(y2), sess.download(y));
        // The handle's result was parked across the interleaved run.
        let run = sess.wait(handle);
        assert!(run.kernel_count() > 0);
    }

    #[test]
    #[should_panic(expected = "in-flight submitted work")]
    fn download_during_flight_panics() {
        let mut sess = Session::a100();
        let (spec, x, w, y) = spec_with_operands(&mut sess);
        let _handle = sess.submit(&spec, x, w, y);
        let _ = sess.download(y);
    }

    #[test]
    #[should_panic(expected = "different Session")]
    fn foreign_handles_are_rejected() {
        let mut a = Session::a100();
        let (spec, x, w, y) = spec_with_operands(&mut a);
        let handle = a.submit(&spec, x, w, y);
        let mut b = Session::a100();
        let _ = b.wait(handle);
    }

    /// Shape panics surface on the submitting thread, exactly like the
    /// synchronous path — not deferred into the dispatch.
    #[test]
    #[should_panic(expected = "mode count out of range")]
    fn submit_validates_shapes_synchronously() {
        let mut sess = Session::a100();
        // Bypass the modes() clamp to build an invalid spec directly.
        let spec = LayerSpec {
            shape: SpecShape::D1 {
                batch: 1,
                k_in: 2,
                k_out: 2,
                n: 64,
                nf: 0,
            },
            variant: Variant::FftOpt,
            opts: TurboOptions::default(),
            exec: ExecMode::Functional,
        };
        let x = sess.alloc("x", spec.input_len());
        let w = sess.alloc("w", spec.weight_len());
        let y = sess.alloc("y", spec.output_len());
        let _ = sess.submit(&spec, x, w, y);
    }
}
