//! The typed error surface and recovery policy of [`Session`](crate::Session).
//!
//! Every failure the engine can produce funnels into [`TfnoError`]:
//!
//! * **`Validation`** — the request was malformed (shape/length/aliasing);
//!   never retryable, the legacy API's documented panics carry the same
//!   message.
//! * **`Transient`** — a launch or allocation failed cleanly (injected by a
//!   [`FaultPlan`](crate::backend::FaultPlan) or, on real hardware, a
//!   recoverable driver hiccup). Nothing was written, so the operation can
//!   be retried; [`RetryPolicy`] bounds how hard `Session::try_run` tries,
//!   and the degradation ladder re-plans a persistently failing fused
//!   variant onto the unfused [`Variant::FftOpt`](crate::Variant::FftOpt)
//!   before giving up.
//! * **`Fatal`** — dispatched work panicked; the panic was caught on the
//!   dispatch thread, the session healed (device and pool recovered, leaked
//!   leases released), and only the affected handle reports this error.
//! * **`Timeout`** — a `wait_timeout` deadline elapsed; the handle is
//!   returned to the caller and stays valid.
//! * **`InFlight`** — a `&self` inspector was called while submitted work
//!   holds the device (see `Session::try_download` and friends).
//! * **`Poisoned`** — the dispatch channel died; the session cannot recover
//!   the device state that was on the dispatch thread.

use std::fmt;
use std::time::Duration;

use crate::backend::LaunchError;

/// Typed failure of a session operation. See the [module docs](self) for
/// the taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TfnoError {
    /// Malformed request (shape, length, aliasing). Not retryable.
    Validation(String),
    /// A clean, retryable device failure. `attempts` counts how many times
    /// the operation was tried before this error was surfaced (1 when no
    /// retry policy was in play).
    Transient { fault: LaunchError, attempts: u32 },
    /// Dispatched work panicked; the session healed and stays usable, only
    /// the handle that owned the job reports this.
    Fatal(String),
    /// A `wait_timeout` deadline elapsed before the job's result arrived.
    Timeout { waited: Duration },
    /// A `&self` inspector was called while submitted work is in flight.
    InFlight,
    /// The dispatch thread is gone; the session lost its device state.
    Poisoned(String),
}

impl TfnoError {
    /// Whether retrying the same operation can succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, TfnoError::Transient { .. })
    }
}

impl fmt::Display for TfnoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfnoError::Validation(msg) => write!(f, "validation failed: {msg}"),
            TfnoError::Transient { fault, attempts } => {
                write!(f, "transient device fault after {attempts} attempt(s): {fault}")
            }
            TfnoError::Fatal(msg) => write!(f, "dispatched work panicked: {msg}"),
            TfnoError::Timeout { waited } => {
                write!(f, "wait deadline elapsed after {waited:?}")
            }
            TfnoError::InFlight => write!(
                f,
                "submitted work is in flight; wait on the outstanding LaunchHandle \
                 (or synchronize) before inspecting the session"
            ),
            TfnoError::Poisoned(msg) => write!(f, "session dispatch thread lost: {msg}"),
        }
    }
}

impl std::error::Error for TfnoError {}

impl From<LaunchError> for TfnoError {
    fn from(fault: LaunchError) -> Self {
        match fault {
            // A plan rejection is a property of the request, not of the
            // device: retrying the identical plan re-fails identically, so
            // it surfaces as (non-retryable) validation.
            LaunchError::PlanRejected { kernel, reason } => TfnoError::Validation(format!(
                "plan verifier rejected kernel '{kernel}': {reason}"
            )),
            // Asking a backend for a capability it does not advertise is a
            // property of the request too (check `Backend::caps` first):
            // retrying re-fails identically on the same backend.
            fault @ LaunchError::Unsupported { .. } => TfnoError::Validation(fault.to_string()),
            // Every other LaunchError is clean by contract (no writes, no
            // history), so it maps to the retryable class.
            fault => TfnoError::Transient { fault, attempts: 1 },
        }
    }
}

/// Bounded retry policy for transient faults in `Session::try_run` /
/// `try_run_many` / `try_submit` (and their dispatched bodies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per plan rung (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Sleep between attempts (linear, not exponential — simulated faults
    /// don't decay, so the knob only models the cost of backing off).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient fault surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    pub(crate) fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Counters of the session's recovery machinery (see
/// `Session::recovery_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Transient faults that were retried (each retry counts once).
    pub transient_retries: u64,
    /// Times the degradation ladder re-planned a fused variant onto the
    /// unfused `FftOpt` pipeline after exhausting its retry budget.
    pub degraded: u64,
    /// Operations that gave up: retries (and degradation, when available)
    /// exhausted without a success.
    pub exhausted: u64,
    /// Replays that hit a fault mid-sequence, evicted the artifact, and
    /// fell back to the functional path.
    pub faulted_replays: u64,
    /// Dispatched jobs whose panic was caught and healed (leaked leases
    /// released, later handles unaffected).
    pub jobs_healed: u64,
    /// Leases a panicked job leaked that the dispatch loop released.
    pub leases_recovered: u64,
    /// Handles dropped without `wait`; their results were discarded at the
    /// next synchronizing call.
    pub abandoned_handles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_error_maps_to_transient() {
        let e: TfnoError = LaunchError::Transient {
            kernel: "k".into(),
            launch_index: 3,
        }
        .into();
        assert!(e.is_transient());
        assert!(e.to_string().contains("transient"));
    }

    #[test]
    fn retry_policy_clamps_attempts() {
        let p = RetryPolicy {
            max_attempts: 0,
            backoff: Duration::ZERO,
        };
        assert_eq!(p.attempts(), 1);
        assert_eq!(RetryPolicy::default().attempts(), 3);
    }

    #[test]
    fn display_covers_the_taxonomy() {
        for (e, needle) in [
            (TfnoError::Validation("bad".into()), "validation"),
            (TfnoError::Fatal("boom".into()), "panicked"),
            (
                TfnoError::Timeout {
                    waited: Duration::from_millis(5),
                },
                "deadline",
            ),
            (TfnoError::InFlight, "in flight"),
            (TfnoError::Poisoned("gone".into()), "dispatch thread"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
