//! Unit tests for the fused kernel's geometry layer and direct kernel
//! launches (the pipeline-level tests live in `lib.rs` and `tests/`).

use crate::fused::{FusedGeometry, FusedKernel, GeomNd};
use crate::swizzle::ForwardLayout;
use tfno_culib::SpectralShape;
use tfno_gpu_sim::{ExecMode, GpuDevice, Kernel};
use tfno_num::error::{gemm_tolerance, max_abs_error};
use tfno_num::{reference, C32};

fn geom_1d(batch: usize, k_in: usize, k_out: usize, n: usize, nf: usize) -> GeomNd {
    GeomNd {
        batch,
        k_in,
        k_out,
        rank: 1,
        n_inner: n,
        m_inner: nf,
        outer_modes: 1,
    }
}

#[test]
fn geom_rank1_addressing_is_row_major() {
    let g = geom_1d(3, 4, 5, 16, 8);
    // x[b, k, i] with row-major [batch, k_in, n]
    assert_eq!(g.x_addr(0, 0, 0), 0);
    assert_eq!(g.x_addr(1, 2, 3), (4 + 2) * 16 + 3);
    // a view: xf_t[b, k, f] -> at(m=f, col=k)
    let v = g.a_view(2);
    assert_eq!(v.at(5, 3), 2 * 4 * 8 + 3 * 8 + 5);
    // c view offset by n0 channels
    let c = g.c_view(1, 2);
    assert_eq!(c.at(7, 1), (5 + 2 + 1) * 8 + 7);
    // y addr
    assert_eq!(g.y_addr(1, 4, 15), (5 + 4) * 16 + 15);
    assert_eq!(g.outer_blocks(), 3);
}

#[test]
fn geom_rank2_addressing_keeps_rows_contiguous() {
    // [batch=2, k, nfx=8, ny=32] with nfy=16 retained along the fused axis.
    let g = GeomNd {
        batch: 2,
        k_in: 3,
        k_out: 4,
        rank: 2,
        n_inner: 32,
        m_inner: 16,
        outer_modes: 8,
    };
    assert_eq!(g.outer_blocks(), 2 * 8);
    assert_eq!(g.fft_len(), 32);
    assert_eq!(g.modes(), 16);
    // outer = b * nfx + fx
    let outer = 8 + 5; // b=1, fx=5
    // input t1[b, k, fx, y]: consecutive idx must be consecutive addresses
    let a0 = g.x_addr(outer, 2, 0);
    let a1 = g.x_addr(outer, 2, 1);
    assert_eq!(a1, a0 + 1, "fused-axis reads must be contiguous");
    assert_eq!(a0, ((3 + 2) * 8 + 5) * 32);
    // a/c views: row stride 1 along fy
    let av = g.a_view(outer);
    assert_eq!(av.at(1, 0), av.at(0, 0) + 1);
    let cv = g.c_view(outer, 0);
    assert_eq!(cv.at(1, 0), cv.at(0, 0) + 1);
    // y output rows contiguous too
    assert_eq!(g.y_addr(outer, 1, 9), g.y_addr(outer, 1, 8) + 1);
}

#[test]
fn geom_from_shape_matches_hand_built() {
    // Rank 3: [b=2, k, nfx=4, nfy=6, nz=32], nfz=16. By the time the fused
    // middle runs, x and y are already truncated, so outer_modes = nfx*nfy.
    let s = SpectralShape::d3(2, 3, 5, 8, 16, 32).with_modes(&[4, 6, 16]);
    let g = GeomNd::from_shape(&s);
    assert_eq!(g.rank, 3);
    assert_eq!(g.n_inner, 32);
    assert_eq!(g.m_inner, 16);
    assert_eq!(g.outer_modes, 4 * 6);
    assert_eq!(g.outer_blocks(), 2 * 24);
    // Address math treats the packed outer modes as one flat axis.
    let outer = 24 + 13; // b=1, (fx, fy) = (2, 1)
    assert_eq!(g.x_addr(outer, 2, 7), ((3 + 2) * 24 + 13) * 32 + 7);
    assert_eq!(g.y_addr(outer, 4, 7), ((5 + 4) * 24 + 13) * 32 + 7);
    let av = g.a_view(outer);
    assert_eq!(av.at(1, 0), av.at(0, 0) + 1);
    assert_eq!(av.at(0, 1), av.at(0, 0) + 24 * 16);
    // 1D shapes collapse to the degenerate single-outer geometry.
    let s1 = SpectralShape::d1(3, 4, 5, 16).with_modes(&[8]);
    let g1 = GeomNd::from_shape(&s1);
    assert_eq!(g1.outer_modes, 1);
    assert_eq!(g1.x_addr(1, 2, 3), geom_1d(3, 4, 5, 16, 8).x_addr(1, 2, 3));
}

#[test]
fn geom_outer_classes_cover_all_blocks() {
    for m_inner in [8usize, 6, 10, 32] {
        for rank in [2usize, 3] {
            let g = GeomNd {
                batch: 3,
                k_in: 2,
                k_out: 2,
                rank,
                n_inner: 64,
                m_inner,
                outer_modes: 5,
            };
            let total: u64 = g.outer_classes().iter().map(|(_, c)| c).sum();
            assert_eq!(total, g.outer_blocks() as u64, "m_inner={m_inner}");
            for (rep, _) in g.outer_classes() {
                assert!(rep < g.outer_blocks());
            }
        }
    }
    // Rank 1 has a single outer-mode index, so always one class.
    assert_eq!(geom_1d(3, 2, 2, 64, 6).outer_classes().len(), 1);
}

#[test]
fn geom_serialization_worsens_with_rank() {
    let g = |rank| GeomNd {
        batch: 1,
        k_in: 2,
        k_out: 2,
        rank,
        n_inner: 64,
        m_inner: 32,
        outer_modes: if rank == 1 { 1 } else { 4 },
    };
    let (s1, _) = g(1).serialization();
    let (s2, _) = g(2).serialization();
    let (s3, _) = g(3).serialization();
    assert!(s1 < s2 && s2 < s3);
}

/// Drive the fused kernel directly (no pipeline) on a tiny problem and
/// compare against reference FFT+GEMM on the retained modes.
#[test]
fn fused_fft_gemm_kernel_direct() {
    let g = geom_1d(2, 8, 16, 64, 32);
    let (n, nf) = (g.n_inner, g.m_inner);
    let mut dev = GpuDevice::a100();
    let x = dev.alloc("x", g.batch * g.k_in * n);
    let w = dev.alloc("w", g.k_in * g.k_out);
    let yf = dev.alloc("yf", g.batch * g.k_out * nf);
    let xd: Vec<C32> = (0..g.batch * g.k_in * n)
        .map(|i| C32::new((i as f32 * 0.21).sin(), (i as f32 * 0.43).cos()))
        .collect();
    let wd: Vec<C32> = (0..g.k_in * g.k_out)
        .map(|i| C32::new((i as f32 * 0.33).cos(), (i as f32 * 0.27).sin()))
        .collect();
    dev.upload(x, &xd);
    dev.upload(w, &wd);

    let kernel = FusedKernel::new("direct.b", g, true, false, 16, x, w, yf, 0.1);
    dev.launch(&kernel, ExecMode::Functional);
    let got = dev.download(yf);

    // reference: truncated FFT then GEMM along hidden dim
    for b in 0..g.batch {
        let mut xf = vec![C32::ZERO; g.k_in * nf];
        for k in 0..g.k_in {
            let base = (b * g.k_in + k) * n;
            reference::dft(&xd[base..base + n], &mut xf[k * nf..(k + 1) * nf]);
        }
        for f in 0..nf {
            for ko in 0..g.k_out {
                let mut acc = C32::ZERO;
                for ki in 0..g.k_in {
                    acc = acc.mac(xf[ki * nf + f], wd[ki * g.k_out + ko]);
                }
                let got_v = got[(b * g.k_out + ko) * nf + f];
                assert!(
                    (got_v - acc).abs() < gemm_tolerance(g.k_in, 16.0),
                    "b={b} f={f} ko={ko}: {got_v} vs {acc}"
                );
            }
        }
    }
}

/// The two forward layouts must produce identical data in the As tile —
/// only the access pattern differs.
#[test]
fn forward_layouts_are_data_equivalent() {
    let g = geom_1d(1, 8, 8, 64, 32);
    let run = |layout: ForwardLayout| {
        let mut dev = GpuDevice::a100();
        let x = dev.alloc("x", g.batch * g.k_in * g.n_inner);
        let w = dev.alloc("w", g.k_in * g.k_out);
        let yf = dev.alloc("yf", g.batch * g.k_out * g.m_inner);
        let xd: Vec<C32> = (0..g.batch * g.k_in * g.n_inner)
            .map(|i| C32::new((i as f32 * 0.13).sin(), -(i as f32 * 0.29).cos()))
            .collect();
        let wd: Vec<C32> = (0..g.k_in * g.k_out)
            .map(|i| C32::real(1.0 + (i % 5) as f32))
            .collect();
        dev.upload(x, &xd);
        dev.upload(w, &wd);
        let kernel = FusedKernel::new("layout", g, true, false, 16, x, w, yf, 0.1)
            .with_forward_layout(layout);
        dev.launch(&kernel, ExecMode::Functional);
        dev.download(yf)
    };
    let a = run(ForwardLayout::TurboContiguous);
    let b = run(ForwardLayout::VkFftStrided);
    assert!(max_abs_error(&a, &b) < 1e-6);
}

#[test]
fn fused_kernel_block_classes_cover_grid() {
    let g = geom_1d(3, 8, 40, 64, 32); // k_out=40 forces an edge n-tile with n_tb=32
    let mut dev = GpuDevice::a100();
    let x = dev.memory.alloc_virtual("x", g.batch * g.k_in * g.n_inner);
    let w = dev.memory.alloc_virtual("w", g.k_in * g.k_out);
    let yf = dev.memory.alloc_virtual("yf", g.batch * g.k_out * g.m_inner);
    let kernel = FusedKernel::new("classes", g, true, false, 32, x, w, yf, 0.1);
    let dims = kernel.dims();
    let covered: u64 = kernel.block_classes().iter().map(|(_, c)| c).sum();
    assert_eq!(covered, dims.grid_blocks as u64);
    // launching analytically exercises the class machinery end to end
    let rec = dev.launch(&kernel, ExecMode::Analytical);
    assert_eq!(rec.stats.blocks, dims.grid_blocks as u64);
}

#[test]
#[should_panic(expected = "multiple of the warp M-tile")]
fn fused_kernel_rejects_unaligned_modes() {
    let g = geom_1d(1, 8, 8, 64, 24);
    let mut dev = GpuDevice::a100();
    let x = dev.memory.alloc_virtual("x", 512);
    let w = dev.memory.alloc_virtual("w", 64);
    let yf = dev.memory.alloc_virtual("yf", 192);
    let _ = FusedKernel::new("bad", g, true, false, 8, x, w, yf, 0.1);
}

#[test]
#[should_panic(expected = "use BatchedCgemmKernel")]
fn fused_kernel_rejects_no_fusion() {
    let g = geom_1d(1, 8, 8, 64, 32);
    let mut dev = GpuDevice::a100();
    let x = dev.memory.alloc_virtual("x", 512);
    let w = dev.memory.alloc_virtual("w", 64);
    let yf = dev.memory.alloc_virtual("yf", 256);
    let _ = FusedKernel::new("bad", g, false, false, 8, x, w, yf, 0.1);
}

/// The declared access set of every fusion variant must cover exactly the
/// elements `run_block` touches: input rows (full spatial rows when the
/// forward FFT is fused, truncated modes otherwise), the weight slice, and
/// the output partitioned disjointly across blocks.
#[test]
fn fused_access_matches_footprint() {
    use std::collections::HashSet;
    let count =
        |acc: &tfno_gpu_sim::KernelAccess, buf: tfno_gpu_sim::BufferId| -> usize {
            acc.reads
                .iter()
                .filter(|s| s.buf == buf)
                .flat_map(|s| s.runs())
                .flat_map(|(lo, hi)| lo..hi)
                .collect::<HashSet<_>>()
                .len()
        };
    let write_once = |acc: &tfno_gpu_sim::KernelAccess,
                      buf: tfno_gpu_sim::BufferId|
     -> usize {
        let mut written = HashSet::new();
        for (_, spans) in &acc.block_writes {
            for span in spans {
                assert_eq!(span.buf, buf);
                for (lo, hi) in span.runs() {
                    for e in lo..hi {
                        assert!(written.insert(e), "element {e} written twice");
                    }
                }
            }
        }
        written.len()
    };

    let g = geom_1d(2, 8, 16, 64, 32);
    for (ff, fi) in [(true, false), (false, true), (true, true)] {
        let mut dev = GpuDevice::a100();
        let in_len = if ff {
            g.batch * g.k_in * g.n_inner
        } else {
            g.batch * g.k_in * g.m_inner
        };
        let out_len = if fi {
            g.batch * g.k_out * g.n_inner
        } else {
            g.batch * g.k_out * g.m_inner
        };
        let x = dev.memory.alloc_virtual("x", in_len);
        let w = dev.memory.alloc_virtual("w", g.k_in * g.k_out);
        let y = dev.memory.alloc_virtual("y", out_len);
        let kernel = FusedKernel::new("acc", g, ff, fi, 16, x, w, y, 0.1);
        let acc = kernel.access().expect("fused kernel declares access");
        assert_eq!(count(&acc, x), in_len, "ff={ff} fi={fi}");
        assert_eq!(count(&acc, w), g.k_in * g.k_out, "ff={ff} fi={fi}");
        assert_eq!(write_once(&acc, y), out_len, "ff={ff} fi={fi}");
        assert_eq!(acc.block_writes.len(), kernel.dims().grid_blocks);
    }

    // Higher-rank geometry: outer modes already truncated, fused axis full.
    for (rank, outer_modes) in [(2usize, 3usize), (3, 6)] {
        let g = GeomNd {
            batch: 2,
            k_in: 4,
            k_out: 8,
            rank,
            n_inner: 32,
            m_inner: 32,
            outer_modes,
        };
        let mut dev = GpuDevice::a100();
        let in_len = g.batch * g.k_in * g.outer_modes * g.n_inner;
        let out_len = g.batch * g.k_out * g.outer_modes * g.n_inner;
        let x = dev.memory.alloc_virtual("x", in_len);
        let w = dev.memory.alloc_virtual("w", g.k_in * g.k_out);
        let y = dev.memory.alloc_virtual("y", out_len);
        let kernel = FusedKernel::new("accnd", g, true, true, 16, x, w, y, 0.1);
        let acc = kernel.access().expect("fused kernel declares access");
        assert_eq!(count(&acc, x), in_len, "rank={rank}");
        assert_eq!(count(&acc, w), g.k_in * g.k_out, "rank={rank}");
        assert_eq!(write_once(&acc, y), out_len, "rank={rank}");
    }
}
