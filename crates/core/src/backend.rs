//! The crate's single gateway to the execution backends.
//!
//! Every execution-layer module in this crate (`session`, `pipeline`,
//! `pool`, `planner`, `replay`, `verify`, `error`) imports its device
//! types from here and *only* from here — `cargo xtask lint` enforces it
//! (`backend-isolation`). That keeps the engine generic over the
//! [`Backend`] trait: the simulated device ([`SimBackend`]) and the eager
//! host executor ([`NativeBackend`]) are interchangeable behind
//! [`AnyBackend`], and a future hardware backend (wgpu — see the roadmap)
//! slots in by implementing the trait, not by editing the engine.
//!
//! The kernel-construction modules (`fused`, `swizzle`) are exempt: they
//! build [`Kernel`] objects against the simulator's launch geometry and
//! are backend-agnostic by construction (a kernel is data; only launching
//! it touches a backend).

pub use tfno_backend::{
    env_backend_kind, parse_backend_kind, AnyBackend, Backend, BackendCaps, BackendKind,
    DeferredWindow, NativeBackend, SimBackend,
};
pub use tfno_gpu_sim::{
    configured_workers, lock_unpoisoned, merge_runs, runs_overlap, seq_insert, seq_lookup,
    wait_unpoisoned, BufferId, DeviceConfig, ExecMode, FaultKind, FaultPlan, FaultStats, Kernel,
    KernelAccess, LaunchError, LaunchRecord, PendingLaunch,
};
