//! Per-launch diagnostic dump for calibration.
use tfno_bench::{measure_1d, measure_2d, problem_1d, problem_2d};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

fn dump(label: &str, run: &turbofno::PipelineRun) {
    println!("== {label}: total {:.1} us", run.total_us());
    for l in &run.launches {
        println!(
            "   {:<28} grid {:>8} t={:>9.1}us flops={:>12} ld={:>12} st={:>12} ldsec={:>10} shact={:>10} sync={:>8}",
            l.name, l.dims_grid, l.time_us, l.stats.flops,
            l.stats.global_load_bytes, l.stats.global_store_bytes,
            l.stats.global_load_sectors, l.stats.shared_actual_cycles, l.stats.syncthreads
        );
    }
}

fn main() {
    let cfg = DeviceConfig::a100();
    let p2 = problem_2d(16, 8, 256, 128, 64);
    for v in [Variant::Pytorch, Variant::FftOpt, Variant::FusedFftGemm, Variant::FullyFused] {
        dump(&format!("2D K=16 {:?}", v), &measure_2d(&cfg, &p2, v));
    }
    let p1 = problem_1d(64, 1 << 20, 128, 32);
    for v in [Variant::Pytorch, Variant::FftOpt, Variant::FusedGemmIfft, Variant::FullyFused] {
        dump(&format!("1D K=64 nf=32 {:?}", v), &measure_1d(&cfg, &p1, v));
    }
}
