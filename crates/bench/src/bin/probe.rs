//! Calibration probe: prints the key figure shapes in compact form so the
//! cost-model constants can be audited quickly. Not part of the paper's
//! figure set — see `benches/` for the real harness.

use tfno_bench::{measure_1d, measure_2d, perf_pct, problem_1d, problem_2d};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

fn main() {
    let cfg = DeviceConfig::a100();

    println!("--- 1D: K sweep at M=2^20 (fig 10/11/12/13a shape) ---");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "K", "pt_us", "A%", "B%", "C%", "D%"
    );
    for k in [16usize, 32, 48, 64, 96, 128, 136] {
        let p = problem_1d(k, 1 << 20, 128, 32);
        let pt = measure_1d(&cfg, &p, Variant::Pytorch).total_us();
        let a = measure_1d(&cfg, &p, Variant::FftOpt).total_us();
        let b = measure_1d(&cfg, &p, Variant::FusedFftGemm).total_us();
        let c = measure_1d(&cfg, &p, Variant::FusedGemmIfft).total_us();
        let d = measure_1d(&cfg, &p, Variant::FullyFused).total_us();
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            k,
            pt,
            perf_pct(pt, a),
            perf_pct(pt, b),
            perf_pct(pt, c),
            perf_pct(pt, d)
        );
    }

    println!("\n--- 1D: M sweep at K=64 (fig 10c shape) ---");
    println!("{:>9} {:>10} {:>10} {:>10}", "M", "pt_us", "A%", "D%");
    for m in [64usize, 256, 1024, 4096, 16384, 65536, 262144] {
        let p = problem_1d(64, m, 128, 32);
        let pt = measure_1d(&cfg, &p, Variant::Pytorch).total_us();
        let a = measure_1d(&cfg, &p, Variant::FftOpt).total_us();
        let d = measure_1d(&cfg, &p, Variant::FullyFused).total_us();
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>10.1}",
            m,
            pt,
            perf_pct(pt, a),
            perf_pct(pt, d)
        );
    }

    println!("\n--- 1D heatmap corners (fig 14 shape: small M + large K should be blue) ---");
    for (k, logm) in [(8usize, 6u32), (128, 6), (8, 20), (128, 20)] {
        let p = problem_1d(k, 1usize << logm, 128, 64);
        let pt = measure_1d(&cfg, &p, Variant::Pytorch).total_us();
        let best = [
            Variant::FftOpt,
            Variant::FusedFftGemm,
            Variant::FusedGemmIfft,
            Variant::FullyFused,
        ]
        .iter()
        .map(|v| measure_1d(&cfg, &p, *v).total_us())
        .fold(f64::INFINITY, f64::min);
        println!(
            "K={k:>4} log2(M)={logm:>2}: speedup {:>7.1}%",
            perf_pct(pt, best) - 100.0
        );
    }

    println!("\n--- 2D: K sweep at BS=8, 256x128, Nf=64 (fig 15-18a shape) ---");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "K", "pt_us", "A%", "B%", "C%", "D%"
    );
    for k in [16usize, 32, 64, 128] {
        let p = problem_2d(k, 8, 256, 128, 64);
        let pt = measure_2d(&cfg, &p, Variant::Pytorch).total_us();
        let a = measure_2d(&cfg, &p, Variant::FftOpt).total_us();
        let b = measure_2d(&cfg, &p, Variant::FusedFftGemm).total_us();
        let c = measure_2d(&cfg, &p, Variant::FusedGemmIfft).total_us();
        let d = measure_2d(&cfg, &p, Variant::FullyFused).total_us();
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            k,
            pt,
            perf_pct(pt, a),
            perf_pct(pt, b),
            perf_pct(pt, c),
            perf_pct(pt, d)
        );
    }
}
