//! # tfno-bench
//!
//! Shared harness for the per-figure benchmark targets (see
//! `crates/bench/benches/`). Each paper figure/table has one bench target
//! with `harness = false` that sweeps the paper's parameter grid through
//! the *analytical* simulator path (virtual buffers, representative-block
//! execution) and prints the same rows/series the paper reports, plus a
//! paper-vs-measured summary consumed by EXPERIMENTS.md.

use tfno_culib::{FnoProblem1d, FnoProblem2d};
use tfno_gpu_sim::{DeviceConfig, GpuDevice};
use turbofno::{LayerSpec, PipelineRun, Session, TurboOptions, Variant};

pub mod figures;
pub mod report;

/// Default evaluation geometry used across the 1D figures: 128-point FFT
/// with 50% truncation, matching the paper's headline configuration.
pub const DEFAULT_N_1D: usize = 128;
pub const DEFAULT_NF_1D: usize = 64;

/// Run one 1D variant analytically on virtual buffers; returns the
/// pipeline record (modeled time + stats).
pub fn measure_1d(cfg: &DeviceConfig, p: &FnoProblem1d, variant: Variant) -> PipelineRun {
    measure_1d_opts(cfg, p, variant, &TurboOptions::default())
}

pub fn measure_1d_opts(
    cfg: &DeviceConfig,
    p: &FnoProblem1d,
    variant: Variant,
    opts: &TurboOptions,
) -> PipelineRun {
    Session::new(GpuDevice::new(cfg.clone()))
        .measure(&LayerSpec::from_problem_1d(p).variant(variant).options(*opts))
}

/// Run one 2D variant analytically on virtual buffers.
pub fn measure_2d(cfg: &DeviceConfig, p: &FnoProblem2d, variant: Variant) -> PipelineRun {
    measure_2d_opts(cfg, p, variant, &TurboOptions::default())
}

pub fn measure_2d_opts(
    cfg: &DeviceConfig,
    p: &FnoProblem2d,
    variant: Variant,
    opts: &TurboOptions,
) -> PipelineRun {
    Session::new(GpuDevice::new(cfg.clone()))
        .measure(&LayerSpec::from_problem_2d(p).variant(variant).options(*opts))
}

/// The paper's y-axis: "Performance vs PyTorch (%)", where 100 = parity.
pub fn perf_pct(pytorch_us: f64, variant_us: f64) -> f64 {
    100.0 * pytorch_us / variant_us
}

/// Speedup in percent over PyTorch (the heatmap metric: 0 = parity).
pub fn speedup_pct(pytorch_us: f64, variant_us: f64) -> f64 {
    100.0 * (pytorch_us / variant_us - 1.0)
}

/// Modeled times of every concrete variant at one evaluation point (us).
#[derive(Clone, Copy, Debug)]
pub struct VariantTimes {
    pub pytorch: f64,
    pub fft_opt: f64,
    pub fused_fft_gemm: f64,
    pub fused_gemm_ifft: f64,
    pub fully_fused: f64,
}

impl VariantTimes {
    /// The best Turbo variant (the paper's "TurboFNO" = variant E).
    pub fn best_turbo(&self) -> f64 {
        self.fft_opt
            .min(self.fused_fft_gemm)
            .min(self.fused_gemm_ifft)
            .min(self.fully_fused)
    }

    pub fn of(&self, v: Variant) -> f64 {
        match v {
            Variant::Pytorch => self.pytorch,
            Variant::FftOpt => self.fft_opt,
            Variant::FusedFftGemm => self.fused_fft_gemm,
            Variant::FusedGemmIfft => self.fused_gemm_ifft,
            Variant::FullyFused => self.fully_fused,
            Variant::TurboBest => self.best_turbo(),
        }
    }
}

/// Measure all concrete variants of a 1D point.
pub fn sweep_1d(cfg: &DeviceConfig, p: &FnoProblem1d) -> VariantTimes {
    VariantTimes {
        pytorch: measure_1d(cfg, p, Variant::Pytorch).total_us(),
        fft_opt: measure_1d(cfg, p, Variant::FftOpt).total_us(),
        fused_fft_gemm: measure_1d(cfg, p, Variant::FusedFftGemm).total_us(),
        fused_gemm_ifft: measure_1d(cfg, p, Variant::FusedGemmIfft).total_us(),
        fully_fused: measure_1d(cfg, p, Variant::FullyFused).total_us(),
    }
}

/// Measure all concrete variants of a 2D point.
pub fn sweep_2d(cfg: &DeviceConfig, p: &FnoProblem2d) -> VariantTimes {
    VariantTimes {
        pytorch: measure_2d(cfg, p, Variant::Pytorch).total_us(),
        fft_opt: measure_2d(cfg, p, Variant::FftOpt).total_us(),
        fused_fft_gemm: measure_2d(cfg, p, Variant::FusedFftGemm).total_us(),
        fused_gemm_ifft: measure_2d(cfg, p, Variant::FusedGemmIfft).total_us(),
        fully_fused: measure_2d(cfg, p, Variant::FullyFused).total_us(),
    }
}

/// The paper's K axis for the 1D line figures: 16..136 step 8.
pub fn k_axis_1d() -> Vec<usize> {
    (16..=136).step_by(8).collect()
}

/// The paper's BS axis for Figs. 11–13 (b)–(d).
pub const BS_AXIS_1D: [usize; 4] = [64, 256, 1024, 4096];

/// The same BS axis expressed in GEMM-M rows (`BS x nf`, `nf = 32`), the
/// unit `figures::line_1d` sweeps.
pub const BS_AXIS_1D_M: [usize; 4] = [64 * 32, 256 * 32, 1024 * 32, 4096 * 32];

/// The paper's M axis for Fig. 10 (b)–(d).
pub const M_AXIS_1D: [usize; 7] = [64, 256, 1024, 4096, 16384, 65536, 262144];

/// 1D problem for a (K, total-M) evaluation point: `M = batch * nf` GEMM
/// rows, signal length `n`, retained modes `nf`, square hidden dims.
pub fn problem_1d(k: usize, m_total: usize, n: usize, nf: usize) -> FnoProblem1d {
    let batch = (m_total / nf).max(1);
    FnoProblem1d::new(batch, k, k, n, nf)
}

/// 2D problem for a (K, batch) point at resolution `nx x ny` keeping an
/// `nf x nf` corner (the paper's "N = 64/128" label).
pub fn problem_2d(k: usize, batch: usize, nx: usize, ny: usize, nf: usize) -> FnoProblem2d {
    FnoProblem2d::new(batch, k, k, nx, ny, nf.min(nx), nf.min(ny))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_metrics() {
        assert!((perf_pct(200.0, 100.0) - 200.0).abs() < 1e-9);
        assert!((speedup_pct(150.0, 100.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_smoke_1d() {
        let cfg = DeviceConfig::a100();
        let p = problem_1d(32, 4096, 128, 64);
        let pt = measure_1d(&cfg, &p, Variant::Pytorch);
        let a = measure_1d(&cfg, &p, Variant::FftOpt);
        assert!(pt.total_us() > 0.0 && a.total_us() > 0.0);
        assert_eq!(pt.kernel_count(), 5);
        assert_eq!(a.kernel_count(), 3);
    }

    #[test]
    fn measurement_smoke_2d() {
        let cfg = DeviceConfig::a100();
        let p = problem_2d(32, 8, 256, 128, 64);
        let pt = measure_2d(&cfg, &p, Variant::Pytorch);
        assert_eq!(pt.kernel_count(), 7);
    }
}
