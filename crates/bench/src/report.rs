//! Text output helpers for the figure benches: series tables, ASCII
//! heatmaps, and paper-vs-measured summary lines.

/// Print a figure header.
pub fn header(fig: &str, caption: &str) {
    println!();
    println!("==================================================================");
    println!("{fig}: {caption}");
    println!("==================================================================");
}

/// Print one table of series: `x_label` column plus one column per series.
pub fn series_table(x_label: &str, xs: &[String], series: &[(&str, Vec<f64>)]) {
    print!("{x_label:>12}");
    for (name, _) in series {
        print!(" {name:>24}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, vals) in series {
            print!(" {:>24.1}", vals[i]);
        }
        println!();
    }
}

/// Print an ASCII heatmap of speedup percentages (rows = y axis labels,
/// cols = x axis labels). Positive = red zone in the paper (faster than
/// PyTorch), negative = blue zone (slower).
pub fn heatmap(title: &str, x_label: &str, xs: &[String], ys: &[String], rows: &[Vec<f64>]) {
    println!("\n--- {title} ---");
    print!("{:>10} |", x_label);
    for x in xs {
        print!("{x:>7}");
    }
    println!();
    println!("{}", "-".repeat(12 + 7 * xs.len()));
    for (yi, y) in ys.iter().enumerate() {
        print!("{y:>10} |");
        for v in &rows[yi] {
            print!("{v:>7.0}");
        }
        println!();
    }
}

/// Summary statistics over a set of speedup values.
pub fn summarize(values: &[f64]) -> (f64, f64, f64) {
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    (avg, max, min)
}

/// Print a paper-vs-measured comparison line (collected into
/// EXPERIMENTS.md after a full bench run).
pub fn paper_vs_measured(metric: &str, paper: &str, measured: &str, verdict: &str) {
    println!("PAPER-CHECK | {metric:<46} | paper: {paper:<22} | measured: {measured:<22} | {verdict}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats() {
        let (avg, max, min) = summarize(&[0.0, 50.0, 100.0]);
        assert!((avg - 50.0).abs() < 1e-9);
        assert!((max - 100.0).abs() < 1e-9);
        assert!((min - 0.0).abs() < 1e-9);
    }
}
