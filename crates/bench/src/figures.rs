//! Shared drivers for the paper's line figures and heatmaps.

use crate::report::{self, summarize};
use crate::{perf_pct, problem_1d, problem_2d, speedup_pct, sweep_1d, sweep_2d, VariantTimes};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

/// Figures 10–13: 1D line plots. Subplot (a) sweeps K at `M = 2^20`;
/// (b)–(d) sweep the batch axis at `K ∈ {32, 64, 128}`.
/// All use the 128-point FFT with 25% truncation (`nf = 32`).
pub fn line_1d(fig: &str, caption: &str, variants: &[Variant], m_axis: &[usize]) {
    report::header(fig, caption);
    let cfg = DeviceConfig::a100();
    let (n, nf) = (128usize, 32usize);

    // (a) K sweep
    let ks: Vec<usize> = (16..=136).step_by(8).collect();
    let points: Vec<VariantTimes> = ks
        .iter()
        .map(|&k| sweep_1d(&cfg, &problem_1d(k, 1 << 20, n, nf)))
        .collect();
    println!("\n(a) Performance vs PyTorch (%), changing K, fix M=2^20:");
    let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let series: Vec<(&str, Vec<f64>)> = variants
        .iter()
        .map(|v| {
            (
                v.label(),
                points.iter().map(|t| perf_pct(t.pytorch, t.of(*v))).collect(),
            )
        })
        .collect();
    report::series_table("K", &xs, &series);

    // (b)-(d) batch sweeps
    for k in [32usize, 64, 128] {
        let points: Vec<VariantTimes> = m_axis
            .iter()
            .map(|&m| sweep_1d(&cfg, &problem_1d(k, m, n, nf)))
            .collect();
        println!("\nPerformance vs PyTorch (%), changing M, fix K={k}:");
        let xs: Vec<String> = m_axis.iter().map(|m| m.to_string()).collect();
        let series: Vec<(&str, Vec<f64>)> = variants
            .iter()
            .map(|v| {
                (
                    v.label(),
                    points.iter().map(|t| perf_pct(t.pytorch, t.of(*v))).collect(),
                )
            })
            .collect();
        report::series_table("M", &xs, &series);
    }
}

/// Figures 15–18: 2D line plots at resolution 256x128 with `Nf = 64`.
pub fn line_2d(fig: &str, caption: &str, variants: &[Variant], bs_axis: &[usize]) {
    report::header(fig, caption);
    let cfg = DeviceConfig::a100();
    let (nx, ny, nf) = (256usize, 128usize, 64usize);

    let ks: Vec<usize> = (16..=136).step_by(8).collect();
    let points: Vec<VariantTimes> = ks
        .iter()
        .map(|&k| sweep_2d(&cfg, &problem_2d(k, 8, nx, ny, nf)))
        .collect();
    println!("\n(a) Performance vs PyTorch (%), changing K, fix BS=8 (256x128, Nf=64):");
    let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let series: Vec<(&str, Vec<f64>)> = variants
        .iter()
        .map(|v| {
            (
                v.label(),
                points.iter().map(|t| perf_pct(t.pytorch, t.of(*v))).collect(),
            )
        })
        .collect();
    report::series_table("K", &xs, &series);

    for k in [32usize, 64, 128] {
        let points: Vec<VariantTimes> = bs_axis
            .iter()
            .map(|&bs| sweep_2d(&cfg, &problem_2d(k, bs, nx, ny, nf)))
            .collect();
        println!("\nPerformance vs PyTorch (%), changing BS, fix K={k}:");
        let xs: Vec<String> = bs_axis.iter().map(|b| b.to_string()).collect();
        let series: Vec<(&str, Vec<f64>)> = variants
            .iter()
            .map(|v| {
                (
                    v.label(),
                    points.iter().map(|t| perf_pct(t.pytorch, t.of(*v))).collect(),
                )
            })
            .collect();
        report::series_table("BS", &xs, &series);
    }
}

/// Fig. 14: 1D heatmaps of TurboFNO (best-of) speedup vs PyTorch over
/// (K, log2 M) for {128, 256}-pt FFTs and filter sizes {64, 128}.
/// Returns all speedup values for the summary.
pub fn heatmap_1d() -> Vec<f64> {
    let cfg = DeviceConfig::a100();
    let ks: Vec<usize> = (8..=120).step_by(16).collect();
    let logms: Vec<u32> = (6..=20).step_by(2).collect();
    let mut all = Vec::new();
    for (n, nf) in [(128usize, 64usize), (128, 128), (256, 64), (256, 128)] {
        let mut rows = Vec::new();
        for &logm in &logms {
            let mut row = Vec::new();
            for &k in &ks {
                let t = sweep_1d(&cfg, &problem_1d(k, 1usize << logm, n, nf));
                let s = speedup_pct(t.pytorch, t.best_turbo());
                row.push(s);
                all.push(s);
            }
            rows.push(row);
        }
        let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
        let ys: Vec<String> = logms.iter().map(|m| format!("2^{m}")).collect();
        report::heatmap(
            &format!("{n}-pt FFT, N={nf}: TurboFNO speedup vs PyTorch (%)"),
            "M \\ K",
            &xs,
            &ys,
            &rows,
        );
    }
    all
}

/// Fig. 19: 2D heatmaps over (K, batch) for {256x128, 256x256} and filter
/// sizes {64, 128}.
pub fn heatmap_2d() -> Vec<f64> {
    let cfg = DeviceConfig::a100();
    let ks: Vec<usize> = (8..=120).step_by(16).collect();
    let bss: Vec<usize> = vec![1, 16, 32, 48, 64, 80, 96, 112, 128];
    let mut all = Vec::new();
    for (nx, ny, nf) in [
        (256usize, 128usize, 64usize),
        (256, 128, 128),
        (256, 256, 64),
        (256, 256, 128),
    ] {
        let mut rows = Vec::new();
        for &bs in &bss {
            let mut row = Vec::new();
            for &k in &ks {
                let t = sweep_2d(&cfg, &problem_2d(k, bs, nx, ny, nf));
                let s = speedup_pct(t.pytorch, t.best_turbo());
                row.push(s);
                all.push(s);
            }
            rows.push(row);
        }
        let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
        let ys: Vec<String> = bss.iter().map(|b| b.to_string()).collect();
        report::heatmap(
            &format!("{nx}x{ny} 2D FFT, N={nf}: TurboFNO speedup vs PyTorch (%)"),
            "BS \\ K",
            &xs,
            &ys,
            &rows,
        );
    }
    all
}

/// Print the avg/max/min summary with a paper comparison.
pub fn speedup_summary(fig: &str, values: &[f64], paper_avg: &str, paper_max: &str) {
    let (avg, max, min) = summarize(values);
    println!("\nsummary: avg {avg:+.1}%  max {max:+.1}%  min {min:+.1}%");
    report::paper_vs_measured(
        &format!("{fig} average speedup"),
        paper_avg,
        &format!("{avg:+.1}%"),
        "SHAPE",
    );
    report::paper_vs_measured(
        &format!("{fig} max speedup"),
        paper_max,
        &format!("{max:+.1}%"),
        "SHAPE",
    );
}
