//! Fig. 14 — 1D TurboFNO (best-of) speedup heatmaps vs PyTorch.
use tfno_bench::figures;

fn main() {
    tfno_bench::report::header("Fig 14", "1D TurboFNO vs PyTorch heatmaps");
    let all = figures::heatmap_1d();
    figures::speedup_summary("Fig 14", &all, "+44% avg", "+250% max");
    let blues = all.iter().filter(|v| **v < 0.0).count();
    println!("slowdown cells (paper: small-M / large-K corner only): {blues} of {}", all.len());
}
