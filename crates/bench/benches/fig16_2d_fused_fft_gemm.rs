//! Fig. 16 — 2D fused FFT-CGEMM (variant B).
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_2d(
        "Fig 16",
        "2D fused FFT-CGEMM (variant B) vs A and PyTorch",
        &[Variant::FftOpt, Variant::FusedFftGemm],
        &[48, 64, 80, 96],
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 16 shape",
        "fusion adds only ~1-2% (stage-1 FFT dominates)",
        "see series above",
        "SHAPE",
    );
}
