//! Table 1 — CGEMM and FFT kernel parameter setup.
//!
//! Prints the kernel configuration this reproduction runs with, next to the
//! paper's values, and asserts they agree.

use tfno_bench::report;
use tfno_cgemm::TileConfig;
use tfno_fft::FftBlockConfig;

fn main() {
    report::header("Table 1", "CGEMM and FFT kernel parameter setup");

    let t = TileConfig::table1();
    println!("\nCGEMM   m_tb n_tb k_tb  m_w  n_w  m_t  n_t");
    println!(
        "ours    {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4}",
        t.m_tb, t.n_tb, t.k_tb, t.m_w, t.n_w, t.m_t, t.n_t
    );
    println!("paper     32   32    8   32   16    4    4");
    assert_eq!(
        (t.m_tb, t.n_tb, t.k_tb, t.m_w, t.n_w, t.m_t, t.n_t),
        (32, 32, 8, 32, 16, 4, 4)
    );

    let f1 = FftBlockConfig::n128();
    let f2 = FftBlockConfig::n256();
    println!("\nFFT       N1   N2   n1   n2   bs");
    println!(
        "ours    {:>4} {:>4} {:>4} {:>4} {:>4}",
        f1.n, f2.n, f1.n_thread, f2.n_thread, f1.bs
    );
    println!("paper    128  256    8   16    8");
    assert_eq!((f1.n, f2.n, f1.n_thread, f2.n_thread, f1.bs), (128, 256, 8, 16, 8));

    println!(
        "\nderived: threads/block = {} (both FFT configs), CGEMM warps/block = {}",
        f1.threads_per_block(),
        t.warps()
    );
    report::paper_vs_measured(
        "Table 1 kernel parameters",
        "as printed",
        "identical",
        "MATCH",
    );
}
