//! Fig. 10 — 1D FFT optimization (pruning + truncation + zero-padding,
//! variant A) vs PyTorch.
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_1d(
        "Fig 10",
        "1D FFT optimization (variant A) vs PyTorch",
        &[Variant::FftOpt],
        &tfno_bench::M_AXIS_1D,
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 10 shape",
        "70-100% speedup small K -> ~50% large K; grows with M",
        "see series above",
        "SHAPE",
    );
}
