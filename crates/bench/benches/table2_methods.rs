//! Table 2 — method and comparison base of every evaluation figure.
//!
//! Prints the experiment index (which optimization each figure evaluates
//! and against which baselines), mirroring the paper's Table 2, and checks
//! that every variant's kernel count matches its fusion level.

use tfno_bench::{measure_1d, problem_1d, report};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

fn main() {
    report::header("Table 2", "Method and comparison base in the evaluation");

    println!("\n Id | Figures   | TurboFNO optimization        | Base");
    println!("----+-----------+------------------------------+---------------------");
    println!("  A | 10, 15    | FFT pruning, truncation      | PyTorch");
    println!("  B | 11, 16    | Fused FFT-CGEMM              | PyTorch, A");
    println!("  C | 12, 17    | Fused CGEMM-iFFT             | PyTorch, A, B");
    println!("  D | 13, 18    | Fused FFT-CGEMM-iFFT         | PyTorch, A, B, C");
    println!("  E | 14, 19    | TurboFNO: best of A+B+C+D    | PyTorch");

    // sanity: kernel counts per 1D variant at a representative size
    let cfg = DeviceConfig::a100();
    let p = problem_1d(64, 4096, 128, 32);
    println!("\nkernel launches per 1D Fourier layer (K=64, M=4096):");
    for v in Variant::CONCRETE {
        let run = measure_1d(&cfg, &p, v);
        println!("  {:<22} {} kernels, {:>8.1} us", v.label(), run.kernel_count(), run.total_us());
    }
    report::paper_vs_measured(
        "Table 2 experiment matrix",
        "5 methods (PyTorch, A-D)",
        "5 methods implemented",
        "MATCH",
    );
}
