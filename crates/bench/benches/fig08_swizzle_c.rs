//! Fig. 8 — shared-memory bank utilization when staging CGEMM accumulator
//! tiles for the fused iFFT epilogue: 25% raw, 100% with the
//! `threadIdx.x / 4` offset.

use tfno_bench::report;
use turbofno::{epilogue_store_pattern, pattern_utilization, EpilogueStaging};

fn main() {
    report::header("Fig 8", "Shared-memory access: CGEMM -> iFFT staging");

    for ms in [32usize, 64, 128] {
        let mut raw_pats = Vec::new();
        let mut swz_pats = Vec::new();
        let raw = EpilogueStaging { ms, swizzled: false };
        let swz = EpilogueStaging { ms, swizzled: true };
        for i in 0..4 {
            for j in 0..4 {
                raw_pats.push(epilogue_store_pattern(&raw, i, j));
                swz_pats.push(epilogue_store_pattern(&swz, i, j));
            }
        }
        println!(
            "  ms={ms:>4}: no offset {:>6.1}%   +tid/4 offset {:>6.1}%  (staging pad: {} elems/col)",
            100.0 * pattern_utilization(&raw_pats),
            100.0 * pattern_utilization(&swz_pats),
            swz.col_stride() - ms,
        );
    }

    let raw = {
        let s = EpilogueStaging { ms: 64, swizzled: false };
        let pats: Vec<_> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| epilogue_store_pattern(&s, i, j))
            .collect();
        pattern_utilization(&pats)
    };
    let swz = {
        let s = EpilogueStaging { ms: 64, swizzled: true };
        let pats: Vec<_> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| epilogue_store_pattern(&s, i, j))
            .collect();
        pattern_utilization(&pats)
    };
    report::paper_vs_measured(
        "Fig 8: C-fragment staging utilization",
        "25% -> 100%",
        &format!("{:.0}% -> {:.0}%", 100.0 * raw, 100.0 * swz),
        if (raw - 0.25).abs() < 1e-9 && swz == 1.0 { "MATCH" } else { "MISMATCH" },
    );
}
