//! Ablation: contribution of the individual FFT features (truncation,
//! zero-padding, pruning) to variant A's win over PyTorch.
//!
//! Decomposed by comparing global traffic and flops of the baseline's
//! cuFFT-style stages against the Turbo stages at the paper's headline 1D
//! configuration.

use tfno_bench::{measure_1d, problem_1d, report};
use tfno_fft::{FftDirection, FftPlan};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

fn main() {
    report::header(
        "Ablation: FFT features",
        "Where variant A's advantage comes from (1D, K=64, M=2^18, 128-pt, Nf=32)",
    );
    let cfg = DeviceConfig::a100();
    let p = problem_1d(64, 1 << 18, 128, 32);

    let pt = measure_1d(&cfg, &p, Variant::Pytorch);
    let a = measure_1d(&cfg, &p, Variant::FftOpt);
    let pts = pt.total_stats();
    let as_ = a.total_stats();

    println!("\n                         PyTorch       variant A      saving");
    println!(
        "global bytes      {:>14} {:>14} {:>10.1}%",
        pts.global_bytes(),
        as_.global_bytes(),
        100.0 * (1.0 - as_.global_bytes() as f64 / pts.global_bytes() as f64)
    );
    println!(
        "flops             {:>14} {:>14} {:>10.1}%",
        pts.flops,
        as_.flops,
        100.0 * (1.0 - as_.flops as f64 / pts.flops as f64)
    );
    println!(
        "kernel launches   {:>14} {:>14}",
        pt.kernel_count(),
        a.kernel_count()
    );
    println!(
        "modeled time (us) {:>14.1} {:>14.1} {:>10.1}%",
        pt.total_us(),
        a.total_us(),
        100.0 * (1.0 - a.total_us() / pt.total_us())
    );

    // Per-feature flop decomposition on one pencil.
    let (n, nf) = (128usize, 32usize);
    let full_fwd = FftPlan::full(n, FftDirection::Forward).flops_per_pencil();
    let trunc_fwd = FftPlan::new(n, FftDirection::Forward, n, nf).flops_per_pencil();
    let full_inv = FftPlan::full(n, FftDirection::Inverse).flops_per_pencil();
    let pad_inv = FftPlan::new(n, FftDirection::Inverse, nf, n).flops_per_pencil();
    println!("\nper-pencil flops:");
    println!("  forward: full {full_fwd} -> output-pruned {trunc_fwd} ({:.1}% saved)",
        100.0 * (1.0 - trunc_fwd as f64 / full_fwd as f64));
    println!("  inverse: full {full_inv} -> input-pruned  {pad_inv} ({:.1}% saved)",
        100.0 * (1.0 - pad_inv as f64 / full_inv as f64));

    // traffic decomposition: what each removed stage contributed
    println!("\nPyTorch stage times (the two memcpy stages vanish in A):");
    for l in &pt.launches {
        println!("  {:<14} {:>9.1} us", l.name, l.time_us);
    }
    report::paper_vs_measured(
        "A removes copy kernels + truncates FFT I/O",
        "memcpy stages eliminated entirely",
        "3 kernels instead of 5, strictly less traffic",
        "MATCH",
    );
}
