//! Fig. 17 — 2D fused CGEMM-iFFT (variant C).
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_2d(
        "Fig 17",
        "2D fused CGEMM-iFFT (variant C) vs A, B and PyTorch",
        &[Variant::FftOpt, Variant::FusedFftGemm, Variant::FusedGemmIfft],
        &[48, 64, 80, 96],
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 17 shape",
        "50-100% over PyTorch; ~1-3% over A",
        "see series above",
        "SHAPE",
    );
}
