//! Fig. 13 — 1D fully fused FFT-CGEMM-iFFT (variant D) vs all others.
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_1d(
        "Fig 13",
        "1D fully fused FFT-CGEMM-iFFT (variant D) vs A, B, C and PyTorch",
        &[
            Variant::FftOpt,
            Variant::FusedFftGemm,
            Variant::FusedGemmIfft,
            Variant::FullyFused,
        ],
        &tfno_bench::BS_AXIS_1D_M,
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 13 shape",
        "up to 150% over PyTorch; +10-20% over partial fusion",
        "see series above",
        "SHAPE",
    );
}
