//! Fig. 7 — shared-memory bank utilization when forwarding FFT output to
//! the CGEMM `As` tile, and the FFT register-writeback swizzles.

use tfno_bench::report;
use turbofno::{fft_writeback_pattern, forward_to_as_pattern, pattern_utilization, ForwardLayout};

fn main() {
    report::header("Fig 7", "Shared-memory access: FFT -> CGEMM forwarding");

    println!("\n(a) thread-to-data layout when writing the As tile:");
    for ms in [64usize, 128] {
        let vk = pattern_utilization(&forward_to_as_pattern(ForwardLayout::VkFftStrided, ms, 8));
        let tb = pattern_utilization(&forward_to_as_pattern(ForwardLayout::TurboContiguous, ms, 8));
        println!(
            "  ms={ms:>4}: VkFFT-strided {:>6.1}%   TurboFNO-contiguous {:>6.1}%",
            100.0 * vk,
            100.0 * tb
        );
    }

    println!("\n(b) 16-point-per-thread register writeback:");
    let raw16 = pattern_utilization(&fft_writeback_pattern(16, false));
    let swz16 = pattern_utilization(&fft_writeback_pattern(16, true));
    println!("  raw: {:>6.2}%   with +tid offset: {:>6.1}%", 100.0 * raw16, 100.0 * swz16);

    println!("\n(c) 8-point-per-thread register writeback:");
    let raw8 = pattern_utilization(&fft_writeback_pattern(8, false));
    let swz8 = pattern_utilization(&fft_writeback_pattern(8, true));
    println!("  raw: {:>6.2}%   with +tid/2 offset: {:>6.1}%", 100.0 * raw8, 100.0 * swz8);

    report::paper_vs_measured(
        "Fig 7b: 16-pt writeback utilization",
        "6.25% -> 100%",
        &format!("{:.2}% -> {:.0}%", 100.0 * raw16, 100.0 * swz16),
        if (raw16 - 0.0625).abs() < 1e-9 && swz16 == 1.0 { "MATCH" } else { "MISMATCH" },
    );
    report::paper_vs_measured(
        "Fig 7a: VkFFT layout forwarding utilization",
        "25%",
        &format!(
            "{:.1}% (8-way on ms=64 column-major tiles)",
            100.0 * pattern_utilization(&forward_to_as_pattern(ForwardLayout::VkFftStrided, 64, 8))
        ),
        "SHAPE MATCH (conflicted vs 100%)",
    );
    report::paper_vs_measured(
        "Fig 7a: TurboFNO layout forwarding utilization",
        "100%",
        &format!(
            "{:.0}%",
            100.0 * pattern_utilization(&forward_to_as_pattern(ForwardLayout::TurboContiguous, 64, 8))
        ),
        "MATCH",
    );
}
