//! Fig. 19 — 2D TurboFNO (best-of) speedup heatmaps vs PyTorch.
use tfno_bench::figures;

fn main() {
    tfno_bench::report::header("Fig 19", "2D TurboFNO vs PyTorch heatmaps");
    let all = figures::heatmap_2d();
    figures::speedup_summary("Fig 19", &all, "+67% avg", "+150% max");
}
