//! Fig. 15 — 2D FFT optimization (variant A) vs PyTorch.
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_2d(
        "Fig 15",
        "2D FFT optimization (variant A) vs PyTorch",
        &[Variant::FftOpt],
        &[48, 64, 80, 96, 112, 128, 144],
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 15 shape",
        "avg > 50% speedup, stable across sizes",
        "see series above",
        "SHAPE",
    );
}
