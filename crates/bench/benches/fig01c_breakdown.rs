//! Fig. 1(c) — per-stage time breakdown: PyTorch's five-stage pipeline
//! (FFT, memcopy, CGEMM, memcopy, iFFT) versus the fused kernel.
//!
//! The paper's bar chart makes the motivation visual: the copies and
//! intermediate round trips vanish under fusion.

use tfno_bench::{measure_1d, problem_1d, report};
use tfno_gpu_sim::DeviceConfig;
use turbofno::Variant;

fn main() {
    report::header(
        "Fig 1(c)",
        "Fusion speedup: stage breakdown, PyTorch vs TurboFNO (1D layer, K=64, M=2^18, 128-pt, Nf=32)",
    );
    let cfg = DeviceConfig::a100();
    let p = problem_1d(64, 1 << 18, 128, 32);

    let pt = measure_1d(&cfg, &p, Variant::Pytorch);
    println!("\nPyTorch pipeline:");
    let mut pt_total = 0.0;
    for l in &pt.launches {
        println!("  {:<14} {:>9.1} us", l.name, l.time_us);
        pt_total += l.time_us;
    }
    println!("  {:<14} {pt_total:>9.1} us", "TOTAL");

    let fused = measure_1d(&cfg, &p, Variant::FullyFused);
    println!("\nTurboFNO fused FFT-GEMM-iFFT:");
    let mut f_total = 0.0;
    for l in &fused.launches {
        println!("  {:<28} {:>9.1} us", l.name, l.time_us);
        f_total += l.time_us;
    }
    println!("  {:<28} {f_total:>9.1} us", "TOTAL");

    let speedup = 100.0 * (pt_total / f_total - 1.0);
    println!("\nfused speedup vs PyTorch: {speedup:+.1}%");
    report::paper_vs_measured(
        "Fig 1c fused vs 5-stage pipeline",
        "fused clearly faster",
        &format!("{speedup:+.1}% (1 kernel vs 5)"),
        if speedup > 0.0 { "SHAPE MATCH" } else { "MISMATCH" },
    );
}
