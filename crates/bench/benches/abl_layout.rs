//! Ablation: shared-memory layout and swizzling inside the fused kernel.
//!
//! Runs the fully fused 1D kernel with (a) the paper's thread-to-data
//! layout + both swizzles, and (b) the VkFFT-style strided layout with
//! swizzles disabled, and reports bank-conflict replay cycles, modeled
//! shared-memory time, and end-to-end impact. This quantifies the design
//! choice DESIGN.md calls out (Figs. 7/8 applied end to end).

use tfno_bench::{measure_1d_opts, problem_1d, report};
use tfno_gpu_sim::DeviceConfig;
use turbofno::{ForwardLayout, TurboOptions, Variant};

fn main() {
    report::header(
        "Ablation: layouts",
        "Fused kernel with vs without the Figs. 7/8 shared-memory swizzles",
    );
    let cfg = DeviceConfig::a100();

    println!(
        "\n{:>5} {:>7} | {:>14} {:>14} {:>9} | {:>14} {:>14} {:>9}",
        "K", "M", "swz cycles", "raw cycles", "extra%", "swz us", "raw us", "slowdown%"
    );
    for (k, m) in [(32usize, 1usize << 16), (64, 1 << 18), (128, 1 << 20)] {
        let p = problem_1d(k, m, 128, 32);
        let good = measure_1d_opts(&cfg, &p, Variant::FullyFused, &TurboOptions::default());
        let bad_opts = TurboOptions {
            forward_layout: ForwardLayout::VkFftStrided,
            epilogue_swizzle: false,
            ..Default::default()
        };
        let bad = measure_1d_opts(&cfg, &p, Variant::FullyFused, &bad_opts);
        let gs = good.total_stats();
        let bs = bad.total_stats();
        let extra =
            100.0 * (bs.shared_actual_cycles as f64 / gs.shared_actual_cycles as f64 - 1.0);
        let slowdown = 100.0 * (bad.total_us() / good.total_us() - 1.0);
        println!(
            "{k:>5} {m:>7} | {:>14} {:>14} {extra:>8.1}% | {:>13.1} {:>13.1} {slowdown:>8.2}%",
            gs.shared_actual_cycles,
            bs.shared_actual_cycles,
            good.total_us(),
            bad.total_us(),
        );
        assert!(bs.shared_actual_cycles > gs.shared_actual_cycles);
    }
    report::paper_vs_measured(
        "swizzled layouts remove bank replays",
        "25% -> 100% utilization on the forwarding paths",
        "replay cycles strictly lower with swizzles at every size",
        "MATCH",
    );
}
