//! Criterion microbenchmarks of the simulator itself: functional-execution
//! throughput of the core kernels and the host-side reference transforms.
//!
//! These measure *wall-clock of the simulation*, not modeled GPU time —
//! they exist to keep the simulator fast enough for the figure sweeps and
//! to catch accidental complexity regressions in the hot engines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tfno_cgemm::{BatchedCgemmKernel, BatchedOperand, GemmShape, MatView, TileConfig};
use tfno_fft::{host, BatchedFftKernel, FftBlockConfig, FftDirection, FftKernelConfig, FftPlan, RowPencils};
use tfno_gpu_sim::{ExecMode, GpuDevice};
use tfno_num::{reference, C32};
use turbofno::{FnoProblem1d, LayerSpec, Session, Variant};

fn signals(n: usize) -> Vec<C32> {
    (0..n)
        .map(|i| C32::new((i as f32 * 0.17).sin(), (i as f32 * 0.39).cos()))
        .collect()
}

fn bench_host_fft(c: &mut Criterion) {
    let x = signals(1024);
    c.bench_function("host_stockham_1024", |b| {
        b.iter(|| host::stockham(black_box(&x), FftDirection::Forward))
    });
    let y = signals(128);
    c.bench_function("reference_dft_128", |b| {
        b.iter(|| reference::dft_full(black_box(&y)))
    });
}

fn bench_sim_fft_kernel(c: &mut Criterion) {
    let (n, pencils) = (128usize, 64usize);
    let mut dev = GpuDevice::a100();
    let input = dev.alloc("in", pencils * n);
    let output = dev.alloc("out", pencils * 32);
    dev.upload(input, &signals(pencils * n));
    let cfg = FftKernelConfig::new(FftBlockConfig::for_len(n));
    let plan = FftPlan::new(n, FftDirection::Forward, n, 32);
    let addr = RowPencils {
        count: pencils,
        in_row_len: n,
        out_row_len: 32,
    };
    let k = BatchedFftKernel::new("bench.fft", cfg, plan, addr, input, output);
    c.bench_function("sim_fft_64x128pt_functional", |b| {
        b.iter(|| dev.launch(black_box(&k), ExecMode::Functional))
    });
    c.bench_function("sim_fft_64x128pt_analytical", |b| {
        b.iter(|| dev.launch(black_box(&k), ExecMode::Analytical))
    });
}

fn bench_sim_cgemm_kernel(c: &mut Criterion) {
    let (m, n, kk) = (64usize, 64usize, 32usize);
    let mut dev = GpuDevice::a100();
    let a = dev.alloc("A", m * kk);
    let b_buf = dev.alloc("B", kk * n);
    let c_buf = dev.alloc("C", m * n);
    dev.upload(a, &signals(m * kk));
    dev.upload(b_buf, &signals(kk * n));
    let kernel = BatchedCgemmKernel::new(
        "bench.cgemm",
        TileConfig::table1(),
        GemmShape {
            batch: 1,
            m,
            n,
            k: kk,
        },
        BatchedOperand::shared(a, MatView::row_major(0, kk)),
        BatchedOperand::shared(b_buf, MatView::row_major(0, n)),
        BatchedOperand::shared(c_buf, MatView::row_major(0, n)),
        C32::ONE,
        C32::ZERO,
    );
    c.bench_function("sim_cgemm_64x64x32_functional", |b| {
        b.iter(|| dev.launch(black_box(&kernel), ExecMode::Functional))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let p = FnoProblem1d::new(2, 16, 16, 128, 32);
    let spec = LayerSpec::from_problem_1d(&p).variant(Variant::FullyFused);
    c.bench_function("pipeline_1d_fully_fused_functional", |b| {
        b.iter(|| {
            let mut sess = Session::a100();
            let x = sess.alloc("x", p.input_len());
            let w = sess.alloc("w", p.weight_len());
            let y = sess.alloc("y", p.output_len());
            sess.run(black_box(&spec), x, w, y)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_host_fft, bench_sim_fft_kernel, bench_sim_cgemm_kernel, bench_pipeline
}
criterion_main!(benches);
