//! Fig. 12 — 1D fused CGEMM-iFFT (variant C) vs A, B and PyTorch.
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_1d(
        "Fig 12",
        "1D fused CGEMM-iFFT (variant C) vs A, B and PyTorch",
        &[Variant::FftOpt, Variant::FusedFftGemm, Variant::FusedGemmIfft],
        &tfno_bench::BS_AXIS_1D_M,
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 12 shape",
        ">= 50% speedup over PyTorch across sizes",
        "see series above",
        "SHAPE",
    );
}
