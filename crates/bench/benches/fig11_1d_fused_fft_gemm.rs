//! Fig. 11 — 1D fused FFT-CGEMM (variant B) vs A and PyTorch.
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_1d(
        "Fig 11",
        "1D fused FFT-CGEMM (variant B) vs A and PyTorch",
        &[Variant::FftOpt, Variant::FusedFftGemm],
        &tfno_bench::BS_AXIS_1D_M,
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 11 shape",
        "B ~ A + 3-5%; degrades for K >= 128",
        "see series above (B falls at K=136)",
        "SHAPE",
    );
}
