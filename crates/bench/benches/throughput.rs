//! End-to-end model throughput: functional-mode FNO forwards per second.
//!
//! Measures the whole forward pass — lifting, every Fourier layer through
//! the simulated device (`Variant::TurboBest`), pointwise bypasses, GELU,
//! projection — under two engines:
//!
//! * **`legacy`** — the pre-PR stack: static-chunk executor with
//!   per-block context allocation and per-element write application
//!   (`GpuDevice::legacy_executor`), analytical launch memo off, a fresh
//!   `pick_best` plan for every layer of every forward, and the scalar
//!   `pointwise_naive` host path;
//! * **`turbo`** — the throughput engine behind the `Session` API: one
//!   long-lived `turbofno::Session` (work-stealing executor, journaled
//!   writes, memoized analytical launches, warm per-session `Planner`
//!   cache, pooled operand/scratch buffers) serving every forward, plus
//!   the blocked parallel pointwise kernel.
//!
//! Both engines are verified to produce the same numbers before timing.
//! Results land in `BENCH_throughput.json` (override the path with
//! `TFNO_BENCH_OUT`) so every future perf PR has a pinned trajectory.
//! `--smoke` shrinks shapes and the measuring window for CI.
//!
//! The `pipeline-overlap` scenario compares a queue of K independent
//! forwards through the strictly sequential session path
//! (`forward_device_sync` per input) against the async-dispatch schedule
//! (`forward_device_batch`: per layer, one stacked spectral launch
//! sequence in flight while the host runs all K pointwise bypasses).
//!
//! The `replay-warm` scenario pins the whole-forward launch replay: a
//! steady-state forward on a long-lived session (every layer's launch
//! sequence served by replaying its recorded artifact) against the same
//! forward on a fresh session per call (cold planner cache, cold pool,
//! nothing recorded).
//!
//! The `fault-overhead` scenario pins the cost of the fault-injection
//! hooks (every functional launch and real allocation consults the
//! device's `FaultPlan`): an armed zero-probability plan must stay
//! within ~1% of the unarmed production path.
//!
//! The `verify-overhead` scenario pins the cost of the static launch-plan
//! verifier (see `turbofno::verify`) the same way: verification forced on
//! vs forced off, both on the steady-state forward. Warm forwards replay
//! tapes that were proven at freeze time, so the verified steady state
//! must hold throughput parity with verification off.
//!
//! `--check-floors` turns the emitted speedups into a regression gate:
//! the process exits nonzero when any pinned floor is broken, so CI's
//! smoke run fails loudly instead of uploading a quietly regressed JSON.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tfno_gpu_sim::{set_launch_memo_enabled, FaultPlan, GpuDevice};
use tfno_model::{gelu, pointwise_naive, Fno1d, Fno2d, FnoNd};
use tfno_num::error::rel_l2_error;
use tfno_num::CTensor;
use turbofno::{
    set_verify_override, LayerSpec, NativeBackend, Planner, Request, Session, TurboOptions,
    Variant,
};

struct Case {
    dim: &'static str,
    shape: String,
    engine: &'static str,
    forwards_per_sec: f64,
    iters: u64,
    elapsed_s: f64,
}

/// Warm up once, then run until the window closes; returns (iters, secs).
fn measure(min_secs: f64, mut f: impl FnMut()) -> (u64, f64) {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs && iters >= 3 {
            return (iters, elapsed);
        }
    }
}

/// The pre-PR elementwise stage: a serial map (the shipped `add_gelu` is
/// thread-fanned on multi-core hosts).
fn add_gelu_naive(a: &CTensor, b: &CTensor) -> CTensor {
    assert_eq!(a.shape(), b.shape());
    let data = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| {
            let v = *x + *y;
            tfno_num::C32::new(gelu(v.re), gelu(v.im))
        })
        .collect();
    CTensor::from_vec(data, a.shape())
}

/// A throwaway session over the pre-PR executor: fresh per forward, so no
/// planner or pool state survives between forwards. (Within one forward
/// the session API still pools operand buffers across layers — a
/// host-allocation effect the pre-PR engine did not have, which makes
/// this baseline marginally *faster* than the original; the reported
/// speedups are therefore conservative.)
fn legacy_session() -> Session {
    let mut dev = GpuDevice::a100();
    dev.legacy_executor = true;
    Session::new(dev)
}

/// The pre-PR 1D forward: scalar pointwise everywhere and a cold
/// `pick_best` plan per layer (what `TurboBest` dispatch used to do).
fn forward_legacy_1d(model: &Fno1d, opts: &TurboOptions, x: &CTensor) -> CTensor {
    let mut sess = legacy_session();
    let mut h = pointwise_naive(x, &model.lift);
    for layer in &model.layers {
        let p = layer.spectral.problem(h.shape()[0]);
        let best = Planner::pick_best_1d(&sess.device().config, &p, opts);
        let (s, _) = layer.spectral.forward_device(&mut sess, best, opts, &h);
        let pb = pointwise_naive(&h, &layer.bypass);
        h = add_gelu_naive(&s, &pb);
    }
    pointwise_naive(&h, &model.proj)
}

fn forward_legacy_2d(model: &Fno2d, opts: &TurboOptions, x: &CTensor) -> CTensor {
    let mut sess = legacy_session();
    let mut h = pointwise_naive(x, &model.lift);
    for layer in &model.layers {
        let p = layer.spectral.problem(h.shape()[0]);
        let best = Planner::pick_best_2d(&sess.device().config, &p, opts);
        let (s, _) = layer.spectral.forward_device(&mut sess, best, opts, &h);
        let pb = pointwise_naive(&h, &layer.bypass);
        h = add_gelu_naive(&s, &pb);
    }
    pointwise_naive(&h, &model.proj)
}

/// The rank-generic legacy forward (used for the 3D scenario the rank-3
/// path opened): same pre-PR costs — fresh session, static-chunk
/// executor, cold `pick_best` plan per layer, scalar pointwise.
fn forward_legacy_nd(model: &FnoNd, opts: &TurboOptions, x: &CTensor) -> CTensor {
    let mut sess = legacy_session();
    let mut h = pointwise_naive(x, &model.lift);
    for layer in &model.layers {
        let shape = layer.spectral.shape(h.shape()[0]);
        let best = Planner::pick_best_shape(&sess.device().config, &shape, opts);
        let (s, _) = layer.spectral.forward_device(&mut sess, best, opts, &h);
        let pb = pointwise_naive(&h, &layer.bypass);
        h = add_gelu_naive(&s, &pb);
    }
    pointwise_naive(&h, &model.proj)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Regression floors for `--check-floors` (CI smoke). Deliberately far
/// below the build-host numbers (7.4x / 4.5x / 4.1x for 1D/2D/3D at the
/// last pinning): shared CI runners are noisy, and the gate exists to
/// catch a *collapsed* optimization — an engine regression to pre-PR
/// behavior — not a few percent of jitter.
const FLOOR_SPEEDUP_1D: f64 = 2.0;
const FLOOR_SPEEDUP_2D: f64 = 1.5;
const FLOOR_SPEEDUP_3D: f64 = 1.3;
const FLOOR_SPEEDUP_SERVE_MIXED: f64 = 1.02;
const FLOOR_SPEEDUP_PIPELINE_OVERLAP: f64 = 1.02;
const FLOOR_SPEEDUP_REPLAY_WARM: f64 = 1.3;
/// `fault_overhead` is a *parity* floor, not a speedup floor: the armed
/// zero-probability fault plan must not cost more than ~1% of throughput
/// against the unarmed (production) hook path.
const FLOOR_FAULT_OVERHEAD: f64 = 0.99;
/// `verify_overhead` is the same kind of parity floor: the steady-state
/// forward with plan verification forced on must not cost more than ~1%
/// against verification forced off (warm forwards replay freeze-time
/// proven tapes, so the verifier is off the hot path by construction).
const FLOOR_VERIFY_OVERHEAD: f64 = 0.99;
/// The native host backend skips the simulator's event accounting
/// entirely, so the steady-state forward must never be slower on it than
/// on the sim (the metric is the worse of the 1D and 2D ratios).
const FLOOR_SPEEDUP_BACKEND_NATIVE: f64 = 1.0;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check_floors = std::env::args().any(|a| a == "--check-floors");
    let min_secs = if smoke { 0.3 } else { 2.0 };
    let opts = TurboOptions::default();
    let mut rng = StdRng::seed_from_u64(42);
    let mut cases: Vec<Case> = Vec::new();

    println!("== tfno-bench throughput ({}) ==", if smoke { "smoke" } else { "full" });

    // ------------------------------------------------------------ 1D ----
    let (layers1, n1, nf1, width1, batch1) =
        if smoke { (2, 128, 32, 8, 1) } else { (4, 256, 64, 16, 2) };
    let model1 = Fno1d::random(&mut rng, 1, width1, 1, layers1, n1, nf1);
    let x1 = CTensor::random(&mut rng, &[batch1, 1, n1]);
    let shape1 = format!(
        "batch={batch1} width={width1} layers={layers1} n={n1} nf={nf1}"
    );

    // ------------------------------------------------------------ 2D ----
    let (layers2, nx2, ny2, nfx2, nfy2, width2, batch2) =
        if smoke { (2, 16, 32, 4, 32, 8, 1) } else { (4, 32, 64, 8, 32, 8, 1) };
    let model2 = Fno2d::random(&mut rng, 1, width2, 1, layers2, nx2, ny2, nfx2, nfy2);
    let x2 = CTensor::random(&mut rng, &[batch2, 1, nx2, ny2]);
    let shape2 = format!(
        "batch={batch2} width={width2} layers={layers2} nx={nx2} ny={ny2} nfx={nfx2} nfy={nfy2}"
    );

    // ------------------------------------------------------------ 3D ----
    // The rank-3 workload the rank-generic engine opened. The innermost
    // mode count is a multiple of the fused kernels' warp M-tile so
    // `TurboBest` may pick any fusion level.
    let (layers3, nx3, ny3, nz3, nfx3, nfy3, nfz3, width3, batch3) =
        if smoke { (2, 8, 8, 32, 2, 4, 32, 4, 1) } else { (2, 8, 16, 32, 4, 8, 32, 8, 1) };
    let model3 = FnoNd::random(
        &mut rng,
        1,
        width3,
        1,
        layers3,
        &[nx3, ny3, nz3],
        &[nfx3, nfy3, nfz3],
    );
    let x3 = CTensor::random(&mut rng, &[batch3, 1, nx3, ny3, nz3]);
    let shape3 = format!(
        "batch={batch3} width={width3} layers={layers3} nx={nx3} ny={ny3} nz={nz3} \
         nfx={nfx3} nfy={nfy3} nfz={nfz3}"
    );

    // Cross-check the two engines compute the same model before timing.
    set_launch_memo_enabled(false);
    let y1_legacy = forward_legacy_1d(&model1, &opts, &x1);
    let y2_legacy = forward_legacy_2d(&model2, &opts, &x2);
    let y3_legacy = forward_legacy_nd(&model3, &opts, &x3);
    set_launch_memo_enabled(true);
    // One session serves every turbo forward of the bench: planner cache
    // and buffer pool warm up once and stay warm across the whole run.
    let mut turbo_sess = Session::a100();
    let (y1_turbo, _) = model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    let (y2_turbo, _) = model2.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x2);
    let (y3_turbo, _) = model3.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x3);
    let err1 = rel_l2_error(y1_turbo.data(), y1_legacy.data());
    let err2 = rel_l2_error(y2_turbo.data(), y2_legacy.data());
    let err3 = rel_l2_error(y3_turbo.data(), y3_legacy.data());
    assert!(err1 < 1e-6, "1D engines diverge: rel l2 {err1}");
    assert!(err2 < 1e-6, "2D engines diverge: rel l2 {err2}");
    assert!(err3 < 1e-6, "3D engines diverge: rel l2 {err3}");
    println!("engine cross-check: 1D rel_l2 {err1:.2e}, 2D rel_l2 {err2:.2e}, 3D rel_l2 {err3:.2e}");

    // ------------------------------------------------- measurements ----
    let mut run_case = |dim: &'static str,
                        shape: &str,
                        engine: &'static str,
                        f: &mut dyn FnMut()| {
        let (iters, elapsed) = measure(min_secs, f);
        let fps = iters as f64 / elapsed;
        println!("{dim:>3} {engine:<7} {fps:>9.2} forwards/s  ({iters} iters in {elapsed:.2}s)");
        cases.push(Case {
            dim,
            shape: shape.to_string(),
            engine,
            forwards_per_sec: fps,
            iters,
            elapsed_s: elapsed,
        });
    };

    set_launch_memo_enabled(false);
    run_case("1d", &shape1, "legacy", &mut || {
        forward_legacy_1d(&model1, &opts, &x1);
    });
    run_case("2d", &shape2, "legacy", &mut || {
        forward_legacy_2d(&model2, &opts, &x2);
    });
    run_case("3d", &shape3, "legacy", &mut || {
        forward_legacy_nd(&model3, &opts, &x3);
    });
    set_launch_memo_enabled(true);

    run_case("1d", &shape1, "turbo", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    run_case("2d", &shape2, "turbo", &mut || {
        model2.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x2);
    });
    run_case("3d", &shape3, "turbo", &mut || {
        model3.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x3);
    });

    // -------------------------------------------- mixed-weight serving ----
    // A multi-tenant queue: K same-shape layer requests, each from a
    // different model (K distinct weight buffers). "per-weight" is the
    // pre-PR coalescing rule — requests only stacked when they shared a
    // weight buffer, so this queue degenerates to K sequential launch
    // sequences. "mixed-stacked" packs the weights into one strided
    // buffer and serves the whole queue as a single stacked launch
    // sequence (device-side gather/scatter, one weight slice per
    // stacked sub-batch).
    let (serve_k, serve_n, serve_nf, serve_width) =
        if smoke { (4usize, 128, 32, 8) } else { (8usize, 256, 64, 16) };
    let serve_spec = LayerSpec::d1(1, serve_width, serve_width, serve_n)
        .modes(serve_nf)
        .variant(Variant::TurboBest);
    let serve_shape = format!(
        "k={serve_k} batch=1 width={serve_width} n={serve_n} nf={serve_nf} distinct_weights={serve_k}"
    );
    let mut serve_sess = Session::a100();
    let serve_reqs: Vec<Request> = (0..serve_k)
        .map(|i| {
            let x = serve_sess.alloc("sx", serve_spec.input_len());
            let w = serve_sess.alloc("sw", serve_spec.weight_len());
            let y = serve_sess.alloc("sy", serve_spec.output_len());
            let xd: Vec<tfno_num::C32> = (0..serve_spec.input_len())
                .map(|j| {
                    let t = (i * serve_spec.input_len() + j) as f32;
                    tfno_num::C32::new((t * 0.13).sin(), (t * 0.29).cos())
                })
                .collect();
            let wd: Vec<tfno_num::C32> = (0..serve_spec.weight_len())
                .map(|j| {
                    let t = (i * serve_spec.weight_len() + j) as f32;
                    tfno_num::C32::new((t * 0.41).cos(), (t * 0.07).sin())
                })
                .collect();
            serve_sess.upload(x, &xd);
            serve_sess.upload(w, &wd);
            Request { spec: serve_spec, x, w, y }
        })
        .collect();
    // Cross-check: the stacked path must reproduce the sequential results
    // bitwise before any timing.
    let seq_out: Vec<Vec<tfno_num::C32>> = serve_reqs
        .iter()
        .map(|r| {
            serve_sess.run(&serve_spec, r.x, r.w, r.y);
            serve_sess.download(r.y)
        })
        .collect();
    serve_sess.run_many(&serve_reqs);
    for (i, r) in serve_reqs.iter().enumerate() {
        assert_eq!(
            serve_sess.download(r.y),
            seq_out[i],
            "serve-mixed: stacked request {i} diverged from sequential"
        );
    }
    // The per-weight baseline models the pre-PR engine's serving rule, so
    // it runs with whole-forward replay off (the pre-PR engine had none);
    // the stacked engine is the full modern path, replay included.
    serve_sess.set_replay_enabled(false);
    run_case("serve-mixed", &serve_shape, "per-weight", &mut || {
        for r in &serve_reqs {
            serve_sess.run(&serve_spec, r.x, r.w, r.y);
        }
    });
    serve_sess.set_replay_enabled(true);
    run_case("serve-mixed", &serve_shape, "mixed-stacked", &mut || {
        serve_sess.run_many(&serve_reqs);
    });

    // ------------------------------------------- pipeline overlap ----
    // A queue of K independent batch-1 model forwards — the online-serving
    // shape, where each request is one sample. "sync" runs them one by
    // one on the strictly sequential per-layer schedule (spectral conv to
    // completion, then the pointwise bypass). "async" runs the
    // async-dispatch schedule: per layer, all K spectral convs coalesce
    // into ONE stacked launch sequence issued on the dispatch thread
    // while the host computes the K pointwise bypasses. Outputs are
    // bitwise-identical; the async gain comes from launch coalescing plus
    // (on multi-core hosts) genuine device/host overlap. Batch-1 requests
    // are where stacking pays: the gather/scatter staging is small
    // relative to the per-sequence launch costs it removes (fat-batch
    // offline forwards already amortize their launches and should use the
    // plain overlapped `forward_device` instead).
    let overlap_k = if smoke { 4usize } else { 8 };
    let overlap_shape = format!(
        "k={overlap_k} batch=1 width={width1} layers={layers1} n={n1} nf={nf1}"
    );
    let mut overlap_rng = StdRng::seed_from_u64(7);
    let overlap_xs: Vec<CTensor> = (0..overlap_k)
        .map(|_| CTensor::random(&mut overlap_rng, &[1, 1, n1]))
        .collect();
    let mut overlap_sess = Session::a100();
    // Cross-check bitwise equality before any timing.
    let overlap_want: Vec<CTensor> = overlap_xs
        .iter()
        .map(|x| {
            model1
                .forward_device_sync(&mut overlap_sess, Variant::TurboBest, &opts, x)
                .0
        })
        .collect();
    let overlap_got =
        model1.forward_device_batch(&mut overlap_sess, Variant::TurboBest, &opts, &overlap_xs);
    for (i, ((got, _), want)) in overlap_got.iter().zip(&overlap_want).enumerate() {
        assert_eq!(
            got.data(),
            want.data(),
            "pipeline-overlap: async forward {i} diverged from the synchronous path"
        );
    }
    // The sync baseline is the pre-dispatch schedule, so it runs with
    // whole-forward replay off (pre-PR sessions had none); the async
    // engine is the full modern path — stacked dispatch plus replay.
    overlap_sess.set_replay_enabled(false);
    run_case("pipeline-overlap", &overlap_shape, "sync", &mut || {
        for x in &overlap_xs {
            model1.forward_device_sync(&mut overlap_sess, Variant::TurboBest, &opts, x);
        }
    });
    overlap_sess.set_replay_enabled(true);
    run_case("pipeline-overlap", &overlap_shape, "async", &mut || {
        model1.forward_device_batch(&mut overlap_sess, Variant::TurboBest, &opts, &overlap_xs);
    });

    // ------------------------------------------------ warm-path replay ----
    // Steady-state serving vs cold start on the same 1D model. The warm
    // engine is the bench's long-lived session: its pool hands back the
    // same buffer ids every forward, so each layer's whole launch
    // sequence is served by replaying its recorded artifact (no
    // planning, no pool traffic, no kernel assembly, per-kernel trace
    // caches hot). The cold engine builds a fresh session per forward —
    // cold planner cache, cold pool, nothing recorded.
    let replay_hits_before = turbo_sess.replay_stats().hits;
    let (y_warm, _) = model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    assert_eq!(
        y_warm.data(),
        y1_turbo.data(),
        "replay-warm: steady-state forward diverged from the cross-checked output"
    );
    assert!(
        turbo_sess.replay_stats().hits > replay_hits_before,
        "replay-warm: steady-state forward must be served by replay"
    );
    run_case("replay-warm", &shape1, "cold-session", &mut || {
        let mut sess = Session::a100();
        model1.forward_device(&mut sess, Variant::TurboBest, &opts, &x1);
    });
    run_case("replay-warm", &shape1, "warm-replay", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });

    // ---------------------------------------------- fault-hook overhead ----
    // The fault-injection layer is compiled into every functional launch
    // and every real allocation (see `tfno_gpu_sim::fault`). This
    // scenario pins its hot-path cost on the steady-state 1D forward:
    // "unarmed" is the production configuration (no FaultPlan installed —
    // each event checks an Option and moves on), "armed-zero" installs a
    // seeded plan with every probability at zero, so every event runs the
    // full splitmix64 decision and still injects nothing. The armed cost
    // is a strict superset of the unarmed hook cost, so the ratio
    // armed/unarmed staying at ~1 bounds the production overhead too.
    let fault_probe = FaultPlan::seeded(0xBE11C0DE);
    turbo_sess.set_fault_plan(Some(fault_probe.clone()));
    let (y_armed, _) = model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    assert_eq!(
        y_armed.data(),
        y1_turbo.data(),
        "fault-overhead: a zero-probability plan must not perturb the forward"
    );
    assert_eq!(
        turbo_sess.fault_stats().injected(),
        0,
        "fault-overhead: a zero-probability plan must never fire"
    );
    turbo_sess.set_fault_plan(None);
    run_case("fault-overhead", &shape1, "unarmed", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    turbo_sess.set_fault_plan(Some(fault_probe));
    run_case("fault-overhead", &shape1, "armed-zero", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    turbo_sess.set_fault_plan(None);

    // ---------------------------------------------- verifier overhead ----
    // The launch-plan verifier proves every cold launch hazard-free before
    // it issues; warm forwards replay tapes that were already proven when
    // they froze, so the steady state pays only the enablement check. Both
    // arms run the warm 1D forward: "off" forces verification off, "on"
    // forces it on (override > TFNO_VERIFY > build profile).
    set_verify_override(Some(true));
    let (y_verified, _) = model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    assert_eq!(
        y_verified.data(),
        y1_turbo.data(),
        "verify-overhead: verification must not perturb the forward"
    );
    set_verify_override(Some(false));
    run_case("verify-overhead", &shape1, "off", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    set_verify_override(Some(true));
    run_case("verify-overhead", &shape1, "on", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    set_verify_override(None);

    // ---------------------------------------------- backend comparison ----
    // The same steady-state TurboBest forwards on the two execution
    // backends behind the `Backend` trait. "sim" is the default simulated
    // device (full event accounting, modeled memory system); "native" is
    // the eager host executor — each kernel's functional body runs
    // immediately, no deferred window, no event modeling. Outputs are held
    // to the functional contract (float tolerance, not bitwise): both
    // backends run the same kernel bodies, but the native path skips the
    // simulator's launch machinery. The floor pins the native backend
    // never being slower than the simulator it bypasses.
    let mut native_sess = Session::with_backend(NativeBackend::a100());
    let (y1_native, _) = model1.forward_device(&mut native_sess, Variant::TurboBest, &opts, &x1);
    let (y2_native, _) = model2.forward_device(&mut native_sess, Variant::TurboBest, &opts, &x2);
    let err1n = rel_l2_error(y1_native.data(), y1_turbo.data());
    let err2n = rel_l2_error(y2_native.data(), y2_turbo.data());
    assert!(err1n < 1e-5, "backend-native: 1D backends diverge: rel l2 {err1n}");
    assert!(err2n < 1e-5, "backend-native: 2D backends diverge: rel l2 {err2n}");
    run_case("backend-1d", &shape1, "sim", &mut || {
        model1.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x1);
    });
    run_case("backend-1d", &shape1, "native", &mut || {
        model1.forward_device(&mut native_sess, Variant::TurboBest, &opts, &x1);
    });
    run_case("backend-2d", &shape2, "sim", &mut || {
        model2.forward_device(&mut turbo_sess, Variant::TurboBest, &opts, &x2);
    });
    run_case("backend-2d", &shape2, "native", &mut || {
        model2.forward_device(&mut native_sess, Variant::TurboBest, &opts, &x2);
    });

    let (pool, plans) = (turbo_sess.pool_stats(), turbo_sess.planner_stats());
    println!(
        "session state after the run: pool {} hits / {} misses, planner {} hits / {} misses",
        pool.hits, pool.misses, plans.hits, plans.misses
    );
    let (replay, dispatch) = (turbo_sess.replay_stats(), turbo_sess.dispatch_stats());
    println!(
        "  replay: {} hits / {} misses / {} invalidations ({} artifacts cached)",
        replay.hits, replay.misses, replay.invalidations, replay.entries
    );
    println!(
        "  dispatch: {} thread(s) spawned, {} jobs, max in-flight depth {}",
        dispatch.threads_spawned, dispatch.jobs_dispatched, dispatch.max_in_flight
    );

    let fps_of = |dim: &str, engine: &str| {
        cases
            .iter()
            .find(|c| c.dim == dim && c.engine == engine)
            .map(|c| c.forwards_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup_1d = fps_of("1d", "turbo") / fps_of("1d", "legacy");
    let speedup_2d = fps_of("2d", "turbo") / fps_of("2d", "legacy");
    let speedup_3d = fps_of("3d", "turbo") / fps_of("3d", "legacy");
    let speedup_serve =
        fps_of("serve-mixed", "mixed-stacked") / fps_of("serve-mixed", "per-weight");
    let speedup_overlap =
        fps_of("pipeline-overlap", "async") / fps_of("pipeline-overlap", "sync");
    let speedup_replay = fps_of("replay-warm", "warm-replay") / fps_of("replay-warm", "cold-session");
    let fault_overhead = fps_of("fault-overhead", "armed-zero") / fps_of("fault-overhead", "unarmed");
    let verify_overhead = fps_of("verify-overhead", "on") / fps_of("verify-overhead", "off");
    let speedup_backend_1d = fps_of("backend-1d", "native") / fps_of("backend-1d", "sim");
    let speedup_backend_2d = fps_of("backend-2d", "native") / fps_of("backend-2d", "sim");
    let speedup_backend_native = speedup_backend_1d.min(speedup_backend_2d);
    println!(
        "speedup vs pre-PR executor: 1D {speedup_1d:.2}x, 2D {speedup_2d:.2}x, 3D {speedup_3d:.2}x"
    );
    println!("mixed-weight serving: stacked vs per-weight queues {speedup_serve:.2}x");
    println!("pipeline overlap: async dispatch vs synchronous session path {speedup_overlap:.2}x");
    println!("warm-path replay: steady-state session vs cold session {speedup_replay:.2}x");
    println!("fault hooks: armed-zero plan vs unarmed session {fault_overhead:.3}x");
    println!("plan verifier: verification on vs off, steady state {verify_overhead:.3}x");
    println!(
        "native backend vs sim: 1D {speedup_backend_1d:.2}x, 2D {speedup_backend_2d:.2}x \
         (floor metric {speedup_backend_native:.2}x)"
    );

    // --------------------------------------------------------- JSON ----
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"throughput\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!(
        "  \"host_cores\": {},\n  \"workers\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        tfno_gpu_sim::configured_workers()
    ));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dim\": \"{}\", \"engine\": \"{}\", \"shape\": \"{}\", \"forwards_per_sec\": {:.4}, \"iters\": {}, \"elapsed_s\": {:.4}}}{}\n",
            c.dim,
            c.engine,
            json_escape(&c.shape),
            c.forwards_per_sec,
            c.iters,
            c.elapsed_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_1d\": {speedup_1d:.4},\n  \"speedup_2d\": {speedup_2d:.4},\n  \"speedup_3d\": {speedup_3d:.4},\n  \"speedup_serve_mixed\": {speedup_serve:.4},\n  \"speedup_pipeline_overlap\": {speedup_overlap:.4},\n  \"speedup_replay_warm\": {speedup_replay:.4},\n  \"fault_overhead\": {fault_overhead:.4},\n  \"verify_overhead\": {verify_overhead:.4},\n  \"speedup_backend_native_1d\": {speedup_backend_1d:.4},\n  \"speedup_backend_native_2d\": {speedup_backend_2d:.4},\n  \"speedup_backend_native\": {speedup_backend_native:.4}\n}}\n"
    ));

    // Default to the workspace root (cargo runs benches with the package
    // dir as CWD), overridable for CI layouts.
    let out_path = std::env::var("TFNO_BENCH_OUT").unwrap_or_else(|_| {
        format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");

    if check_floors {
        let floors = [
            ("speedup_1d", speedup_1d, FLOOR_SPEEDUP_1D),
            ("speedup_2d", speedup_2d, FLOOR_SPEEDUP_2D),
            ("speedup_3d", speedup_3d, FLOOR_SPEEDUP_3D),
            ("speedup_serve_mixed", speedup_serve, FLOOR_SPEEDUP_SERVE_MIXED),
            ("speedup_pipeline_overlap", speedup_overlap, FLOOR_SPEEDUP_PIPELINE_OVERLAP),
            ("speedup_replay_warm", speedup_replay, FLOOR_SPEEDUP_REPLAY_WARM),
            ("fault_overhead", fault_overhead, FLOOR_FAULT_OVERHEAD),
            ("verify_overhead", verify_overhead, FLOOR_VERIFY_OVERHEAD),
            (
                "speedup_backend_native",
                speedup_backend_native,
                FLOOR_SPEEDUP_BACKEND_NATIVE,
            ),
        ];
        let mut broken = false;
        for (name, got, floor) in floors {
            // NaN (a missing case) must break the floor too.
            if got < floor || got.is_nan() {
                eprintln!("FLOOR BROKEN: {name} = {got:.4} < pinned floor {floor}");
                broken = true;
            } else {
                println!("floor ok: {name} = {got:.4} >= {floor}");
            }
        }
        if broken {
            eprintln!("throughput regression floors broken; failing the run");
            std::process::exit(1);
        }
    }
}

