//! Fig. 18 — 2D fully fused FFT-CGEMM-iFFT (variant D).
use tfno_bench::figures;
use turbofno::Variant;

fn main() {
    figures::line_2d(
        "Fig 18",
        "2D fully fused FFT-CGEMM-iFFT (variant D) vs all",
        &[
            Variant::FftOpt,
            Variant::FusedFftGemm,
            Variant::FusedGemmIfft,
            Variant::FullyFused,
        ],
        &[48, 64, 80, 96],
    );
    tfno_bench::report::paper_vs_measured(
        "Fig 18 shape",
        "50-105% over PyTorch; +2-3% over partial fusion",
        "see series above",
        "SHAPE",
    );
}
