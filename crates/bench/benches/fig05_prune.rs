//! Fig. 5 — FFT butterfly pruning.
//!
//! Reproduces the 4-point example exactly (8 ops full, 3 ops at 25%
//! truncation = 37.5%, 6 ops at 50% = 75%) and extends the analysis to the
//! paper's evaluation sizes (128/256-pt), where we report the *structural*
//! pruning limits of the radix-2 network — a documented deviation from the
//! paper's extrapolated 25%-67.5% claim (see EXPERIMENTS.md).

use tfno_bench::report;
use tfno_fft::{FftDirection, FftPlan};

fn main() {
    report::header("Fig 5", "FFT pruning op counts (one op per produced value)");

    println!("\n  n | keep |  ops | full | surviving%");
    println!("----+------+------+------+-----------");
    for (n, keeps) in [
        (4usize, vec![1usize, 2, 4]),
        (128, vec![32, 64, 128]),
        (256, vec![64, 128, 256]),
    ] {
        for keep in keeps {
            let plan = FftPlan::new(n, FftDirection::Forward, n, keep);
            println!(
                "{n:>4} | {keep:>4} | {:>4} | {:>4} | {:>9.1}%",
                plan.paper_ops(),
                plan.full_paper_ops(),
                100.0 * plan.surviving_fraction()
            );
        }
    }

    // Pin the paper's 4-point numbers.
    let p1 = FftPlan::new(4, FftDirection::Forward, 4, 1);
    let p2 = FftPlan::new(4, FftDirection::Forward, 4, 2);
    let pf = FftPlan::full(4, FftDirection::Forward);
    assert_eq!((p1.paper_ops(), p2.paper_ops(), pf.paper_ops()), (3, 6, 8));
    report::paper_vs_measured(
        "Fig 5: 4-pt FFT keep-1 ops",
        "3 of 8 (37.5%)",
        &format!("{} of {}", p1.paper_ops(), pf.paper_ops()),
        "MATCH",
    );
    report::paper_vs_measured(
        "Fig 5: 4-pt FFT keep-2 ops",
        "6 of 8 (75%)",
        &format!("{} of {}", p2.paper_ops(), pf.paper_ops()),
        "MATCH",
    );
    let p128 = FftPlan::new(128, FftDirection::Forward, 128, 32);
    report::paper_vs_measured(
        "Extrapolated pruning saving at 128-pt/25%",
        "62.5% (paper's Fig-5 scaling)",
        &format!("{:.1}% (graph-theoretic limit)", 100.0 * (1.0 - p128.surviving_fraction())),
        "DEVIATION (documented)",
    );

    // Zero-padding side (input pruning for the iFFT).
    println!("\ninput zero-padding (inverse FFT):");
    for (n, nv) in [(128usize, 32usize), (256, 64)] {
        let plan = FftPlan::new(n, FftDirection::Inverse, nv, n);
        let full = FftPlan::full(n, FftDirection::Inverse);
        println!(
            "  n={n:>3} valid={nv:>3}: flops {:>6} vs full {:>6} ({:.1}% saved)",
            plan.flops_per_pencil(),
            full.flops_per_pencil(),
            100.0 * (1.0 - plan.flops_per_pencil() as f64 / full.flops_per_pencil() as f64)
        );
    }
}
