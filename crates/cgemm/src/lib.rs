//! # tfno-cgemm
//!
//! The blocked complex GEMM of the TurboFNO reproduction (paper §3.1,
//! Fig. 3 left, Fig. 9 left, Table 1): a CUDA-core-class CGEMM with
//! double-buffered shared-memory tiles and warp/thread two-level register
//! tiling, implemented against the simulated GPU.
//!
//! The crate deliberately splits the *main loop* ([`engine`]) from the
//! *kernel driver* ([`kernel`]): the fused FFT-CGEMM-iFFT kernels in the
//! `turbofno` crate reuse the exact main loop with a custom `A` provider
//! (the FFT writes straight into the `As` tile) and a custom epilogue (the
//! iFFT consumes `C` from shared memory).

// Lane loops (`for l in 0..WARP_SIZE`) deliberately mirror the CUDA
// warp-synchronous style — the index *is* the lane id — and kernel
// constructors take launch-parameter lists like real CUDA launches do.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

pub mod engine;
pub mod kernel;
pub mod tile;
pub mod tuner;
pub mod view;

pub use engine::{
    store_c_global, AProvider, BOperand, CFragments, CgemmBlockEngine, MainloopTrace,
    MainloopTraceCache,
};
pub use tuner::{candidate_tiles, evaluate_tile, tune, verify_tile, TunedTile};
pub use kernel::{BatchedCgemmKernel, BatchedOperand, GemmShape};
pub use tile::TileConfig;
pub use view::{view_spans, MatView, WeightStacking};
