//! Strided matrix views over device buffers.
//!
//! The FNO pipeline never materializes packed matrices: the GEMM operands
//! live inside `[batch, hidden, spatial...]` tensors. A [`MatView`] maps
//! `(row, col)` to an element index with independent strides, which covers
//! every layout the pipeline needs (packed, channel-major, mode-strided
//! 2D slices).

/// Affine 2D view: element of `(row, col)` is
/// `base + row * row_stride + col * col_stride`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatView {
    pub base: usize,
    pub row_stride: usize,
    pub col_stride: usize,
}

impl MatView {
    /// Packed row-major `rows x cols` matrix at `base`.
    pub fn row_major(base: usize, cols: usize) -> Self {
        MatView {
            base,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// Packed column-major `rows x cols` matrix at `base`.
    pub fn col_major(base: usize, rows: usize) -> Self {
        MatView {
            base,
            row_stride: 1,
            col_stride: rows,
        }
    }

    #[inline]
    pub fn at(&self, row: usize, col: usize) -> usize {
        self.base + row * self.row_stride + col * self.col_stride
    }

    /// The view shifted by a tile origin.
    pub fn tile(&self, row0: usize, col0: usize) -> MatView {
        MatView {
            base: self.at(row0, col0),
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_addressing() {
        let v = MatView::row_major(100, 8);
        assert_eq!(v.at(0, 0), 100);
        assert_eq!(v.at(2, 3), 100 + 16 + 3);
    }

    #[test]
    fn col_major_addressing() {
        let v = MatView::col_major(0, 16);
        assert_eq!(v.at(3, 2), 3 + 32);
    }

    #[test]
    fn tiling_composes() {
        let v = MatView::row_major(0, 64);
        let t = v.tile(32, 16);
        assert_eq!(t.at(0, 0), v.at(32, 16));
        assert_eq!(t.at(1, 2), v.at(33, 18));
    }

    #[test]
    fn channel_major_fno_layout() {
        // A = Xf viewed from a [K, Nf] tensor slice: row = mode f,
        // col = hidden k  ->  addr = k * nf + f.
        let (k, nf) = (4usize, 8usize);
        let v = MatView {
            base: 0,
            row_stride: 1,
            col_stride: nf,
        };
        for kk in 0..k {
            for f in 0..nf {
                assert_eq!(v.at(f, kk), kk * nf + f);
            }
        }
    }
}
