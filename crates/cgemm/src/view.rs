//! Strided matrix views over device buffers.
//!
//! The FNO pipeline never materializes packed matrices: the GEMM operands
//! live inside `[batch, hidden, spatial...]` tensors. A [`MatView`] maps
//! `(row, col)` to an element index with independent strides, which covers
//! every layout the pipeline needs (packed, channel-major, mode-strided
//! 2D slices). [`WeightStacking`] describes how a weight (`B`) operand
//! advances across stacked sub-batches — the cuBLAS-strided-batched
//! mechanism mixed-weight serving stacks ride on.

use tfno_gpu_sim::{AccessSpan, BufferId};

/// Affine 2D view: element of `(row, col)` is
/// `base + row * row_stride + col * col_stride`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatView {
    pub base: usize,
    pub row_stride: usize,
    pub col_stride: usize,
}

impl MatView {
    /// Packed row-major `rows x cols` matrix at `base`.
    pub fn row_major(base: usize, cols: usize) -> Self {
        MatView {
            base,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// Packed column-major `rows x cols` matrix at `base`.
    pub fn col_major(base: usize, rows: usize) -> Self {
        MatView {
            base,
            row_stride: 1,
            col_stride: rows,
        }
    }

    #[inline]
    pub fn at(&self, row: usize, col: usize) -> usize {
        self.base + row * self.row_stride + col * self.col_stride
    }

    /// The view shifted by a tile origin.
    pub fn tile(&self, row0: usize, col0: usize) -> MatView {
        MatView {
            base: self.at(row0, col0),
            row_stride: self.row_stride,
            col_stride: self.col_stride,
        }
    }
}

/// Exact [`AccessSpan`]s covering the `rows x cols` tile of `view` in
/// `buf` — the element set `{ view.at(r, c) | r < rows, c < cols }`.
///
/// A unit-stride axis collapses the tile into one strided span (one run
/// per element of the other axis); a view with two non-unit strides falls
/// back to one span per row. Used by the kernels' declared access sets, so
/// the cover must be exact — see `tfno_gpu_sim::access`.
pub fn view_spans(buf: BufferId, view: &MatView, rows: usize, cols: usize) -> Vec<AccessSpan> {
    if rows == 0 || cols == 0 {
        return Vec::new();
    }
    if view.col_stride == 1 {
        vec![AccessSpan::strided(buf, view.base, cols, view.row_stride, rows)]
    } else if view.row_stride == 1 {
        vec![AccessSpan::strided(buf, view.base, rows, view.col_stride, cols)]
    } else {
        (0..rows)
            .map(|r| {
                AccessSpan::strided(buf, view.base + r * view.row_stride, 1, view.col_stride, cols)
            })
            .collect()
    }
}

/// How a weight (`B`) operand advances across a stacked batch.
///
/// A coalesced serving stack packs `k` requests' weight matrices
/// back-to-back (`[w_0 .. w_{k-1}]`, `stride` elements apart) and runs one
/// launch whose batch axis covers every request's sub-batch. Each weight
/// slice serves `group` consecutive batch entries — the per-request batch
/// size — so batch entry `b` reads slice `b / group`:
///
/// ```text
/// slice_base(b) = (b / group) * stride
/// ```
///
/// [`WeightStacking::SHARED`] (`stride == 0`) is the classic single-weight
/// batched GEMM where every batch entry reads the same matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightStacking {
    /// Elements between consecutive weight slices (0 = one shared slice).
    pub stride: usize,
    /// Consecutive batch entries served by one slice (≥ 1).
    pub group: usize,
}

impl WeightStacking {
    /// One weight matrix shared by the whole batch.
    pub const SHARED: WeightStacking = WeightStacking { stride: 0, group: 1 };

    /// One weight slice every `group` batch entries, `stride` elements apart.
    pub fn strided(stride: usize, group: usize) -> Self {
        assert!(group >= 1, "weight stacking group must be >= 1");
        WeightStacking { stride, group }
    }

    /// Is this the shared-weight layout?
    pub fn is_shared(&self) -> bool {
        self.stride == 0
    }

    /// Element offset of the weight slice serving batch entry `b`.
    #[inline]
    pub fn slice_base(&self, b: usize) -> usize {
        (b / self.group) * self.stride
    }

    /// Number of distinct slices read by a batch of `batch` entries.
    pub fn slices(&self, batch: usize) -> usize {
        if self.stride == 0 {
            1
        } else {
            batch.div_ceil(self.group)
        }
    }
}

impl Default for WeightStacking {
    fn default() -> Self {
        WeightStacking::SHARED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_addressing() {
        let v = MatView::row_major(100, 8);
        assert_eq!(v.at(0, 0), 100);
        assert_eq!(v.at(2, 3), 100 + 16 + 3);
    }

    #[test]
    fn col_major_addressing() {
        let v = MatView::col_major(0, 16);
        assert_eq!(v.at(3, 2), 3 + 32);
    }

    #[test]
    fn tiling_composes() {
        let v = MatView::row_major(0, 64);
        let t = v.tile(32, 16);
        assert_eq!(t.at(0, 0), v.at(32, 16));
        assert_eq!(t.at(1, 2), v.at(33, 18));
    }

    #[test]
    fn channel_major_fno_layout() {
        // A = Xf viewed from a [K, Nf] tensor slice: row = mode f,
        // col = hidden k  ->  addr = k * nf + f.
        let (k, nf) = (4usize, 8usize);
        let v = MatView {
            base: 0,
            row_stride: 1,
            col_stride: nf,
        };
        for kk in 0..k {
            for f in 0..nf {
                assert_eq!(v.at(f, kk), kk * nf + f);
            }
        }
    }

    #[test]
    fn shared_weight_stacking_never_advances() {
        let ws = WeightStacking::SHARED;
        assert!(ws.is_shared());
        for b in 0..16 {
            assert_eq!(ws.slice_base(b), 0);
        }
        assert_eq!(ws.slices(16), 1);
    }

    #[test]
    fn strided_weight_stacking_advances_per_group() {
        // 3 requests of per-request batch 2, weight slices 256 elements apart
        let ws = WeightStacking::strided(256, 2);
        assert_eq!(
            (0..6).map(|b| ws.slice_base(b)).collect::<Vec<_>>(),
            vec![0, 0, 256, 256, 512, 512]
        );
        assert_eq!(ws.slices(6), 3);
        assert_eq!(ws.slices(5), 3, "partial last group still reads a slice");
    }

    #[test]
    #[should_panic(expected = "group must be >= 1")]
    fn zero_group_is_rejected() {
        let _ = WeightStacking::strided(8, 0);
    }
}
