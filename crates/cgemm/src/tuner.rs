//! Tile-configuration autotuner.
//!
//! The paper's CGEMM is "fully templated ... enabling us to generalize
//! across diverse problem shapes and maximize GPU utilization" (§3.1).
//! This module implements the selection side of that claim: it enumerates
//! the candidate tile configurations, evaluates each analytically on the
//! device model (occupancy + roofline over one representative launch), and
//! returns the fastest. The heuristic `CuBlas::select_tile` in `tfno-culib`
//! is the static fallback; this tuner is exhaustive within the candidate
//! set.

use crate::kernel::{BatchedCgemmKernel, BatchedOperand, GemmShape};
use crate::tile::TileConfig;
use crate::view::MatView;
use tfno_gpu_sim::{DeviceConfig, ExecMode, GpuDevice};
use tfno_num::C32;

/// The candidate tile space: every shape the warp/thread tiling supports
/// with 32-lane warps and Table-1 thread tiles.
pub fn candidate_tiles() -> Vec<TileConfig> {
    let mut out = Vec::new();
    for m_tb in [32usize, 64, 128] {
        for n_tb in [16usize, 32, 64, 128] {
            for k_tb in [4usize, 8, 16] {
                let t = TileConfig {
                    m_tb,
                    n_tb,
                    k_tb,
                    m_w: 32,
                    n_w: 16,
                    m_t: 4,
                    n_t: 4,
                };
                if m_tb % t.m_w == 0 && n_tb % t.n_w == 0 {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Result of tuning one problem shape.
#[derive(Clone, Copy, Debug)]
pub struct TunedTile {
    pub tile: TileConfig,
    pub modeled_us: f64,
    pub candidates_evaluated: usize,
}

/// Analytically evaluate one tile on a given shape (virtual buffers; no
/// data movement).
pub fn evaluate_tile(cfg: &DeviceConfig, shape: &GemmShape, tile: TileConfig) -> f64 {
    let mut dev = GpuDevice::new(cfg.clone());
    let a = dev.memory.alloc_virtual("tune.a", shape.batch * shape.m * shape.k);
    let b = dev.memory.alloc_virtual("tune.b", shape.k * shape.n);
    let c = dev.memory.alloc_virtual("tune.c", shape.batch * shape.m * shape.n);
    let kernel = BatchedCgemmKernel::new(
        "tune",
        tile,
        *shape,
        BatchedOperand::strided(a, MatView::row_major(0, shape.k), shape.m * shape.k),
        BatchedOperand::shared(b, MatView::row_major(0, shape.n)),
        BatchedOperand::strided(c, MatView::row_major(0, shape.n), shape.m * shape.n),
        C32::ONE,
        C32::ZERO,
    );
    dev.launch(&kernel, ExecMode::Analytical).time_us
}

/// Pick the fastest candidate tile for a shape.
pub fn tune(cfg: &DeviceConfig, shape: &GemmShape) -> TunedTile {
    let candidates = candidate_tiles();
    let mut best = TunedTile {
        tile: TileConfig::table1(),
        modeled_us: f64::INFINITY,
        candidates_evaluated: candidates.len(),
    };
    for tile in candidates {
        let t = evaluate_tile(cfg, shape, tile);
        if t < best.modeled_us {
            best.modeled_us = t;
            best.tile = tile;
        }
    }
    best
}

/// Functional spot-check: run the tuned tile on real data and compare with
/// the naive reference (used by tests; exposed for examples).
pub fn verify_tile(tile: TileConfig, shape: &GemmShape) -> f32 {
    let mut dev = GpuDevice::a100();
    let len_a = shape.batch * shape.m * shape.k;
    let len_b = shape.k * shape.n;
    let len_c = shape.batch * shape.m * shape.n;
    let a = dev.alloc("v.a", len_a);
    let b = dev.alloc("v.b", len_b);
    let c = dev.alloc("v.c", len_c);
    let ad: Vec<C32> = (0..len_a)
        .map(|i| C32::new((i as f32 * 0.11).sin(), (i as f32 * 0.23).cos()))
        .collect();
    let bd: Vec<C32> = (0..len_b)
        .map(|i| C32::new((i as f32 * 0.31).cos(), (i as f32 * 0.17).sin()))
        .collect();
    dev.upload(a, &ad);
    dev.upload(b, &bd);

    let kernel = BatchedCgemmKernel::new(
        "verify",
        tile,
        *shape,
        BatchedOperand::strided(a, MatView::row_major(0, shape.k), shape.m * shape.k),
        BatchedOperand::shared(b, MatView::row_major(0, shape.n)),
        BatchedOperand::strided(c, MatView::row_major(0, shape.n), shape.m * shape.n),
        C32::ONE,
        C32::ZERO,
    );
    dev.launch(&kernel, ExecMode::Functional);
    let got = dev.download(c);

    let mut max_err = 0.0f32;
    for bi in 0..shape.batch {
        let mut want = vec![C32::ZERO; shape.m * shape.n];
        tfno_num::reference::cgemm(
            shape.m,
            shape.n,
            shape.k,
            C32::ONE,
            &ad[bi * shape.m * shape.k..(bi + 1) * shape.m * shape.k],
            &bd,
            C32::ZERO,
            &mut want,
        );
        let err = tfno_num::error::max_abs_error(
            &got[bi * shape.m * shape.n..(bi + 1) * shape.m * shape.n],
            &want,
        );
        max_err = max_err.max(err);
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_is_valid() {
        let c = candidate_tiles();
        assert!(c.len() >= 20, "expected a rich candidate space, got {}", c.len());
        for t in &c {
            t.validate();
        }
    }

    #[test]
    fn tuner_picks_big_tiles_for_big_problems() {
        let cfg = DeviceConfig::a100();
        let big = GemmShape {
            batch: 1,
            m: 16384,
            n: 128,
            k: 64,
        };
        let tuned = tune(&cfg, &big);
        assert!(
            tuned.tile.m_tb * tuned.tile.n_tb >= 64 * 32,
            "big problems want big tiles, got {:?}",
            tuned.tile
        );
        assert!(tuned.modeled_us.is_finite());
    }

    #[test]
    fn tuner_never_loses_to_table1_by_construction() {
        let cfg = DeviceConfig::a100();
        for shape in [
            GemmShape { batch: 1, m: 64, n: 32, k: 16 },
            GemmShape { batch: 4, m: 512, n: 64, k: 64 },
            GemmShape { batch: 1, m: 4096, n: 128, k: 128 },
        ] {
            let tuned = tune(&cfg, &shape);
            let baseline = evaluate_tile(&cfg, &shape, TileConfig::table1());
            assert!(
                tuned.modeled_us <= baseline + 1e-9,
                "{shape:?}: tuned {} > table1 {baseline}",
                tuned.modeled_us
            );
        }
    }

    #[test]
    fn tuned_tiles_stay_correct() {
        let shape = GemmShape {
            batch: 2,
            m: 96,
            n: 48,
            k: 24,
        };
        let cfg = DeviceConfig::a100();
        let tuned = tune(&cfg, &shape);
        let err = verify_tile(tuned.tile, &shape);
        assert!(err < 1e-3, "tuned tile diverged: {err}");
    }
}
