//! The CGEMM block engine: main loop of Fig. 9 (left), reusable by the
//! fused kernels.
//!
//! One call to [`CgemmBlockEngine::run_mainloop`] executes a thread block's
//! whole `k`-loop: stage the `A`/`B` tiles into double-buffered shared
//! memory, then per `k_tb`-chunk run the warp/thread-tiled multiply-
//! accumulate with fragments loaded from shared memory. The `A` tile can
//! come from global memory (standalone GEMM) or from a custom provider —
//! the hook the fused FFT→CGEMM kernel uses to write FFT output straight
//! into `As` (paper §4.1).
//!
//! The accumulators are returned as [`CFragments`] so the caller chooses an
//! epilogue: [`store_c_global`] (standalone, `alpha/beta` supported) or the
//! fused CGEMM→iFFT epilogue in the `turbofno` crate (paper §4.2).

use crate::tile::TileConfig;
use crate::view::MatView;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tfno_gpu_sim::{lock_unpoisoned, BlockCtx, BufferId, WarpIdx, WARP_SIZE};
use tfno_num::C32;

/// Where the `A` tile of each `k`-chunk comes from.
pub enum AProvider<'a> {
    /// Load from a global buffer; `view.at(m_local, k_global)`.
    Global { buf: BufferId, view: MatView },
    /// Custom filler: called as `(ctx, k0, as_base)` and must store the
    /// `m_tb x k_tb` chunk (column-major, `as_base + kt * m_tb + m`) into
    /// shared memory itself. Used by the fused FFT→CGEMM kernel.
    Custom(&'a mut (dyn FnMut(&mut BlockCtx<'_>, usize, usize) + Send)),
}

/// `B` operand (always global in this pipeline; `view.at(k_global, n_local)`).
/// Callers resolve any batch/weight-slice addressing before the main loop:
/// the view already points at the slice this block reads (for stacked
/// weights, `WeightStacking::slice_base` of the block's batch entry).
pub struct BOperand {
    pub buf: BufferId,
    pub view: MatView,
}

/// Per-thread register accumulators of one block.
pub struct CFragments {
    pub tile: TileConfig,
    /// `acc[tid * m_t * n_t + i * n_t + j]`
    pub acc: Vec<C32>,
}

impl CFragments {
    pub fn get(&self, tid: usize, i: usize, j: usize) -> C32 {
        self.acc[tid * self.tile.m_t * self.tile.n_t + i * self.tile.n_t + j]
    }

    /// Tile-local `(m, n)` origin of a thread's register tile.
    pub fn thread_origin(tile: &TileConfig, tid: usize) -> (usize, usize) {
        let warp = tid / WARP_SIZE;
        let lane = tid % WARP_SIZE;
        let warps_m = tile.m_tb / tile.m_w;
        let wm = warp % warps_m;
        let wn = warp / warps_m;
        let tm = lane % tile.lanes_m();
        let tn = lane / tile.lanes_m();
        (
            wm * tile.m_w + tm * tile.m_t,
            wn * tile.n_w + tn * tile.n_t,
        )
    }
}

/// The block-level GEMM main loop.
pub struct CgemmBlockEngine {
    pub tile: TileConfig,
    pub k_total: usize,
}

impl CgemmBlockEngine {
    /// Shared elements the double-buffered tiles need.
    pub fn shared_elems(&self) -> usize {
        self.tile.shared_elems()
    }

    /// Shared elements when `A` comes from a custom provider: the paper
    /// single-buffers `As` in that case ("there is no need to apply double
    /// buffering to the A block", §3.1).
    pub fn shared_elems_custom_a(&self) -> usize {
        self.tile.m_tb * self.tile.k_tb + 2 * self.tile.k_tb * self.tile.n_tb
    }

    /// Execute the main loop; returns the C accumulators.
    ///
    /// * `active_m`/`active_n` — valid extent of this block's tile (partial
    ///   edge tiles predicate the excess lanes off).
    /// * `shared_base` — element offset where this engine's staging starts.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mainloop(
        &self,
        ctx: &mut BlockCtx<'_>,
        a: &mut AProvider<'_>,
        b: &BOperand,
        active_m: usize,
        active_n: usize,
        shared_base: usize,
    ) -> CFragments {
        let tile = self.tile;
        tile.validate();
        let (ms, ns, ks) = (tile.m_tb, tile.n_tb, tile.k_tb);
        let threads = tile.threads();
        // A is double-buffered only when loaded from global memory; a custom
        // provider (the fused FFT) synchronizes anyway, so As is single-
        // buffered (paper §3.1).
        let (as_base, as_stride, bs_base) = match a {
            AProvider::Global { .. } => (shared_base, ms * ks, shared_base + 2 * ms * ks),
            AProvider::Custom(_) => (shared_base, 0, shared_base + ms * ks),
        };

        let mut acc = vec![C32::ZERO; threads * tile.m_t * tile.n_t];
        let chunks = self.k_total.div_ceil(ks);

        for chunk in 0..chunks {
            let k0 = chunk * ks;
            let active_k = ks.min(self.k_total - k0);
            let buf = chunk % 2;
            let as_buf = as_base + buf * as_stride;
            let bs_buf = bs_base + buf * ks * ns;

            // ---- stage A tile ----
            match a {
                AProvider::Global { buf: abuf, view } => {
                    for kt in 0..active_k {
                        let mut m = 0;
                        while m < active_m {
                            let idx_g = WarpIdx::from_fn(|l| {
                                (m + l < active_m).then(|| view.at(m + l, k0 + kt))
                            });
                            let vals = ctx.global_read(*abuf, &idx_g);
                            let idx_s = WarpIdx::from_fn(|l| {
                                (m + l < active_m).then(|| as_buf + kt * ms + m + l)
                            });
                            ctx.shared_store(&idx_s, &vals);
                            m += WARP_SIZE;
                        }
                    }
                }
                AProvider::Custom(f) => f(ctx, k0, as_buf),
            }

            // ---- stage B tile ----
            for kt in 0..active_k {
                let mut n = 0;
                while n < active_n {
                    let idx_g = WarpIdx::from_fn(|l| {
                        (n + l < active_n).then(|| b.view.at(k0 + kt, n + l))
                    });
                    let vals = ctx.global_read(b.buf, &idx_g);
                    let idx_s = WarpIdx::from_fn(|l| {
                        (n + l < active_n).then(|| bs_buf + kt * ns + n + l)
                    });
                    ctx.shared_store(&idx_s, &vals);
                    n += WARP_SIZE;
                }
            }

            ctx.syncthreads();

            // ---- compute: per warp, per kt: fragment loads + MACs ----
            // Fragment loads are vectorized (LDS.128-class): each thread
            // pulls its m_t / n_t consecutive elements in one wide access —
            // the conflict-free pattern production GEMMs use.
            for w in 0..tile.warps() {
                for kt in 0..active_k {
                    let idx_a = WarpIdx::from_fn(|l| {
                        let tid = w * WARP_SIZE + l;
                        let (m0, _n0) = CFragments::thread_origin(&tile, tid);
                        (m0 < active_m).then(|| as_buf + kt * ms + m0)
                    });
                    let at = ctx.shared_load_wide(&idx_a, tile.m_t);
                    let idx_b = WarpIdx::from_fn(|l| {
                        let tid = w * WARP_SIZE + l;
                        let (_m0, n0) = CFragments::thread_origin(&tile, tid);
                        (n0 < active_n).then(|| bs_buf + kt * ns + n0)
                    });
                    let bt = ctx.shared_load_wide(&idx_b, tile.n_t);
                    // MACs.
                    let mut flops = 0u64;
                    for l in 0..WARP_SIZE {
                        let tid = w * WARP_SIZE + l;
                        let (m0, n0) = CFragments::thread_origin(&tile, tid);
                        for i in 0..tile.m_t {
                            if m0 + i >= active_m {
                                continue;
                            }
                            for j in 0..tile.n_t {
                                if n0 + j >= active_n {
                                    continue;
                                }
                                let idx = tid * tile.m_t * tile.n_t + i * tile.n_t + j;
                                acc[idx] = acc[idx].mac(at[i][l], bt[j][l]);
                                flops += tfno_num::FLOPS_PER_CMAC;
                            }
                        }
                    }
                    ctx.add_flops(flops);
                }
            }

            ctx.syncthreads();
        }

        CFragments { tile, acc }
    }
}

/// One staged warp transaction of the main loop. The global pattern is
/// stored relative to the operand view's base: blocks of one launch differ
/// only in their view bases (tile origin / batch offset), never in strides,
/// so one trace serves every block of the same `(active_m, active_n)` class.
#[derive(Clone)]
struct TraceXfer {
    global_rel: WarpIdx,
    shared: WarpIdx,
}

/// Shared-memory fragment-load patterns of one `(warp, kt)` step.
#[derive(Clone)]
struct TraceFrag {
    idx_a: WarpIdx,
    idx_b: WarpIdx,
}

/// One `k`-chunk of the main loop, fully resolved: staging transactions
/// (double-buffer parity baked in), fragment loads, and the chunk's valid
/// `k` extent.
struct TraceChunk {
    a_stage: Vec<TraceXfer>,
    b_stage: Vec<TraceXfer>,
    /// Warp-major, then `kt` within the chunk.
    frags: Vec<TraceFrag>,
    active_k: usize,
}

/// Per-lane MAC extents of one warp: the edge predicates of the original
/// loop (`m0 + i < active_m`) are prefixes, so each lane's work collapses
/// to two trip counts.
#[derive(Clone, Copy)]
struct LaneMac {
    lane: usize,
    acc_base: usize,
    ni: usize,
    nj: usize,
}

/// Precomputed main-loop schedule of one block shape.
///
/// Every block of a CGEMM launch executes the same instruction sequence
/// over different data: the staging/fragment warp index patterns and the
/// per-lane MAC predication depend only on the tile config, `k_total`,
/// operand strides, and the block's `(active_m, active_n)` — never on the
/// block id. Building them once and replaying per block removes the
/// per-block address arithmetic and `thread_origin` divisions that
/// dominate the functional executor's GEMM cost; only the data movement,
/// MACs, and event accounting remain per block. Replay is event-for-event
/// identical to [`CgemmBlockEngine::run_mainloop`].
pub struct MainloopTrace {
    chunks: Vec<TraceChunk>,
    /// Per warp: active lanes with their accumulator base and trip counts.
    warp_macs: Vec<Vec<LaneMac>>,
    /// Per warp: flops of one `(warp, kt)` MAC step.
    warp_flops: Vec<u64>,
}

fn offset_idx(rel: &WarpIdx, base: usize) -> WarpIdx {
    let mut out = *rel;
    for v in out.lanes.iter_mut().flatten() {
        *v += base;
    }
    out
}

impl CgemmBlockEngine {
    /// Build the replayable main-loop schedule for blocks with a
    /// global-memory `A` operand. `a_view`/`b_view` contribute only their
    /// strides (bases are re-applied per block at replay); `shared_base` is
    /// baked into the shared patterns.
    pub fn build_trace(
        &self,
        a_view: &MatView,
        b_view: &MatView,
        active_m: usize,
        active_n: usize,
        shared_base: usize,
    ) -> MainloopTrace {
        let tile = self.tile;
        tile.validate();
        let (ms, ns, ks) = (tile.m_tb, tile.n_tb, tile.k_tb);
        let a_rel = MatView { base: 0, ..*a_view };
        let b_rel = MatView { base: 0, ..*b_view };
        let (as_base, as_stride, bs_base) = (shared_base, ms * ks, shared_base + 2 * ms * ks);

        let total_chunks = self.k_total.div_ceil(ks);
        let mut chunks = Vec::with_capacity(total_chunks);
        for chunk in 0..total_chunks {
            let k0 = chunk * ks;
            let active_k = ks.min(self.k_total - k0);
            let buf = chunk % 2;
            let as_buf = as_base + buf * as_stride;
            let bs_buf = bs_base + buf * ks * ns;

            let mut a_stage = Vec::new();
            for kt in 0..active_k {
                let mut m = 0;
                while m < active_m {
                    a_stage.push(TraceXfer {
                        global_rel: WarpIdx::from_fn(|l| {
                            (m + l < active_m).then(|| a_rel.at(m + l, k0 + kt))
                        }),
                        shared: WarpIdx::from_fn(|l| {
                            (m + l < active_m).then(|| as_buf + kt * ms + m + l)
                        }),
                    });
                    m += WARP_SIZE;
                }
            }

            let mut b_stage = Vec::new();
            for kt in 0..active_k {
                let mut n = 0;
                while n < active_n {
                    b_stage.push(TraceXfer {
                        global_rel: WarpIdx::from_fn(|l| {
                            (n + l < active_n).then(|| b_rel.at(k0 + kt, n + l))
                        }),
                        shared: WarpIdx::from_fn(|l| {
                            (n + l < active_n).then(|| bs_buf + kt * ns + n + l)
                        }),
                    });
                    n += WARP_SIZE;
                }
            }

            let mut frags = Vec::with_capacity(tile.warps() * active_k);
            for w in 0..tile.warps() {
                for kt in 0..active_k {
                    frags.push(TraceFrag {
                        idx_a: WarpIdx::from_fn(|l| {
                            let tid = w * WARP_SIZE + l;
                            let (m0, _n0) = CFragments::thread_origin(&tile, tid);
                            (m0 < active_m).then(|| as_buf + kt * ms + m0)
                        }),
                        idx_b: WarpIdx::from_fn(|l| {
                            let tid = w * WARP_SIZE + l;
                            let (_m0, n0) = CFragments::thread_origin(&tile, tid);
                            (n0 < active_n).then(|| bs_buf + kt * ns + n0)
                        }),
                    });
                }
            }

            chunks.push(TraceChunk {
                a_stage,
                b_stage,
                frags,
                active_k,
            });
        }

        let mut warp_macs = Vec::with_capacity(tile.warps());
        let mut warp_flops = Vec::with_capacity(tile.warps());
        for w in 0..tile.warps() {
            let mut lanes = Vec::new();
            let mut flops = 0u64;
            for l in 0..WARP_SIZE {
                let tid = w * WARP_SIZE + l;
                let (m0, n0) = CFragments::thread_origin(&tile, tid);
                let ni = tile.m_t.min(active_m.saturating_sub(m0));
                let nj = tile.n_t.min(active_n.saturating_sub(n0));
                if ni == 0 || nj == 0 {
                    continue;
                }
                lanes.push(LaneMac {
                    lane: l,
                    acc_base: tid * tile.m_t * tile.n_t,
                    ni,
                    nj,
                });
                flops += (ni * nj) as u64 * tfno_num::FLOPS_PER_CMAC;
            }
            warp_macs.push(lanes);
            warp_flops.push(flops);
        }

        MainloopTrace {
            chunks,
            warp_macs,
            warp_flops,
        }
    }

    /// Replay a prebuilt schedule: event-for-event identical to
    /// [`Self::run_mainloop`] with a [`AProvider::Global`] operand whose
    /// view has base `a_base` (likewise `b_base` for `B`), but with every
    /// index pattern and predicate looked up instead of recomputed.
    pub fn run_mainloop_traced(
        &self,
        ctx: &mut BlockCtx<'_>,
        a_buf: BufferId,
        a_base: usize,
        b_buf: BufferId,
        b_base: usize,
        trace: &MainloopTrace,
    ) -> CFragments {
        let tile = self.tile;
        let threads = tile.threads();
        let mut acc = vec![C32::ZERO; threads * tile.m_t * tile.n_t];

        for chunk in &trace.chunks {
            for x in &chunk.a_stage {
                let vals = ctx.global_read(a_buf, &offset_idx(&x.global_rel, a_base));
                ctx.shared_store(&x.shared, &vals);
            }
            for x in &chunk.b_stage {
                let vals = ctx.global_read(b_buf, &offset_idx(&x.global_rel, b_base));
                ctx.shared_store(&x.shared, &vals);
            }
            ctx.syncthreads();

            let mut fi = 0;
            for w in 0..tile.warps() {
                for _kt in 0..chunk.active_k {
                    let f = &chunk.frags[fi];
                    fi += 1;
                    let at = ctx.shared_load_wide(&f.idx_a, tile.m_t);
                    let bt = ctx.shared_load_wide(&f.idx_b, tile.n_t);
                    for mac in &trace.warp_macs[w] {
                        for i in 0..mac.ni {
                            for j in 0..mac.nj {
                                let idx = mac.acc_base + i * tile.n_t + j;
                                acc[idx] = acc[idx].mac(at[i][mac.lane], bt[j][mac.lane]);
                            }
                        }
                    }
                    ctx.add_flops(trace.warp_flops[w]);
                }
            }
            ctx.syncthreads();
        }

        CFragments { tile, acc }
    }
}

/// Per-kernel cache of [`MainloopTrace`]s, keyed by `(active_m, active_n)`.
/// The owning kernel must use one cache per distinct (tile, `k_total`,
/// operand-stride, `shared_base`) configuration — everything except the
/// active extents must be constant across the cache's users.
///
/// A launch sees at most four distinct extents (interior blocks plus the
/// m-edge, n-edge, and corner), so the warm path is four lock-free
/// `OnceLock` slots; a mutexed overflow map keeps unusual callers correct.
/// One warm-path slot: the `(active_m, active_n)` key plus its trace.
type TraceSlot = OnceLock<((usize, usize), Arc<MainloopTrace>)>;

#[derive(Default)]
pub struct MainloopTraceCache {
    slots: [TraceSlot; 4],
    overflow: Mutex<HashMap<(usize, usize), Arc<MainloopTrace>>>,
}

impl MainloopTraceCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (or build) the trace for one block-extent class. Warm lookups
    /// are lock-free slot reads; cold builds serialize on the overflow
    /// mutex so each class's trace is built exactly once per racer set.
    pub fn get(
        &self,
        engine: &CgemmBlockEngine,
        a_view: &MatView,
        b_view: &MatView,
        active_m: usize,
        active_n: usize,
        shared_base: usize,
    ) -> Arc<MainloopTrace> {
        let key = (active_m, active_n);
        for slot in &self.slots {
            if let Some((k, trace)) = slot.get() {
                if *k == key {
                    return trace.clone();
                }
            }
        }
        let mut map = lock_unpoisoned(&self.overflow);
        // A racer may have published while we waited for the lock.
        for slot in &self.slots {
            if let Some((k, trace)) = slot.get() {
                if *k == key {
                    return trace.clone();
                }
            }
        }
        if let Some(trace) = map.get(&key) {
            return trace.clone();
        }
        let trace = Arc::new(engine.build_trace(a_view, b_view, active_m, active_n, shared_base));
        for slot in &self.slots {
            if slot.set((key, trace.clone())).is_ok() {
                return trace;
            }
        }
        map.insert(key, trace.clone());
        trace
    }
}

/// Standard epilogue: `C = alpha * acc + beta * C` written to global memory.
/// `c_view.at(m_local, n_local)`.
#[allow(clippy::too_many_arguments)]
pub fn store_c_global(
    ctx: &mut BlockCtx<'_>,
    frags: &CFragments,
    buf: BufferId,
    c_view: &MatView,
    active_m: usize,
    active_n: usize,
    alpha: C32,
    beta: C32,
) {
    let tile = frags.tile;
    for w in 0..tile.warps() {
        for i in 0..tile.m_t {
            for j in 0..tile.n_t {
                let lane_mn = |l: usize| {
                    let tid = w * WARP_SIZE + l;
                    let (m0, n0) = CFragments::thread_origin(&tile, tid);
                    let (m, n) = (m0 + i, n0 + j);
                    (m < active_m && n < active_n).then_some((m, n))
                };
                let idx = WarpIdx::from_fn(|l| lane_mn(l).map(|(m, n)| c_view.at(m, n)));
                let old = if beta != C32::ZERO {
                    ctx.global_read(buf, &idx)
                } else {
                    [C32::ZERO; WARP_SIZE]
                };
                let mut vals = [C32::ZERO; WARP_SIZE];
                let mut flops = 0u64;
                for l in 0..WARP_SIZE {
                    if lane_mn(l).is_none() {
                        continue;
                    }
                    let tid = w * WARP_SIZE + l;
                    let a = frags.get(tid, i, j);
                    vals[l] = if alpha == C32::ONE && beta == C32::ZERO {
                        a
                    } else {
                        flops += 12;
                        alpha * a + beta * old[l]
                    };
                }
                ctx.add_flops(flops);
                ctx.global_write(buf, &idx, &vals);
            }
        }
    }
}
