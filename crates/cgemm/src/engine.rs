//! The CGEMM block engine: main loop of Fig. 9 (left), reusable by the
//! fused kernels.
//!
//! One call to [`CgemmBlockEngine::run_mainloop`] executes a thread block's
//! whole `k`-loop: stage the `A`/`B` tiles into double-buffered shared
//! memory, then per `k_tb`-chunk run the warp/thread-tiled multiply-
//! accumulate with fragments loaded from shared memory. The `A` tile can
//! come from global memory (standalone GEMM) or from a custom provider —
//! the hook the fused FFT→CGEMM kernel uses to write FFT output straight
//! into `As` (paper §4.1).
//!
//! The accumulators are returned as [`CFragments`] so the caller chooses an
//! epilogue: [`store_c_global`] (standalone, `alpha/beta` supported) or the
//! fused CGEMM→iFFT epilogue in the `turbofno` crate (paper §4.2).

use crate::tile::TileConfig;
use crate::view::MatView;
use tfno_gpu_sim::{BlockCtx, BufferId, WarpIdx, WARP_SIZE};
use tfno_num::C32;

/// Where the `A` tile of each `k`-chunk comes from.
pub enum AProvider<'a> {
    /// Load from a global buffer; `view.at(m_local, k_global)`.
    Global { buf: BufferId, view: MatView },
    /// Custom filler: called as `(ctx, k0, as_base)` and must store the
    /// `m_tb x k_tb` chunk (column-major, `as_base + kt * m_tb + m`) into
    /// shared memory itself. Used by the fused FFT→CGEMM kernel.
    Custom(&'a mut (dyn FnMut(&mut BlockCtx<'_>, usize, usize) + Send)),
}

/// `B` operand (always global in this pipeline; `view.at(k_global, n_local)`).
/// Callers resolve any batch/weight-slice addressing before the main loop:
/// the view already points at the slice this block reads (for stacked
/// weights, `WeightStacking::slice_base` of the block's batch entry).
pub struct BOperand {
    pub buf: BufferId,
    pub view: MatView,
}

/// Per-thread register accumulators of one block.
pub struct CFragments {
    pub tile: TileConfig,
    /// `acc[tid * m_t * n_t + i * n_t + j]`
    pub acc: Vec<C32>,
}

impl CFragments {
    pub fn get(&self, tid: usize, i: usize, j: usize) -> C32 {
        self.acc[tid * self.tile.m_t * self.tile.n_t + i * self.tile.n_t + j]
    }

    /// Tile-local `(m, n)` origin of a thread's register tile.
    pub fn thread_origin(tile: &TileConfig, tid: usize) -> (usize, usize) {
        let warp = tid / WARP_SIZE;
        let lane = tid % WARP_SIZE;
        let warps_m = tile.m_tb / tile.m_w;
        let wm = warp % warps_m;
        let wn = warp / warps_m;
        let tm = lane % tile.lanes_m();
        let tn = lane / tile.lanes_m();
        (
            wm * tile.m_w + tm * tile.m_t,
            wn * tile.n_w + tn * tile.n_t,
        )
    }
}

/// The block-level GEMM main loop.
pub struct CgemmBlockEngine {
    pub tile: TileConfig,
    pub k_total: usize,
}

impl CgemmBlockEngine {
    /// Shared elements the double-buffered tiles need.
    pub fn shared_elems(&self) -> usize {
        self.tile.shared_elems()
    }

    /// Shared elements when `A` comes from a custom provider: the paper
    /// single-buffers `As` in that case ("there is no need to apply double
    /// buffering to the A block", §3.1).
    pub fn shared_elems_custom_a(&self) -> usize {
        self.tile.m_tb * self.tile.k_tb + 2 * self.tile.k_tb * self.tile.n_tb
    }

    /// Execute the main loop; returns the C accumulators.
    ///
    /// * `active_m`/`active_n` — valid extent of this block's tile (partial
    ///   edge tiles predicate the excess lanes off).
    /// * `shared_base` — element offset where this engine's staging starts.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mainloop(
        &self,
        ctx: &mut BlockCtx<'_>,
        a: &mut AProvider<'_>,
        b: &BOperand,
        active_m: usize,
        active_n: usize,
        shared_base: usize,
    ) -> CFragments {
        let tile = self.tile;
        tile.validate();
        let (ms, ns, ks) = (tile.m_tb, tile.n_tb, tile.k_tb);
        let threads = tile.threads();
        // A is double-buffered only when loaded from global memory; a custom
        // provider (the fused FFT) synchronizes anyway, so As is single-
        // buffered (paper §3.1).
        let (as_base, as_stride, bs_base) = match a {
            AProvider::Global { .. } => (shared_base, ms * ks, shared_base + 2 * ms * ks),
            AProvider::Custom(_) => (shared_base, 0, shared_base + ms * ks),
        };

        let mut acc = vec![C32::ZERO; threads * tile.m_t * tile.n_t];
        let chunks = self.k_total.div_ceil(ks);

        for chunk in 0..chunks {
            let k0 = chunk * ks;
            let active_k = ks.min(self.k_total - k0);
            let buf = chunk % 2;
            let as_buf = as_base + buf * as_stride;
            let bs_buf = bs_base + buf * ks * ns;

            // ---- stage A tile ----
            match a {
                AProvider::Global { buf: abuf, view } => {
                    for kt in 0..active_k {
                        let mut m = 0;
                        while m < active_m {
                            let idx_g = WarpIdx::from_fn(|l| {
                                (m + l < active_m).then(|| view.at(m + l, k0 + kt))
                            });
                            let vals = ctx.global_read(*abuf, &idx_g);
                            let idx_s = WarpIdx::from_fn(|l| {
                                (m + l < active_m).then(|| as_buf + kt * ms + m + l)
                            });
                            ctx.shared_store(&idx_s, &vals);
                            m += WARP_SIZE;
                        }
                    }
                }
                AProvider::Custom(f) => f(ctx, k0, as_buf),
            }

            // ---- stage B tile ----
            for kt in 0..active_k {
                let mut n = 0;
                while n < active_n {
                    let idx_g = WarpIdx::from_fn(|l| {
                        (n + l < active_n).then(|| b.view.at(k0 + kt, n + l))
                    });
                    let vals = ctx.global_read(b.buf, &idx_g);
                    let idx_s = WarpIdx::from_fn(|l| {
                        (n + l < active_n).then(|| bs_buf + kt * ns + n + l)
                    });
                    ctx.shared_store(&idx_s, &vals);
                    n += WARP_SIZE;
                }
            }

            ctx.syncthreads();

            // ---- compute: per warp, per kt: fragment loads + MACs ----
            // Fragment loads are vectorized (LDS.128-class): each thread
            // pulls its m_t / n_t consecutive elements in one wide access —
            // the conflict-free pattern production GEMMs use.
            for w in 0..tile.warps() {
                for kt in 0..active_k {
                    let idx_a = WarpIdx::from_fn(|l| {
                        let tid = w * WARP_SIZE + l;
                        let (m0, _n0) = CFragments::thread_origin(&tile, tid);
                        (m0 < active_m).then(|| as_buf + kt * ms + m0)
                    });
                    let at = ctx.shared_load_wide(&idx_a, tile.m_t);
                    let idx_b = WarpIdx::from_fn(|l| {
                        let tid = w * WARP_SIZE + l;
                        let (_m0, n0) = CFragments::thread_origin(&tile, tid);
                        (n0 < active_n).then(|| bs_buf + kt * ns + n0)
                    });
                    let bt = ctx.shared_load_wide(&idx_b, tile.n_t);
                    // MACs.
                    let mut flops = 0u64;
                    for l in 0..WARP_SIZE {
                        let tid = w * WARP_SIZE + l;
                        let (m0, n0) = CFragments::thread_origin(&tile, tid);
                        for i in 0..tile.m_t {
                            if m0 + i >= active_m {
                                continue;
                            }
                            for j in 0..tile.n_t {
                                if n0 + j >= active_n {
                                    continue;
                                }
                                let idx = tid * tile.m_t * tile.n_t + i * tile.n_t + j;
                                acc[idx] = acc[idx].mac(at[i][l], bt[j][l]);
                                flops += tfno_num::FLOPS_PER_CMAC;
                            }
                        }
                    }
                    ctx.add_flops(flops);
                }
            }

            ctx.syncthreads();
        }

        CFragments { tile, acc }
    }
}

/// Standard epilogue: `C = alpha * acc + beta * C` written to global memory.
/// `c_view.at(m_local, n_local)`.
#[allow(clippy::too_many_arguments)]
pub fn store_c_global(
    ctx: &mut BlockCtx<'_>,
    frags: &CFragments,
    buf: BufferId,
    c_view: &MatView,
    active_m: usize,
    active_n: usize,
    alpha: C32,
    beta: C32,
) {
    let tile = frags.tile;
    for w in 0..tile.warps() {
        for i in 0..tile.m_t {
            for j in 0..tile.n_t {
                let lane_mn = |l: usize| {
                    let tid = w * WARP_SIZE + l;
                    let (m0, n0) = CFragments::thread_origin(&tile, tid);
                    let (m, n) = (m0 + i, n0 + j);
                    (m < active_m && n < active_n).then_some((m, n))
                };
                let idx = WarpIdx::from_fn(|l| lane_mn(l).map(|(m, n)| c_view.at(m, n)));
                let old = if beta != C32::ZERO {
                    ctx.global_read(buf, &idx)
                } else {
                    [C32::ZERO; WARP_SIZE]
                };
                let mut vals = [C32::ZERO; WARP_SIZE];
                let mut flops = 0u64;
                for l in 0..WARP_SIZE {
                    if lane_mn(l).is_none() {
                        continue;
                    }
                    let tid = w * WARP_SIZE + l;
                    let a = frags.get(tid, i, j);
                    vals[l] = if alpha == C32::ONE && beta == C32::ZERO {
                        a
                    } else {
                        flops += 12;
                        alpha * a + beta * old[l]
                    };
                }
                ctx.add_flops(flops);
                ctx.global_write(buf, &idx, &vals);
            }
        }
    }
}
